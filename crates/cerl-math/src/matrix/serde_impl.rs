//! Serde support for [`Matrix`].
//!
//! Hand-written (rather than derived) so deserialization can re-validate
//! the `rows × cols == data.len()` invariant instead of trusting the
//! document, and so the field layout (`{rows, cols, data}`) is a stable
//! part of the model-snapshot format.

use super::Matrix;
use serde::{Deserialize, Error, Serialize, Value};

impl Serialize for Matrix {
    fn serialize(&self) -> Value {
        Value::Object(vec![
            ("rows".to_string(), self.rows().serialize()),
            ("cols".to_string(), self.cols().serialize()),
            ("data".to_string(), self.as_slice().serialize()),
        ])
    }
}

impl Deserialize for Matrix {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let obj = value.as_object().ok_or_else(|| {
            Error::custom(format!(
                "expected object for Matrix, found {}",
                value.kind()
            ))
        })?;
        let rows: usize = serde::field(obj, "rows")?;
        let cols: usize = serde::field(obj, "cols")?;
        let data: Vec<f64> = serde::field(obj, "data")?;
        let expected = rows
            .checked_mul(cols)
            .ok_or_else(|| Error::custom(format!("Matrix dimensions overflow: {rows}x{cols}")))?;
        if data.len() != expected {
            return Err(Error::custom(format!(
                "Matrix data length {} does not match {rows}x{cols}",
                data.len()
            )));
        }
        Ok(Matrix::from_vec(rows, cols, data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_including_special_floats() {
        let m = Matrix::from_vec(2, 3, vec![0.1, -0.0, 1e-300, f64::MAX, -5.5, 2.0 / 3.0]);
        let back = Matrix::deserialize(&m.serialize()).unwrap();
        assert_eq!(back.shape(), (2, 3));
        for (a, b) in back.as_slice().iter().zip(m.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn rejects_inconsistent_shape() {
        let mut v = match Matrix::zeros(2, 2).serialize() {
            Value::Object(fields) => fields,
            _ => unreachable!(),
        };
        v[0].1 = Value::UInt(3); // claim 3 rows with 4 data values
        assert!(Matrix::deserialize(&Value::Object(v)).is_err());
    }
}
