//! Vector norms and pairwise distance kernels.
//!
//! The Sinkhorn/Wasserstein IPM (`cerl-ot`) consumes the pairwise squared
//! Euclidean distance matrix between treated and control representation
//! batches; herding (`cerl-core`) uses Euclidean distances to group means.

use crate::matmul::dot;
use crate::matrix::Matrix;

/// L1 norm of a slice.
pub fn l1_norm(v: &[f64]) -> f64 {
    v.iter().map(|x| x.abs()).sum()
}

/// L2 (Euclidean) norm of a slice.
pub fn l2_norm(v: &[f64]) -> f64 {
    dot(v, v).sqrt()
}

/// Squared Euclidean distance between two equal-length slices.
pub fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "squared_distance: length mismatch");
    a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum()
}

/// Euclidean distance between two equal-length slices.
pub fn euclidean_distance(a: &[f64], b: &[f64]) -> f64 {
    squared_distance(a, b).sqrt()
}

/// Cosine similarity of two slices (0 when either vector is all-zero).
pub fn cosine_similarity(a: &[f64], b: &[f64]) -> f64 {
    let na = l2_norm(a);
    let nb = l2_norm(b);
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        (dot(a, b) / (na * nb)).clamp(-1.0, 1.0)
    }
}

/// Pairwise squared Euclidean distances: rows of `a` vs rows of `b`.
///
/// Output is `a.rows() × b.rows()`. Uses the expansion
/// `‖x−y‖² = ‖x‖² + ‖y‖² − 2⟨x,y⟩` with a clamp at zero to suppress
/// negative round-off.
pub fn pairwise_sq_dists(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.cols(),
        "pairwise_sq_dists: feature mismatch {} vs {}",
        a.cols(),
        b.cols()
    );
    let a_sq: Vec<f64> = a.iter_rows().map(|r| dot(r, r)).collect();
    let b_sq: Vec<f64> = b.iter_rows().map(|r| dot(r, r)).collect();
    let cross = crate::matmul::matmul_a_bt(a, b);
    Matrix::from_fn(a.rows(), b.rows(), |i, j| {
        (a_sq[i] + b_sq[j] - 2.0 * cross[(i, j)]).max(0.0)
    })
}

/// Normalize each row of `m` to unit L2 norm; all-zero rows are left as-is.
pub fn l2_normalize_rows(m: &Matrix) -> Matrix {
    let mut out = m.clone();
    for i in 0..out.rows() {
        let n = l2_norm(out.row(i));
        if n > 0.0 {
            for v in out.row_mut(i) {
                *v /= n;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norms() {
        assert_eq!(l1_norm(&[1.0, -2.0, 3.0]), 6.0);
        assert_eq!(l2_norm(&[3.0, 4.0]), 5.0);
    }

    #[test]
    fn distances() {
        let a = [0.0, 0.0];
        let b = [3.0, 4.0];
        assert_eq!(squared_distance(&a, &b), 25.0);
        assert_eq!(euclidean_distance(&a, &b), 5.0);
        assert_eq!(euclidean_distance(&b, &b), 0.0);
    }

    #[test]
    fn cosine() {
        assert!((cosine_similarity(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-15);
        assert!((cosine_similarity(&[1.0, 0.0], &[0.0, 1.0])).abs() < 1e-15);
        assert!((cosine_similarity(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-15);
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn pairwise_matches_direct() {
        let a = Matrix::from_rows(&[vec![0.0, 0.0], vec![1.0, 1.0], vec![-2.0, 0.5]]);
        let b = Matrix::from_rows(&[vec![3.0, 4.0], vec![1.0, 1.0]]);
        let d = pairwise_sq_dists(&a, &b);
        assert_eq!(d.shape(), (3, 2));
        for i in 0..3 {
            for j in 0..2 {
                let direct = squared_distance(a.row(i), b.row(j));
                assert!((d[(i, j)] - direct).abs() < 1e-12);
            }
        }
        // Self-distance is exactly zero after clamping.
        assert_eq!(d[(1, 1)], 0.0);
    }

    #[test]
    fn pairwise_nonnegative_under_roundoff() {
        // Nearly identical large-magnitude rows can produce tiny negative
        // values in the expansion; the clamp must remove them.
        let a = Matrix::from_rows(&[vec![1e8, 1e8]]);
        let b = Matrix::from_rows(&[vec![1e8, 1e8 + 1e-4]]);
        let d = pairwise_sq_dists(&a, &b);
        assert!(d[(0, 0)] >= 0.0);
    }

    #[test]
    fn row_normalization() {
        let m = Matrix::from_rows(&[vec![3.0, 4.0], vec![0.0, 0.0]]);
        let n = l2_normalize_rows(&m);
        assert!((l2_norm(n.row(0)) - 1.0).abs() < 1e-15);
        assert_eq!(n.row(1), &[0.0, 0.0]);
    }
}
