//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! The correlation-matrix construction of Hardin, Garcia & Golan (2013)
//! needs the smallest eigenvalue of a block-diagonal correlation matrix to
//! decide how much cross-block noise can be added while staying positive
//! definite; Jacobi is simple, robust, and plenty fast for the ≤ few-hundred
//! dimensional matrices used here.

use crate::error::MathError;
use crate::matrix::Matrix;

/// Result of a symmetric eigendecomposition.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues in ascending order.
    pub values: Vec<f64>,
    /// Eigenvectors as columns, ordered to match `values`.
    pub vectors: Matrix,
}

/// Cyclic Jacobi eigendecomposition of a symmetric matrix.
///
/// `a` is only read; symmetry is enforced by averaging `a` with its
/// transpose before iterating (guarding against small asymmetries from
/// upstream floating-point noise).
pub fn symmetric_eigen(a: &Matrix) -> Result<SymmetricEigen, MathError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(MathError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    if n == 0 {
        return Ok(SymmetricEigen {
            values: vec![],
            vectors: Matrix::zeros(0, 0),
        });
    }
    let mut m = a.zip_map(&a.transpose(), |x, y| 0.5 * (x + y));
    let mut v = Matrix::identity(n);

    let max_sweeps = 64;
    for _ in 0..max_sweeps {
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m[(i, j)] * m[(i, j)];
            }
        }
        if off.sqrt() <= 1e-13 * m.max_abs().max(1.0) {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // Apply rotation J(p,q,θ): M ← Jᵀ M J, V ← V J.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }

    // Collect and sort ascending, permuting eigenvector columns to match.
    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
    order.sort_by(|&i, &j| diag[i].partial_cmp(&diag[j]).expect("NaN eigenvalue"));
    let values: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
    let vectors = Matrix::from_fn(n, n, |r, c| v[(r, order[c])]);
    Ok(SymmetricEigen { values, vectors })
}

/// Smallest eigenvalue of a symmetric matrix.
pub fn smallest_eigenvalue(a: &Matrix) -> Result<f64, MathError> {
    Ok(*symmetric_eigen(a)?.values.first().ok_or(MathError::Empty {
        context: "smallest_eigenvalue",
    })?)
}

/// Largest eigenvalue of a symmetric matrix.
pub fn largest_eigenvalue(a: &Matrix) -> Result<f64, MathError> {
    Ok(*symmetric_eigen(a)?.values.last().ok_or(MathError::Empty {
        context: "largest_eigenvalue",
    })?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matmul::{matmul, matmul_a_bt};

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let a = Matrix::from_rows(&[
            vec![3.0, 0.0, 0.0],
            vec![0.0, -1.0, 0.0],
            vec![0.0, 0.0, 2.0],
        ]);
        let e = symmetric_eigen(&a).unwrap();
        assert!((e.values[0] - -1.0).abs() < 1e-10);
        assert!((e.values[1] - 2.0).abs() < 1e-10);
        assert!((e.values[2] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn known_2x2() {
        // [[1,2],[2,1]] has eigenvalues -1 and 3.
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]);
        let e = symmetric_eigen(&a).unwrap();
        assert!((e.values[0] + 1.0).abs() < 1e-10);
        assert!((e.values[1] - 3.0).abs() < 1e-10);
        assert!((smallest_eigenvalue(&a).unwrap() + 1.0).abs() < 1e-10);
        assert!((largest_eigenvalue(&a).unwrap() - 3.0).abs() < 1e-10);
    }

    #[test]
    fn reconstruction_and_orthonormality() {
        // SPD test matrix.
        let mut state = 99u64;
        let g = Matrix::from_fn(6, 6, |_, _| {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            (z as f64 / u64::MAX as f64) - 0.5
        });
        let a = matmul_a_bt(&g, &g);
        let e = symmetric_eigen(&a).unwrap();

        // V diag(λ) Vᵀ == A
        let n = 6;
        let lam = Matrix::from_fn(n, n, |i, j| if i == j { e.values[i] } else { 0.0 });
        let rec = matmul(&matmul(&e.vectors, &lam), &e.vectors.transpose());
        assert!(rec.approx_eq(&a, 1e-8));

        // Vᵀ V == I
        let vtv = matmul(&e.vectors.transpose(), &e.vectors);
        assert!(vtv.approx_eq(&Matrix::identity(n), 1e-10));

        // Ascending order.
        for w in e.values.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let a = Matrix::from_rows(&[
            vec![4.0, 1.0, 0.5],
            vec![1.0, 3.0, 0.2],
            vec![0.5, 0.2, 5.0],
        ]);
        let e = symmetric_eigen(&a).unwrap();
        let trace = a[(0, 0)] + a[(1, 1)] + a[(2, 2)];
        let sum: f64 = e.values.iter().sum();
        assert!((trace - sum).abs() < 1e-9);
    }

    #[test]
    fn empty_and_non_square() {
        assert!(symmetric_eigen(&Matrix::zeros(0, 0))
            .unwrap()
            .values
            .is_empty());
        assert!(matches!(
            symmetric_eigen(&Matrix::zeros(2, 3)),
            Err(MathError::NotSquare { .. })
        ));
    }
}
