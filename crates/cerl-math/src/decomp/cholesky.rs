//! Cholesky factorization of symmetric positive-definite matrices.
//!
//! Used by the multivariate-normal sampler (`cerl-rand::mvn`) and by the
//! positive-definiteness checks in correlation-matrix construction.

use crate::error::MathError;
use crate::matrix::Matrix;

/// Lower-triangular Cholesky factor `L` with `L·Lᵀ = A`.
///
/// Returns [`MathError::NotPositiveDefinite`] when a pivot is not strictly
/// positive (within a scale-relative tolerance).
pub fn cholesky(a: &Matrix) -> Result<Matrix, MathError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(MathError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let scale = a.max_abs().max(1.0);
    let tol = 1e-14 * scale;
    let mut l = Matrix::zeros(n, n);
    for j in 0..n {
        let mut diag = a[(j, j)];
        for k in 0..j {
            diag -= l[(j, k)] * l[(j, k)];
        }
        if diag <= tol {
            return Err(MathError::NotPositiveDefinite {
                pivot: j,
                value: diag,
            });
        }
        let ljj = diag.sqrt();
        l[(j, j)] = ljj;
        for i in (j + 1)..n {
            let mut s = a[(i, j)];
            for k in 0..j {
                s -= l[(i, k)] * l[(j, k)];
            }
            l[(i, j)] = s / ljj;
        }
    }
    Ok(l)
}

/// Cholesky with diagonal jitter escalation.
///
/// Adds `jitter · I` with jitter growing by 10× per attempt (starting at
/// `initial`) until factorization succeeds or `max_tries` is exhausted.
/// Returns the factor and the jitter that was finally applied.
pub fn cholesky_with_jitter(
    a: &Matrix,
    initial: f64,
    max_tries: usize,
) -> Result<(Matrix, f64), MathError> {
    if let Ok(l) = cholesky(a) {
        return Ok((l, 0.0));
    }
    let mut jitter = initial;
    for _ in 0..max_tries {
        let mut aj = a.clone();
        for i in 0..a.rows() {
            aj[(i, i)] += jitter;
        }
        if let Ok(l) = cholesky(&aj) {
            return Ok((l, jitter));
        }
        jitter *= 10.0;
    }
    Err(MathError::NotPositiveDefinite {
        pivot: 0,
        value: f64::NEG_INFINITY,
    })
}

/// True when `a` admits a Cholesky factorization (i.e. is numerically SPD).
pub fn is_positive_definite(a: &Matrix) -> bool {
    cholesky(a).is_ok()
}

/// Solve `A x = b` for SPD `A` via Cholesky (forward + back substitution).
pub fn solve_spd(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, MathError> {
    let l = cholesky(a)?;
    let n = l.rows();
    if b.len() != n {
        return Err(MathError::DimensionMismatch {
            expected: n,
            actual: b.len(),
            context: "solve_spd rhs",
        });
    }
    // Forward: L y = b
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut s = b[i];
        for k in 0..i {
            s -= l[(i, k)] * y[k];
        }
        y[i] = s / l[(i, i)];
    }
    // Back: Lᵀ x = y
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = y[i];
        for k in (i + 1)..n {
            s -= l[(k, i)] * x[k];
        }
        x[i] = s / l[(i, i)];
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matmul::matmul_a_bt;

    fn spd_from_factor(n: usize, seed: u64) -> (Matrix, Matrix) {
        // Build SPD A = G Gᵀ + n·I from a pseudo-random G.
        let mut state = seed;
        let g = Matrix::from_fn(n, n, |_, _| {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            (z as f64 / u64::MAX as f64) * 2.0 - 1.0
        });
        let mut a = matmul_a_bt(&g, &g);
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        (a, g)
    }

    #[test]
    fn factor_reconstructs() {
        let (a, _) = spd_from_factor(8, 42);
        let l = cholesky(&a).unwrap();
        let back = matmul_a_bt(&l, &l);
        assert!(back.approx_eq(&a, 1e-9));
        // L must be lower triangular.
        for i in 0..8 {
            for j in (i + 1)..8 {
                assert_eq!(l[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn identity_factor_is_identity() {
        let l = cholesky(&Matrix::identity(5)).unwrap();
        assert!(l.approx_eq(&Matrix::identity(5), 1e-14));
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]); // eigenvalues 3, -1
        assert!(matches!(
            cholesky(&a),
            Err(MathError::NotPositiveDefinite { .. })
        ));
        assert!(!is_positive_definite(&a));
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(cholesky(&a), Err(MathError::NotSquare { .. })));
    }

    #[test]
    fn jitter_rescues_semidefinite() {
        // Rank-deficient PSD matrix: outer product of a vector with itself.
        let v = Matrix::col_vector(&[1.0, 2.0, 3.0]);
        let a = matmul_a_bt(&v, &v);
        assert!(cholesky(&a).is_err());
        let (l, jitter) = cholesky_with_jitter(&a, 1e-10, 20).unwrap();
        assert!(jitter > 0.0);
        assert_eq!(l.rows(), 3);
    }

    #[test]
    fn solve_spd_roundtrip() {
        let (a, _) = spd_from_factor(6, 7);
        let x_true: Vec<f64> = (0..6).map(|i| i as f64 - 2.5).collect();
        let b = crate::matmul::matvec(&a, &x_true);
        let x = solve_spd(&a, &b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-8, "{xi} vs {ti}");
        }
    }
}
