//! Matrix decompositions: Cholesky (SPD factor/solve) and symmetric Jacobi
//! eigendecomposition.

pub mod cholesky;
pub mod eigen;

pub use cholesky::{cholesky, cholesky_with_jitter, is_positive_definite, solve_spd};
pub use eigen::{largest_eigenvalue, smallest_eigenvalue, symmetric_eigen, SymmetricEigen};
