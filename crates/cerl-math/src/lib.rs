//! # cerl-math
//!
//! Dense linear-algebra and numerics substrate for the CERL workspace
//! (reproduction of *Continual Causal Inference with Incremental
//! Observational Data*, ICDE 2023).
//!
//! Provides:
//! * [`Matrix`] — row-major dense `f64` matrix (units are rows).
//! * [`matmul`](mod@matmul) — blocked serial and crossbeam-parallel GEMM kernels.
//! * [`decomp`] — Cholesky factorization and Jacobi symmetric eigen.
//! * [`special`] — erf / normal CDF / quantile / log-gamma.
//! * [`correlation`] — hub-Toeplitz correlation construction
//!   (Hardin, Garcia & Golan 2013; paper §IV.C, Eqs. 11–12).
//! * [`stats`] — running moments, paired t-test, quantiles.
//! * [`norms`] — distances, cosine similarity, pairwise kernels.
//!
//! This crate has no randomness; anything stochastic lives in `cerl-rand`.

#![warn(missing_docs)]

pub mod correlation;
pub mod decomp;
pub mod error;
pub mod matmul;
pub mod matrix;
pub mod norms;
pub mod special;
pub mod stats;

pub use error::MathError;
pub use matmul::{dot, matmul, matmul_a_bt, matmul_at_b, matvec};
pub use matrix::Matrix;
