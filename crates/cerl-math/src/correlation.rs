//! Correlation-matrix construction following Hardin, Garcia & Golan (2013),
//! as used by the paper's synthetic-data generator (§IV.C).
//!
//! Each variable *type* (confounders, instruments, adjustment, irrelevant)
//! gets a **hub** block: the first variable is the hub and the correlation
//! between the hub and the `i`-th variable decays from `ρ_max` to `ρ_min`
//! per Eq. (12) of the paper:
//!
//! ```text
//! R[i,1] = ρ_max − ((i − 2)/(d − 2))^γ (ρ_max − ρ_min),   i = 2, …, d
//! ```
//!
//! The remainder of the block is filled with a Toeplitz structure
//! (`R[i,j]` depends only on `|i − j|`). Blocks are assembled
//! block-diagonally, and bounded cross-block noise can be added while
//! preserving positive definiteness, the budget being governed by the
//! smallest eigenvalue of the block-diagonal matrix (Hardin et al.,
//! Algorithm 3).

use crate::decomp::{
    cholesky_with_jitter, is_positive_definite, smallest_eigenvalue, symmetric_eigen,
};
use crate::error::MathError;
use crate::matrix::Matrix;

/// First column of a hub correlation block (Eq. 12 of the paper).
///
/// Element 0 is the hub itself (correlation 1). For `d = 2` the single
/// off-hub correlation is `ρ_max`.
///
/// # Panics
/// If `ρ_max < ρ_min`, correlations are outside `[0, 1)`, or `γ ≤ 0`.
pub fn hub_first_column(d: usize, rho_max: f64, rho_min: f64, gamma: f64) -> Vec<f64> {
    assert!(rho_max >= rho_min, "hub_first_column: rho_max < rho_min");
    assert!(
        (0.0..1.0).contains(&rho_min) && (0.0..1.0).contains(&rho_max),
        "hub correlations must lie in [0,1)"
    );
    assert!(gamma > 0.0, "hub_first_column: gamma must be positive");
    let mut col = Vec::with_capacity(d);
    if d == 0 {
        return col;
    }
    col.push(1.0);
    for i in 2..=d {
        let frac = if d <= 2 {
            0.0
        } else {
            (i as f64 - 2.0) / (d as f64 - 2.0)
        };
        col.push(rho_max - frac.powf(gamma) * (rho_max - rho_min));
    }
    col
}

/// Hub-Toeplitz correlation block: Toeplitz fill of the hub first column,
/// i.e. `R[i,j] = col[|i − j|]`.
pub fn hub_toeplitz(d: usize, rho_max: f64, rho_min: f64, gamma: f64) -> Matrix {
    let col = hub_first_column(d, rho_max, rho_min, gamma);
    toeplitz(&col)
}

/// Symmetric Toeplitz matrix from its first column.
pub fn toeplitz(col: &[f64]) -> Matrix {
    let d = col.len();
    Matrix::from_fn(d, d, |i, j| col[i.abs_diff(j)])
}

/// Assemble square blocks into a block-diagonal matrix (zeros elsewhere).
pub fn block_diagonal(blocks: &[Matrix]) -> Matrix {
    let n: usize = blocks.iter().map(|b| b.rows()).sum();
    let mut out = Matrix::zeros(n, n);
    let mut off = 0;
    for b in blocks {
        assert_eq!(b.rows(), b.cols(), "block_diagonal: blocks must be square");
        for i in 0..b.rows() {
            for j in 0..b.cols() {
                out[(off + i, off + j)] = b[(i, j)];
            }
        }
        off += b.rows();
    }
    out
}

/// Add cross-block noise to a block-diagonal correlation matrix while
/// keeping it positive definite (Hardin et al., Algorithm 3 style).
///
/// `noise` must be symmetric with zeros inside the diagonal blocks; its
/// entries are what the caller wants as cross-type correlations before
/// scaling. The applied scale is
/// `min(1, safety · λ_min(R) / ρ(noise))` where `ρ` is the spectral radius,
/// guaranteeing `R + s·noise` stays PD. Returns the perturbed matrix and
/// the scale actually applied.
pub fn perturb_preserving_pd(
    r: &Matrix,
    noise: &Matrix,
    safety: f64,
) -> Result<(Matrix, f64), MathError> {
    assert_eq!(
        r.shape(),
        noise.shape(),
        "perturb_preserving_pd: shape mismatch"
    );
    assert!(
        (0.0..1.0).contains(&safety) || safety == 1.0,
        "safety must be in (0,1]"
    );
    let lam_min = smallest_eigenvalue(r)?;
    if lam_min <= 0.0 {
        return Err(MathError::NotPositiveDefinite {
            pivot: 0,
            value: lam_min,
        });
    }
    let eig = symmetric_eigen(noise)?;
    let spectral = eig.values.iter().fold(0.0_f64, |m, &v| m.max(v.abs()));
    let scale = if spectral == 0.0 {
        0.0
    } else {
        (safety * lam_min / spectral).min(1.0)
    };
    let mut out = r.clone();
    out.axpy(scale, noise);
    // Re-impose exact unit diagonal (noise should not touch it, but guard).
    for i in 0..out.rows() {
        out[(i, i)] = 1.0;
    }
    Ok((out, scale))
}

/// Project a symmetric matrix to the nearest correlation matrix by
/// eigenvalue clipping: negative eigenvalues are raised to `floor`, the
/// matrix is reconstructed, and rescaled to unit diagonal.
pub fn nearest_correlation_clip(a: &Matrix, floor: f64) -> Result<Matrix, MathError> {
    let eig = symmetric_eigen(a)?;
    let n = a.rows();
    let lam = Matrix::from_fn(n, n, |i, j| {
        if i == j {
            eig.values[i].max(floor)
        } else {
            0.0
        }
    });
    let rec = crate::matmul::matmul(
        &crate::matmul::matmul(&eig.vectors, &lam),
        &eig.vectors.transpose(),
    );
    // Rescale to unit diagonal: R = D^{-1/2} rec D^{-1/2}.
    let mut out = rec.clone();
    let d: Vec<f64> = (0..n).map(|i| rec[(i, i)].sqrt()).collect();
    for i in 0..n {
        for j in 0..n {
            out[(i, j)] = rec[(i, j)] / (d[i] * d[j]);
        }
    }
    Ok(out)
}

/// Correlation matrix from a covariance matrix: `R = D⁻¹ Σ D⁻¹` with
/// `D = sqrt(diag(Σ))` (Eq. 11 of the paper).
pub fn correlation_from_covariance(sigma: &Matrix) -> Result<Matrix, MathError> {
    let n = sigma.rows();
    if sigma.cols() != n {
        return Err(MathError::NotSquare {
            rows: sigma.rows(),
            cols: sigma.cols(),
        });
    }
    let mut d = Vec::with_capacity(n);
    for i in 0..n {
        let v = sigma[(i, i)];
        if v <= 0.0 {
            return Err(MathError::NotPositiveDefinite { pivot: i, value: v });
        }
        d.push(v.sqrt());
    }
    Ok(Matrix::from_fn(n, n, |i, j| sigma[(i, j)] / (d[i] * d[j])))
}

/// Covariance matrix from a correlation matrix and per-variable standard
/// deviations: `Σ = D R D`.
pub fn covariance_from_correlation(r: &Matrix, sds: &[f64]) -> Result<Matrix, MathError> {
    let n = r.rows();
    if r.cols() != n {
        return Err(MathError::NotSquare {
            rows: r.rows(),
            cols: r.cols(),
        });
    }
    if sds.len() != n {
        return Err(MathError::DimensionMismatch {
            expected: n,
            actual: sds.len(),
            context: "covariance_from_correlation sds",
        });
    }
    Ok(Matrix::from_fn(n, n, |i, j| r[(i, j)] * sds[i] * sds[j]))
}

/// Validate that a matrix is a correlation matrix: symmetric, unit diagonal,
/// entries in `[-1, 1]`, and positive definite (optionally after a jitter
/// rescue, in which case the jittered matrix is returned).
pub fn validate_correlation(r: &Matrix) -> Result<Matrix, MathError> {
    let n = r.rows();
    if r.cols() != n {
        return Err(MathError::NotSquare {
            rows: r.rows(),
            cols: r.cols(),
        });
    }
    for i in 0..n {
        if (r[(i, i)] - 1.0).abs() > 1e-9 {
            return Err(MathError::NotPositiveDefinite {
                pivot: i,
                value: r[(i, i)],
            });
        }
        for j in 0..n {
            let v = r[(i, j)];
            if !(-1.0 - 1e-12..=1.0 + 1e-12).contains(&v) || (v - r[(j, i)]).abs() > 1e-9 {
                return Err(MathError::NotPositiveDefinite { pivot: i, value: v });
            }
        }
    }
    if is_positive_definite(r) {
        Ok(r.clone())
    } else {
        let (_, jitter) = cholesky_with_jitter(r, 1e-10, 12)?;
        let mut out = r.clone();
        for i in 0..n {
            out[(i, i)] += jitter;
        }
        nearest_correlation_clip(&out, 1e-10)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hub_column_endpoints() {
        let col = hub_first_column(10, 0.8, 0.2, 1.0);
        assert_eq!(col.len(), 10);
        assert_eq!(col[0], 1.0);
        assert!(
            (col[1] - 0.8).abs() < 1e-12,
            "first off-hub correlation is rho_max"
        );
        assert!(
            (col[9] - 0.2).abs() < 1e-12,
            "last off-hub correlation is rho_min"
        );
        // Monotone decreasing between.
        for w in col[1..].windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn hub_column_gamma_curvature() {
        // γ > 1 decays slower initially than γ = 1; γ < 1 decays faster.
        let lin = hub_first_column(12, 0.9, 0.1, 1.0);
        let slow = hub_first_column(12, 0.9, 0.1, 2.0);
        let fast = hub_first_column(12, 0.9, 0.1, 0.5);
        for i in 2..11 {
            assert!(slow[i] >= lin[i] - 1e-12, "i={i}");
            assert!(fast[i] <= lin[i] + 1e-12, "i={i}");
        }
    }

    #[test]
    fn hub_column_small_d() {
        assert_eq!(hub_first_column(0, 0.7, 0.3, 1.0), Vec::<f64>::new());
        assert_eq!(hub_first_column(1, 0.7, 0.3, 1.0), vec![1.0]);
        let c2 = hub_first_column(2, 0.7, 0.3, 1.0);
        assert_eq!(c2, vec![1.0, 0.7]);
    }

    #[test]
    fn toeplitz_structure() {
        let m = toeplitz(&[1.0, 0.5, 0.25]);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(0, 1)], 0.5);
        assert_eq!(m[(1, 0)], 0.5);
        assert_eq!(m[(0, 2)], 0.25);
        assert_eq!(m[(2, 0)], 0.25);
        assert_eq!(m[(1, 2)], 0.5);
    }

    #[test]
    fn hub_toeplitz_is_pd_for_reasonable_params() {
        for &(d, rmax, rmin) in &[(5usize, 0.7, 0.3), (20, 0.6, 0.1), (35, 0.5, 0.1)] {
            let m = hub_toeplitz(d, rmax, rmin, 1.0);
            assert!(is_positive_definite(&m), "d={d} rmax={rmax} rmin={rmin}");
        }
    }

    #[test]
    fn block_diagonal_assembly() {
        let a = Matrix::identity(2);
        let b = Matrix::filled(1, 1, 1.0);
        let m = block_diagonal(&[a, b]);
        assert_eq!(m.shape(), (3, 3));
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(2, 2)], 1.0);
        assert_eq!(m[(0, 2)], 0.0);
    }

    #[test]
    fn perturbation_preserves_pd() {
        let blocks = vec![
            hub_toeplitz(4, 0.7, 0.2, 1.0),
            hub_toeplitz(3, 0.6, 0.3, 1.5),
        ];
        let r = block_diagonal(&blocks);
        // Symmetric cross-block noise with zeros on the diagonal blocks.
        let mut noise = Matrix::zeros(7, 7);
        for i in 0..4 {
            for j in 4..7 {
                let v = 0.3 * ((i + j) as f64 * 0.37).sin();
                noise[(i, j)] = v;
                noise[(j, i)] = v;
            }
        }
        let (perturbed, scale) = perturb_preserving_pd(&r, &noise, 0.9).unwrap();
        assert!(scale > 0.0);
        assert!(is_positive_definite(&perturbed));
        // Cross-block entries became nonzero; diagonal stays 1.
        assert!(perturbed[(0, 5)].abs() > 0.0);
        for i in 0..7 {
            assert!((perturbed[(i, i)] - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn perturbation_with_zero_noise_is_identity() {
        let r = hub_toeplitz(5, 0.5, 0.2, 1.0);
        let noise = Matrix::zeros(5, 5);
        let (p, scale) = perturb_preserving_pd(&r, &noise, 0.9).unwrap();
        assert_eq!(scale, 0.0);
        assert!(p.approx_eq(&r, 1e-12));
    }

    #[test]
    fn nearest_correlation_repairs_indefinite() {
        // Start from an indefinite "correlation-like" matrix.
        let bad = Matrix::from_rows(&[
            vec![1.0, 0.9, -0.9],
            vec![0.9, 1.0, 0.9],
            vec![-0.9, 0.9, 1.0],
        ]);
        assert!(!is_positive_definite(&bad));
        let fixed = nearest_correlation_clip(&bad, 1e-8).unwrap();
        assert!(is_positive_definite(&fixed));
        for i in 0..3 {
            assert!((fixed[(i, i)] - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn covariance_correlation_roundtrip() {
        let r = hub_toeplitz(4, 0.6, 0.2, 1.0);
        let sds = [1.0, 2.0, 0.5, 3.0];
        let sigma = covariance_from_correlation(&r, &sds).unwrap();
        assert!((sigma[(1, 1)] - 4.0).abs() < 1e-12);
        let r2 = correlation_from_covariance(&sigma).unwrap();
        assert!(r2.approx_eq(&r, 1e-12));
    }

    #[test]
    fn validate_accepts_good_rejects_bad() {
        let good = hub_toeplitz(6, 0.5, 0.1, 1.0);
        assert!(validate_correlation(&good).is_ok());

        let mut bad_diag = good.clone();
        bad_diag[(0, 0)] = 0.9;
        assert!(validate_correlation(&bad_diag).is_err());

        let bad_range = Matrix::from_rows(&[vec![1.0, 1.5], vec![1.5, 1.0]]);
        assert!(validate_correlation(&bad_range).is_err());
    }
}
