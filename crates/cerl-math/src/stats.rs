//! Small statistics helpers: running moments, summary statistics, paired
//! t-tests (used for the paper's "statistically significantly decreases ↑"
//! markers).

use crate::special::normal_cdf;

/// Mean of a slice (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample variance with denominator `n - 1` (0 if fewer than 2 values).
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Welford online mean/variance accumulator.
#[derive(Debug, Clone, Default)]
pub struct RunningMoments {
    n: usize,
    mean: f64,
    m2: f64,
}

impl RunningMoments {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    pub fn count(&self) -> usize {
        self.n
    }

    /// Current mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Current sample variance (denominator `n - 1`).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Current sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// Result of a paired two-sided t-test.
#[derive(Debug, Clone, Copy)]
pub struct PairedTTest {
    /// t statistic.
    pub t: f64,
    /// Degrees of freedom (`n - 1`).
    pub dof: usize,
    /// Two-sided p-value (normal approximation to the t distribution,
    /// adequate for the ≥ 10 replications used in the experiments).
    pub p_value: f64,
    /// Mean of the paired differences `a_i - b_i`.
    pub mean_diff: f64,
}

/// Paired two-sided t-test on `a_i - b_i`.
///
/// Returns `None` when fewer than two pairs exist or the difference variance
/// is zero (in which case a t statistic is undefined; equal sequences are
/// reported as `Some` with `t = 0, p = 1`).
pub fn paired_t_test(a: &[f64], b: &[f64]) -> Option<PairedTTest> {
    assert_eq!(a.len(), b.len(), "paired_t_test: length mismatch");
    let n = a.len();
    if n < 2 {
        return None;
    }
    let diffs: Vec<f64> = a.iter().zip(b).map(|(&x, &y)| x - y).collect();
    let md = mean(&diffs);
    let sd = std_dev(&diffs);
    if sd == 0.0 {
        // Zero variance: identical sequences are maximally insignificant;
        // a constant nonzero difference is maximally significant.
        return Some(if md == 0.0 {
            PairedTTest {
                t: 0.0,
                dof: n - 1,
                p_value: 1.0,
                mean_diff: md,
            }
        } else {
            PairedTTest {
                t: md.signum() * f64::INFINITY,
                dof: n - 1,
                p_value: 0.0,
                mean_diff: md,
            }
        });
    }
    let t = md / (sd / (n as f64).sqrt());
    let p = 2.0 * (1.0 - normal_cdf(t.abs()));
    Some(PairedTTest {
        t,
        dof: n - 1,
        p_value: p.clamp(0.0, 1.0),
        mean_diff: md,
    })
}

/// Quantile of a sample via linear interpolation (type-7, as in NumPy).
///
/// `q` must be in `[0, 1]`; the input need not be sorted.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile: empty input");
    assert!((0.0..=1.0).contains(&q), "quantile: q={q} outside [0,1]");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("quantile: NaN in input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = pos - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_basics() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
    }

    #[test]
    fn welford_matches_batch() {
        let xs = [1.5, -2.0, 3.25, 0.0, 9.5, -4.75];
        let mut rm = RunningMoments::new();
        for &x in &xs {
            rm.push(x);
        }
        assert_eq!(rm.count(), xs.len());
        assert!((rm.mean() - mean(&xs)).abs() < 1e-12);
        assert!((rm.variance() - variance(&xs)).abs() < 1e-12);
    }

    #[test]
    fn t_test_detects_shift() {
        let a = [1.0, 1.1, 0.9, 1.05, 0.95, 1.0, 1.02, 0.98];
        let b: Vec<f64> = a.iter().map(|x| x + 0.5).collect();
        let r = paired_t_test(&b, &a).unwrap();
        assert!(r.p_value < 1e-6, "p={}", r.p_value);
        assert!(r.mean_diff > 0.49 && r.mean_diff < 0.51);
    }

    #[test]
    fn t_test_equal_sequences() {
        let a = [1.0, 2.0, 3.0];
        let r = paired_t_test(&a, &a).unwrap();
        assert_eq!(r.t, 0.0);
        assert_eq!(r.p_value, 1.0);
    }

    #[test]
    fn t_test_too_small() {
        assert!(paired_t_test(&[1.0], &[2.0]).is_none());
    }

    #[test]
    fn quantiles() {
        let xs = [3.0, 1.0, 2.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert!((quantile(&xs, 0.5) - 2.5).abs() < 1e-12);
    }
}
