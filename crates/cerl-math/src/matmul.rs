//! Matrix multiplication kernels.
//!
//! The workloads in this workspace are dominated by moderately sized GEMMs
//! (hundreds of rows, hundreds to a few thousand columns). The product
//! kernel is a cache-blocked microkernel: `B` is packed into contiguous
//! `KC`×`NR` column panels, and an `MR`×`NR` register tile of
//! accumulators walks the packed panel with a branch-free inner loop that
//! LLVM autovectorizes. The parallel path partitions output rows across
//! `crossbeam::scope` workers over the *same* kernel, and kicks in only
//! above a FLOP threshold so small multiplies stay allocation- and
//! thread-free.
//!
//! # Determinism contract
//!
//! For one element `c[i][j]`, the accumulation order is fixed entirely by
//! the `KC`/`NR` blocking constants: within each `KC` block of the inner
//! dimension, terms are added in ascending `p` from a fresh accumulator,
//! and block sums are added to the output in ascending block order. That
//! order does not depend on how output rows are grouped into `MR` tiles
//! or partitioned across threads, so [`matmul`], [`matmul_serial`] and
//! [`matmul_parallel`] return **bitwise-identical** results for any thread
//! count and any row partition — on finite *and* non-finite inputs (there
//! are no data-dependent skips: a `0.0 × ∞` contributes the same `NaN` in
//! every kernel).

use crate::matrix::Matrix;
use std::sync::OnceLock;

/// FLOP count (2·m·k·n) above which [`matmul`] switches to the parallel kernel.
const PARALLEL_FLOP_THRESHOLD: usize = 8_000_000;

/// Inner-dimension block: the packed `B` panel holds `KC`×[`NR`] values
/// (16 KiB) so it lives in L1 while a whole row range streams past it.
/// Part of the determinism contract — changing it changes rounding.
const KC: usize = 256;

/// Register-tile width (columns of `C` per accumulator row). Eight `f64`
/// lanes give the autovectorizer two 4-wide AVX2 vectors per row.
const NR: usize = 8;

/// Register-tile height (rows of `C` per microkernel pass). Each packed
/// `B` load is reused `MR` times; 4×[`NR`] accumulators fit the vector
/// register file. Row grouping does *not* affect rounding (see module
/// docs), so `MR` is a pure performance knob.
const MR: usize = 4;

/// Number of worker threads used by the parallel kernel.
///
/// `std::thread::available_parallelism` is a syscall; [`matmul`] sits on
/// the hottest path of both training and serving, so the value is resolved
/// once per process and cached in a `OnceLock` (the machine's core count
/// does not change under us). Public so diagnostics can report the figure
/// the kernels will actually use.
pub fn worker_threads() -> usize {
    static WORKERS: OnceLock<usize> = OnceLock::new();
    *WORKERS.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8)
    })
}

/// `A · B`, choosing the serial or parallel kernel by problem size.
///
/// Bitwise-identical to both [`matmul_serial`] and [`matmul_parallel`]
/// whichever way the size dispatch goes (see the module-level
/// determinism contract).
///
/// # Panics
/// If `a.cols() != b.rows()`.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    // panic-ok: documented API precondition; shape mismatch is a caller bug.
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul: inner dimension mismatch {:?} x {:?}",
        a.shape(),
        b.shape()
    );
    let flops = 2 * a.rows() * a.cols() * b.cols();
    if flops >= PARALLEL_FLOP_THRESHOLD && worker_threads() > 1 && a.rows() > 1 {
        matmul_parallel(a, b)
    } else {
        matmul_serial(a, b)
    }
}

/// Single-threaded product over the blocked microkernel.
pub fn matmul_serial(a: &Matrix, b: &Matrix) -> Matrix {
    // panic-ok: documented API precondition; shape mismatch is a caller bug.
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul_serial: inner dimension mismatch"
    );
    let (m, k) = a.shape();
    let n = b.cols();
    let mut out = Matrix::zeros(m, n);
    gemm_rows(a.as_slice(), k, b.as_slice(), n, out.as_mut_slice(), 0);
    out
}

/// Parallel product: partitions output rows across scoped threads, each
/// running the same blocked microkernel over its contiguous row range.
pub fn matmul_parallel(a: &Matrix, b: &Matrix) -> Matrix {
    // panic-ok: documented API precondition; shape mismatch is a caller bug.
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul_parallel: inner dimension mismatch"
    );
    matmul_partitioned(a, b, worker_threads())
}

/// Row-partitioned product over exactly `threads` workers (callers have
/// validated shapes). Separate from [`matmul_parallel`] so tests can pin
/// arbitrary partition widths and assert bitwise identity.
fn matmul_partitioned(a: &Matrix, b: &Matrix, threads: usize) -> Matrix {
    let (m, k) = a.shape();
    let n = b.cols();
    let mut out = Matrix::zeros(m, n);
    // Zero-width output: nothing to compute, and `chunks_mut(0)` below
    // would panic — the historical `b.cols() == 0` crash.
    if m == 0 || n == 0 {
        return out;
    }
    let threads = threads.clamp(1, m);
    if threads == 1 {
        gemm_rows(a.as_slice(), k, b.as_slice(), n, out.as_mut_slice(), 0);
        return out;
    }
    let bs = b.as_slice();
    let as_ = a.as_slice();

    // Partition output rows into contiguous chunks, one per worker. The
    // kernel's rounding does not depend on the partition (module docs).
    let chunk_rows = m.div_ceil(threads);
    let out_slice = out.as_mut_slice();
    crossbeam::scope(|scope| {
        for (ci, out_chunk) in out_slice.chunks_mut(chunk_rows * n).enumerate() {
            let row0 = ci * chunk_rows;
            scope.spawn(move |_| gemm_rows(as_, k, bs, n, out_chunk, row0));
        }
    })
    // panic-ok: propagating a worker panic, not originating one.
    .expect("matmul_parallel: worker thread panicked");
    out
}

/// Blocked microkernel: compute `out_rows` (rows `row0..` of `A·B`, a
/// contiguous `rows×n` slice) given row-major `A` (`as_`, width `k`) and
/// `B` (`bs`, width `n`).
///
/// Loop nest: `jj` over [`NR`]-wide column panels, `kk` over [`KC`]
/// blocks of the inner dimension. Each `B` panel is packed once into a
/// contiguous zero-padded buffer and reused for every row in the range;
/// an [`MR`]×[`NR`] accumulator tile walks it with a branch-free
/// multiply-add loop. Edge panels are zero-padded: the padding lanes
/// accumulate garbage that is never written back, keeping the hot loop
/// free of per-lane branches.
fn gemm_rows(as_: &[f64], k: usize, bs: &[f64], n: usize, out_rows: &mut [f64], row0: usize) {
    if n == 0 {
        return;
    }
    let rows = out_rows.len() / n;
    // Packed B panel: KC×NR, zero-padded on both edges. 16 KiB of stack.
    let mut bp = [0.0f64; KC * NR];
    let mut jj = 0;
    while jj < n {
        let nr = NR.min(n - jj);
        let mut kk = 0;
        while kk < k {
            let kc = KC.min(k - kk);
            pack_b_panel(bs, n, kk, kc, jj, nr, &mut bp);

            let mut i = 0;
            while i + MR <= rows {
                let a_rows: [&[f64]; MR] = std::array::from_fn(|r| {
                    // panic-ok: row ranges in-bounds — (row0+i+MR-1)*k+kk+kc <= as_.len() by loop bounds.
                    &as_[(row0 + i + r) * k + kk..(row0 + i + r) * k + kk + kc]
                });
                let mut acc = [[0.0f64; NR]; MR];
                for (p, bpp) in bp.chunks_exact(NR).take(kc).enumerate() {
                    for r in 0..MR {
                        // panic-ok: p < kc == a_rows[r].len(); r < MR; const-bounded tiles.
                        let av = a_rows[r][p];
                        for t in 0..NR {
                            // panic-ok: r < MR, t < NR — const-bounded accumulator tile.
                            acc[r][t] = fma(av, bpp[t], acc[r][t]);
                        }
                    }
                }
                for r in 0..MR {
                    // panic-ok: output row slice in-bounds — (i+r)*n+jj+nr <= out_rows.len() by loop bounds.
                    let orow = &mut out_rows[(i + r) * n + jj..(i + r) * n + jj + nr];
                    // panic-ok: r < MR — const-bounded accumulator tile.
                    for (o, &v) in orow.iter_mut().zip(acc[r].iter()) {
                        *o += v;
                    }
                }
                i += MR;
            }
            while i < rows {
                // panic-ok: row range in-bounds — (row0+i)*k+kk+kc <= as_.len() by loop bounds.
                let arow = &as_[(row0 + i) * k + kk..(row0 + i) * k + kk + kc];
                let mut acc = [0.0f64; NR];
                for (&av, bpp) in arow.iter().zip(bp.chunks_exact(NR)) {
                    for t in 0..NR {
                        // panic-ok: t < NR — const-bounded accumulator tile.
                        acc[t] = fma(av, bpp[t], acc[t]);
                    }
                }
                // panic-ok: output row slice in-bounds — i*n+jj+nr <= out_rows.len() by loop bounds.
                let orow = &mut out_rows[i * n + jj..i * n + jj + nr];
                for (o, &v) in orow.iter_mut().zip(acc.iter()) {
                    *o += v;
                }
                i += 1;
            }
            kk += KC;
        }
        jj += NR;
    }
}

/// Fused multiply-add `a·b + c` when the target has hardware FMA, plain
/// multiply-add otherwise.
///
/// Compile-time selection: with the `fma` target feature, `mul_add`
/// lowers to one `vfmadd` instruction (one rounding, twice the FLOP
/// density); without it, `mul_add` would fall back to a libm call per
/// element, so the separate multiply-and-add is kept. Every product
/// kernel goes through this one helper, so serial/parallel/auto stay
/// bitwise-identical *within* a build whichever way the cfg resolves.
#[inline(always)]
fn fma(a: f64, b: f64, c: f64) -> f64 {
    #[cfg(target_feature = "fma")]
    {
        a.mul_add(b, c)
    }
    #[cfg(not(target_feature = "fma"))]
    {
        a * b + c
    }
}

/// Pack `B[kk..kk+kc, jj..jj+nr]` into `bp` as `kc` contiguous rows of
/// [`NR`], zero-padding columns `nr..NR` so the microkernel never
/// branches on the panel edge.
#[inline]
fn pack_b_panel(bs: &[f64], n: usize, kk: usize, kc: usize, jj: usize, nr: usize, bp: &mut [f64]) {
    for (p, dst) in bp.chunks_exact_mut(NR).take(kc).enumerate() {
        // panic-ok: source row slice in-bounds — (kk+p)*n+jj+nr <= bs.len() by caller's loop bounds.
        let src = &bs[(kk + p) * n + jj..(kk + p) * n + jj + nr];
        // panic-ok: nr <= NR == dst.len() by construction.
        dst[..nr].copy_from_slice(src);
        for d in dst.iter_mut().skip(nr) {
            *d = 0.0;
        }
    }
}

/// `Aᵀ · B` without materializing the transpose.
pub fn matmul_at_b(a: &Matrix, b: &Matrix) -> Matrix {
    // panic-ok: documented API precondition; shape mismatch is a caller bug.
    assert_eq!(
        a.rows(),
        b.rows(),
        "matmul_at_b: row mismatch {:?} vs {:?}",
        a.shape(),
        b.shape()
    );
    let (n_obs, m) = a.shape();
    let n = b.cols();
    let mut out = Matrix::zeros(m, n);
    for r in 0..n_obs {
        let arow = a.row(r);
        let brow = b.row(r);
        for (i, &av) in arow.iter().enumerate() {
            let orow = out.row_mut(i);
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
    out
}

/// `A · Bᵀ` without materializing the transpose.
pub fn matmul_a_bt(a: &Matrix, b: &Matrix) -> Matrix {
    // panic-ok: documented API precondition; shape mismatch is a caller bug.
    assert_eq!(
        a.cols(),
        b.cols(),
        "matmul_a_bt: column mismatch {:?} vs {:?}",
        a.shape(),
        b.shape()
    );
    let m = a.rows();
    let n = b.rows();
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        let arow = a.row(i);
        let orow = out.row_mut(i);
        for (j, o) in orow.iter_mut().enumerate() {
            let brow = b.row(j);
            *o = dot(arow, brow);
        }
    }
    out
}

/// Matrix–vector product `A · x`.
pub fn matvec(a: &Matrix, x: &[f64]) -> Vec<f64> {
    // panic-ok: documented API precondition; shape mismatch is a caller bug.
    assert_eq!(a.cols(), x.len(), "matvec: dimension mismatch");
    // Row indexing, not `iter_rows`: for an `m×0` matrix the chunking
    // iterator yields no rows at all, while the product is `m` zeros.
    (0..a.rows()).map(|i| dot(a.row(i), x)).collect()
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0;
                for p in 0..a.cols() {
                    s += a[(i, p)] * b[(p, j)];
                }
                out[(i, j)] = s;
            }
        }
        out
    }

    fn pseudo_random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        // Tiny SplitMix64 stream; deterministic, no external deps in this crate.
        let mut state = seed;
        Matrix::from_fn(rows, cols, |_, _| {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            (z as f64 / u64::MAX as f64) * 2.0 - 1.0
        })
    }

    /// Bitwise equality over raw f64 bits — distinguishes NaN payloads
    /// and `0.0` vs `-0.0`, which `==`-based comparison cannot.
    fn bits_eq(a: &Matrix, b: &Matrix) -> bool {
        a.shape() == b.shape()
            && a.as_slice()
                .iter()
                .zip(b.as_slice())
                .all(|(x, y)| x.to_bits() == y.to_bits())
    }

    #[test]
    fn small_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = matmul(&a, &b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let a = pseudo_random_matrix(7, 7, 1);
        let i = Matrix::identity(7);
        assert!(matmul(&a, &i).approx_eq(&a, 1e-12));
        assert!(matmul(&i, &a).approx_eq(&a, 1e-12));
    }

    #[test]
    fn serial_matches_naive() {
        let a = pseudo_random_matrix(13, 17, 2);
        let b = pseudo_random_matrix(17, 9, 3);
        assert!(matmul_serial(&a, &b).approx_eq(&naive(&a, &b), 1e-10));
    }

    #[test]
    fn blocked_matches_naive_across_edge_shapes() {
        // Shapes straddling every blocking edge: sub-tile, exact-tile,
        // tile+1, and inner dimensions around the KC boundary.
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (4, 8, 8),
            (5, 9, 17),
            (MR, KC, NR),
            (MR + 1, KC + 1, NR + 1),
            (2 * MR + 3, 2 * KC + 5, 2 * NR + 3),
            (33, 300, 19),
        ] {
            let a = pseudo_random_matrix(m, k, (m * 31 + k) as u64);
            let b = pseudo_random_matrix(k, n, (k * 17 + n) as u64);
            let got = matmul_serial(&a, &b);
            let want = naive(&a, &b);
            assert!(
                got.approx_eq(&want, 1e-10),
                "mismatch at shape ({m},{k},{n})"
            );
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let a = pseudo_random_matrix(64, 96, 4);
        let b = pseudo_random_matrix(96, 48, 5);
        let s = matmul_serial(&a, &b);
        let p = matmul_parallel(&a, &b);
        assert!(bits_eq(&p, &s), "serial and parallel must agree bitwise");
    }

    #[test]
    fn parallel_handles_ragged_chunks() {
        // Row count not divisible by thread count exercises the tail chunk.
        let a = pseudo_random_matrix(37, 50, 6);
        let b = pseudo_random_matrix(50, 23, 7);
        assert!(bits_eq(&matmul_parallel(&a, &b), &matmul_serial(&a, &b)));
    }

    #[test]
    fn any_partition_is_bitwise_identical() {
        // The determinism contract: the row partition (thread count) must
        // not change a single bit of the product.
        let a = pseudo_random_matrix(41, 67, 20);
        let b = pseudo_random_matrix(67, 29, 21);
        let reference = matmul_serial(&a, &b);
        for threads in [1usize, 2, 3, 5, 8, 16, 41, 100] {
            let got = matmul_partitioned(&a, &b, threads);
            assert!(bits_eq(&got, &reference), "partition {threads} diverged");
        }
    }

    #[test]
    fn nonfinite_inputs_agree_bitwise_across_kernels() {
        // Property test: sprinkle inf / -inf / NaN / -0.0 into both
        // operands; every kernel must produce bitwise-identical output
        // (no data-dependent skip may turn a NaN into a finite value).
        for case in 0..64u64 {
            let m = 1 + (case as usize % 7) * 3;
            let k = 1 + (case as usize / 7 % 5) * 29;
            let n = 1 + (case as usize / 35 % 4) * 5;
            let mut a = pseudo_random_matrix(m, k, 1000 + case);
            let mut b = pseudo_random_matrix(k, n, 2000 + case);
            let specials = [f64::INFINITY, f64::NEG_INFINITY, f64::NAN, -0.0, 0.0];
            let mut s = 0xDEADBEEFu64.wrapping_mul(case + 1);
            for _ in 0..(2 + case % 6) {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let idx = (s >> 33) as usize;
                let which = (s >> 29) as usize % specials.len();
                a.as_mut_slice()[idx % (m * k)] = specials[which];
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let idx = (s >> 33) as usize;
                b.as_mut_slice()[idx % (k * n)] = specials[which];
            }
            let serial = matmul_serial(&a, &b);
            assert!(
                bits_eq(&matmul(&a, &b), &serial),
                "auto vs serial diverged on non-finite case {case}"
            );
            for threads in [2usize, 3, 8] {
                assert!(
                    bits_eq(&matmul_partitioned(&a, &b, threads), &serial),
                    "partition {threads} vs serial diverged on non-finite case {case}"
                );
            }
            // A 0·∞ product must surface as NaN, never be skipped away.
            if a.as_slice().iter().any(|v| v.is_nan() || v.is_infinite())
                || b.as_slice().iter().any(|v| v.is_nan() || v.is_infinite())
            {
                // (Presence of NaN in the output depends on placement;
                // the bitwise agreement above is the actual contract.)
            }
        }
    }

    #[test]
    fn zero_times_infinity_is_nan_not_skipped() {
        // a row contains an explicit 0.0 meeting an inf in B: the
        // historical `av == 0.0` skip silently produced 0.0 here.
        let a = Matrix::from_rows(&[vec![0.0, 1.0]]);
        let b = Matrix::from_rows(&[vec![f64::INFINITY], vec![2.0]]);
        for out in [
            matmul(&a, &b),
            matmul_serial(&a, &b),
            matmul_partitioned(&a, &b, 2),
        ] {
            assert!(out[(0, 0)].is_nan(), "0·∞ must propagate NaN, got {out:?}");
        }
        // Same hazard in Aᵀ·B.
        let at = Matrix::from_rows(&[vec![0.0], vec![1.0]]);
        let c = matmul_at_b(&at, &b);
        assert!(c[(0, 0)].is_nan(), "Aᵀ·B must propagate NaN, got {c:?}");
    }

    #[test]
    fn at_b_matches_explicit_transpose() {
        let a = pseudo_random_matrix(19, 6, 8);
        let b = pseudo_random_matrix(19, 11, 9);
        let expect = naive(&a.transpose(), &b);
        assert!(matmul_at_b(&a, &b).approx_eq(&expect, 1e-10));
    }

    #[test]
    fn a_bt_matches_explicit_transpose() {
        let a = pseudo_random_matrix(12, 10, 10);
        let b = pseudo_random_matrix(15, 10, 11);
        let expect = naive(&a, &b.transpose());
        assert!(matmul_a_bt(&a, &b).approx_eq(&expect, 1e-10));
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = pseudo_random_matrix(9, 14, 12);
        let x: Vec<f64> = (0..14).map(|i| i as f64 * 0.25 - 1.0).collect();
        let via_mm = matmul(&a, &Matrix::col_vector(&x));
        let v = matvec(&a, &x);
        for (i, &vi) in v.iter().enumerate() {
            assert!((vi - via_mm[(i, 0)]).abs() < 1e-12);
        }
    }

    #[test]
    fn worker_threads_is_cached_and_sane() {
        let first = worker_threads();
        assert!((1..=8).contains(&first));
        // Cached: repeated calls return the same value without re-querying.
        for _ in 0..1000 {
            assert_eq!(worker_threads(), first);
        }
    }

    #[test]
    fn zero_dimensions_across_all_variants() {
        // m == 0, k == 0, n == 0 for every entry point — including the
        // parallel kernel, whose `chunks_mut(chunk_rows * n)` historically
        // panicked when `n == 0`.
        let cases = [(0usize, 5usize, 3usize), (4, 0, 3), (4, 5, 0), (0, 0, 0)];
        for &(m, k, n) in &cases {
            let a = pseudo_random_matrix(m, k, 40);
            let b = pseudo_random_matrix(k, n, 41);
            for c in [
                matmul(&a, &b),
                matmul_serial(&a, &b),
                matmul_parallel(&a, &b),
                matmul_partitioned(&a, &b, 4),
            ] {
                assert_eq!(c.shape(), (m, n), "shape ({m},{k},{n})");
                assert!(c.as_slice().iter().all(|&v| v == 0.0));
            }
            // Aᵀ·B with zero dims: a is (obs, m'), b is (obs, n').
            let at = pseudo_random_matrix(k, m, 42);
            let bt = pseudo_random_matrix(k, n, 43);
            let c = matmul_at_b(&at, &bt);
            assert_eq!(c.shape(), (m, n));
            // A·Bᵀ with zero dims: a is (m', k'), b is (n', k').
            let aa = pseudo_random_matrix(m, k, 44);
            let bb = pseudo_random_matrix(n, k, 45);
            let c = matmul_a_bt(&aa, &bb);
            assert_eq!(c.shape(), (m, n));
        }
        // The literal historical panic: many rows, zero output columns,
        // via the public parallel entry point.
        let a = pseudo_random_matrix(64, 8, 46);
        let b = pseudo_random_matrix(8, 0, 47);
        let c = matmul_parallel(&a, &b);
        assert_eq!(c.shape(), (64, 0));
    }

    #[test]
    fn matvec_zero_dims() {
        let a = Matrix::zeros(0, 4);
        let x = [1.0, 2.0, 3.0, 4.0];
        assert!(matvec(&a, &x).is_empty());
        let a = Matrix::zeros(3, 0);
        assert_eq!(matvec(&a, &[]), vec![0.0; 3]);
    }
}
