//! Matrix multiplication kernels.
//!
//! The workloads in this workspace are dominated by moderately sized GEMMs
//! (hundreds of rows, hundreds to a few thousand columns), so we provide a
//! cache-friendly single-threaded `ikj` kernel plus a row-partitioned
//! parallel path built on `crossbeam::scope`. The parallel path kicks in
//! only above a FLOP threshold so small multiplies stay allocation- and
//! thread-free.

use crate::matrix::Matrix;
use std::sync::OnceLock;

/// FLOP count (2·m·k·n) above which [`matmul`] switches to the parallel kernel.
const PARALLEL_FLOP_THRESHOLD: usize = 8_000_000;

/// Number of worker threads used by the parallel kernel.
///
/// `std::thread::available_parallelism` is a syscall; [`matmul`] sits on
/// the hottest path of both training and serving, so the value is resolved
/// once per process and cached in a `OnceLock` (the machine's core count
/// does not change under us). Public so diagnostics can report the figure
/// the kernels will actually use.
pub fn worker_threads() -> usize {
    static WORKERS: OnceLock<usize> = OnceLock::new();
    *WORKERS.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8)
    })
}

/// `A · B`, choosing the serial or parallel kernel by problem size.
///
/// # Panics
/// If `a.cols() != b.rows()`.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul: inner dimension mismatch {:?} x {:?}",
        a.shape(),
        b.shape()
    );
    let flops = 2 * a.rows() * a.cols() * b.cols();
    if flops >= PARALLEL_FLOP_THRESHOLD && worker_threads() > 1 && a.rows() > 1 {
        matmul_parallel(a, b)
    } else {
        matmul_serial(a, b)
    }
}

/// Single-threaded `ikj` kernel (row-major friendly, autovectorizes).
pub fn matmul_serial(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul_serial: inner dimension mismatch"
    );
    let (m, k) = a.shape();
    let n = b.cols();
    let mut out = Matrix::zeros(m, n);
    let bs = b.as_slice();
    for i in 0..m {
        let arow = a.row(i);
        let orow = out.row_mut(i);
        for (p, &av) in arow.iter().enumerate().take(k) {
            if av == 0.0 {
                continue;
            }
            let brow = &bs[p * n..(p + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
    out
}

/// Parallel kernel: splits rows of `A` across scoped threads.
pub fn matmul_parallel(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul_parallel: inner dimension mismatch"
    );
    let (m, k) = a.shape();
    let n = b.cols();
    let threads = worker_threads().min(m.max(1));
    let mut out = Matrix::zeros(m, n);
    let bs = b.as_slice();
    let as_ = a.as_slice();

    // Partition output rows into contiguous chunks, one per worker.
    let chunk_rows = m.div_ceil(threads);
    let out_slice = out.as_mut_slice();
    crossbeam::scope(|scope| {
        for (ci, out_chunk) in out_slice.chunks_mut(chunk_rows * n).enumerate() {
            let row0 = ci * chunk_rows;
            scope.spawn(move |_| {
                let rows_here = out_chunk.len() / n;
                for local_i in 0..rows_here {
                    let i = row0 + local_i;
                    let arow = &as_[i * k..(i + 1) * k];
                    let orow = &mut out_chunk[local_i * n..(local_i + 1) * n];
                    for (p, &av) in arow.iter().enumerate() {
                        if av == 0.0 {
                            continue;
                        }
                        let brow = &bs[p * n..(p + 1) * n];
                        for (o, &bv) in orow.iter_mut().zip(brow) {
                            *o += av * bv;
                        }
                    }
                }
            });
        }
    })
    .expect("matmul_parallel: worker thread panicked");
    out
}

/// `Aᵀ · B` without materializing the transpose.
pub fn matmul_at_b(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.rows(),
        b.rows(),
        "matmul_at_b: row mismatch {:?} vs {:?}",
        a.shape(),
        b.shape()
    );
    let (n_obs, m) = a.shape();
    let n = b.cols();
    let mut out = Matrix::zeros(m, n);
    for r in 0..n_obs {
        let arow = a.row(r);
        let brow = b.row(r);
        for (i, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let orow = out.row_mut(i);
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
    out
}

/// `A · Bᵀ` without materializing the transpose.
pub fn matmul_a_bt(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.cols(),
        "matmul_a_bt: column mismatch {:?} vs {:?}",
        a.shape(),
        b.shape()
    );
    let m = a.rows();
    let n = b.rows();
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        let arow = a.row(i);
        let orow = out.row_mut(i);
        for (j, o) in orow.iter_mut().enumerate() {
            let brow = b.row(j);
            *o = dot(arow, brow);
        }
    }
    out
}

/// Matrix–vector product `A · x`.
pub fn matvec(a: &Matrix, x: &[f64]) -> Vec<f64> {
    assert_eq!(a.cols(), x.len(), "matvec: dimension mismatch");
    a.iter_rows().map(|row| dot(row, x)).collect()
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0;
                for p in 0..a.cols() {
                    s += a[(i, p)] * b[(p, j)];
                }
                out[(i, j)] = s;
            }
        }
        out
    }

    fn pseudo_random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        // Tiny SplitMix64 stream; deterministic, no external deps in this crate.
        let mut state = seed;
        Matrix::from_fn(rows, cols, |_, _| {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            (z as f64 / u64::MAX as f64) * 2.0 - 1.0
        })
    }

    #[test]
    fn small_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = matmul(&a, &b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let a = pseudo_random_matrix(7, 7, 1);
        let i = Matrix::identity(7);
        assert!(matmul(&a, &i).approx_eq(&a, 1e-12));
        assert!(matmul(&i, &a).approx_eq(&a, 1e-12));
    }

    #[test]
    fn serial_matches_naive() {
        let a = pseudo_random_matrix(13, 17, 2);
        let b = pseudo_random_matrix(17, 9, 3);
        assert!(matmul_serial(&a, &b).approx_eq(&naive(&a, &b), 1e-10));
    }

    #[test]
    fn parallel_matches_serial() {
        let a = pseudo_random_matrix(64, 96, 4);
        let b = pseudo_random_matrix(96, 48, 5);
        let s = matmul_serial(&a, &b);
        let p = matmul_parallel(&a, &b);
        assert!(p.approx_eq(&s, 1e-10));
    }

    #[test]
    fn parallel_handles_ragged_chunks() {
        // Row count not divisible by thread count exercises the tail chunk.
        let a = pseudo_random_matrix(37, 50, 6);
        let b = pseudo_random_matrix(50, 23, 7);
        assert!(matmul_parallel(&a, &b).approx_eq(&matmul_serial(&a, &b), 1e-10));
    }

    #[test]
    fn at_b_matches_explicit_transpose() {
        let a = pseudo_random_matrix(19, 6, 8);
        let b = pseudo_random_matrix(19, 11, 9);
        let expect = matmul_serial(&a.transpose(), &b);
        assert!(matmul_at_b(&a, &b).approx_eq(&expect, 1e-10));
    }

    #[test]
    fn a_bt_matches_explicit_transpose() {
        let a = pseudo_random_matrix(12, 10, 10);
        let b = pseudo_random_matrix(15, 10, 11);
        let expect = matmul_serial(&a, &b.transpose());
        assert!(matmul_a_bt(&a, &b).approx_eq(&expect, 1e-10));
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = pseudo_random_matrix(9, 14, 12);
        let x: Vec<f64> = (0..14).map(|i| i as f64 * 0.25 - 1.0).collect();
        let via_mm = matmul(&a, &Matrix::col_vector(&x));
        let v = matvec(&a, &x);
        for (i, &vi) in v.iter().enumerate() {
            assert!((vi - via_mm[(i, 0)]).abs() < 1e-12);
        }
    }

    #[test]
    fn worker_threads_is_cached_and_sane() {
        let first = worker_threads();
        assert!((1..=8).contains(&first));
        // Cached: repeated calls return the same value without re-querying.
        for _ in 0..1000 {
            assert_eq!(worker_threads(), first);
        }
    }

    #[test]
    fn empty_dimensions() {
        let a = Matrix::zeros(0, 5);
        let b = Matrix::zeros(5, 3);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), (0, 3));

        let a2 = Matrix::zeros(4, 0);
        let b2 = Matrix::zeros(0, 3);
        let c2 = matmul(&a2, &b2);
        assert_eq!(c2.shape(), (4, 3));
        assert!(c2.as_slice().iter().all(|&v| v == 0.0));
    }
}
