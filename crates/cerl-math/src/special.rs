//! Special functions: error function, standard-normal PDF/CDF/quantile,
//! log-gamma.
//!
//! The synthetic-data generator uses the standard normal CDF `Φ` as the
//! probit link for treatment propensities (paper §IV.C), and `cerl-rand`
//! uses `ln_gamma` in Dirichlet/Gamma density tests.

use std::f64::consts::PI;

/// Error function `erf(x)`, accurate to ~1e-15.
///
/// Uses the Maclaurin series for small `|x|` and the continued-fraction
/// expansion of `erfc` for large `|x|`.
pub fn erf(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    let ax = x.abs();
    if ax < 3.0 {
        // erf(x) = 2/√π · Σ_{n≥0} (-1)^n x^{2n+1} / (n! (2n+1))
        let x2 = x * x;
        let mut term = x;
        let mut sum = x;
        let mut n = 1.0;
        loop {
            term *= -x2 / n;
            let add = term / (2.0 * n + 1.0);
            sum += add;
            if add.abs() < 1e-17 * sum.abs().max(1e-300) {
                break;
            }
            n += 1.0;
            if n > 200.0 {
                break;
            }
        }
        (2.0 / PI.sqrt()) * sum
    } else {
        let sign = x.signum();
        sign * (1.0 - erfc_large(ax))
    }
}

/// Complementary error function `erfc(x) = 1 - erf(x)`.
pub fn erfc(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    if x.abs() < 3.0 {
        1.0 - erf(x)
    } else if x > 0.0 {
        erfc_large(x)
    } else {
        2.0 - erfc_large(-x)
    }
}

/// Continued-fraction `erfc` for `x ≥ 3` (Lentz's algorithm).
fn erfc_large(x: f64) -> f64 {
    debug_assert!(x >= 3.0);
    // erfc(x) = exp(-x²)/(x√π) · 1/(1 + 1/(2x²)/(1 + 2/(2x²)/(1 + …)))
    let x2 = 2.0 * x * x;
    let tiny = 1e-300;
    let mut f = tiny;
    let mut c = f;
    let mut d = 0.0;
    let mut n = 0usize;
    loop {
        // a_1 = 1; a_k = (k-1)/x2 for k ≥ 2; b_k = 1.
        let a = if n == 0 { 1.0 } else { n as f64 / x2 };
        d = 1.0 + a * d;
        if d.abs() < tiny {
            d = tiny;
        }
        c = 1.0 + a / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        let delta = c * d;
        f *= delta;
        if (delta - 1.0).abs() < 1e-16 {
            break;
        }
        n += 1;
        if n > 300 {
            break;
        }
    }
    (-x * x).exp() / (x * PI.sqrt()) * f
}

/// Standard normal probability density `φ(x)`.
pub fn normal_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * PI).sqrt()
}

/// Standard normal cumulative distribution `Φ(x)`.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Inverse standard normal CDF (quantile function).
///
/// Acklam's rational approximation refined with one Halley step, giving
/// roughly machine precision on `(0, 1)`. Returns `±∞` at the endpoints and
/// `NaN` outside `[0, 1]`.
pub fn normal_quantile(p: f64) -> f64 {
    if p.is_nan() || !(0.0..=1.0).contains(&p) {
        return f64::NAN;
    }
    if p == 0.0 {
        return f64::NEG_INFINITY;
    }
    if p == 1.0 {
        return f64::INFINITY;
    }

    // Acklam coefficients (kept verbatim from the published approximation).
    #[allow(clippy::excessive_precision)]
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Natural log of the gamma function (Lanczos approximation, g = 7, n = 9).
pub fn ln_gamma(x: f64) -> f64 {
    const G: f64 = 7.0;
    #[allow(clippy::excessive_precision)]
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1-x) = π / sin(πx)
        PI.ln() - (PI * x).sin().abs().ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let mut a = COEF[0];
        let t = x + G + 0.5;
        for (i, &c) in COEF.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        0.5 * (2.0 * PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
    }
}

/// Numerically stable `log(1 + exp(x))` (softplus).
pub fn log1p_exp(x: f64) -> f64 {
    if x > 35.0 {
        x
    } else if x < -35.0 {
        x.exp()
    } else {
        x.exp().ln_1p()
    }
}

/// Logistic sigmoid `1 / (1 + e^{-x})`, stable for large `|x|`.
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_reference_values() {
        // Reference values from Abramowitz & Stegun / mpmath.
        let cases = [
            (0.0, 0.0),
            (0.5, 0.5204998778130465),
            (1.0, 0.8427007929497149),
            (2.0, 0.9953222650189527),
            (3.0, 0.9999779095030014),
            (4.0, 0.9999999845827421),
        ];
        for (x, want) in cases {
            assert!(
                (erf(x) - want).abs() < 1e-12,
                "erf({x}) = {} want {want}",
                erf(x)
            );
            assert!((erf(-x) + want).abs() < 1e-12, "erf odd symmetry at {x}");
        }
    }

    #[test]
    fn erfc_complements_erf() {
        for &x in &[-5.0, -2.0, -0.3, 0.0, 0.7, 2.9, 3.5, 6.0] {
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12, "x={x}");
        }
    }

    #[test]
    fn erfc_tail_accuracy() {
        // erfc(5) from mpmath.
        assert!((erfc(5.0) - 1.5374597944280347e-12).abs() < 1e-24);
    }

    #[test]
    fn normal_cdf_reference_values() {
        let cases = [
            (0.0, 0.5),
            (1.0, 0.8413447460685429),
            (-1.0, 0.15865525393145707),
            (1.959963984540054, 0.975),
            (-2.326347874040841, 0.01),
        ];
        for (x, want) in cases {
            assert!((normal_cdf(x) - want).abs() < 1e-12, "Φ({x})");
        }
    }

    #[test]
    fn quantile_inverts_cdf() {
        for &p in &[
            1e-10,
            1e-4,
            0.01,
            0.1,
            0.25,
            0.5,
            0.75,
            0.9,
            0.99,
            0.9999,
            1.0 - 1e-10,
        ] {
            let x = normal_quantile(p);
            assert!(
                (normal_cdf(x) - p).abs() < 1e-12 * p.max(1e-3),
                "p={p}, x={x}"
            );
        }
        assert_eq!(normal_quantile(0.0), f64::NEG_INFINITY);
        assert_eq!(normal_quantile(1.0), f64::INFINITY);
        assert!(normal_quantile(-0.1).is_nan());
        assert!(normal_quantile(1.1).is_nan());
    }

    #[test]
    fn pdf_is_normalized_ish() {
        // Trapezoid integral over [-8, 8] should be ≈ 1.
        let n = 16_000;
        let h = 16.0 / n as f64;
        let mut s = 0.0;
        for i in 0..=n {
            let x = -8.0 + i as f64 * h;
            let w = if i == 0 || i == n { 0.5 } else { 1.0 };
            s += w * normal_pdf(x);
        }
        assert!((s * h - 1.0).abs() < 1e-10);
    }

    #[test]
    fn ln_gamma_reference_values() {
        // Γ(1)=1, Γ(2)=1, Γ(5)=24, Γ(0.5)=√π
        assert!(ln_gamma(1.0).abs() < 1e-12);
        assert!(ln_gamma(2.0).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24.0_f64.ln()).abs() < 1e-11);
        assert!((ln_gamma(0.5) - PI.sqrt().ln()).abs() < 1e-11);
        // Recurrence Γ(x+1) = x Γ(x)
        for &x in &[0.3, 1.7, 4.2, 9.9] {
            assert!(
                (ln_gamma(x + 1.0) - (ln_gamma(x) + x.ln())).abs() < 1e-10,
                "x={x}"
            );
        }
    }

    #[test]
    fn sigmoid_and_softplus_stability() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-15);
        assert!(sigmoid(1000.0) <= 1.0);
        assert!(sigmoid(-1000.0) >= 0.0);
        assert!((sigmoid(3.0) + sigmoid(-3.0) - 1.0).abs() < 1e-14);
        assert_eq!(log1p_exp(1000.0), 1000.0);
        assert!(log1p_exp(-1000.0) >= 0.0);
        assert!((log1p_exp(0.0) - 2.0_f64.ln()).abs() < 1e-14);
    }
}
