//! Dense row-major `f64` matrix.
//!
//! Units (observations) are rows throughout the workspace; features are
//! columns. The type is deliberately small: it owns a `Vec<f64>` and exposes
//! the operations the rest of the workspace needs, without attempting to be
//! a general-purpose linear-algebra library.
//!
//! Dimension mismatches are programmer errors and panic with a descriptive
//! message; numerically fallible routines (e.g. Cholesky) live in
//! [`crate::decomp`] and return `Result`.

use std::fmt;
use std::ops::{Index, IndexMut};

mod serde_impl;

/// Dense row-major matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create a matrix of ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self::filled(rows, cols, 1.0)
    }

    /// Create a matrix where every entry is `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Create the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a row-major data vector.
    ///
    /// # Panics
    /// If `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: data length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Build from nested row slices.
    ///
    /// # Panics
    /// If rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        if rows.is_empty() {
            return Self::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(
                r.len(),
                cols,
                "Matrix::from_rows: row {i} has length {}, expected {cols}",
                r.len()
            );
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Build with a generator function over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// A single-row matrix from a slice.
    pub fn row_vector(v: &[f64]) -> Self {
        Self {
            rows: 1,
            cols: v.len(),
            data: v.to_vec(),
        }
    }

    /// A single-column matrix from a slice.
    pub fn col_vector(v: &[f64]) -> Self {
        Self {
            rows: v.len(),
            cols: 1,
            data: v.to_vec(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw row-major data slice.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw row-major data slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume into the underlying row-major vector.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(
            i < self.rows,
            "row index {i} out of bounds ({} rows)",
            self.rows
        );
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(
            i < self.rows,
            "row index {i} out of bounds ({} rows)",
            self.rows
        );
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy column `j` into a new vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(
            j < self.cols,
            "col index {j} out of bounds ({} cols)",
            self.cols
        );
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Iterator over row slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Apply `f` elementwise, returning a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Apply `f` elementwise in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Elementwise combination of two equally shaped matrices.
    ///
    /// # Panics
    /// On shape mismatch.
    pub fn zip_map(&self, other: &Self, f: impl Fn(f64, f64) -> f64) -> Self {
        self.assert_same_shape(other, "zip_map");
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// `self + other`.
    pub fn add(&self, other: &Self) -> Self {
        self.assert_same_shape(other, "add");
        self.zip_map(other, |a, b| a + b)
    }

    /// `self - other`.
    pub fn sub(&self, other: &Self) -> Self {
        self.assert_same_shape(other, "sub");
        self.zip_map(other, |a, b| a - b)
    }

    /// Hadamard (elementwise) product.
    pub fn hadamard(&self, other: &Self) -> Self {
        self.assert_same_shape(other, "hadamard");
        self.zip_map(other, |a, b| a * b)
    }

    /// `self * s` elementwise.
    pub fn scale(&self, s: f64) -> Self {
        self.map(|v| v * s)
    }

    /// `self += other` in place.
    pub fn add_assign(&mut self, other: &Self) {
        self.assert_same_shape(other, "add_assign");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self += s * other` in place (axpy).
    pub fn axpy(&mut self, s: f64, other: &Self) {
        self.assert_same_shape(other, "axpy");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += s * b;
        }
    }

    /// `self *= s` in place.
    pub fn scale_inplace(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Set all entries to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Self {
        let mut out = Self::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            let row = self.row(i);
            for (j, &v) in row.iter().enumerate() {
                out.data[j * self.rows + i] = v;
            }
        }
        out
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of all entries (0 for an empty matrix).
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry (0 for an empty matrix).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }

    /// Column means as a vector of length `cols`.
    pub fn col_means(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        if self.rows == 0 {
            return out;
        }
        for row in self.iter_rows() {
            for (o, &v) in out.iter_mut().zip(row) {
                *o += v;
            }
        }
        let n = self.rows as f64;
        out.iter_mut().for_each(|v| *v /= n);
        out
    }

    /// Column sample standard deviations (denominator `n - 1`; 0 if fewer than 2 rows).
    pub fn col_stds(&self) -> Vec<f64> {
        let means = self.col_means();
        let mut out = vec![0.0; self.cols];
        if self.rows < 2 {
            return out;
        }
        for row in self.iter_rows() {
            for ((o, &v), &m) in out.iter_mut().zip(row).zip(&means) {
                let d = v - m;
                *o += d * d;
            }
        }
        let n = (self.rows - 1) as f64;
        out.iter_mut().for_each(|v| *v = (*v / n).sqrt());
        out
    }

    /// Mean of each row, as a vector of length `rows`.
    pub fn row_means(&self) -> Vec<f64> {
        self.iter_rows()
            .map(|r| {
                if r.is_empty() {
                    0.0
                } else {
                    r.iter().sum::<f64>() / r.len() as f64
                }
            })
            .collect()
    }

    /// New matrix containing the given rows, in order (rows may repeat).
    ///
    /// # Panics
    /// If any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Self {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            assert!(
                i < self.rows,
                "select_rows: index {i} out of bounds ({} rows)",
                self.rows
            );
            data.extend_from_slice(self.row(i));
        }
        Self {
            rows: indices.len(),
            cols: self.cols,
            data,
        }
    }

    /// Contiguous row range `[start, end)` as a new matrix — a single
    /// memcpy for row-major data, unlike the gather in
    /// [`Matrix::select_rows`].
    ///
    /// # Panics
    /// If `start > end` or `end > rows`.
    pub fn slice_rows(&self, start: usize, end: usize) -> Self {
        assert!(
            start <= end && end <= self.rows,
            "slice_rows: invalid range {start}..{end} ({} rows)",
            self.rows
        );
        Self {
            rows: end - start,
            cols: self.cols,
            data: self.data[start * self.cols..end * self.cols].to_vec(),
        }
    }

    /// Stack `self` on top of `other` (column counts must match).
    pub fn vstack(&self, other: &Self) -> Self {
        if self.rows == 0 {
            return other.clone();
        }
        if other.rows == 0 {
            return self.clone();
        }
        assert_eq!(
            self.cols, other.cols,
            "vstack: column mismatch {} vs {}",
            self.cols, other.cols
        );
        let mut data = Vec::with_capacity((self.rows + other.rows) * self.cols);
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Self {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        }
    }

    /// Concatenate columns of `self` and `other` (row counts must match).
    pub fn hstack(&self, other: &Self) -> Self {
        if self.cols == 0 {
            return other.clone();
        }
        if other.cols == 0 {
            return self.clone();
        }
        assert_eq!(
            self.rows, other.rows,
            "hstack: row mismatch {} vs {}",
            self.rows, other.rows
        );
        let cols = self.cols + other.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for i in 0..self.rows {
            data.extend_from_slice(self.row(i));
            data.extend_from_slice(other.row(i));
        }
        Self {
            rows: self.rows,
            cols,
            data,
        }
    }

    /// True when every entry is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Maximum absolute elementwise difference to `other`.
    pub fn max_abs_diff(&self, other: &Self) -> f64 {
        self.assert_same_shape(other, "max_abs_diff");
        self.data
            .iter()
            .zip(&other.data)
            .fold(0.0_f64, |m, (a, b)| m.max((a - b).abs()))
    }

    /// True when all entries agree within `tol` absolutely.
    pub fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        self.shape() == other.shape() && self.max_abs_diff(other) <= tol
    }

    #[inline]
    fn assert_same_shape(&self, other: &Self, op: &str) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "{op}: shape mismatch {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds {:?}",
            self.shape()
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds {:?}",
            self.shape()
        );
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 8;
        for (i, row) in self.iter_rows().take(max_rows).enumerate() {
            write!(f, "  [{i}] ")?;
            let max_cols = 10;
            for &v in row.iter().take(max_cols) {
                write!(f, "{v:>10.4} ")?;
            }
            if row.len() > max_cols {
                write!(f, "…")?;
            }
            writeln!(f)?;
        }
        if self.rows > max_rows {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_ones_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));

        let o = Matrix::ones(3, 2);
        assert_eq!(o.sum(), 6.0);

        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i.sum(), 3.0);
    }

    #[test]
    fn from_vec_roundtrip() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.into_vec(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_bad_len_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn from_rows_and_row_access() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        assert_eq!(m.shape(), (3, 2));
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_fn(3, 5, |i, j| (i * 7 + j) as f64);
        let t = m.transpose();
        assert_eq!(t.shape(), (5, 3));
        assert_eq!(t[(4, 2)], m[(2, 4)]);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn arithmetic() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 2, vec![4.0, 3.0, 2.0, 1.0]);
        assert_eq!(a.add(&b), Matrix::filled(2, 2, 5.0));
        assert_eq!(a.sub(&a), Matrix::zeros(2, 2));
        assert_eq!(a.hadamard(&b).as_slice(), &[4.0, 6.0, 6.0, 4.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0, 6.0, 8.0]);

        let mut c = a.clone();
        c.axpy(0.5, &b);
        assert_eq!(c.as_slice(), &[3.0, 3.5, 4.0, 4.5]);
    }

    #[test]
    fn col_stats() {
        let m = Matrix::from_rows(&[vec![1.0, 10.0], vec![3.0, 30.0], vec![5.0, 50.0]]);
        assert_eq!(m.col_means(), vec![3.0, 30.0]);
        let stds = m.col_stds();
        assert!((stds[0] - 2.0).abs() < 1e-12);
        assert!((stds[1] - 20.0).abs() < 1e-12);
    }

    #[test]
    fn select_rows_and_stacks() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let s = m.select_rows(&[2, 0, 2]);
        assert_eq!(s.shape(), (3, 2));
        assert_eq!(s.row(0), &[5.0, 6.0]);
        assert_eq!(s.row(2), &[5.0, 6.0]);

        let v = m.vstack(&s);
        assert_eq!(v.shape(), (6, 2));
        assert_eq!(v.row(3), &[5.0, 6.0]);

        let h = m.hstack(&m);
        assert_eq!(h.shape(), (3, 4));
        assert_eq!(h.row(1), &[3.0, 4.0, 3.0, 4.0]);
    }

    #[test]
    fn empty_stacks() {
        let e = Matrix::zeros(0, 2);
        let m = Matrix::from_rows(&[vec![1.0, 2.0]]);
        assert_eq!(e.vstack(&m), m);
        assert_eq!(m.vstack(&e), m);
    }

    #[test]
    fn norms_and_diffs() {
        let a = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert_eq!(a.frobenius_norm(), 5.0);
        assert_eq!(a.max_abs(), 4.0);
        let b = Matrix::from_vec(1, 2, vec![3.0, 4.5]);
        assert!((a.max_abs_diff(&b) - 0.5).abs() < 1e-15);
        assert!(a.approx_eq(&b, 0.5));
        assert!(!a.approx_eq(&b, 0.4));
    }

    #[test]
    fn finite_checks() {
        let mut m = Matrix::ones(2, 2);
        assert!(m.all_finite());
        m[(0, 0)] = f64::NAN;
        assert!(!m.all_finite());
    }

    #[test]
    fn map_and_zip() {
        let m = Matrix::from_vec(1, 3, vec![1.0, -2.0, 3.0]);
        assert_eq!(m.map(f64::abs).as_slice(), &[1.0, 2.0, 3.0]);
        let mut n = m.clone();
        n.map_inplace(|v| v * v);
        assert_eq!(n.as_slice(), &[1.0, 4.0, 9.0]);
    }
}
