//! Error type for numerically fallible routines.

use std::fmt;

/// Errors produced by the numeric routines in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum MathError {
    /// A square matrix was required.
    NotSquare {
        /// Rows of the offending matrix.
        rows: usize,
        /// Columns of the offending matrix.
        cols: usize,
    },
    /// Cholesky pivot was not strictly positive.
    NotPositiveDefinite {
        /// Index of the failing pivot.
        pivot: usize,
        /// Value encountered at the pivot.
        value: f64,
    },
    /// Vector/matrix dimensions do not line up.
    DimensionMismatch {
        /// Expected length/dimension.
        expected: usize,
        /// Actual length/dimension.
        actual: usize,
        /// Human-readable operation context.
        context: &'static str,
    },
    /// An operation required non-empty input.
    Empty {
        /// Human-readable operation context.
        context: &'static str,
    },
    /// Iterative routine failed to converge.
    NoConvergence {
        /// Human-readable operation context.
        context: &'static str,
        /// Number of iterations performed.
        iterations: usize,
    },
}

impl fmt::Display for MathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MathError::NotSquare { rows, cols } => {
                write!(f, "expected a square matrix, got {rows}x{cols}")
            }
            MathError::NotPositiveDefinite { pivot, value } => {
                write!(
                    f,
                    "matrix is not positive definite (pivot {pivot} = {value:.3e})"
                )
            }
            MathError::DimensionMismatch {
                expected,
                actual,
                context,
            } => {
                write!(
                    f,
                    "{context}: dimension mismatch (expected {expected}, got {actual})"
                )
            }
            MathError::Empty { context } => write!(f, "{context}: empty input"),
            MathError::NoConvergence {
                context,
                iterations,
            } => {
                write!(f, "{context}: no convergence after {iterations} iterations")
            }
        }
    }
}

impl std::error::Error for MathError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = MathError::NotSquare { rows: 2, cols: 3 };
        assert!(e.to_string().contains("2x3"));
        let e = MathError::NotPositiveDefinite {
            pivot: 4,
            value: -1.0,
        };
        assert!(e.to_string().contains("pivot 4"));
        let e = MathError::DimensionMismatch {
            expected: 5,
            actual: 3,
            context: "test",
        };
        assert!(e.to_string().contains("expected 5"));
        let e = MathError::Empty { context: "op" };
        assert!(e.to_string().contains("empty"));
        let e = MathError::NoConvergence {
            context: "iter",
            iterations: 10,
        };
        assert!(e.to_string().contains("10"));
    }
}
