//! # cerl-obs
//!
//! Observability for the CERL serving stack, dependency-free like the
//! rest of the workspace: per-request **tracing** with monotonic stage
//! timestamps in a wait-free ring ([`TraceRing`]), a unified **metrics
//! registry** with Prometheus-style text exposition
//! ([`MetricsRegistry`]), the structured **event** channel the
//! rebalance orchestrator reports canary outcomes through
//! ([`EventKind`]), and wait-free **per-domain load counters** for
//! hot-domain attribution ([`DomainCounters`]) — the signal that tells
//! an operator *which* domain to read-scale with a replica.
//!
//! The layer is deliberately split in two halves with different cost
//! models:
//!
//! * the *record* half ([`TraceRing::begin`], [`TraceSpan::stamp`],
//!   [`TraceRing::record_event`]) runs on the serving path — it is
//!   wait-free, allocation-free per stamp, and 1-in-N sampled, so a
//!   traced fleet serves at the same rate as an untraced one;
//! * the *read* half ([`TraceRing::dump`], [`MetricsRegistry::render`])
//!   runs at scrape time — it copies, sorts, and formats freely,
//!   because a dashboard scrape is allowed to allocate.
//!
//! A request's journey is stamped at nine [`Stage`]s:
//!
//! ```text
//! accepted → decoded → admission_wait → submitted → queue_wait
//!          → batched → inference → gathered → written
//! ```
//!
//! `cerl-net`'s reactor begins the span and stamps the socket-side
//! stages; `cerl-serve`'s batch collector stamps the queue/batch/
//! inference stages through the span handle threaded inside its
//! `ResponseHandle`/`ScatterHandle`; the reactor completes the span
//! when the response bytes reach the socket buffer. The `cerl-analyze`
//! gate's `obs-stage` rule statically checks every stamp call site
//! names its stage in pipeline order.

#![warn(missing_docs)]

pub mod domains;
pub mod metrics;
pub mod trace;

pub use domains::{DomainCounters, DomainLoad, DOMAIN_SLOTS};
pub use metrics::MetricsRegistry;
pub use trace::{
    EventKind, EventSnapshot, SpanSnapshot, Stage, TraceRing, TraceSpan, TraceStats, STAGE_COUNT,
};
