//! Per-request tracing: sampled spans with monotonic stage timestamps,
//! recorded into a wait-free fixed-capacity ring.
//!
//! A [`TraceSpan`] is begun by the network reactor when a request frame
//! arrives, threaded through the batching scheduler and scatter router,
//! and completed when the response bytes are handed to the socket. Each
//! span carries one timestamp slot per [`Stage`]; stamps are nanoseconds
//! since the ring's epoch, written with a single compare-exchange
//! (first writer wins, so scatter sub-batches racing on a shared span
//! keep the stamps monotone).
//!
//! ## Ring discipline
//!
//! The ring is a fixed block of atomic slots — no locks, no allocation
//! on the record path. A slot is recycled only once its previous
//! occupant *completed* (`done == seq`); when the ring wraps onto a
//! still-live span, the **new** span is dropped and the drop counter
//! incremented, so an in-flight span is never corrupted by overflow.
//! Readers ([`TraceRing::dump`]) copy only completed slots and re-check
//! the slot's sequence after copying, seqlock-style, so a concurrent
//! recycle can only cause a skipped snapshot, never a torn one.
//!
//! Sampling is 1-in-N: [`TraceRing::begin`] counts every offered
//! request and allocates a span for every `sample_every`-th one, so the
//! hot path pays one relaxed `fetch_add` for unsampled requests.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Number of pipeline stages a span records ([`Stage::ALL`]).
pub const STAGE_COUNT: usize = 9;

/// One stage of a request's journey through the serving stack, in
/// pipeline order. The static analyzer's `obs-stage` rule holds stamp
/// call sites to this order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Stage {
    /// The reactor sampled the request for tracing (span creation).
    Accepted = 0,
    /// The request frame decoded cleanly off the wire.
    Decoded = 1,
    /// The request entered the connection's admission queue.
    AdmissionWait = 2,
    /// The reactor submitted the request to the serving backend.
    Submitted = 3,
    /// The batch collector picked the request out of the queue.
    QueueWait = 4,
    /// The request was coalesced into a batch.
    Batched = 5,
    /// The batched forward pass finished.
    Inference = 6,
    /// The caller-visible result was gathered (demuxed / merged).
    Gathered = 7,
    /// The response bytes were handed to the socket buffer.
    Written = 8,
}

impl Stage {
    /// Every stage in pipeline order; index `i` holds the stage whose
    /// [`Stage::index`] is `i`.
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::Accepted,
        Stage::Decoded,
        Stage::AdmissionWait,
        Stage::Submitted,
        Stage::QueueWait,
        Stage::Batched,
        Stage::Inference,
        Stage::Gathered,
        Stage::Written,
    ];

    /// Position of this stage in the pipeline (0-based).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable lowercase name used in dumps and exposition text.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Accepted => "accepted",
            Stage::Decoded => "decoded",
            Stage::AdmissionWait => "admission_wait",
            Stage::Submitted => "submitted",
            Stage::QueueWait => "queue_wait",
            Stage::Batched => "batched",
            Stage::Inference => "inference",
            Stage::Gathered => "gathered",
            Stage::Written => "written",
        }
    }
}

/// A structured fleet event recorded beside the spans (rebalance and
/// canary outcomes; rare, so these share the ring's wait-free style
/// without being on any hot path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// A canary baseline window was captured before a rebalance plan.
    BaselineCaptured = 0,
    /// A single-domain rebalance move committed (a = domain, b = shard).
    MoveCommitted = 1,
    /// A move was aborted by its canary verdict (a = domain, b = shard).
    MoveAborted = 2,
    /// The whole plan halted (a = moves committed, b = moves remaining).
    PlanHalted = 3,
    /// A read-scaling replica was added to a domain's replica-set after
    /// clearing its canary window (a = domain, b = shard).
    ReplicaAdded = 4,
    /// A replica was drained — removed from routing but still restorable
    /// (a = domain, b = shard).
    ReplicaDrained = 5,
    /// A drained replica was removed for good (a = domain, b = shard).
    ReplicaRemoved = 6,
}

impl EventKind {
    /// Decode an event kind byte (dumps round-trip through this).
    pub fn from_byte(b: u8) -> Option<EventKind> {
        match b {
            0 => Some(EventKind::BaselineCaptured),
            1 => Some(EventKind::MoveCommitted),
            2 => Some(EventKind::MoveAborted),
            3 => Some(EventKind::PlanHalted),
            4 => Some(EventKind::ReplicaAdded),
            5 => Some(EventKind::ReplicaDrained),
            6 => Some(EventKind::ReplicaRemoved),
            _ => None,
        }
    }

    /// Stable lowercase name used in dumps.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::BaselineCaptured => "baseline_captured",
            EventKind::MoveCommitted => "move_committed",
            EventKind::MoveAborted => "move_aborted",
            EventKind::PlanHalted => "plan_halted",
            EventKind::ReplicaAdded => "replica_added",
            EventKind::ReplicaDrained => "replica_drained",
            EventKind::ReplicaRemoved => "replica_removed",
        }
    }
}

/// One span slot. `seq` names the current occupant (0 = never used);
/// `done` trails `seq` while the occupant is live and catches up when
/// it completes — the slot is free exactly when `done == seq`.
struct SpanSlot {
    seq: AtomicU64,
    done: AtomicU64,
    conn: AtomicU64,
    request_id: AtomicU64,
    stamps: [AtomicU64; STAGE_COUNT],
}

/// One event slot, published seqlock-style: `seq` is zeroed, the fields
/// written, then `seq` stored — readers re-check `seq` after copying.
struct EventSlot {
    seq: AtomicU64,
    kind: AtomicU64,
    at: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

/// Counters summarizing a ring's lifetime ([`TraceRing::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceStats {
    /// Requests offered to [`TraceRing::begin`] (sampled or not).
    pub seen: u64,
    /// Spans actually allocated (≈ `seen / sample_every`, minus drops).
    pub sampled: u64,
    /// Sampled spans dropped because the ring wrapped onto a live span.
    pub dropped: u64,
    /// Spans completed (every completed span is dump-visible until its
    /// slot is recycled).
    pub completed: u64,
    /// Structured events recorded.
    pub events: u64,
}

/// Point-in-time copy of one completed span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// The span's unique id (allocation sequence; never reused).
    pub span_id: u64,
    /// Connection identifier the reactor tagged the span with.
    pub conn: u64,
    /// The request id from the wire frame.
    pub request_id: u64,
    /// Nanoseconds since the ring's epoch per stage, 0 = never stamped.
    pub stamps: [u64; STAGE_COUNT],
}

impl SpanSnapshot {
    /// The stamp for `stage`, or `None` if that stage never ran.
    pub fn stamp(&self, stage: Stage) -> Option<u64> {
        // panic-ok: Stage::index is < STAGE_COUNT by construction.
        let v = self.stamps[stage.index()];
        (v != 0).then_some(v)
    }

    /// Whether the recorded (non-zero) stamps are non-decreasing in
    /// pipeline order — the trace-integrity invariant.
    pub fn is_monotone(&self) -> bool {
        let mut last = 0u64;
        for &v in &self.stamps {
            if v == 0 {
                continue;
            }
            if v < last {
                return false;
            }
            last = v;
        }
        true
    }

    /// Nanoseconds spent between two stamped stages, or `None` if
    /// either stage is missing (or the pair is out of order).
    pub fn wait_nanos(&self, from: Stage, to: Stage) -> Option<u64> {
        let a = self.stamp(from)?; // obs-stage: snapshot read, not a stamp site.
        let b = self.stamp(to)?; // obs-stage: snapshot read, not a stamp site.
        b.checked_sub(a)
    }
}

/// Point-in-time copy of one structured event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventSnapshot {
    /// Allocation sequence of the event (never reused).
    pub seq: u64,
    /// What happened.
    pub kind: EventKind,
    /// Nanoseconds since the ring's epoch.
    pub at_nanos: u64,
    /// First kind-specific payload word (see [`EventKind`]).
    pub a: u64,
    /// Second kind-specific payload word.
    pub b: u64,
}

/// Wait-free fixed-capacity ring of sampled request spans plus a small
/// side ring of structured fleet events. See the module docs for the
/// recycling and sampling discipline.
pub struct TraceRing {
    epoch: Instant,
    sample_every: u64,
    slots: Box<[SpanSlot]>,
    events: Box<[EventSlot]>,
    seen: AtomicU64,
    sampled: AtomicU64,
    dropped: AtomicU64,
    completed: AtomicU64,
    alloc: AtomicU64,
    event_alloc: AtomicU64,
}

impl std::fmt::Debug for TraceRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRing")
            .field("capacity", &self.slots.len())
            .field("sample_every", &self.sample_every)
            .finish_non_exhaustive()
    }
}

/// Events kept alongside the span ring (rebalances are rare; 64 covers
/// a long canary history).
const EVENT_CAPACITY: usize = 64;

impl TraceRing {
    /// A ring of `capacity` span slots sampling one request in
    /// `sample_every` (both clamped to at least 1).
    pub fn new(capacity: usize, sample_every: u64) -> Arc<Self> {
        let capacity = capacity.max(1);
        let mk_span = |_| SpanSlot {
            seq: AtomicU64::new(0),
            done: AtomicU64::new(0),
            conn: AtomicU64::new(0),
            request_id: AtomicU64::new(0),
            stamps: std::array::from_fn(|_| AtomicU64::new(0)),
        };
        let mk_event = |_| EventSlot {
            seq: AtomicU64::new(0),
            kind: AtomicU64::new(0),
            at: AtomicU64::new(0),
            a: AtomicU64::new(0),
            b: AtomicU64::new(0),
        };
        Arc::new(TraceRing {
            epoch: Instant::now(),
            sample_every: sample_every.max(1),
            slots: (0..capacity).map(mk_span).collect(),
            events: (0..EVENT_CAPACITY).map(mk_event).collect(),
            seen: AtomicU64::new(0),
            sampled: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            alloc: AtomicU64::new(0),
            event_alloc: AtomicU64::new(0),
        })
    }

    /// Span slots in the ring.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// The configured 1-in-N sampling interval.
    pub fn sample_every(&self) -> u64 {
        self.sample_every
    }

    /// Nanoseconds since the ring's epoch, clamped to at least 1 so a
    /// stored stamp is never confused with "unset" (0).
    pub fn now_nanos(&self) -> u64 {
        (self.epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64).max(1)
    }

    /// Offer one request for tracing. Returns a live span for every
    /// `sample_every`-th offer — unless the ring slot it maps to still
    /// holds a live span, in which case the new span is dropped (and
    /// counted) rather than corrupting the occupant.
    pub fn begin(self: &Arc<Self>, conn: u64, request_id: u64) -> Option<TraceSpan> {
        // ordering: lone sampling counter, no edges.
        let n = self.seen.fetch_add(1, Ordering::Relaxed);
        if !n.is_multiple_of(self.sample_every) {
            return None;
        }
        // ordering: lone sequence source; uniqueness only, no edges.
        let seq = self.alloc.fetch_add(1, Ordering::Relaxed) + 1;
        let idx = (seq % self.slots.len() as u64) as usize;
        // panic-ok: idx is seq modulo slots.len(), always in range.
        let slot = &self.slots[idx];
        // ordering: Acquire pairs with the Release in complete_span —
        // observing done == seq proves the occupant finished and its
        // stamp writes are visible, so the reset below cannot race it.
        let cur = slot.seq.load(Ordering::Acquire);
        // ordering: Acquire half of the same done/seq recycling edge.
        if slot.done.load(Ordering::Acquire) != cur {
            // ordering: lone drop counter, no edges.
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        // ordering: AcqRel claim — the winner owns the slot; Release
        // orders the claim after the free-check above, Acquire pairs
        // with competing claimants; failure needs no edge (slot lost).
        if slot
            .seq
            .compare_exchange(cur, seq, Ordering::AcqRel, Ordering::Relaxed)
            .is_err()
        {
            // ordering: lone drop counter, no edges.
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        for s in &slot.stamps {
            // ordering: claimed-slot reset; published by the Release in
            // complete_span, so Relaxed stores suffice here.
            s.store(0, Ordering::Relaxed);
        }
        // ordering: claimed-slot field write, published by complete_span.
        slot.conn.store(conn, Ordering::Relaxed);
        // ordering: claimed-slot field write, published by complete_span.
        slot.request_id.store(request_id, Ordering::Relaxed);
        // ordering: lone stat counter, no edges.
        self.sampled.fetch_add(1, Ordering::Relaxed);
        let span = TraceSpan {
            ring: Arc::clone(self),
            slot: idx as u32,
            seq,
        };
        span.stamp(Stage::Accepted);
        Some(span)
    }

    /// Record one structured event (rebalance / canary outcome).
    pub fn record_event(&self, kind: EventKind, a: u64, b: u64) {
        // ordering: lone sequence source; uniqueness only, no edges.
        let seq = self.event_alloc.fetch_add(1, Ordering::Relaxed) + 1;
        let idx = (seq % self.events.len() as u64) as usize;
        // panic-ok: idx is seq modulo events.len(), always in range.
        let slot = &self.events[idx];
        // ordering: seqlock write protocol — zero the sequence first
        // (Release) so readers that caught the old value re-check and
        // discard; field writes below stay between the two seq stores.
        slot.seq.store(0, Ordering::Release);
        // ordering: seqlock-protected field write, published below.
        slot.kind.store(kind as u8 as u64, Ordering::Relaxed);
        // ordering: seqlock-protected field write, published below.
        slot.at.store(self.now_nanos(), Ordering::Relaxed);
        // ordering: seqlock-protected field write, published below.
        slot.a.store(a, Ordering::Relaxed);
        // ordering: seqlock-protected field write, published below.
        slot.b.store(b, Ordering::Relaxed);
        // ordering: seqlock publish — Release makes the field writes
        // visible to any reader that Acquire-loads this sequence.
        slot.seq.store(seq, Ordering::Release);
    }

    /// Lifetime counters.
    pub fn stats(&self) -> TraceStats {
        // ordering: advisory monotone reads, no cross-counter coherence
        // is promised, so Relaxed needs no edges.
        let read = |counter: &AtomicU64| counter.load(Ordering::Relaxed);
        TraceStats {
            seen: read(&self.seen),
            sampled: read(&self.sampled),
            dropped: read(&self.dropped),
            completed: read(&self.completed),
            events: read(&self.event_alloc),
        }
    }

    /// Copy up to `max` completed spans, most recent first. Live spans
    /// and slots recycled mid-copy are skipped, never torn.
    pub fn dump(&self, max: usize) -> Vec<SpanSnapshot> {
        let mut out = Vec::new();
        for slot in self.slots.iter() {
            // ordering: Acquire pairs with the Release in complete_span;
            // seeing done == seq below guarantees the stamps read after
            // it are the completed span's writes.
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 == 0 {
                continue;
            }
            // ordering: Acquire half of the completion edge (see above).
            if slot.done.load(Ordering::Acquire) != s1 {
                continue; // still live
            }
            // ordering: read protected by the seq re-check below.
            let conn = slot.conn.load(Ordering::Relaxed);
            // ordering: same re-check-protected read.
            let request_id = slot.request_id.load(Ordering::Relaxed);
            let snap = SpanSnapshot {
                span_id: s1,
                conn,
                request_id,
                stamps: std::array::from_fn(|i| {
                    // panic-ok: from_fn hands indices < STAGE_COUNT only.
                    // ordering: same re-check-protected read as the fields.
                    slot.stamps[i].load(Ordering::Relaxed)
                }),
            };
            // ordering: seqlock re-check — Acquire orders it after the
            // copies above; a changed sequence means a recycle raced the
            // copy, so the snapshot is discarded.
            if slot.seq.load(Ordering::Acquire) != s1 {
                continue;
            }
            out.push(snap);
        }
        out.sort_by_key(|s| std::cmp::Reverse(s.span_id));
        out.truncate(max);
        out
    }

    /// Copy up to `max` recorded events, most recent first.
    pub fn events(&self, max: usize) -> Vec<EventSnapshot> {
        let mut out = Vec::new();
        for slot in self.events.iter() {
            // ordering: seqlock read — Acquire pairs with the publishing
            // Release in record_event.
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 == 0 {
                continue;
            }
            // ordering: reads protected by the seq re-check below.
            let kind = slot.kind.load(Ordering::Relaxed);
            // ordering: seqlock-protected field read (re-checked below).
            let at = slot.at.load(Ordering::Relaxed);
            // ordering: seqlock-protected field read (re-checked below).
            let a = slot.a.load(Ordering::Relaxed);
            // ordering: seqlock-protected field read (re-checked below).
            let b = slot.b.load(Ordering::Relaxed);
            // ordering: seqlock re-check, Acquire-ordered after the
            // copies; a changed sequence discards the snapshot.
            if slot.seq.load(Ordering::Acquire) != s1 {
                continue;
            }
            let Some(kind) = EventKind::from_byte(kind.min(u8::MAX as u64) as u8) else {
                continue;
            };
            out.push(EventSnapshot {
                seq: s1,
                kind,
                at_nanos: at,
                a,
                b,
            });
        }
        out.sort_by_key(|e| std::cmp::Reverse(e.seq));
        out.truncate(max);
        out
    }

    fn stamp_span(&self, span: &TraceSpan, stage: Stage) {
        // panic-ok: span.slot was minted from a slots index in begin.
        let slot = &self.slots[span.slot as usize];
        // ordering: staleness guard only — a recycled slot carries a
        // newer seq and the stamp is silently discarded; no edge needed
        // because publication rides on complete_span's Release.
        if slot.seq.load(Ordering::Relaxed) != span.seq {
            return;
        }
        let now = self.now_nanos();
        // panic-ok: Stage::index is < STAGE_COUNT by construction.
        let cell = &slot.stamps[stage.index()];
        // ordering: first-writer-wins stamp; Relaxed suffices because
        // racing writers (scatter sub-batches) only contend on who sets
        // the value, and readers see it via complete_span's Release.
        let _ = cell.compare_exchange(0, now, Ordering::Relaxed, Ordering::Relaxed);
    }

    fn complete_span(&self, span: &TraceSpan) {
        // panic-ok: span.slot was minted from a slots index in begin.
        let slot = &self.slots[span.slot as usize];
        // ordering: staleness guard (see stamp_span); no edge needed.
        if slot.seq.load(Ordering::Relaxed) != span.seq {
            return;
        }
        // ordering: AcqRel completion edge — the Release half publishes
        // every stamp written before it to begin's and dump's Acquire
        // loads of `done`; the returned prior value makes repeated
        // completes idempotent for the counter.
        if slot.done.swap(span.seq, Ordering::AcqRel) != span.seq {
            // ordering: lone stat counter, no edges.
            self.completed.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A live handle onto one sampled span. Clones share the same slot;
/// stamps are first-writer-wins, and completion is idempotent, so the
/// handle can be threaded through the scheduler and router freely.
#[derive(Debug, Clone)]
pub struct TraceSpan {
    ring: Arc<TraceRing>,
    slot: u32,
    seq: u64,
}

impl TraceSpan {
    /// Record `stage` as happening now (first writer wins; a stamp on a
    /// recycled slot is silently discarded).
    pub fn stamp(&self, stage: Stage) {
        self.ring.stamp_span(self, stage);
    }

    /// Mark the span finished, making it dump-visible and its slot
    /// recyclable. Idempotent; the reactor calls this once the response
    /// is written (or the connection dies with the request in flight).
    pub fn complete(&self) {
        self.ring.complete_span(self);
    }

    /// The span's unique id.
    pub fn span_id(&self) -> u64 {
        self.seq
    }

    /// The ring this span records into.
    pub fn ring(&self) -> &Arc<TraceRing> {
        &self.ring
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_one_in_n() {
        let ring = TraceRing::new(16, 4);
        let mut live = Vec::new();
        for i in 0..16 {
            if let Some(span) = ring.begin(1, i) {
                live.push(span);
            }
        }
        assert_eq!(live.len(), 4);
        let stats = ring.stats();
        assert_eq!(stats.seen, 16);
        assert_eq!(stats.sampled, 4);
        assert_eq!(stats.dropped, 0);
    }

    #[test]
    fn stamps_are_monotone_and_first_writer_wins() {
        let ring = TraceRing::new(4, 1);
        let span = ring.begin(7, 42).expect("sampled");
        span.stamp(Stage::Decoded);
        span.stamp(Stage::Submitted);
        span.stamp(Stage::Written);
        span.complete();
        let spans = ring.dump(8);
        assert_eq!(spans.len(), 1);
        let s = spans[0];
        assert_eq!(s.conn, 7);
        assert_eq!(s.request_id, 42);
        assert!(s.is_monotone(), "{s:?}");
        assert!(s.stamp(Stage::Accepted).is_some());
        assert!(s.stamp(Stage::QueueWait).is_none());
        // Re-stamping does not move an existing stamp.
        let first = s.stamp(Stage::Decoded);
        span.stamp(Stage::Decoded);
        span.complete();
        assert_eq!(ring.dump(8)[0].stamp(Stage::Decoded), first);
    }

    #[test]
    fn overflow_drops_new_spans_and_counts() {
        let ring = TraceRing::new(2, 1);
        let a = ring.begin(1, 1).expect("sampled");
        let b = ring.begin(1, 2).expect("sampled");
        // Ring full of live spans: the next two offers map onto live
        // slots and must be dropped.
        assert!(ring.begin(1, 3).is_none());
        assert!(ring.begin(1, 4).is_none());
        assert_eq!(ring.stats().dropped, 2);
        // The live spans are intact and recyclable after completion.
        a.stamp(Stage::Written);
        a.complete();
        b.complete();
        assert!(ring.begin(1, 5).is_some());
        assert_eq!(ring.stats().completed, 2);
    }

    #[test]
    fn dump_skips_live_spans() {
        let ring = TraceRing::new(8, 1);
        let live = ring.begin(1, 1).expect("sampled");
        let done = ring.begin(1, 2).expect("sampled");
        done.complete();
        let spans = ring.dump(8);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].request_id, 2);
        live.complete();
        assert_eq!(ring.dump(8).len(), 2);
    }

    #[test]
    fn events_round_trip_most_recent_first() {
        let ring = TraceRing::new(2, 1);
        ring.record_event(EventKind::BaselineCaptured, 0, 0);
        ring.record_event(EventKind::MoveCommitted, 9, 1);
        ring.record_event(EventKind::PlanHalted, 2, 3);
        let events = ring.events(2);
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, EventKind::PlanHalted);
        assert_eq!((events[0].a, events[0].b), (2, 3));
        assert_eq!(events[1].kind, EventKind::MoveCommitted);
        assert_eq!(ring.stats().events, 3);
        assert_eq!(EventKind::from_byte(1), Some(EventKind::MoveCommitted));
        assert_eq!(EventKind::from_byte(200), None);
    }

    #[test]
    fn concurrent_begin_complete_never_corrupts() {
        let ring = TraceRing::new(8, 1);
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let ring = Arc::clone(&ring);
                scope.spawn(move || {
                    for i in 0..500u64 {
                        if let Some(span) = ring.begin(t, i) {
                            span.stamp(Stage::Decoded);
                            span.stamp(Stage::Submitted);
                            span.stamp(Stage::Written);
                            span.complete();
                        }
                    }
                });
            }
        });
        let stats = ring.stats();
        assert_eq!(stats.seen, 2000);
        assert_eq!(stats.sampled + stats.dropped, 2000);
        assert_eq!(stats.completed, stats.sampled);
        for span in ring.dump(64) {
            assert!(span.is_monotone(), "{span:?}");
        }
    }
}
