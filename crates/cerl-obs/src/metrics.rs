//! A unified metrics registry with a hand-rolled Prometheus-style text
//! exposition writer.
//!
//! [`MetricsRegistry`] is a scrape-time assembler: each serving tier
//! contributes its named counters, gauges, and histograms into one
//! registry, and [`MetricsRegistry::render`] writes the whole fleet as
//! exposition text (`# HELP` / `# TYPE` headers, `{label="value"}`
//! sample lines, cumulative `_bucket{le=...}` histogram series). The
//! registry itself is plain owned data — the hot path never touches
//! it; tiers read their existing wait-free counters at scrape time and
//! push the values here, so a scrape allocates but serving does not.
//!
//! ```
//! use cerl_obs::MetricsRegistry;
//!
//! let mut reg = MetricsRegistry::new();
//! reg.counter("cerl_net_requests_total", "Request frames decoded.", &[], 42);
//! reg.gauge("cerl_net_open_connections", "Connections currently open.", &[], 3.0);
//! reg.counter(
//!     "cerl_net_conn_bytes_in_total",
//!     "Bytes read, per connection.",
//!     &[("conn", "7")],
//!     1024,
//! );
//! let text = reg.render();
//! assert!(text.contains("cerl_net_requests_total 42\n"));
//! assert!(text.contains("cerl_net_conn_bytes_in_total{conn=\"7\"} 1024\n"));
//! ```

use std::collections::BTreeMap;

/// One sample's value.
enum Value {
    Counter(u64),
    Gauge(f64),
    Histogram {
        /// `(upper_bound_seconds, cumulative_count)` in ascending bound
        /// order, ending with the `+Inf` bucket.
        buckets: Vec<(f64, u64)>,
        sum_seconds: f64,
        count: u64,
    },
}

struct Family {
    help: String,
    kind: &'static str,
    /// `(rendered_label_block, value)` in insertion order.
    samples: Vec<(String, Value)>,
}

/// A named collection of counters, gauges, and histograms that renders
/// as Prometheus-style exposition text. See the module docs.
#[derive(Default)]
pub struct MetricsRegistry {
    families: BTreeMap<String, Family>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("families", &self.families.len())
            .finish()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of metric families registered.
    pub fn len(&self) -> usize {
        self.families.len()
    }

    /// Whether the registry holds no families.
    pub fn is_empty(&self) -> bool {
        self.families.is_empty()
    }

    /// Register one counter sample. `labels` are `(name, value)` pairs;
    /// repeated calls with the same metric name add label series to the
    /// same family (the first call's help text wins).
    pub fn counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: u64) {
        self.push(name, help, "counter", labels, Value::Counter(value));
    }

    /// Register one gauge sample.
    pub fn gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        self.push(name, help, "gauge", labels, Value::Gauge(value));
    }

    /// Register one histogram sample from *per-bucket* counts.
    /// `buckets` is `(upper_bound_seconds, count)` in ascending bound
    /// order (a final unbounded bucket may use `f64::INFINITY`); the
    /// registry accumulates them into the cumulative `le` series and
    /// appends the `+Inf` bucket, `_sum`, and `_count`.
    pub fn histogram(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        buckets: &[(f64, u64)],
        sum_seconds: f64,
    ) {
        let mut cumulative = Vec::with_capacity(buckets.len() + 1);
        let mut running = 0u64;
        let mut has_inf = false;
        for &(bound, count) in buckets {
            running = running.saturating_add(count);
            has_inf = has_inf || bound.is_infinite();
            cumulative.push((bound, running));
        }
        if !has_inf {
            cumulative.push((f64::INFINITY, running));
        }
        self.push(
            name,
            help,
            "histogram",
            labels,
            Value::Histogram {
                buckets: cumulative,
                sum_seconds,
                count: running,
            },
        );
    }

    fn push(
        &mut self,
        name: &str,
        help: &str,
        kind: &'static str,
        labels: &[(&str, &str)],
        value: Value,
    ) {
        let family = self
            .families
            .entry(name.to_string())
            .or_insert_with(|| Family {
                help: help.to_string(),
                kind,
                samples: Vec::new(),
            });
        family.samples.push((render_labels(labels), value));
    }

    /// Write every family as Prometheus-style exposition text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, family) in &self.families {
            out.push_str("# HELP ");
            out.push_str(name);
            out.push(' ');
            out.push_str(&escape_help(&family.help));
            out.push('\n');
            out.push_str("# TYPE ");
            out.push_str(name);
            out.push(' ');
            out.push_str(family.kind);
            out.push('\n');
            for (labels, value) in &family.samples {
                match value {
                    Value::Counter(v) => {
                        out.push_str(name);
                        out.push_str(labels);
                        out.push(' ');
                        out.push_str(&v.to_string());
                        out.push('\n');
                    }
                    Value::Gauge(v) => {
                        out.push_str(name);
                        out.push_str(labels);
                        out.push(' ');
                        out.push_str(&fmt_f64(*v));
                        out.push('\n');
                    }
                    Value::Histogram {
                        buckets,
                        sum_seconds,
                        count,
                    } => {
                        for (bound, cumulative) in buckets {
                            out.push_str(name);
                            out.push_str("_bucket");
                            out.push_str(&with_le(labels, *bound));
                            out.push(' ');
                            out.push_str(&cumulative.to_string());
                            out.push('\n');
                        }
                        out.push_str(name);
                        out.push_str("_sum");
                        out.push_str(labels);
                        out.push(' ');
                        out.push_str(&fmt_f64(*sum_seconds));
                        out.push('\n');
                        out.push_str(name);
                        out.push_str("_count");
                        out.push_str(labels);
                        out.push(' ');
                        out.push_str(&count.to_string());
                        out.push('\n');
                    }
                }
            }
        }
        out
    }
}

/// `{k="v",k2="v2"}` (or the empty string for no labels).
fn render_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape_label(v));
        out.push('"');
    }
    out.push('}');
    out
}

/// Splice an `le` label into an already-rendered label block.
fn with_le(labels: &str, bound: f64) -> String {
    let le = format!("le=\"{}\"", fmt_f64(bound));
    match labels.strip_suffix('}') {
        Some(open) if open.len() > 1 => format!("{open},{le}}}"),
        _ => format!("{{{le}}}"),
    }
}

fn fmt_f64(v: f64) -> String {
    if v.is_infinite() {
        if v > 0.0 {
            "+Inf".into()
        } else {
            "-Inf".into()
        }
    } else if v.is_nan() {
        "NaN".into()
    } else {
        format!("{v}")
    }
}

fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_render_with_headers() {
        let mut reg = MetricsRegistry::new();
        reg.counter("a_total", "Counts a.", &[], 5);
        reg.gauge("b", "Measures b.", &[("shard", "2")], 1.5);
        let text = reg.render();
        assert!(text.contains("# HELP a_total Counts a.\n# TYPE a_total counter\na_total 5\n"));
        assert!(text.contains("# TYPE b gauge\nb{shard=\"2\"} 1.5\n"));
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn families_sort_and_accumulate_label_series() {
        let mut reg = MetricsRegistry::new();
        reg.counter("z_total", "z", &[], 1);
        reg.counter("a_total", "a", &[("conn", "1")], 2);
        reg.counter("a_total", "ignored later help", &[("conn", "2")], 3);
        let text = reg.render();
        let a = text.find("a_total").expect("a present");
        let z = text.find("z_total").expect("z present");
        assert!(a < z, "families must render in sorted order");
        assert!(text.contains("a_total{conn=\"1\"} 2\n"));
        assert!(text.contains("a_total{conn=\"2\"} 3\n"));
        assert!(text.contains("# HELP a_total a\n"));
    }

    #[test]
    fn histograms_cumulate_and_append_inf() {
        let mut reg = MetricsRegistry::new();
        reg.histogram(
            "lat_seconds",
            "Latency.",
            &[("conn", "9")],
            &[(0.001, 3), (0.01, 2), (0.1, 0)],
            0.025,
        );
        let text = reg.render();
        assert!(text.contains("# TYPE lat_seconds histogram"));
        assert!(text.contains("lat_seconds_bucket{conn=\"9\",le=\"0.001\"} 3\n"));
        assert!(text.contains("lat_seconds_bucket{conn=\"9\",le=\"0.01\"} 5\n"));
        assert!(text.contains("lat_seconds_bucket{conn=\"9\",le=\"+Inf\"} 5\n"));
        assert!(text.contains("lat_seconds_sum{conn=\"9\"} 0.025\n"));
        assert!(text.contains("lat_seconds_count{conn=\"9\"} 5\n"));
    }

    #[test]
    fn labels_escape_quotes_and_newlines() {
        let mut reg = MetricsRegistry::new();
        reg.counter("e_total", "e", &[("detail", "a\"b\nc\\d")], 1);
        let text = reg.render();
        assert!(text.contains("e_total{detail=\"a\\\"b\\nc\\\\d\"} 1\n"));
    }
}
