//! Per-domain request/row counters for hot-domain attribution.
//!
//! The serving fleet's per-shard counters say *where* load lands but not
//! *which domain* put it there — useless for deciding which domain to
//! read-scale with a replica. [`DomainCounters`] closes that gap with the
//! same two-halves cost model as the rest of this crate:
//!
//! * the *record* half ([`DomainCounters::record`]) runs on the serving
//!   path: a fixed open-addressed table of atomic slots, wait-free and
//!   allocation-free — a domain claims a slot with one CAS the first
//!   time it is seen and increments plain counters ever after. When the
//!   table is full, further new domains accumulate in a single shared
//!   overflow slot rather than blocking or evicting;
//! * the *read* half ([`DomainCounters::snapshot`]) copies and sorts at
//!   scrape time, where allocation is fine.
//!
//! Capacity is [`DOMAIN_SLOTS`] distinct domains — far beyond what one
//! fleet serves in practice (the hot-domain question is about the top
//! handful), and the overflow slot keeps totals honest beyond it.

use std::sync::atomic::{AtomicU64, Ordering};

/// Distinct domains tracked individually; the rest share the overflow
/// slot. A power of two so the probe mask is a single AND.
pub const DOMAIN_SLOTS: usize = 128;

/// One domain's cumulative counters ([`DomainCounters::snapshot`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DomainLoad {
    /// Domain id, or `None` for the shared overflow slot.
    pub domain: Option<u64>,
    /// Requests that named this domain (a mixed-domain scatter counts
    /// once per domain it touches).
    pub requests: u64,
    /// Rows served for this domain across those requests.
    pub rows: u64,
}

/// Wait-free per-domain load counters (see the [module docs](self)).
pub struct DomainCounters {
    /// Slot owner as `domain + 1`; `0` means the slot is free.
    keys: [AtomicU64; DOMAIN_SLOTS],
    requests: [AtomicU64; DOMAIN_SLOTS],
    rows: [AtomicU64; DOMAIN_SLOTS],
    overflow_requests: AtomicU64,
    overflow_rows: AtomicU64,
}

impl Default for DomainCounters {
    fn default() -> Self {
        Self {
            keys: std::array::from_fn(|_| AtomicU64::new(0)),
            requests: std::array::from_fn(|_| AtomicU64::new(0)),
            rows: std::array::from_fn(|_| AtomicU64::new(0)),
            overflow_requests: AtomicU64::new(0),
            overflow_rows: AtomicU64::new(0),
        }
    }
}

impl std::fmt::Debug for DomainCounters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DomainCounters")
            .field("slots", &DOMAIN_SLOTS)
            .finish_non_exhaustive()
    }
}

impl DomainCounters {
    /// Fresh counters, all zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count one request of `rows` rows against `domain`. Wait-free: at
    /// most [`DOMAIN_SLOTS`] probe steps, no locks, no allocation.
    pub fn record(&self, domain: u64, rows: u64) {
        let key = domain.wrapping_add(1);
        // Fibonacci-hash the domain id so sequential ids spread across
        // the table instead of clustering into one probe run.
        let mut i = (domain.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % DOMAIN_SLOTS;
        for _ in 0..DOMAIN_SLOTS {
            // ordering: Acquire pairs with the Release half of the
            // claiming CAS below — a reader that observes this slot's
            // key observes it fully claimed (the key is the only
            // claim-state; the counters are monotone and self-standing).
            // panic-ok: i is reduced modulo DOMAIN_SLOTS, always in range.
            let owner = self.keys[i].load(Ordering::Acquire);
            let claimed = owner == key || (owner == 0 && self.claim(i, key));
            if claimed {
                // ordering: Relaxed — independent monotone counters; the
                // scrape-time reader tolerates being a step behind.
                // panic-ok: i is reduced modulo DOMAIN_SLOTS.
                self.requests[i].fetch_add(1, Ordering::Relaxed);
                // ordering: Relaxed — same monotone-counter contract.
                // panic-ok: i is reduced modulo DOMAIN_SLOTS.
                self.rows[i].fetch_add(rows, Ordering::Relaxed);
                return;
            }
            i = (i + 1) % DOMAIN_SLOTS;
        }
        // Table full: totals stay honest in the shared overflow slot.
        // ordering: Relaxed — same monotone-counter contract as above.
        self.overflow_requests.fetch_add(1, Ordering::Relaxed);
        // ordering: Relaxed — same monotone-counter contract as above.
        self.overflow_rows.fetch_add(rows, Ordering::Relaxed);
    }

    /// Try to claim slot `i` for `key`; true if this call or a racing
    /// recorder of the *same* key won it.
    fn claim(&self, i: usize, key: u64) -> bool {
        // ordering: AcqRel on success publishes the claim to other
        // recorders and readers; Acquire on failure observes the
        // competing claim we lost to. panic-ok: i is reduced modulo
        // DOMAIN_SLOTS, always in range.
        match self.keys[i].compare_exchange(0, key, Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => true,
            Err(racer) => racer == key,
        }
    }

    /// Every tracked domain's cumulative load, ascending by domain id,
    /// with the overflow slot (if it ever counted) last as
    /// `domain: None`. Scrape-time work — copies and sorts freely.
    pub fn snapshot(&self) -> Vec<DomainLoad> {
        let mut out = Vec::new();
        for i in 0..DOMAIN_SLOTS {
            // ordering: Acquire pairs with the claiming CAS's Release —
            // a non-zero key here is a fully claimed slot.
            // panic-ok: i is a loop index < DOMAIN_SLOTS.
            let owner = self.keys[i].load(Ordering::Acquire);
            if owner == 0 {
                continue;
            }
            out.push(DomainLoad {
                domain: Some(owner - 1),
                // ordering: Relaxed — monotone counters, staleness fine.
                // panic-ok: i is a loop index < DOMAIN_SLOTS.
                requests: self.requests[i].load(Ordering::Relaxed),
                // ordering: Relaxed — monotone counters, staleness fine.
                // panic-ok: i is a loop index < DOMAIN_SLOTS.
                rows: self.rows[i].load(Ordering::Relaxed),
            });
        }
        out.sort_unstable_by_key(|l| l.domain);
        // ordering: Relaxed — monotone counters, staleness fine.
        let requests = self.overflow_requests.load(Ordering::Relaxed);
        // ordering: Relaxed — monotone counters, staleness fine.
        let rows = self.overflow_rows.load(Ordering::Relaxed);
        if requests > 0 || rows > 0 {
            out.push(DomainLoad {
                domain: None,
                requests,
                rows,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn records_attribute_per_domain_and_snapshot_sorts() {
        let counters = DomainCounters::new();
        counters.record(7, 100);
        counters.record(3, 10);
        counters.record(7, 50);
        let snap = counters.snapshot();
        assert_eq!(
            snap,
            vec![
                DomainLoad {
                    domain: Some(3),
                    requests: 1,
                    rows: 10
                },
                DomainLoad {
                    domain: Some(7),
                    requests: 2,
                    rows: 150
                },
            ]
        );
    }

    #[test]
    fn table_overflow_accumulates_instead_of_dropping() {
        let counters = DomainCounters::new();
        // DOMAIN_SLOTS distinct domains fill the table; the next two
        // land in the overflow slot, keeping fleet totals exact.
        for d in 0..(DOMAIN_SLOTS as u64 + 2) {
            counters.record(d, 5);
        }
        let snap = counters.snapshot();
        assert_eq!(snap.len(), DOMAIN_SLOTS + 1);
        // panic-ok: test-only indexing after the length assertion.
        let overflow = snap[DOMAIN_SLOTS];
        assert_eq!(overflow.domain, None);
        assert_eq!(overflow.requests, 2);
        assert_eq!(overflow.rows, 10);
        let total: u64 = snap.iter().map(|l| l.rows).sum();
        assert_eq!(total, (DOMAIN_SLOTS as u64 + 2) * 5);
    }

    #[test]
    fn concurrent_recorders_never_lose_a_count() {
        let counters = Arc::new(DomainCounters::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let counters = Arc::clone(&counters);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        counters.record(42, 3);
                        counters.record(43, 1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("recorder thread panicked");
        }
        let snap = counters.snapshot();
        let d42 = snap.iter().find(|l| l.domain == Some(42)).unwrap();
        assert_eq!((d42.requests, d42.rows), (4000, 12_000));
        let d43 = snap.iter().find(|l| l.domain == Some(43)).unwrap();
        assert_eq!((d43.requests, d43.rows), (4000, 4000));
    }
}
