//! Reverse-mode differentiation over the tape.
//!
//! Node ids increase in topological order by construction, so a single
//! reverse sweep suffices. Gradients are accumulated per node; parameter
//! gradients are additionally folded per [`ParamId`] (a parameter may
//! appear at several tape positions, e.g. when the same representation
//! network is applied to two batches).

use crate::graph::{Graph, NodeId, Op, NORM_EPS};
use crate::params::ParamId;
use cerl_math::{matmul_a_bt, matmul_at_b, Matrix};
use std::collections::HashMap;

/// Gradients produced by [`Graph::backward`].
pub struct Gradients {
    node_grads: Vec<Option<Matrix>>,
    param_grads: HashMap<usize, Matrix>,
}

impl Gradients {
    /// Gradient w.r.t. a parameter (summed over all tape occurrences), or
    /// `None` when the parameter did not influence the loss.
    pub fn param_grad(&self, id: ParamId) -> Option<&Matrix> {
        self.param_grads.get(&id.index())
    }

    /// Gradient w.r.t. an arbitrary node (including `input_with_grad`
    /// leaves), or `None` when no gradient reached it.
    pub fn node_grad(&self, id: NodeId) -> Option<&Matrix> {
        self.node_grads.get(id.index()).and_then(|g| g.as_ref())
    }

    /// Global L2 norm over all parameter gradients.
    ///
    /// Summation runs in ascending parameter order: HashMap iteration order
    /// is randomized per process, and float addition is not associative, so
    /// an unordered sum would make gradient clipping — and therefore whole
    /// training runs — non-reproducible at the last ulp.
    pub fn global_norm(&self) -> f64 {
        let mut keys: Vec<usize> = self.param_grads.keys().copied().collect();
        keys.sort_unstable();
        keys.iter()
            .map(|k| {
                self.param_grads[k]
                    .as_slice()
                    .iter()
                    .map(|v| v * v)
                    .sum::<f64>()
            })
            .sum::<f64>()
            .sqrt()
    }

    /// Scale every parameter gradient in place (used for clipping).
    pub fn scale_all(&mut self, s: f64) {
        for g in self.param_grads.values_mut() {
            g.scale_inplace(s);
        }
    }

    /// Clip parameter gradients to a maximum global norm; returns the scale
    /// that was applied (1.0 when no clipping occurred).
    pub fn clip_global_norm(&mut self, max_norm: f64) -> f64 {
        let n = self.global_norm();
        if n > max_norm && n > 0.0 {
            let s = max_norm / n;
            self.scale_all(s);
            s
        } else {
            1.0
        }
    }
}

impl Graph {
    /// Reverse-mode gradient of the scalar node `loss` w.r.t. every node
    /// and parameter that influences it.
    ///
    /// # Panics
    /// If `loss` is not a 1×1 node.
    pub fn backward(&self, loss: NodeId) -> Gradients {
        assert_eq!(
            self.value(loss).shape(),
            (1, 1),
            "backward: loss must be a scalar (1x1) node"
        );
        let n = self.nodes.len();
        let mut grads: Vec<Option<Matrix>> = vec![None; n];
        grads[loss.index()] = Some(Matrix::filled(1, 1, 1.0));

        for idx in (0..=loss.index()).rev() {
            let Some(go) = grads[idx].take() else {
                continue;
            };
            // Re-store so node_grad() can report it afterwards.
            let node = &self.nodes[idx];
            self.propagate(idx, &node.op, &go, &mut grads);
            grads[idx] = Some(go);
        }

        let mut param_grads: HashMap<usize, Matrix> = HashMap::new();
        for (idx, node) in self.nodes.iter().enumerate() {
            if let Op::Param(pid) = node.op {
                if let Some(g) = &grads[idx] {
                    param_grads
                        .entry(pid.index())
                        .and_modify(|acc| acc.add_assign(g))
                        .or_insert_with(|| g.clone());
                }
            }
        }
        Gradients {
            node_grads: grads,
            param_grads,
        }
    }

    fn accumulate(&self, grads: &mut [Option<Matrix>], target: NodeId, delta: Matrix) {
        // Skip subtrees that cannot reach a parameter *and* are not
        // gradient-tracked inputs — except plain inputs, whose grads we
        // still store because callers may inspect them.
        match &mut grads[target.index()] {
            Some(acc) => acc.add_assign(&delta),
            slot @ None => *slot = Some(delta),
        }
    }

    #[allow(clippy::too_many_lines)]
    fn propagate(&self, idx: usize, op: &Op, go: &Matrix, grads: &mut [Option<Matrix>]) {
        match op {
            Op::Input | Op::Param(_) => {}
            Op::Add(a, b) => {
                self.accumulate(grads, *a, go.clone());
                self.accumulate(grads, *b, go.clone());
            }
            Op::Sub(a, b) => {
                self.accumulate(grads, *a, go.clone());
                self.accumulate(grads, *b, go.scale(-1.0));
            }
            Op::Mul(a, b) => {
                let da = go.hadamard(self.value(*b));
                let db = go.hadamard(self.value(*a));
                self.accumulate(grads, *a, da);
                self.accumulate(grads, *b, db);
            }
            Op::Scale(a, c) => {
                self.accumulate(grads, *a, go.scale(*c));
            }
            Op::AddScalar(a) => {
                self.accumulate(grads, *a, go.clone());
            }
            Op::AddRowBroadcast(m, bias) => {
                self.accumulate(grads, *m, go.clone());
                // Bias gradient: column sums of go.
                let mut db = Matrix::zeros(1, go.cols());
                for i in 0..go.rows() {
                    for (j, &v) in go.row(i).iter().enumerate() {
                        db[(0, j)] += v;
                    }
                }
                self.accumulate(grads, *bias, db);
            }
            Op::MatMul(a, b) => {
                let da = matmul_a_bt(go, self.value(*b));
                let db = matmul_at_b(self.value(*a), go);
                self.accumulate(grads, *a, da);
                self.accumulate(grads, *b, db);
            }
            Op::Relu(a) => {
                let x = self.value(*a);
                let da = go.zip_map(x, |g, xv| if xv > 0.0 { g } else { 0.0 });
                self.accumulate(grads, *a, da);
            }
            Op::Elu(a, alpha) => {
                let x = self.value(*a);
                let y = self.value(NodeId(idx));
                let da = Matrix::from_fn(x.rows(), x.cols(), |i, j| {
                    let g = go[(i, j)];
                    if x[(i, j)] > 0.0 {
                        g
                    } else {
                        g * (y[(i, j)] + alpha)
                    }
                });
                self.accumulate(grads, *a, da);
            }
            Op::Sigmoid(a) => {
                let y = self.value(NodeId(idx));
                let da = go.zip_map(y, |g, yv| g * yv * (1.0 - yv));
                self.accumulate(grads, *a, da);
            }
            Op::Tanh(a) => {
                let y = self.value(NodeId(idx));
                let da = go.zip_map(y, |g, yv| g * (1.0 - yv * yv));
                self.accumulate(grads, *a, da);
            }
            Op::Square(a) => {
                let x = self.value(*a);
                let da = go.zip_map(x, |g, xv| 2.0 * g * xv);
                self.accumulate(grads, *a, da);
            }
            Op::Abs(a) => {
                let x = self.value(*a);
                let da = go.zip_map(x, |g, xv| g * sign0(xv));
                self.accumulate(grads, *a, da);
            }
            Op::Exp(a) => {
                let y = self.value(NodeId(idx));
                let da = go.zip_map(y, |g, yv| g * yv);
                self.accumulate(grads, *a, da);
            }
            Op::Sum(a) => {
                let s = go[(0, 0)];
                let x = self.value(*a);
                self.accumulate(grads, *a, Matrix::filled(x.rows(), x.cols(), s));
            }
            Op::Mean(a) => {
                let x = self.value(*a);
                let n = x.len().max(1) as f64;
                let s = go[(0, 0)] / n;
                self.accumulate(grads, *a, Matrix::filled(x.rows(), x.cols(), s));
            }
            Op::RowSum(a) => {
                let x = self.value(*a);
                let da = Matrix::from_fn(x.rows(), x.cols(), |i, _| go[(i, 0)]);
                self.accumulate(grads, *a, da);
            }
            Op::RowL2Normalize(a) => {
                let x = self.value(*a);
                let y = self.value(NodeId(idx));
                let mut da = Matrix::zeros(x.rows(), x.cols());
                for i in 0..x.rows() {
                    let norm = cerl_math::norms::l2_norm(x.row(i));
                    if norm <= NORM_EPS {
                        continue; // zero output row: zero (sub)gradient
                    }
                    let yr = y.row(i);
                    let gr = go.row(i);
                    let dotyg: f64 = yr.iter().zip(gr).map(|(&a, &b)| a * b).sum();
                    let dr = da.row_mut(i);
                    for ((d, &g), &yv) in dr.iter_mut().zip(gr).zip(yr) {
                        *d = (g - yv * dotyg) / norm;
                    }
                }
                self.accumulate(grads, *a, da);
            }
            Op::ColL2Normalize(a) => {
                let x = self.value(*a);
                let y = self.value(NodeId(idx));
                let (r, c) = x.shape();
                let mut norms = vec![0.0; c];
                for i in 0..r {
                    for (j, &v) in x.row(i).iter().enumerate() {
                        norms[j] += v * v;
                    }
                }
                norms.iter_mut().for_each(|n| *n = n.sqrt());
                // Per-column: d = (g - y (y·g)) / norm
                let mut dots = vec![0.0; c];
                for i in 0..r {
                    for (j, (&yv, &gv)) in y.row(i).iter().zip(go.row(i)).enumerate() {
                        dots[j] += yv * gv;
                    }
                }
                let mut da = Matrix::zeros(r, c);
                for i in 0..r {
                    let dr = da.row_mut(i);
                    for (j, d) in dr.iter_mut().enumerate() {
                        if norms[j] > NORM_EPS {
                            *d = (go[(i, j)] - y[(i, j)] * dots[j]) / norms[j];
                        }
                    }
                }
                self.accumulate(grads, *a, da);
            }
            Op::SelectRows(a, indices) => {
                let x = self.value(*a);
                let mut da = Matrix::zeros(x.rows(), x.cols());
                for (k, &src) in indices.iter().enumerate() {
                    let gr = go.row(k);
                    let dr = da.row_mut(src);
                    for (d, &g) in dr.iter_mut().zip(gr) {
                        *d += g;
                    }
                }
                self.accumulate(grads, *a, da);
            }
            Op::ConcatRows(a, b) => {
                let na = self.value(*a).rows();
                let idx_a: Vec<usize> = (0..na).collect();
                let idx_b: Vec<usize> = (na..go.rows()).collect();
                self.accumulate(grads, *a, go.select_rows(&idx_a));
                self.accumulate(grads, *b, go.select_rows(&idx_b));
            }
            Op::Custom { inputs, op } => {
                let in_values: Vec<&Matrix> = inputs.iter().map(|&i| self.value(i)).collect();
                let out = self.value(NodeId(idx));
                let deltas = op.backward(&in_values, out, go);
                assert_eq!(
                    deltas.len(),
                    inputs.len(),
                    "custom op '{}' returned {} gradients for {} inputs",
                    op.name(),
                    deltas.len(),
                    inputs.len()
                );
                for (&inp, d) in inputs.iter().zip(deltas) {
                    assert_eq!(
                        d.shape(),
                        self.value(inp).shape(),
                        "custom op '{}': gradient shape mismatch",
                        op.name()
                    );
                    self.accumulate(grads, inp, d);
                }
            }
        }
    }
}

#[inline]
fn sign0(x: f64) -> f64 {
    if x > 0.0 {
        1.0
    } else if x < 0.0 {
        -1.0
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamStore;

    #[test]
    fn linear_gradient() {
        // L = mean((x·w − y)²), check dL/dw analytically on a 1-step case.
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::from_vec(2, 1, vec![0.5, -0.5]));
        let mut g = Graph::new();
        let x = g.input(Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]));
        let y = g.input(Matrix::from_vec(2, 1, vec![1.0, 2.0]));
        let wp = g.param(&store, w);
        let pred = g.matmul(x, wp);
        let diff = g.sub(pred, y);
        let sq = g.square(diff);
        let loss = g.mean(sq);

        let grads = g.backward(loss);
        let gw = grads.param_grad(w).unwrap();

        // pred = [-0.5, -0.5]; diff = pred − y = [-1.5, -2.5];
        // dL/dpred = 2·diff/n = diff = [-1.5, -2.5]
        // dL/dw = Xᵀ diff = [1·(-1.5)+3·(-2.5), 2·(-1.5)+4·(-2.5)] = [-9, -13]
        assert!((gw[(0, 0)] + 9.0).abs() < 1e-12, "{gw:?}");
        assert!((gw[(1, 0)] + 13.0).abs() < 1e-12, "{gw:?}");
    }

    #[test]
    fn shared_param_accumulates() {
        // L = sum(w) + sum(w) should give gradient 2 for every entry.
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::filled(2, 2, 3.0));
        let mut g = Graph::new();
        let w1 = g.param(&store, w);
        let w2 = g.param(&store, w);
        let s1 = g.sum(w1);
        let s2 = g.sum(w2);
        let loss = g.add(s1, s2);
        let grads = g.backward(loss);
        let gw = grads.param_grad(w).unwrap();
        assert!(gw.approx_eq(&Matrix::filled(2, 2, 2.0), 1e-14));
    }

    #[test]
    fn fanout_accumulates() {
        // y = w ∘ w: dL/dw via two paths; L = sum(y) → grad = 2w.
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::from_vec(1, 3, vec![1.0, -2.0, 0.5]));
        let mut g = Graph::new();
        let wp = g.param(&store, w);
        let y = g.mul(wp, wp);
        let loss = g.sum(y);
        let grads = g.backward(loss);
        let gw = grads.param_grad(w).unwrap();
        assert!(gw.approx_eq(&Matrix::from_vec(1, 3, vec![2.0, -4.0, 1.0]), 1e-14));
    }

    #[test]
    fn unreached_param_has_no_grad() {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::identity(2));
        let unused = store.add("unused", Matrix::identity(2));
        let mut g = Graph::new();
        let wp = g.param(&store, w);
        let _up = g.param(&store, unused);
        let loss = g.sum(wp);
        let grads = g.backward(loss);
        assert!(grads.param_grad(w).is_some());
        assert!(grads.param_grad(unused).is_none());
    }

    #[test]
    fn clip_global_norm() {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::from_vec(1, 2, vec![3.0, 4.0]));
        let mut g = Graph::new();
        let wp = g.param(&store, w);
        let sq = g.square(wp);
        let loss = g.sum(sq); // grad = 2w = [6, 8], norm 10
        let mut grads = g.backward(loss);
        assert!((grads.global_norm() - 10.0).abs() < 1e-12);
        let s = grads.clip_global_norm(5.0);
        assert!((s - 0.5).abs() < 1e-12);
        assert!((grads.global_norm() - 5.0).abs() < 1e-12);
        // No further clipping.
        assert_eq!(grads.clip_global_norm(5.0), 1.0);
    }

    #[test]
    fn gradient_wrt_tracked_input() {
        let mut g = Graph::new();
        let x = g.input_with_grad(Matrix::from_vec(1, 2, vec![2.0, 3.0]));
        let sq = g.square(x);
        let loss = g.sum(sq);
        let grads = g.backward(loss);
        let gx = grads.node_grad(x).unwrap();
        assert!(gx.approx_eq(&Matrix::from_vec(1, 2, vec![4.0, 6.0]), 1e-14));
    }
}
