//! Finite-difference gradient checking.
//!
//! Every op in this crate (and the custom ops in `cerl-ot`) is validated by
//! comparing analytic gradients with central differences. The checker
//! perturbs parameter entries one at a time and rebuilds the loss through a
//! user-supplied closure, so it works with any graph construction.

use crate::params::{ParamId, ParamStore};
use cerl_math::Matrix;

/// Report from a finite-difference check.
#[derive(Debug, Clone, Copy)]
pub struct GradCheckReport {
    /// Maximum absolute error over all checked entries.
    pub max_abs_err: f64,
    /// Maximum relative error (denominator `max(|analytic|, |numeric|, 1e-8)`).
    pub max_rel_err: f64,
    /// Number of entries checked.
    pub checked: usize,
}

impl GradCheckReport {
    /// True when the relative error is within `tol`.
    pub fn passes(&self, tol: f64) -> bool {
        self.max_rel_err <= tol
    }
}

/// Compare `analytic` (gradient of the loss w.r.t. parameter `id`) against
/// central finite differences of `loss_fn`.
///
/// `loss_fn` must evaluate the loss from the current store contents without
/// mutating it. `h` is the perturbation size (1e-5 is a good default for
/// f64 and smooth ops).
pub fn check_param_gradient(
    store: &mut ParamStore,
    id: ParamId,
    analytic: &Matrix,
    h: f64,
    mut loss_fn: impl FnMut(&ParamStore) -> f64,
) -> GradCheckReport {
    let shape = store.value(id).shape();
    assert_eq!(
        analytic.shape(),
        shape,
        "check_param_gradient: gradient shape mismatch"
    );
    let mut max_abs = 0.0_f64;
    let mut max_rel = 0.0_f64;
    let mut checked = 0usize;
    for i in 0..shape.0 {
        for j in 0..shape.1 {
            let orig = store.value(id)[(i, j)];
            store.value_mut(id)[(i, j)] = orig + h;
            let lp = loss_fn(store);
            store.value_mut(id)[(i, j)] = orig - h;
            let lm = loss_fn(store);
            store.value_mut(id)[(i, j)] = orig;

            let numeric = (lp - lm) / (2.0 * h);
            let a = analytic[(i, j)];
            let abs_err = (numeric - a).abs();
            let rel_err = abs_err / numeric.abs().max(a.abs()).max(1e-8);
            max_abs = max_abs.max(abs_err);
            max_rel = max_rel.max(rel_err);
            checked += 1;
        }
    }
    GradCheckReport {
        max_abs_err: max_abs,
        max_rel_err: max_rel,
        checked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compose::{cosine_linear, elastic_net_penalty, mean_cosine_distance, mse};
    use crate::graph::Graph;
    use crate::layers::{Activation, CosineDense, Dense, Mlp};
    use cerl_math::Matrix;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rand_matrix(rng: &mut StdRng, r: usize, c: usize) -> Matrix {
        Matrix::from_fn(r, c, |_, _| rng.gen::<f64>() * 2.0 - 1.0)
    }

    /// Generic harness: build loss once for the analytic gradient, then
    /// finite-difference through the same builder.
    fn check(
        store: &mut ParamStore,
        id: ParamId,
        build: impl Fn(&ParamStore, &mut Graph) -> crate::graph::NodeId,
        tol: f64,
    ) {
        let mut g = Graph::new();
        let loss = build(store, &mut g);
        let grads = g.backward(loss);
        let analytic = grads
            .param_grad(id)
            .cloned()
            .unwrap_or_else(|| Matrix::zeros(store.value(id).rows(), store.value(id).cols()));
        let report = check_param_gradient(store, id, &analytic, 1e-5, |s| {
            let mut g = Graph::new();
            let l = build(s, &mut g);
            g.scalar(l)
        });
        assert!(
            report.passes(tol),
            "gradient check failed: max_rel={:.3e} max_abs={:.3e} over {} entries",
            report.max_rel_err,
            report.max_abs_err,
            report.checked
        );
    }

    #[test]
    fn dense_relu_mse_gradients() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut store = ParamStore::new();
        let layer = Dense::new(&mut store, &mut rng, 4, 3, Activation::Relu, "l");
        let x = rand_matrix(&mut rng, 6, 4);
        let y = rand_matrix(&mut rng, 6, 3);
        for pid in layer.params() {
            let (x, y, layer) = (x.clone(), y.clone(), layer.clone());
            check(
                &mut store,
                pid,
                move |s, g| {
                    let xin = g.input(x.clone());
                    let yin = g.input(y.clone());
                    let out = layer.forward(g, s, xin);
                    mse(g, out, yin)
                },
                1e-5,
            );
        }
    }

    #[test]
    fn mlp_tanh_gradients() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(
            &mut store,
            &mut rng,
            &[3, 5, 2],
            Activation::Tanh,
            Activation::Identity,
            "m",
        );
        let x = rand_matrix(&mut rng, 4, 3);
        let y = rand_matrix(&mut rng, 4, 2);
        for pid in mlp.params() {
            let (x, y, mlp) = (x.clone(), y.clone(), mlp.clone());
            check(
                &mut store,
                pid,
                move |s, g| {
                    let xin = g.input(x.clone());
                    let yin = g.input(y.clone());
                    let out = mlp.forward(g, s, xin);
                    mse(g, out, yin)
                },
                1e-5,
            );
        }
    }

    #[test]
    fn cosine_dense_gradients() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut store = ParamStore::new();
        let layer = CosineDense::new(&mut store, &mut rng, 5, 3, Activation::Sigmoid, "c");
        let x = rand_matrix(&mut rng, 7, 5);
        let y = rand_matrix(&mut rng, 7, 3);
        for pid in layer.params() {
            let (x, y, layer) = (x.clone(), y.clone(), layer.clone());
            check(
                &mut store,
                pid,
                move |s, g| {
                    let xin = g.input(x.clone());
                    let yin = g.input(y.clone());
                    let out = layer.forward(g, s, xin);
                    mse(g, out, yin)
                },
                1e-4,
            );
        }
    }

    #[test]
    fn cosine_linear_wrt_both_sides() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut store = ParamStore::new();
        let xw = store.add("x", rand_matrix(&mut rng, 4, 6));
        let ww = store.add("w", rand_matrix(&mut rng, 6, 2));
        for pid in [xw, ww] {
            check(
                &mut store,
                pid,
                move |s, g| {
                    let x = g.param(s, xw);
                    let w = g.param(s, ww);
                    let out = cosine_linear(g, x, w);
                    let sq = g.square(out);
                    g.mean(sq)
                },
                1e-5,
            );
        }
    }

    #[test]
    fn cosine_distance_gradients() {
        let mut rng = StdRng::seed_from_u64(14);
        let mut store = ParamStore::new();
        let a = store.add("a", rand_matrix(&mut rng, 5, 4));
        let bval = rand_matrix(&mut rng, 5, 4);
        check(
            &mut store,
            a,
            move |s, g| {
                let an = g.param(s, a);
                let bn = g.input(bval.clone());
                mean_cosine_distance(g, an, bn)
            },
            1e-5,
        );
    }

    #[test]
    fn elastic_net_gradients() {
        // |w| is non-smooth at 0; keep entries away from 0.
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::from_vec(2, 2, vec![0.5, -0.7, 1.2, -2.0]));
        check(
            &mut store,
            w,
            move |s, g| elastic_net_penalty(g, s, &[w]),
            1e-5,
        );
    }

    #[test]
    fn elu_exp_sigmoid_chain_gradients() {
        let mut rng = StdRng::seed_from_u64(15);
        let mut store = ParamStore::new();
        let w = store.add("w", rand_matrix(&mut rng, 3, 3));
        check(
            &mut store,
            w,
            move |s, g| {
                let wp = g.param(s, w);
                let e = g.elu(wp, 0.7);
                let sg = g.sigmoid(e);
                let ex = g.exp(sg);
                let t = g.tanh(ex);
                g.mean(t)
            },
            1e-5,
        );
    }

    #[test]
    fn select_concat_rowsum_gradients() {
        let mut rng = StdRng::seed_from_u64(16);
        let mut store = ParamStore::new();
        let w = store.add("w", rand_matrix(&mut rng, 5, 3));
        check(
            &mut store,
            w,
            move |s, g| {
                let wp = g.param(s, w);
                let sel = g.select_rows(wp, &[0, 2, 2, 4]);
                let cat = g.concat_rows(sel, wp);
                let rs = g.row_sum(cat);
                let sq = g.square(rs);
                g.mean(sq)
            },
            1e-5,
        );
    }

    #[test]
    fn broadcast_bias_gradients() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut store = ParamStore::new();
        let b = store.add("b", rand_matrix(&mut rng, 1, 4));
        let xval = rand_matrix(&mut rng, 6, 4);
        check(
            &mut store,
            b,
            move |s, g| {
                let x = g.input(xval.clone());
                let bp = g.param(s, b);
                let y = g.add_row_broadcast(x, bp);
                let sq = g.square(y);
                g.sum(sq)
            },
            1e-6,
        );
    }
}
