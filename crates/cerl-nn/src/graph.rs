//! Dynamic computation graph (tape).
//!
//! A fresh `Graph` is built for every training step: leaves are data
//! [`Graph::input`]s and [`Graph::param`]s (copied in from the
//! [`ParamStore`]), interior nodes are created by the op methods, and
//! [`Graph::backward`](crate::backward) walks the tape in reverse. Node ids
//! increase in topological order by construction.

use crate::custom::CustomOp;
use crate::params::{ParamId, ParamStore};
use cerl_math::special::sigmoid;
use cerl_math::{matmul, Matrix};

/// Handle to a node in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// Raw index in the tape.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// Operation recorded on the tape.
pub(crate) enum Op {
    /// Data leaf (no gradient).
    Input,
    /// Trainable leaf; gradients accumulate per [`ParamId`].
    Param(ParamId),
    Add(NodeId, NodeId),
    Sub(NodeId, NodeId),
    Mul(NodeId, NodeId),
    Scale(NodeId, f64),
    AddScalar(NodeId),
    /// `(n×d) + (1×d)` row-broadcast (bias add).
    AddRowBroadcast(NodeId, NodeId),
    MatMul(NodeId, NodeId),
    Relu(NodeId),
    Elu(NodeId, f64),
    Sigmoid(NodeId),
    Tanh(NodeId),
    Square(NodeId),
    Abs(NodeId),
    Exp(NodeId),
    /// Sum of all entries → 1×1.
    Sum(NodeId),
    /// Mean of all entries → 1×1.
    Mean(NodeId),
    /// Row sums: n×d → n×1.
    RowSum(NodeId),
    /// Normalize each row to unit L2 norm (zero rows stay zero).
    RowL2Normalize(NodeId),
    /// Normalize each column to unit L2 norm (zero columns stay zero).
    ColL2Normalize(NodeId),
    /// Gather rows by index (repeats allowed).
    SelectRows(NodeId, Vec<usize>),
    /// Stack rows of the first input on top of the second.
    ConcatRows(NodeId, NodeId),
    /// Externally defined op (see [`CustomOp`]).
    Custom {
        inputs: Vec<NodeId>,
        op: Box<dyn CustomOp>,
    },
}

pub(crate) struct Node {
    pub(crate) value: Matrix,
    pub(crate) op: Op,
    pub(crate) requires_grad: bool,
}

/// Dynamic computation tape.
#[derive(Default)]
pub struct Graph {
    pub(crate) nodes: Vec<Node>,
}

/// Threshold below which a vector is treated as zero during normalization.
pub(crate) const NORM_EPS: f64 = 1e-12;

impl Graph {
    /// Empty tape.
    pub fn new() -> Self {
        Self { nodes: Vec::new() }
    }

    /// Number of nodes on the tape.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Borrow the value of a node.
    pub fn value(&self, id: NodeId) -> &Matrix {
        &self.nodes[id.0].value
    }

    /// Scalar value of a 1×1 node.
    ///
    /// # Panics
    /// If the node is not 1×1.
    pub fn scalar(&self, id: NodeId) -> f64 {
        let v = self.value(id);
        assert_eq!(
            v.shape(),
            (1, 1),
            "scalar: node is {:?}, not 1x1",
            v.shape()
        );
        v[(0, 0)]
    }

    fn push(&mut self, value: Matrix, op: Op, requires_grad: bool) -> NodeId {
        debug_assert!(
            value.all_finite(),
            "non-finite value produced by {}",
            op_name(&op)
        );
        self.nodes.push(Node {
            value,
            op,
            requires_grad,
        });
        NodeId(self.nodes.len() - 1)
    }

    fn rg(&self, id: NodeId) -> bool {
        self.nodes[id.0].requires_grad
    }

    // ---- leaves ------------------------------------------------------

    /// Data leaf (no gradient flows into it, but gradients w.r.t. it are
    /// still computed when requested via `backward_wrt`).
    pub fn input(&mut self, value: Matrix) -> NodeId {
        self.push(value, Op::Input, false)
    }

    /// Data leaf that participates in gradient computation (used by
    /// `cerl-ot` tests and representation-space analyses).
    pub fn input_with_grad(&mut self, value: Matrix) -> NodeId {
        self.push(value, Op::Input, true)
    }

    /// Trainable leaf: copies the parameter's current value onto the tape.
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> NodeId {
        self.push(store.value(id).clone(), Op::Param(id), true)
    }

    // ---- binary elementwise ------------------------------------------

    /// Elementwise sum (same shapes).
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).add(self.value(b));
        let rg = self.rg(a) || self.rg(b);
        self.push(v, Op::Add(a, b), rg)
    }

    /// Elementwise difference (same shapes).
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).sub(self.value(b));
        let rg = self.rg(a) || self.rg(b);
        self.push(v, Op::Sub(a, b), rg)
    }

    /// Hadamard product (same shapes).
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).hadamard(self.value(b));
        let rg = self.rg(a) || self.rg(b);
        self.push(v, Op::Mul(a, b), rg)
    }

    /// Multiply every entry by the constant `c`.
    pub fn scale(&mut self, a: NodeId, c: f64) -> NodeId {
        let v = self.value(a).scale(c);
        let rg = self.rg(a);
        self.push(v, Op::Scale(a, c), rg)
    }

    /// Add the constant `c` to every entry.
    pub fn add_scalar(&mut self, a: NodeId, c: f64) -> NodeId {
        let v = self.value(a).map(|x| x + c);
        let rg = self.rg(a);
        self.push(v, Op::AddScalar(a), rg)
    }

    /// `(n×d) + (1×d)` bias broadcast over rows.
    pub fn add_row_broadcast(&mut self, m: NodeId, bias: NodeId) -> NodeId {
        let (mv, bv) = (self.value(m), self.value(bias));
        assert_eq!(bv.rows(), 1, "add_row_broadcast: bias must be 1×d");
        assert_eq!(mv.cols(), bv.cols(), "add_row_broadcast: width mismatch");
        let mut v = mv.clone();
        for i in 0..v.rows() {
            let row = v.row_mut(i);
            for (x, &b) in row.iter_mut().zip(bv.row(0)) {
                *x += b;
            }
        }
        let rg = self.rg(m) || self.rg(bias);
        self.push(v, Op::AddRowBroadcast(m, bias), rg)
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = matmul(self.value(a), self.value(b));
        let rg = self.rg(a) || self.rg(b);
        self.push(v, Op::MatMul(a, b), rg)
    }

    // ---- unary elementwise -------------------------------------------

    /// Rectified linear unit.
    pub fn relu(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map(|x| x.max(0.0));
        let rg = self.rg(a);
        self.push(v, Op::Relu(a), rg)
    }

    /// Exponential linear unit with slope `alpha` on the negative side.
    pub fn elu(&mut self, a: NodeId, alpha: f64) -> NodeId {
        let v = self
            .value(a)
            .map(|x| if x > 0.0 { x } else { alpha * (x.exp() - 1.0) });
        let rg = self.rg(a);
        self.push(v, Op::Elu(a, alpha), rg)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map(sigmoid);
        let rg = self.rg(a);
        self.push(v, Op::Sigmoid(a), rg)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map(f64::tanh);
        let rg = self.rg(a);
        self.push(v, Op::Tanh(a), rg)
    }

    /// Elementwise square.
    pub fn square(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map(|x| x * x);
        let rg = self.rg(a);
        self.push(v, Op::Square(a), rg)
    }

    /// Elementwise absolute value (subgradient 0 at 0).
    pub fn abs(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map(f64::abs);
        let rg = self.rg(a);
        self.push(v, Op::Abs(a), rg)
    }

    /// Elementwise exponential.
    pub fn exp(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map(f64::exp);
        let rg = self.rg(a);
        self.push(v, Op::Exp(a), rg)
    }

    // ---- reductions ---------------------------------------------------

    /// Sum of all entries → 1×1.
    pub fn sum(&mut self, a: NodeId) -> NodeId {
        let v = Matrix::filled(1, 1, self.value(a).sum());
        let rg = self.rg(a);
        self.push(v, Op::Sum(a), rg)
    }

    /// Mean of all entries → 1×1 (0 for an empty input).
    pub fn mean(&mut self, a: NodeId) -> NodeId {
        let v = Matrix::filled(1, 1, self.value(a).mean());
        let rg = self.rg(a);
        self.push(v, Op::Mean(a), rg)
    }

    /// Row sums: n×d → n×1.
    pub fn row_sum(&mut self, a: NodeId) -> NodeId {
        let av = self.value(a);
        let v = Matrix::from_fn(av.rows(), 1, |i, _| av.row(i).iter().sum());
        let rg = self.rg(a);
        self.push(v, Op::RowSum(a), rg)
    }

    // ---- normalizations -----------------------------------------------

    /// Normalize each row to unit L2 norm; rows with norm below `1e-12`
    /// are output as zero.
    pub fn row_l2_normalize(&mut self, a: NodeId) -> NodeId {
        let av = self.value(a);
        let mut v = av.clone();
        for i in 0..v.rows() {
            let n = cerl_math::norms::l2_norm(v.row(i));
            let row = v.row_mut(i);
            if n > NORM_EPS {
                row.iter_mut().for_each(|x| *x /= n);
            } else {
                row.iter_mut().for_each(|x| *x = 0.0);
            }
        }
        let rg = self.rg(a);
        self.push(v, Op::RowL2Normalize(a), rg)
    }

    /// Normalize each column to unit L2 norm; columns with norm below
    /// `1e-12` are output as zero.
    pub fn col_l2_normalize(&mut self, a: NodeId) -> NodeId {
        let av = self.value(a);
        let (r, c) = av.shape();
        let mut norms = vec![0.0; c];
        for i in 0..r {
            for (j, &x) in av.row(i).iter().enumerate() {
                norms[j] += x * x;
            }
        }
        norms.iter_mut().for_each(|n| *n = n.sqrt());
        let mut v = av.clone();
        for i in 0..r {
            let row = v.row_mut(i);
            for (j, x) in row.iter_mut().enumerate() {
                if norms[j] > NORM_EPS {
                    *x /= norms[j];
                } else {
                    *x = 0.0;
                }
            }
        }
        let rg = self.rg(a);
        self.push(v, Op::ColL2Normalize(a), rg)
    }

    // ---- shape ops ------------------------------------------------------

    /// Gather rows by index (repeats allowed).
    pub fn select_rows(&mut self, a: NodeId, indices: &[usize]) -> NodeId {
        let v = self.value(a).select_rows(indices);
        let rg = self.rg(a);
        self.push(v, Op::SelectRows(a, indices.to_vec()), rg)
    }

    /// Stack rows: `a` on top of `b` (same column count).
    pub fn concat_rows(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).vstack(self.value(b));
        let rg = self.rg(a) || self.rg(b);
        self.push(v, Op::ConcatRows(a, b), rg)
    }

    // ---- extension -----------------------------------------------------

    /// Insert an externally defined differentiable op.
    pub fn custom(&mut self, inputs: &[NodeId], mut op: Box<dyn CustomOp>) -> NodeId {
        let in_values: Vec<&Matrix> = inputs.iter().map(|&i| self.value(i)).collect();
        let value = op.forward(&in_values);
        let rg = inputs.iter().any(|&i| self.rg(i));
        self.push(
            value,
            Op::Custom {
                inputs: inputs.to_vec(),
                op,
            },
            rg,
        )
    }
}

pub(crate) fn op_name(op: &Op) -> &'static str {
    match op {
        Op::Input => "Input",
        Op::Param(_) => "Param",
        Op::Add(..) => "Add",
        Op::Sub(..) => "Sub",
        Op::Mul(..) => "Mul",
        Op::Scale(..) => "Scale",
        Op::AddScalar(..) => "AddScalar",
        Op::AddRowBroadcast(..) => "AddRowBroadcast",
        Op::MatMul(..) => "MatMul",
        Op::Relu(_) => "Relu",
        Op::Elu(..) => "Elu",
        Op::Sigmoid(_) => "Sigmoid",
        Op::Tanh(_) => "Tanh",
        Op::Square(_) => "Square",
        Op::Abs(_) => "Abs",
        Op::Exp(_) => "Exp",
        Op::Sum(_) => "Sum",
        Op::Mean(_) => "Mean",
        Op::RowSum(_) => "RowSum",
        Op::RowL2Normalize(_) => "RowL2Normalize",
        Op::ColL2Normalize(_) => "ColL2Normalize",
        Op::SelectRows(..) => "SelectRows",
        Op::ConcatRows(..) => "ConcatRows",
        Op::Custom { op, .. } => op.name(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_values() {
        let mut g = Graph::new();
        let a = g.input(Matrix::from_vec(1, 3, vec![1.0, -2.0, 3.0]));
        let b = g.input(Matrix::from_vec(1, 3, vec![0.5, 0.5, 0.5]));

        let s = g.add(a, b);
        assert_eq!(g.value(s).as_slice(), &[1.5, -1.5, 3.5]);

        let d = g.sub(a, b);
        assert_eq!(g.value(d).as_slice(), &[0.5, -2.5, 2.5]);

        let m = g.mul(a, b);
        assert_eq!(g.value(m).as_slice(), &[0.5, -1.0, 1.5]);

        let sc = g.scale(a, 2.0);
        assert_eq!(g.value(sc).as_slice(), &[2.0, -4.0, 6.0]);

        let r = g.relu(a);
        assert_eq!(g.value(r).as_slice(), &[1.0, 0.0, 3.0]);

        let q = g.square(a);
        assert_eq!(g.value(q).as_slice(), &[1.0, 4.0, 9.0]);

        let ab = g.abs(a);
        assert_eq!(g.value(ab).as_slice(), &[1.0, 2.0, 3.0]);

        let sm = g.sum(a);
        assert_eq!(g.scalar(sm), 2.0);

        let mn = g.mean(a);
        assert!((g.scalar(mn) - 2.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn matmul_and_bias() {
        let mut g = Graph::new();
        let x = g.input(Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]));
        let w = g.input(Matrix::from_rows(&[
            vec![1.0, 0.0, 1.0],
            vec![0.0, 1.0, 1.0],
        ]));
        let b = g.input(Matrix::from_vec(1, 3, vec![10.0, 20.0, 30.0]));
        let xw = g.matmul(x, w);
        assert_eq!(g.value(xw).row(0), &[1.0, 2.0, 3.0]);
        let y = g.add_row_broadcast(xw, b);
        assert_eq!(g.value(y).row(0), &[11.0, 22.0, 33.0]);
        assert_eq!(g.value(y).row(1), &[13.0, 24.0, 37.0]);
    }

    #[test]
    fn normalizations() {
        let mut g = Graph::new();
        let x = g.input(Matrix::from_rows(&[vec![3.0, 4.0], vec![0.0, 0.0]]));
        let rn = g.row_l2_normalize(x);
        assert!((g.value(rn)[(0, 0)] - 0.6).abs() < 1e-15);
        assert_eq!(g.value(rn).row(1), &[0.0, 0.0]);

        let y = g.input(Matrix::from_rows(&[vec![3.0, 0.0], vec![4.0, 0.0]]));
        let cn = g.col_l2_normalize(y);
        assert!((g.value(cn)[(0, 0)] - 0.6).abs() < 1e-15);
        assert!((g.value(cn)[(1, 0)] - 0.8).abs() < 1e-15);
        assert_eq!(g.value(cn)[(0, 1)], 0.0);
    }

    #[test]
    fn select_and_concat() {
        let mut g = Graph::new();
        let x = g.input(Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]));
        let s = g.select_rows(x, &[2, 0]);
        assert_eq!(g.value(s).as_slice(), &[3.0, 1.0]);
        let c = g.concat_rows(x, s);
        assert_eq!(g.value(c).as_slice(), &[1.0, 2.0, 3.0, 3.0, 1.0]);
    }

    #[test]
    fn requires_grad_propagates() {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::identity(2));
        let mut g = Graph::new();
        let x = g.input(Matrix::identity(2));
        let p = g.param(&store, w);
        let xy = g.matmul(x, p);
        let no_grad = g.add(x, x);
        assert!(g.rg(xy));
        assert!(!g.rg(no_grad));
    }

    #[test]
    #[should_panic(expected = "not 1x1")]
    fn scalar_requires_1x1() {
        let mut g = Graph::new();
        let x = g.input(Matrix::zeros(2, 2));
        let _ = g.scalar(x);
    }
}
