//! # cerl-nn
//!
//! Tape-based reverse-mode autodiff and small-network toolkit for the CERL
//! workspace. The paper's models are MLPs with a cosine-normalized final
//! representation layer (Eq. 2), elastic-net regularization (Eq. 1), and
//! several cosine-similarity losses (Eqs. 6–7); this crate provides exactly
//! those pieces on top of `cerl-math`:
//!
//! * [`graph`] — dynamic computation tape ([`Graph`], [`NodeId`]).
//! * [`backward`] — reverse sweep and [`Gradients`].
//! * [`params`] — [`ParamStore`] with Xavier/He initialization.
//! * [`layers`] — [`Dense`], [`CosineDense`], [`Mlp`], [`Activation`].
//! * [`compose`] — MSE, elastic net, cosine-distance losses.
//! * [`optim`] — [`Sgd`], [`Adam`], schedules.
//! * [`custom`] — [`CustomOp`] extension point (used by `cerl-ot`).
//! * [`gradcheck`] — finite-difference validation harness.
//!
//! Every op's gradient is covered by a finite-difference test; see
//! `gradcheck::tests`.

#![warn(missing_docs)]

pub mod backward;
pub mod compose;
pub mod custom;
pub mod gradcheck;
pub mod graph;
pub mod layers;
pub mod optim;
pub mod params;

pub use backward::Gradients;
pub use custom::CustomOp;
pub use graph::{Graph, NodeId};
pub use layers::{Activation, CosineDense, Dense, Mlp};
pub use optim::{Adam, ExponentialDecay, Optimizer, RmsProp, Sgd};
pub use params::{ParamId, ParamStore};
