//! Named parameter storage and initialization.
//!
//! Parameters live outside the [`crate::graph::Graph`] so a fresh tape can be
//! built every training step (dynamic graphs) while weights persist. Each
//! parameter is a dense matrix identified by a [`ParamId`].

use cerl_math::Matrix;
use cerl_rand::StandardNormal;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Handle to a parameter inside a [`ParamStore`].
///
/// Serializes transparently as its raw index; a deserialized id is only
/// meaningful against the [`ParamStore`] snapshot it was saved with (the
/// model-snapshot layer in `cerl-core` re-validates ids on load).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// Raw index (stable for the lifetime of the store).
    pub fn index(&self) -> usize {
        self.0
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Param {
    name: String,
    value: Matrix,
}

/// Collection of named, trainable matrices.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ParamStore {
    params: Vec<Param>,
}

impl ParamStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a parameter; names are for diagnostics and need not be unique.
    pub fn add(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        self.params.push(Param {
            name: name.into(),
            value,
        });
        ParamId(self.params.len() - 1)
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Borrow a parameter's value.
    pub fn value(&self, id: ParamId) -> &Matrix {
        &self.params[id.0].value
    }

    /// Mutably borrow a parameter's value.
    pub fn value_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.params[id.0].value
    }

    /// Parameter name.
    pub fn name(&self, id: ParamId) -> &str {
        &self.params[id.0].name
    }

    /// Iterate over `(id, name, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &str, &Matrix)> {
        self.params
            .iter()
            .enumerate()
            .map(|(i, p)| (ParamId(i), p.name.as_str(), &p.value))
    }

    /// All parameter ids.
    pub fn ids(&self) -> Vec<ParamId> {
        (0..self.params.len()).map(ParamId).collect()
    }

    /// Total number of scalar weights across all parameters.
    pub fn num_scalars(&self) -> usize {
        self.params.iter().map(|p| p.value.len()).sum()
    }

    /// Overwrite a parameter's value (shape must match).
    pub fn set(&mut self, id: ParamId, value: Matrix) {
        assert_eq!(
            self.params[id.0].value.shape(),
            value.shape(),
            "ParamStore::set: shape mismatch for '{}'",
            self.params[id.0].name
        );
        self.params[id.0].value = value;
    }

    /// Deep-copy the values of `ids` (used to snapshot the previous model
    /// `g_{w_{d-1}}` during continual training).
    pub fn snapshot(&self, ids: &[ParamId]) -> Vec<Matrix> {
        ids.iter().map(|&id| self.value(id).clone()).collect()
    }

    /// Restore values captured with [`ParamStore::snapshot`].
    pub fn restore(&mut self, ids: &[ParamId], values: &[Matrix]) {
        assert_eq!(
            ids.len(),
            values.len(),
            "ParamStore::restore: length mismatch"
        );
        for (&id, v) in ids.iter().zip(values) {
            self.set(id, v.clone());
        }
    }
}

/// Xavier/Glorot uniform initialization: `U(−a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform<R: Rng + ?Sized>(rng: &mut R, rows: usize, cols: usize) -> Matrix {
    let a = (6.0 / (rows + cols) as f64).sqrt();
    Matrix::from_fn(rows, cols, |_, _| rng.gen::<f64>() * 2.0 * a - a)
}

/// He normal initialization: `N(0, 2/fan_in)` (for ReLU-family activations).
pub fn he_normal<R: Rng + ?Sized>(rng: &mut R, rows: usize, cols: usize) -> Matrix {
    let sd = (2.0 / rows as f64).sqrt();
    let mut sn = StandardNormal::new();
    Matrix::from_fn(rows, cols, |_, _| sn.sample(rng) * sd)
}

/// Zero initialization (biases).
pub fn zeros(rows: usize, cols: usize) -> Matrix {
    Matrix::zeros(rows, cols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn add_and_access() {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::identity(2));
        let b = store.add("b", Matrix::zeros(1, 2));
        assert_eq!(store.len(), 2);
        assert_eq!(store.name(w), "w");
        assert_eq!(store.value(b).shape(), (1, 2));
        assert_eq!(store.num_scalars(), 6);

        store.value_mut(w)[(0, 1)] = 5.0;
        assert_eq!(store.value(w)[(0, 1)], 5.0);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::filled(2, 2, 1.0));
        let snap = store.snapshot(&[w]);
        store.value_mut(w)[(0, 0)] = -9.0;
        store.restore(&[w], &snap);
        assert_eq!(store.value(w)[(0, 0)], 1.0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn set_rejects_shape_change() {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::zeros(2, 2));
        store.set(w, Matrix::zeros(3, 2));
    }

    #[test]
    fn xavier_bounds_and_spread() {
        let mut rng = StdRng::seed_from_u64(8);
        let m = xavier_uniform(&mut rng, 100, 50);
        let a = (6.0 / 150.0_f64).sqrt();
        assert!(m.as_slice().iter().all(|&v| v.abs() <= a));
        // Not degenerate.
        assert!(m.as_slice().iter().any(|&v| v.abs() > a * 0.5));
    }

    #[test]
    fn he_normal_variance() {
        let mut rng = StdRng::seed_from_u64(9);
        let m = he_normal(&mut rng, 200, 100);
        let var = m.as_slice().iter().map(|v| v * v).sum::<f64>() / m.len() as f64;
        assert!((var - 2.0 / 200.0).abs() < 0.002, "var={var}");
    }
}
