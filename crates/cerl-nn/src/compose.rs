//! Composite operations built from graph primitives: losses, penalties, and
//! the cosine-normalization building blocks from the paper.
//!
//! * Eq. (1): elastic net `‖w‖₂² + ‖w‖₁` — [`elastic_net_penalty`].
//! * Eq. (2): cosine normalization `r = σ(cos(w, x))` — [`cosine_linear`].
//! * Eq. (4)/(8): factual mean squared error — [`mse`].
//! * Eq. (6)/(7): `1 − cos(a, b)` distillation/transformation losses —
//!   [`mean_cosine_distance`].

use crate::graph::{Graph, NodeId};
use crate::params::{ParamId, ParamStore};

/// Mean squared error `mean((pred − target)²)` → scalar node.
pub fn mse(g: &mut Graph, pred: NodeId, target: NodeId) -> NodeId {
    let diff = g.sub(pred, target);
    let sq = g.square(diff);
    g.mean(sq)
}

/// Squared L2 penalty `‖w‖₂²` of a parameter node → scalar node.
pub fn l2_penalty(g: &mut Graph, w: NodeId) -> NodeId {
    let sq = g.square(w);
    g.sum(sq)
}

/// L1 penalty `‖w‖₁` of a parameter node → scalar node.
pub fn l1_penalty(g: &mut Graph, w: NodeId) -> NodeId {
    let a = g.abs(w);
    g.sum(a)
}

/// Elastic net `Σ_p (‖p‖₂² + ‖p‖₁)` over the given parameters (Eq. 1).
///
/// Returns a scalar node; with an empty list returns a zero node.
pub fn elastic_net_penalty(g: &mut Graph, store: &ParamStore, params: &[ParamId]) -> NodeId {
    let mut acc: Option<NodeId> = None;
    for &pid in params {
        let w = g.param(store, pid);
        let l2 = l2_penalty(g, w);
        let l1 = l1_penalty(g, w);
        let term = g.add(l2, l1);
        acc = Some(match acc {
            Some(a) => g.add(a, term),
            None => term,
        });
    }
    acc.unwrap_or_else(|| g.input(cerl_math::Matrix::zeros(1, 1)))
}

/// Row-wise cosine similarity between two `n × d` nodes → `n × 1` node.
///
/// Rows with zero norm contribute similarity 0.
pub fn row_cosine_similarity(g: &mut Graph, a: NodeId, b: NodeId) -> NodeId {
    let an = g.row_l2_normalize(a);
    let bn = g.row_l2_normalize(b);
    let prod = g.mul(an, bn);
    g.row_sum(prod)
}

/// Mean cosine distance `mean_i (1 − cos(a_i, b_i))` → scalar node.
///
/// This is the feature-representation distillation loss `L_FD` (Eq. 6) and
/// the transformation loss `L_FT` (Eq. 7) of the paper.
pub fn mean_cosine_distance(g: &mut Graph, a: NodeId, b: NodeId) -> NodeId {
    let cos = row_cosine_similarity(g, a, b);
    let mean_cos = g.mean(cos);
    let neg = g.scale(mean_cos, -1.0);
    g.add_scalar(neg, 1.0)
}

/// Mean squared Euclidean distance between paired rows:
/// `mean_i ‖a_i − b_i‖²` → scalar node.
///
/// For unit-normalized rows this equals `2·mean_i (1 − cos(a_i, b_i))`
/// (the identity the paper invokes for Eq. 6); for bounded sigmoid
/// representations it is the form that actually pins vectors pointwise,
/// whereas the raw cosine distance only constrains directions.
pub fn mean_squared_distance(g: &mut Graph, a: NodeId, b: NodeId) -> NodeId {
    let diff = g.sub(a, b);
    let sq = g.square(diff);
    let per_row = g.row_sum(sq);
    g.mean(per_row)
}

/// Cosine-normalized linear map (Eq. 2 without the activation):
/// `out[i,j] = cos(x_i, w_{·j})` for input rows `x_i` and weight columns
/// `w_{·j}`. Entries are bounded in `[-1, 1]`, which is what controls the
/// pre-activation variance across domains of very different magnitudes.
pub fn cosine_linear(g: &mut Graph, x: NodeId, w: NodeId) -> NodeId {
    let xn = g.row_l2_normalize(x);
    let wn = g.col_l2_normalize(w);
    g.matmul(xn, wn)
}

/// Weighted sum of scalar nodes `Σ cᵢ·termᵢ` → scalar node.
///
/// Terms with weight exactly 0 are skipped entirely (their subgraphs still
/// exist but contribute no gradient). With an empty list returns a zero node.
pub fn weighted_sum(g: &mut Graph, terms: &[(NodeId, f64)]) -> NodeId {
    let mut acc: Option<NodeId> = None;
    for &(node, c) in terms {
        if c == 0.0 {
            continue;
        }
        let scaled = if c == 1.0 { node } else { g.scale(node, c) };
        acc = Some(match acc {
            Some(a) => g.add(a, scaled),
            None => scaled,
        });
    }
    acc.unwrap_or_else(|| g.input(cerl_math::Matrix::zeros(1, 1)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cerl_math::Matrix;

    #[test]
    fn mse_value() {
        let mut g = Graph::new();
        let p = g.input(Matrix::from_vec(2, 1, vec![1.0, 3.0]));
        let t = g.input(Matrix::from_vec(2, 1, vec![0.0, 1.0]));
        let l = mse(&mut g, p, t);
        assert!((g.scalar(l) - 2.5).abs() < 1e-14); // (1 + 4)/2
    }

    #[test]
    fn penalties() {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::from_vec(1, 3, vec![1.0, -2.0, 2.0]));
        let mut g = Graph::new();
        let en = elastic_net_penalty(&mut g, &store, &[w]);
        // L2² = 1+4+4 = 9; L1 = 5; total 14
        assert!((g.scalar(en) - 14.0).abs() < 1e-14);
    }

    #[test]
    fn empty_penalty_is_zero() {
        let store = ParamStore::new();
        let mut g = Graph::new();
        let en = elastic_net_penalty(&mut g, &store, &[]);
        assert_eq!(g.scalar(en), 0.0);
    }

    #[test]
    fn cosine_similarity_rows() {
        let mut g = Graph::new();
        let a = g.input(Matrix::from_rows(&[
            vec![1.0, 0.0],
            vec![1.0, 1.0],
            vec![0.0, 0.0],
        ]));
        let b = g.input(Matrix::from_rows(&[
            vec![1.0, 0.0],
            vec![-1.0, -1.0],
            vec![1.0, 2.0],
        ]));
        let cs = row_cosine_similarity(&mut g, a, b);
        let v = g.value(cs);
        assert!((v[(0, 0)] - 1.0).abs() < 1e-12);
        assert!((v[(1, 0)] + 1.0).abs() < 1e-12);
        assert_eq!(v[(2, 0)], 0.0); // zero row → similarity 0
    }

    #[test]
    fn cosine_distance_range() {
        let mut g = Graph::new();
        let a = g.input(Matrix::from_rows(&[vec![1.0, 0.0]]));
        let b = g.input(Matrix::from_rows(&[vec![0.0, 1.0]]));
        let d = mean_cosine_distance(&mut g, a, b);
        assert!((g.scalar(d) - 1.0).abs() < 1e-12); // orthogonal → distance 1

        let mut g2 = Graph::new();
        let a2 = g2.input(Matrix::from_rows(&[vec![2.0, 0.0]]));
        let b2 = g2.input(Matrix::from_rows(&[vec![1.0, 0.0]]));
        let d2 = mean_cosine_distance(&mut g2, a2, b2);
        assert!(g2.scalar(d2).abs() < 1e-12); // parallel → distance 0
    }

    #[test]
    fn cosine_linear_bounded() {
        let mut g = Graph::new();
        // Large-magnitude inputs: outputs must stay in [-1, 1].
        let x = g.input(Matrix::from_rows(&[vec![1e6, -2e6], vec![3e5, 4e5]]));
        let w = g.input(Matrix::from_rows(&[vec![100.0, -5.0], vec![-20.0, 7.0]]));
        let out = cosine_linear(&mut g, x, w);
        for i in 0..2 {
            for j in 0..2 {
                let v = g.value(out)[(i, j)];
                assert!(
                    (-1.0 - 1e-12..=1.0 + 1e-12).contains(&v),
                    "out[{i},{j}]={v}"
                );
            }
        }
    }

    #[test]
    fn weighted_sum_combines() {
        let mut g = Graph::new();
        let a = g.input(Matrix::filled(1, 1, 2.0));
        let b = g.input(Matrix::filled(1, 1, 3.0));
        let c = g.input(Matrix::filled(1, 1, 100.0));
        let s = weighted_sum(&mut g, &[(a, 1.0), (b, 0.5), (c, 0.0)]);
        assert!((g.scalar(s) - 3.5).abs() < 1e-14);

        let empty = weighted_sum(&mut g, &[]);
        assert_eq!(g.scalar(empty), 0.0);
    }
}
