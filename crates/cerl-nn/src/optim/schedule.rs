//! Learning-rate schedules.

/// Exponential decay: `lr(e) = lr₀ · γ^{⌊e / every⌋}`.
#[derive(Debug, Clone, Copy)]
pub struct ExponentialDecay {
    initial: f64,
    gamma: f64,
    every: usize,
}

impl ExponentialDecay {
    /// Construct; `gamma ∈ (0, 1]`, decay applied every `every` epochs.
    pub fn new(initial: f64, gamma: f64, every: usize) -> Self {
        assert!(
            initial > 0.0,
            "ExponentialDecay: initial lr must be positive"
        );
        assert!(
            gamma > 0.0 && gamma <= 1.0,
            "ExponentialDecay: gamma in (0,1]"
        );
        assert!(every > 0, "ExponentialDecay: every must be >= 1");
        Self {
            initial,
            gamma,
            every,
        }
    }

    /// Learning rate at the given epoch (0-based).
    pub fn at(&self, epoch: usize) -> f64 {
        self.initial * self.gamma.powi((epoch / self.every) as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steps_down() {
        let s = ExponentialDecay::new(1.0, 0.5, 10);
        assert_eq!(s.at(0), 1.0);
        assert_eq!(s.at(9), 1.0);
        assert_eq!(s.at(10), 0.5);
        assert_eq!(s.at(25), 0.25);
    }

    #[test]
    fn gamma_one_is_constant() {
        let s = ExponentialDecay::new(0.3, 1.0, 5);
        assert_eq!(s.at(100), 0.3);
    }
}
