//! First-order optimizers over a [`ParamStore`].

mod adam;
mod rmsprop;
mod schedule;
mod sgd;

pub use adam::Adam;
pub use rmsprop::RmsProp;
pub use schedule::ExponentialDecay;
pub use sgd::Sgd;

use crate::backward::Gradients;
use crate::params::{ParamId, ParamStore};

/// A stateful first-order optimizer.
pub trait Optimizer {
    /// Apply one update to `params` using `grads`; parameters without a
    /// gradient are left untouched.
    fn step(&mut self, store: &mut ParamStore, grads: &Gradients, params: &[ParamId]);

    /// Current learning rate.
    fn learning_rate(&self) -> f64;

    /// Override the learning rate (used by schedules).
    fn set_learning_rate(&mut self, lr: f64);
}
