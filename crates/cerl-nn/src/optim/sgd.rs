//! Stochastic gradient descent with classical momentum.

use super::Optimizer;
use crate::backward::Gradients;
use crate::params::{ParamId, ParamStore};
use cerl_math::Matrix;
use std::collections::HashMap;

/// SGD with momentum: `v ← μv − η·g`, `w ← w + v`.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f64,
    momentum: f64,
    velocity: HashMap<usize, Matrix>,
}

impl Sgd {
    /// Plain SGD (no momentum).
    pub fn new(lr: f64) -> Self {
        Self::with_momentum(lr, 0.0)
    }

    /// SGD with momentum `μ ∈ [0, 1)`.
    pub fn with_momentum(lr: f64, momentum: f64) -> Self {
        assert!(lr > 0.0, "Sgd: learning rate must be positive");
        assert!(
            (0.0..1.0).contains(&momentum),
            "Sgd: momentum must be in [0,1)"
        );
        Self {
            lr,
            momentum,
            velocity: HashMap::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, store: &mut ParamStore, grads: &Gradients, params: &[ParamId]) {
        for &pid in params {
            let Some(g) = grads.param_grad(pid) else {
                continue;
            };
            if self.momentum == 0.0 {
                store.value_mut(pid).axpy(-self.lr, g);
            } else {
                let v = self
                    .velocity
                    .entry(pid.index())
                    .or_insert_with(|| Matrix::zeros(g.rows(), g.cols()));
                v.scale_inplace(self.momentum);
                v.axpy(-self.lr, g);
                let delta = v.clone();
                store.value_mut(pid).add_assign(&delta);
            }
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    /// Minimize f(w) = sum((w - 3)²) from w = 0.
    fn quadratic_descent(opt: &mut dyn Optimizer, steps: usize) -> f64 {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::zeros(1, 1));
        for _ in 0..steps {
            let mut g = Graph::new();
            let wp = g.param(&store, w);
            let target = g.input(Matrix::filled(1, 1, 3.0));
            let loss = crate::compose::mse(&mut g, wp, target);
            let grads = g.backward(loss);
            opt.step(&mut store, &grads, &[w]);
        }
        store.value(w)[(0, 0)]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.3);
        let w = quadratic_descent(&mut opt, 50);
        assert!((w - 3.0).abs() < 1e-6, "w={w}");
    }

    #[test]
    fn momentum_converges_on_quadratic() {
        let mut opt = Sgd::with_momentum(0.1, 0.9);
        let w = quadratic_descent(&mut opt, 200);
        assert!((w - 3.0).abs() < 1e-4, "w={w}");
    }

    #[test]
    fn missing_grads_leave_params_alone() {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::filled(1, 1, 7.0));
        let u = store.add("unused", Matrix::filled(1, 1, 5.0));
        let mut g = Graph::new();
        let wp = g.param(&store, w);
        let sq = g.square(wp);
        let loss = g.sum(sq);
        let grads = g.backward(loss);
        let mut opt = Sgd::new(0.1);
        opt.step(&mut store, &grads, &[w, u]);
        assert_eq!(store.value(u)[(0, 0)], 5.0);
        assert!(store.value(w)[(0, 0)] < 7.0);
    }

    #[test]
    fn lr_accessors() {
        let mut opt = Sgd::new(0.5);
        assert_eq!(opt.learning_rate(), 0.5);
        opt.set_learning_rate(0.1);
        assert_eq!(opt.learning_rate(), 0.1);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_bad_lr() {
        let _ = Sgd::new(0.0);
    }
}
