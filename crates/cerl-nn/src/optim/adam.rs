//! Adam optimizer (Kingma & Ba, 2015) with optional decoupled weight decay.

use super::Optimizer;
use crate::backward::Gradients;
use crate::params::{ParamId, ParamStore};
use cerl_math::Matrix;
use std::collections::HashMap;

/// Adam with bias correction; `weight_decay` is decoupled (AdamW-style).
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    weight_decay: f64,
    t: u64,
    m: HashMap<usize, Matrix>,
    v: HashMap<usize, Matrix>,
}

impl Adam {
    /// Adam with standard hyper-parameters (β₁ = 0.9, β₂ = 0.999, ε = 1e-8).
    pub fn new(lr: f64) -> Self {
        Self::with_config(lr, 0.9, 0.999, 1e-8, 0.0)
    }

    /// Fully parameterized construction.
    pub fn with_config(lr: f64, beta1: f64, beta2: f64, eps: f64, weight_decay: f64) -> Self {
        assert!(lr > 0.0, "Adam: learning rate must be positive");
        assert!(
            (0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2),
            "Adam: betas in [0,1)"
        );
        assert!(eps > 0.0, "Adam: eps must be positive");
        assert!(
            weight_decay >= 0.0,
            "Adam: weight decay must be non-negative"
        );
        Self {
            lr,
            beta1,
            beta2,
            eps,
            weight_decay,
            t: 0,
            m: HashMap::new(),
            v: HashMap::new(),
        }
    }

    /// Reset step count and moment estimates (used when reusing an
    /// optimizer across training phases).
    pub fn reset(&mut self) {
        self.t = 0;
        self.m.clear();
        self.v.clear();
    }
}

impl Optimizer for Adam {
    fn step(&mut self, store: &mut ParamStore, grads: &Gradients, params: &[ParamId]) {
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for &pid in params {
            let Some(g) = grads.param_grad(pid) else {
                continue;
            };
            let m = self
                .m
                .entry(pid.index())
                .or_insert_with(|| Matrix::zeros(g.rows(), g.cols()));
            m.scale_inplace(self.beta1);
            m.axpy(1.0 - self.beta1, g);
            let v = self
                .v
                .entry(pid.index())
                .or_insert_with(|| Matrix::zeros(g.rows(), g.cols()));
            v.scale_inplace(self.beta2);
            let g2 = g.map(|x| x * x);
            v.axpy(1.0 - self.beta2, &g2);

            let w = store.value_mut(pid);
            let lr = self.lr;
            if self.weight_decay > 0.0 {
                w.scale_inplace(1.0 - lr * self.weight_decay);
            }
            for ((wi, mi), vi) in w
                .as_mut_slice()
                .iter_mut()
                .zip(m.as_slice())
                .zip(v.as_slice())
            {
                let mhat = mi / b1t;
                let vhat = vi / b2t;
                *wi -= lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    #[test]
    fn adam_converges_on_quadratic() {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::from_vec(1, 2, vec![-4.0, 8.0]));
        let target = Matrix::from_vec(1, 2, vec![1.0, -2.0]);
        let mut opt = Adam::new(0.1);
        for _ in 0..500 {
            let mut g = Graph::new();
            let wp = g.param(&store, w);
            let t = g.input(target.clone());
            let loss = crate::compose::mse(&mut g, wp, t);
            let grads = g.backward(loss);
            opt.step(&mut store, &grads, &[w]);
        }
        assert!(
            store.value(w).approx_eq(&target, 1e-3),
            "{:?}",
            store.value(w)
        );
    }

    #[test]
    fn adam_handles_poorly_scaled_problems() {
        // f(w) = 1000 (w0 - 1)² + 0.001 (w1 - 1)²: plain SGD struggles,
        // Adam's per-coordinate scaling copes.
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::zeros(1, 2));
        let mut opt = Adam::new(0.05);
        for _ in 0..2000 {
            let mut g = Graph::new();
            let wp = g.param(&store, w);
            let ones = g.input(Matrix::ones(1, 2));
            let diff = g.sub(wp, ones);
            let sq = g.square(diff);
            let scalew = g.input(Matrix::from_vec(1, 2, vec![1000.0, 0.001]));
            let weighted = g.mul(sq, scalew);
            let loss = g.sum(weighted);
            let grads = g.backward(loss);
            opt.step(&mut store, &grads, &[w]);
        }
        let v = store.value(w);
        assert!((v[(0, 0)] - 1.0).abs() < 1e-2, "{v:?}");
        assert!((v[(0, 1)] - 1.0).abs() < 0.2, "{v:?}");
    }

    #[test]
    fn weight_decay_shrinks_unused_params() {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::filled(1, 1, 2.0));
        let mut opt = Adam::with_config(0.1, 0.9, 0.999, 1e-8, 0.1);
        // Loss gradient ~0 but weight decay still shrinks w.
        let mut g = Graph::new();
        let wp = g.param(&store, w);
        let z = g.scale(wp, 0.0);
        let loss = g.sum(z);
        let grads = g.backward(loss);
        let before = store.value(w)[(0, 0)];
        opt.step(&mut store, &grads, &[w]);
        let after = store.value(w)[(0, 0)];
        assert!(after < before, "decay should shrink: {before} -> {after}");
    }

    #[test]
    fn reset_clears_state() {
        let mut opt = Adam::new(0.1);
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::filled(1, 1, 1.0));
        let mut g = Graph::new();
        let wp = g.param(&store, w);
        let sq = g.square(wp);
        let loss = g.sum(sq);
        let grads = g.backward(loss);
        opt.step(&mut store, &grads, &[w]);
        assert_eq!(opt.t, 1);
        opt.reset();
        assert_eq!(opt.t, 0);
        assert!(opt.m.is_empty() && opt.v.is_empty());
    }
}
