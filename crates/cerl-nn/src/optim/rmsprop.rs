//! RMSprop optimizer (Tieleman & Hinton, 2012).

use super::Optimizer;
use crate::backward::Gradients;
use crate::params::{ParamId, ParamStore};
use cerl_math::Matrix;
use std::collections::HashMap;

/// RMSprop: `v ← ρv + (1−ρ)g²`, `w ← w − η·g/√(v + ε)`.
#[derive(Debug, Clone)]
pub struct RmsProp {
    lr: f64,
    rho: f64,
    eps: f64,
    v: HashMap<usize, Matrix>,
}

impl RmsProp {
    /// Standard hyper-parameters (ρ = 0.9, ε = 1e-8).
    pub fn new(lr: f64) -> Self {
        Self::with_config(lr, 0.9, 1e-8)
    }

    /// Fully parameterized construction.
    pub fn with_config(lr: f64, rho: f64, eps: f64) -> Self {
        assert!(lr > 0.0, "RmsProp: learning rate must be positive");
        assert!((0.0..1.0).contains(&rho), "RmsProp: rho must be in [0,1)");
        assert!(eps > 0.0, "RmsProp: eps must be positive");
        Self {
            lr,
            rho,
            eps,
            v: HashMap::new(),
        }
    }
}

impl Optimizer for RmsProp {
    fn step(&mut self, store: &mut ParamStore, grads: &Gradients, params: &[ParamId]) {
        for &pid in params {
            let Some(g) = grads.param_grad(pid) else {
                continue;
            };
            let v = self
                .v
                .entry(pid.index())
                .or_insert_with(|| Matrix::zeros(g.rows(), g.cols()));
            v.scale_inplace(self.rho);
            let g2 = g.map(|x| x * x);
            v.axpy(1.0 - self.rho, &g2);
            let w = store.value_mut(pid);
            for ((wi, gi), vi) in w
                .as_mut_slice()
                .iter_mut()
                .zip(g.as_slice())
                .zip(v.as_slice())
            {
                *wi -= self.lr * gi / (vi.sqrt() + self.eps);
            }
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compose::mse;
    use crate::graph::Graph;

    #[test]
    fn converges_on_quadratic() {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::from_vec(1, 2, vec![-3.0, 6.0]));
        let target = Matrix::from_vec(1, 2, vec![1.0, -2.0]);
        let mut opt = RmsProp::new(0.05);
        for _ in 0..800 {
            let mut g = Graph::new();
            let wp = g.param(&store, w);
            let t = g.input(target.clone());
            let loss = mse(&mut g, wp, t);
            let grads = g.backward(loss);
            opt.step(&mut store, &grads, &[w]);
        }
        assert!(
            store.value(w).approx_eq(&target, 1e-2),
            "{:?}",
            store.value(w)
        );
    }

    #[test]
    fn per_coordinate_scaling_handles_ill_conditioning() {
        // 1000× curvature gap between the coordinates.
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::zeros(1, 2));
        let mut opt = RmsProp::new(0.02);
        for _ in 0..3000 {
            let mut g = Graph::new();
            let wp = g.param(&store, w);
            let ones = g.input(Matrix::ones(1, 2));
            let diff = g.sub(wp, ones);
            let sq = g.square(diff);
            let scalew = g.input(Matrix::from_vec(1, 2, vec![100.0, 0.1]));
            let weighted = g.mul(sq, scalew);
            let loss = g.sum(weighted);
            let grads = g.backward(loss);
            opt.step(&mut store, &grads, &[w]);
        }
        let v = store.value(w);
        assert!((v[(0, 0)] - 1.0).abs() < 0.05, "{v:?}");
        assert!((v[(0, 1)] - 1.0).abs() < 0.2, "{v:?}");
    }

    #[test]
    fn lr_accessors_and_validation() {
        let mut opt = RmsProp::new(0.1);
        assert_eq!(opt.learning_rate(), 0.1);
        opt.set_learning_rate(0.2);
        assert_eq!(opt.learning_rate(), 0.2);
    }

    #[test]
    #[should_panic(expected = "rho must be")]
    fn rejects_bad_rho() {
        let _ = RmsProp::with_config(0.1, 1.0, 1e-8);
    }
}
