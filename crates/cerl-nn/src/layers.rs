//! Network layers: dense (affine), cosine-normalized dense (Eq. 2 of the
//! paper), and a small MLP builder.

use crate::compose::cosine_linear;
use crate::graph::{Graph, NodeId};
use crate::params::{he_normal, xavier_uniform, zeros, ParamId, ParamStore};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Elementwise nonlinearity applied after a layer's linear map.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Activation {
    /// No nonlinearity.
    Identity,
    /// `max(0, x)`.
    Relu,
    /// ELU with the given `alpha`.
    Elu(f64),
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
}

impl Activation {
    /// Apply the activation to a node.
    pub fn apply(&self, g: &mut Graph, x: NodeId) -> NodeId {
        match self {
            Activation::Identity => x,
            Activation::Relu => g.relu(x),
            Activation::Elu(alpha) => g.elu(x, *alpha),
            Activation::Sigmoid => g.sigmoid(x),
            Activation::Tanh => g.tanh(x),
        }
    }
}

/// Fully connected layer `act(x·W + b)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dense {
    w: ParamId,
    b: ParamId,
    activation: Activation,
}

impl Dense {
    /// Create with Xavier-uniform weights and zero bias.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        rng: &mut R,
        d_in: usize,
        d_out: usize,
        activation: Activation,
        name: &str,
    ) -> Self {
        let init = match activation {
            Activation::Relu | Activation::Elu(_) => he_normal(rng, d_in, d_out),
            _ => xavier_uniform(rng, d_in, d_out),
        };
        let w = store.add(format!("{name}.w"), init);
        let b = store.add(format!("{name}.b"), zeros(1, d_out));
        Self { w, b, activation }
    }

    /// Forward pass.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: NodeId) -> NodeId {
        let w = g.param(store, self.w);
        let b = g.param(store, self.b);
        let xw = g.matmul(x, w);
        let pre = g.add_row_broadcast(xw, b);
        self.activation.apply(g, pre)
    }

    /// Trainable parameters of this layer.
    pub fn params(&self) -> Vec<ParamId> {
        vec![self.w, self.b]
    }

    /// Weight parameter id (for regularization targeting weights only).
    pub fn weight(&self) -> ParamId {
        self.w
    }

    /// Bias parameter id (a `1×d_out` row added with broadcast).
    pub fn bias(&self) -> ParamId {
        self.b
    }

    /// Activation applied after the affine map.
    pub fn activation(&self) -> Activation {
        self.activation
    }
}

/// Cosine-normalized dense layer (paper Eq. 2): `act(cos(x_i, w_{·j}))`.
///
/// No bias: the pre-activation is already bounded in `[-1, 1]`, which is the
/// point — it controls the representation variance when domains have very
/// different covariate magnitudes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CosineDense {
    w: ParamId,
    activation: Activation,
}

impl CosineDense {
    /// Create with Xavier-uniform weights.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        rng: &mut R,
        d_in: usize,
        d_out: usize,
        activation: Activation,
        name: &str,
    ) -> Self {
        let w = store.add(format!("{name}.w"), xavier_uniform(rng, d_in, d_out));
        Self { w, activation }
    }

    /// Forward pass.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: NodeId) -> NodeId {
        let w = g.param(store, self.w);
        let pre = cosine_linear(g, x, w);
        self.activation.apply(g, pre)
    }

    /// Trainable parameters of this layer.
    pub fn params(&self) -> Vec<ParamId> {
        vec![self.w]
    }

    /// Weight parameter id.
    pub fn weight(&self) -> ParamId {
        self.w
    }

    /// Activation applied after the cosine-normalized linear map.
    pub fn activation(&self) -> Activation {
        self.activation
    }
}

/// Multi-layer perceptron with uniform hidden activation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Dense>,
}

impl Mlp {
    /// Build from a dimension chain `dims = [d_in, h_1, …, d_out]`; hidden
    /// layers use `hidden_act`, the final layer uses `out_act`.
    ///
    /// # Panics
    /// If fewer than two dimensions are given.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        rng: &mut R,
        dims: &[usize],
        hidden_act: Activation,
        out_act: Activation,
        name: &str,
    ) -> Self {
        assert!(dims.len() >= 2, "Mlp: need at least input and output dims");
        let mut layers = Vec::with_capacity(dims.len() - 1);
        for (i, w) in dims.windows(2).enumerate() {
            let act = if i + 2 == dims.len() {
                out_act
            } else {
                hidden_act
            };
            layers.push(Dense::new(
                store,
                rng,
                w[0],
                w[1],
                act,
                &format!("{name}.{i}"),
            ));
        }
        Self { layers }
    }

    /// Forward pass through all layers.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: NodeId) -> NodeId {
        let mut h = x;
        for layer in &self.layers {
            h = layer.forward(g, store, h);
        }
        h
    }

    /// All trainable parameters, in layer order.
    pub fn params(&self) -> Vec<ParamId> {
        self.layers.iter().flat_map(Dense::params).collect()
    }

    /// Weight parameters only (no biases), for elastic-net regularization.
    pub fn weights(&self) -> Vec<ParamId> {
        self.layers.iter().map(Dense::weight).collect()
    }

    /// Number of layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// The layers in forward order (read-only; used by inference-plan
    /// compilers that re-express the network in another precision).
    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cerl_math::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dense_shapes_and_determinism() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let layer = Dense::new(&mut store, &mut rng, 4, 3, Activation::Relu, "l");
        let mut g = Graph::new();
        let x = g.input(Matrix::ones(5, 4));
        let y = layer.forward(&mut g, &store, x);
        assert_eq!(g.value(y).shape(), (5, 3));
        // ReLU output is non-negative.
        assert!(g.value(y).as_slice().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn cosine_dense_bounded_output() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let layer = CosineDense::new(&mut store, &mut rng, 6, 4, Activation::Identity, "c");
        let mut g = Graph::new();
        // Wildly different magnitudes — outputs still bounded.
        let x = g.input(Matrix::from_fn(3, 6, |i, j| {
            (i as f64 + 1.0) * 1e4 * ((j as f64) - 2.5)
        }));
        let y = layer.forward(&mut g, &store, x);
        for &v in g.value(y).as_slice() {
            assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&v), "v={v}");
        }
    }

    #[test]
    fn mlp_chain() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(
            &mut store,
            &mut rng,
            &[8, 16, 16, 1],
            Activation::Elu(1.0),
            Activation::Identity,
            "mlp",
        );
        assert_eq!(mlp.depth(), 3);
        assert_eq!(mlp.params().len(), 6);
        assert_eq!(mlp.weights().len(), 3);

        let mut g = Graph::new();
        let x = g.input(Matrix::ones(10, 8));
        let y = mlp.forward(&mut g, &store, x);
        assert_eq!(g.value(y).shape(), (10, 1));
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn mlp_needs_two_dims() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut store = ParamStore::new();
        let _ = Mlp::new(
            &mut store,
            &mut rng,
            &[3],
            Activation::Relu,
            Activation::Identity,
            "x",
        );
    }

    #[test]
    fn activations_apply() {
        let mut g = Graph::new();
        let x = g.input(Matrix::from_vec(1, 2, vec![-1.0, 1.0]));
        let r = Activation::Relu.apply(&mut g, x);
        assert_eq!(g.value(r).as_slice(), &[0.0, 1.0]);
        let i = Activation::Identity.apply(&mut g, x);
        assert_eq!(i, x);
        let t = Activation::Tanh.apply(&mut g, x);
        assert!((g.value(t)[(0, 1)] - 1.0_f64.tanh()).abs() < 1e-15);
        let s = Activation::Sigmoid.apply(&mut g, x);
        assert!(g
            .value(s)
            .as_slice()
            .iter()
            .all(|&v| (0.0..=1.0).contains(&v)));
        let e = Activation::Elu(1.0).apply(&mut g, x);
        assert!((g.value(e)[(0, 0)] - ((-1.0_f64).exp() - 1.0)).abs() < 1e-15);
    }
}
