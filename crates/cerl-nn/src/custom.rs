//! Extension point for operations defined outside this crate.
//!
//! `cerl-ot` injects Sinkhorn-Wasserstein and MMD penalties into the tape
//! through this trait: `forward` may cache state (e.g. the optimal transport
//! plan) that `backward` reuses.

use cerl_math::Matrix;

/// A differentiable operation implemented outside the built-in op set.
pub trait CustomOp: std::fmt::Debug {
    /// Short name for diagnostics.
    fn name(&self) -> &'static str;

    /// Compute the output from the inputs. Called exactly once, when the
    /// node is inserted; may cache state for `backward`.
    fn forward(&mut self, inputs: &[&Matrix]) -> Matrix;

    /// Gradients of the loss w.r.t. each input, given the node's inputs,
    /// output, and incoming gradient. Must return one matrix per input,
    /// each shaped like the corresponding input.
    fn backward(&self, inputs: &[&Matrix], output: &Matrix, grad_output: &Matrix) -> Vec<Matrix>;
}
