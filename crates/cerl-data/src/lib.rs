//! # cerl-data
//!
//! Datasets and generators for the CERL benchmarks:
//!
//! * [`dataset`] — [`CausalDataset`] (covariates, treatment, factual
//!   outcome, true potential outcomes), splits, standardizers.
//! * [`synthetic`] — §IV.C generator: 100 covariates in four causal roles,
//!   hub-Toeplitz correlation per domain, probit treatment selection,
//!   partially linear outcomes (Eq. 10).
//! * [`topics`] — LDA-style generative simulator standing in for the
//!   NY Times / BlogCatalog corpora (see DESIGN.md substitution table).
//! * [`semisynthetic`] — News and BlogCatalog benchmark builders.
//! * [`shift`] — substantial / moderate / no domain-shift scenarios.
//! * [`stream`] — incrementally available domain sequences (Fig. 4).
//! * [`error`] — typed validation errors ([`DataError`]).

#![warn(missing_docs)]

pub mod dataset;
pub mod error;
pub mod semisynthetic;
pub mod shift;
pub mod stream;
pub mod synthetic;
pub mod topics;

pub use dataset::{CausalDataset, OutcomeScaler, Standardizer, TrainValTest};
pub use error::DataError;
pub use semisynthetic::{SemiSyntheticConfig, SemiSyntheticGenerator};
pub use shift::DomainShift;
pub use stream::DomainStream;
pub use synthetic::{SyntheticConfig, SyntheticGenerator, VariableRoles};
pub use topics::{Document, TopicModel, TopicModelConfig};
