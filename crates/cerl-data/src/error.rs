//! Typed errors for dataset construction and preprocessing.

use std::fmt;

/// Validation failure in dataset or scaler construction/application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// A per-unit field's length disagrees with the covariate row count.
    LengthMismatch {
        /// Which field (`t`, `y`, `mu0`, `mu1`, ...).
        field: &'static str,
        /// Expected length (number of units).
        expected: usize,
        /// Actual length.
        found: usize,
    },
    /// Covariate dimension disagrees with what a scaler was fit on.
    DimensionMismatch {
        /// Columns the scaler was fit on.
        expected: usize,
        /// Columns of the input.
        found: usize,
    },
    /// A parameter is outside its valid range.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Why it is invalid.
        reason: String,
    },
    /// An input that must be non-empty was empty.
    EmptyInput {
        /// What was empty.
        what: &'static str,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::LengthMismatch {
                field,
                expected,
                found,
            } => write!(
                f,
                "{field} length mismatch: expected {expected} units, found {found}"
            ),
            DataError::DimensionMismatch { expected, found } => write!(
                f,
                "covariate dimension mismatch: fit on {expected} columns, input has {found}"
            ),
            DataError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            DataError::EmptyInput { what } => write!(f, "empty input: {what}"),
        }
    }
}

impl std::error::Error for DataError {}
