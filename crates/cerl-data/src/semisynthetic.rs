//! Semi-synthetic News / BlogCatalog benchmarks (paper §IV.A).
//!
//! Units are documents (news items / blogger descriptions) represented by
//! bag-of-words counts `x` with topic mixture `z(x)`. The treatment is the
//! viewing device (mobile vs desktop) and the reader's opinion is
//!
//! ```text
//! y(x, t) = C · (z(x)·z^c_0 + t · z(x)·z^c_1) + ε,    ε ~ N(0, 1),  C = 60
//! p(t=1|x) = e^{k·z·z^c_1} / (e^{k·z·z^c_0} + e^{k·z·z^c_1}),       k = 10
//! ```
//!
//! with `z^c_0` the mean topic representation over documents and `z^c_1`
//! the mixture of one randomly sampled document. Sequential datasets with
//! controlled shift are built by restricting documents' topic support per
//! [`DomainShift`].

use crate::dataset::CausalDataset;
use crate::shift::DomainShift;
use crate::topics::{TopicModel, TopicModelConfig};
use cerl_math::{dot, Matrix};
use cerl_rand::{bernoulli, seeds, StandardNormal};
use serde::{Deserialize, Serialize};

/// Configuration of a semi-synthetic benchmark.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SemiSyntheticConfig {
    /// Units per dataset.
    pub n_units: usize,
    /// Topic model settings (vocabulary, topic counts, Dirichlet priors).
    pub topics: TopicModelConfig,
    /// Outcome scaling factor `C` (paper: 60).
    pub outcome_scale: f64,
    /// Selection-bias strength `k` (paper: 10).
    pub selection_k: f64,
    /// Outcome noise standard deviation (paper: 1).
    pub noise_sd: f64,
}

impl SemiSyntheticConfig {
    /// News benchmark: 5000 units, 3477-word vocabulary, 50 topics.
    pub fn news() -> Self {
        Self {
            n_units: 5000,
            topics: TopicModelConfig {
                n_topics: 50,
                vocab_size: 3477,
                word_alpha: 0.05,
                doc_alpha: 0.2,
                doc_length: (60, 300),
                background_mix: 0.4,
            },
            outcome_scale: 60.0,
            selection_k: 10.0,
            noise_sd: 1.0,
        }
    }

    /// BlogCatalog benchmark: 5196 units, 2160-word vocabulary, 50 topics.
    /// Blogger descriptions are shorter and sparser than news articles.
    pub fn blogcatalog() -> Self {
        Self {
            n_units: 5196,
            topics: TopicModelConfig {
                n_topics: 50,
                vocab_size: 2160,
                word_alpha: 0.08,
                doc_alpha: 0.15,
                doc_length: (20, 120),
                background_mix: 0.35,
            },
            outcome_scale: 60.0,
            selection_k: 10.0,
            noise_sd: 1.0,
        }
    }

    /// Small configuration for tests and quick harness runs.
    pub fn small() -> Self {
        Self {
            n_units: 300,
            topics: TopicModelConfig {
                n_topics: 10,
                vocab_size: 80,
                word_alpha: 0.1,
                doc_alpha: 0.3,
                doc_length: (20, 60),
                background_mix: 0.3,
            },
            outcome_scale: 60.0,
            selection_k: 10.0,
            noise_sd: 1.0,
        }
    }

    /// Copy with a different unit count.
    pub fn with_units(mut self, n: usize) -> Self {
        self.n_units = n;
        self
    }
}

/// Generator of sequential semi-synthetic datasets.
#[derive(Debug, Clone)]
pub struct SemiSyntheticGenerator {
    cfg: SemiSyntheticConfig,
    model: TopicModel,
    zc0: Vec<f64>,
    zc1: Vec<f64>,
    base_seed: u64,
}

impl SemiSyntheticGenerator {
    /// Build the topic model and centroids; `seed` fixes everything.
    pub fn new(cfg: SemiSyntheticConfig, seed: u64) -> Self {
        let mut rng = seeds::rng_labeled(seed, "topic-model");
        let model = TopicModel::generate(cfg.topics.clone(), &mut rng);
        // z^c_0: average topic representation over pilot documents.
        let zc0 = model.mean_mixture(500, &mut rng);
        // z^c_1: topic distribution of one randomly sampled document.
        let all: Vec<usize> = (0..cfg.topics.n_topics).collect();
        let zc1 = model.document(&all, &mut rng).z;
        Self {
            cfg,
            model,
            zc0,
            zc1,
            base_seed: seed,
        }
    }

    /// Configuration in use.
    pub fn config(&self) -> &SemiSyntheticConfig {
        &self.cfg
    }

    /// Centroids `(z^c_0, z^c_1)`.
    pub fn centroids(&self) -> (&[f64], &[f64]) {
        (&self.zc0, &self.zc1)
    }

    /// Generate one dataset whose documents are supported on
    /// `allowed_topics`, using replication stream `rep`.
    pub fn dataset(&self, allowed_topics: &[usize], rep: u64, stream: &str) -> CausalDataset {
        let label = format!("data-{stream}-rep-{rep}");
        let mut rng = seeds::rng_labeled(self.base_seed, &label);
        let n = self.cfg.n_units;
        let v = self.cfg.topics.vocab_size;
        let c = self.cfg.outcome_scale;
        let k = self.cfg.selection_k;

        let mut x = Matrix::zeros(n, v);
        let mut t = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        let mut mu0 = Vec::with_capacity(n);
        let mut mu1 = Vec::with_capacity(n);
        let mut sn = StandardNormal::new();

        for i in 0..n {
            let doc = self.model.document(allowed_topics, &mut rng);
            x.row_mut(i).copy_from_slice(&doc.counts);
            let z0 = dot(&doc.z, &self.zc0);
            let z1 = dot(&doc.z, &self.zc1);
            let m0 = c * z0;
            let m1 = c * (z0 + z1);
            // p(t=1|x) = e^{k z·zc1} / (e^{k z·zc0} + e^{k z·zc1})
            let p = stable_binary_softmax(k * z1, k * z0);
            let ti = bernoulli(&mut rng, p);
            let eps = sn.sample(&mut rng) * self.cfg.noise_sd;
            mu0.push(m0);
            mu1.push(m1);
            y.push(if ti { m1 + eps } else { m0 + eps });
            t.push(ti);
        }
        CausalDataset::new(x, t, y, mu0, mu1)
    }

    /// Generate the two sequential datasets of a [`DomainShift`] scenario.
    pub fn sequential_pair(&self, shift: DomainShift, rep: u64) -> (CausalDataset, CausalDataset) {
        let (s1, s2) = shift.topic_subsets(self.cfg.topics.n_topics);
        let d1 = self.dataset(&s1, rep, &format!("{}-first", shift.label()));
        let d2 = self.dataset(&s2, rep, &format!("{}-second", shift.label()));
        (d1, d2)
    }
}

/// `e^a / (e^a + e^b)` computed stably.
fn stable_binary_softmax(a: f64, b: f64) -> f64 {
    cerl_math::special::sigmoid(a - b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> SemiSyntheticGenerator {
        SemiSyntheticGenerator::new(SemiSyntheticConfig::small(), 77)
    }

    #[test]
    fn shapes_and_outcome_structure() {
        let g = quick();
        let all: Vec<usize> = (0..10).collect();
        let d = g.dataset(&all, 0, "t");
        assert_eq!(d.n(), 300);
        assert_eq!(d.dim(), 80);
        // Counts are non-negative integers.
        assert!(d.x.as_slice().iter().all(|&v| v >= 0.0 && v.fract() == 0.0));
        // ITE = C·(z·zc1) ≥ 0 with our non-negative centroids.
        assert!(d.true_ite().iter().all(|&v| v >= -1e-9));
        let ate = d.true_ate();
        assert!(ate > 0.0 && ate < 60.0, "ate={ate}");
    }

    #[test]
    fn both_devices_present_and_biased() {
        let g = quick();
        let all: Vec<usize> = (0..10).collect();
        let d = g.dataset(&all, 0, "t");
        let nt = d.n_treated();
        assert!(nt > 10 && nt < 290, "nt={nt}");
        // Selection bias: treated units have higher z·zc1, hence higher ITE.
        let ite = d.true_ite();
        let mean_t: f64 =
            d.treated_indices().iter().map(|&i| ite[i]).sum::<f64>() / d.n_treated().max(1) as f64;
        let mean_c: f64 = d.control_indices().iter().map(|&i| ite[i]).sum::<f64>()
            / (d.n() - d.n_treated()).max(1) as f64;
        assert!(
            mean_t > mean_c,
            "no selection bias: treated ITE {mean_t} vs control {mean_c}"
        );
    }

    #[test]
    fn substantial_shift_gives_different_vocab_usage() {
        let g = quick();
        let (d1, d2) = g.sequential_pair(DomainShift::Substantial, 0);
        let m1 = d1.x.col_means();
        let m2 = d2.x.col_means();
        let l1: f64 = m1.iter().zip(&m2).map(|(a, b)| (a - b).abs()).sum();
        let (e1, e2) = g.sequential_pair(DomainShift::None, 0);
        let n1 = e1.x.col_means();
        let n2 = e2.x.col_means();
        let l1_none: f64 = n1.iter().zip(&n2).map(|(a, b)| (a - b).abs()).sum();
        assert!(
            l1 > 2.0 * l1_none,
            "substantial shift ({l1:.3}) should dwarf no-shift difference ({l1_none:.3})"
        );
    }

    #[test]
    fn deterministic_by_seed_and_rep() {
        let g = quick();
        let a = g.dataset(&[0, 1, 2], 3, "s");
        let b = g.dataset(&[0, 1, 2], 3, "s");
        assert!(a.x.approx_eq(&b.x, 0.0));
        assert_eq!(a.y, b.y);
        let c = g.dataset(&[0, 1, 2], 4, "s");
        assert!(a.x.max_abs_diff(&c.x) > 0.0);
    }

    #[test]
    fn centroids_are_simplex_points() {
        let g = quick();
        let (zc0, zc1) = g.centroids();
        assert!((zc0.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((zc1.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(zc0.iter().all(|&v| v >= 0.0));
        assert!(zc1.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn stable_softmax_matches_naive() {
        for (a, b) in [(0.0_f64, 0.0_f64), (3.0, -1.0), (-5.0, 2.0)] {
            let naive = a.exp() / (a.exp() + b.exp());
            assert!((stable_binary_softmax(a, b) - naive).abs() < 1e-12);
        }
        // Extreme values do not overflow.
        assert!(stable_binary_softmax(1e4, -1e4) <= 1.0);
        assert!(stable_binary_softmax(-1e4, 1e4) >= 0.0);
    }
}
