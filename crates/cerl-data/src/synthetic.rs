//! Synthetic multi-domain generator (paper §IV.C, "Further Model
//! Evaluation").
//!
//! Covariates `X = (Cᵀ, Zᵀ, Iᵀ, Aᵀ)ᵀ` contain 35 confounders, 10
//! instruments, 20 irrelevant variables, and 35 adjustment variables
//! (Fig. 2 roles). Each domain `d` draws
//! `X ~ N(μ_d, Σ_d)` with a domain-specific mean and a hub-Toeplitz
//! correlation structure (Hardin et al. Alg. 3; Eqs. 11–12) scaled by
//! domain-specific standard deviations. Outcomes follow the partially
//! linear model (Eq. 10):
//!
//! ```text
//! Y  = τ(C,A)·T + g(C,A) + ε,        ε ~ N(0, σ²)
//! τ  = sin²((C,A)·b_τ)               (heterogeneous effect)
//! g  = cos²((C,A)·b_g)               (baseline response)
//! T  ~ Bernoulli(Φ( (a − μ_a)/σ_a )),  a = sin((C,Z)·b_a)   (probit selection)
//! ```
//!
//! The weight vectors `b_τ, b_g, b_a ~ U(0,1)` define the *causal
//! mechanism* and are shared across domains; non-stationarity enters only
//! through the covariate distribution, exactly as in the paper.

use crate::dataset::CausalDataset;
use cerl_math::correlation::{
    block_diagonal, covariance_from_correlation, hub_toeplitz, nearest_correlation_clip,
    perturb_preserving_pd,
};
use cerl_math::special::normal_cdf;
use cerl_math::stats::{mean, std_dev};
use cerl_math::{dot, Matrix};
use cerl_rand::{bernoulli, seeds, MultivariateNormal, Normal, StandardNormal};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Counts of each variable role (Fig. 2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VariableRoles {
    /// Confounders: affect both treatment and outcome.
    pub confounders: usize,
    /// Instruments: affect treatment only.
    pub instruments: usize,
    /// Irrelevant: affect neither.
    pub irrelevant: usize,
    /// Adjustment: affect outcome only.
    pub adjustment: usize,
}

impl VariableRoles {
    /// The paper's configuration: 35 C, 10 Z, 20 I, 35 A (100 total).
    pub fn paper() -> Self {
        Self {
            confounders: 35,
            instruments: 10,
            irrelevant: 20,
            adjustment: 35,
        }
    }

    /// Scaled-down configuration for fast tests.
    pub fn small() -> Self {
        Self {
            confounders: 7,
            instruments: 3,
            irrelevant: 4,
            adjustment: 6,
        }
    }

    /// Total covariate dimension.
    pub fn total(&self) -> usize {
        self.confounders + self.instruments + self.irrelevant + self.adjustment
    }

    /// Column ranges of each block in `X = (C, Z, I, A)`.
    pub fn ranges(&self) -> RoleRanges {
        let c = 0..self.confounders;
        let z = c.end..c.end + self.instruments;
        let i = z.end..z.end + self.irrelevant;
        let a = i.end..i.end + self.adjustment;
        RoleRanges {
            confounders: c,
            instruments: z,
            irrelevant: i,
            adjustment: a,
        }
    }
}

/// Column ranges of each role block.
#[derive(Debug, Clone)]
pub struct RoleRanges {
    /// Confounder columns.
    pub confounders: std::ops::Range<usize>,
    /// Instrument columns.
    pub instruments: std::ops::Range<usize>,
    /// Irrelevant columns.
    pub irrelevant: std::ops::Range<usize>,
    /// Adjustment columns.
    pub adjustment: std::ops::Range<usize>,
}

/// Configuration of the synthetic generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SyntheticConfig {
    /// Variable-role counts.
    pub roles: VariableRoles,
    /// Units per domain (paper: 10000).
    pub n_units: usize,
    /// Scale of the per-domain mean shifts `μ_d`.
    pub mean_shift_scale: f64,
    /// Hub correlation upper bound range `(lo, hi)` sampled per domain.
    pub rho_max_range: (f64, f64),
    /// Hub correlation lower bound range `(lo, hi)` sampled per domain.
    pub rho_min_range: (f64, f64),
    /// Decay-rate γ of Eq. 12.
    pub gamma: f64,
    /// Cross-type correlation noise magnitude before the PD-safety scaling.
    pub cross_type_noise: f64,
    /// Range of per-variable standard deviations sampled per domain.
    pub sd_range: (f64, f64),
    /// Outcome noise standard deviation (paper: 1).
    pub noise_sd: f64,
    /// Normalize each mechanism dot product by `√dim` so the `sin²`/`cos²`
    /// surfaces vary over O(1) length scales and are learnable. With raw
    /// `U(0,1)` weights over ~70 correlated covariates the argument's
    /// standard deviation is ≈ 5–8, which makes the outcome surface
    /// oscillate an order of magnitude faster than any estimator (including
    /// the paper's) could fit; the paper does not state its normalization,
    /// so we make this calibration explicit and configurable.
    pub normalize_mechanism: bool,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        Self {
            roles: VariableRoles::paper(),
            n_units: 10_000,
            mean_shift_scale: 0.5,
            rho_max_range: (0.5, 0.8),
            rho_min_range: (0.1, 0.3),
            gamma: 1.0,
            cross_type_noise: 0.2,
            sd_range: (0.7, 1.3),
            noise_sd: 1.0,
            normalize_mechanism: true,
        }
    }
}

impl SyntheticConfig {
    /// Small, fast configuration for tests and examples.
    pub fn small() -> Self {
        Self {
            roles: VariableRoles::small(),
            n_units: 400,
            ..Self::default()
        }
    }
}

/// Synthetic data generator with a fixed causal mechanism across domains.
#[derive(Debug, Clone)]
pub struct SyntheticGenerator {
    cfg: SyntheticConfig,
    b_tau: Vec<f64>,
    b_g: Vec<f64>,
    b_a: Vec<f64>,
    /// `√(b_τᵀ Σ_pilot b_τ)` over the (C,A) block — see `normalize_mechanism`.
    scale_tau: f64,
    scale_g: f64,
    scale_a: f64,
    base_seed: u64,
}

impl SyntheticGenerator {
    /// Create a generator; `seed` fixes both the causal mechanism and all
    /// per-domain draws.
    pub fn new(cfg: SyntheticConfig, seed: u64) -> Self {
        let roles = cfg.roles;
        let mut rng = seeds::rng_labeled(seed, "mechanism");
        let n_ca = roles.confounders + roles.adjustment;
        let n_cz = roles.confounders + roles.instruments;
        let b_tau: Vec<f64> = (0..n_ca).map(|_| rng.gen::<f64>()).collect();
        let b_g: Vec<f64> = (0..n_ca).map(|_| rng.gen::<f64>()).collect();
        let b_a: Vec<f64> = (0..n_cz).map(|_| rng.gen::<f64>()).collect();

        // Calibrate the mechanism's length scales on a pilot domain so the
        // sin²/cos² arguments have unit-order variance (see the
        // `normalize_mechanism` docs). Uses the analytic projection
        // variance bᵀΣb of the pilot covariance — no sampling needed.
        let (scale_tau, scale_g, scale_a) = if cfg.normalize_mechanism {
            let mut pilot_rng = seeds::rng_labeled(seed, "pilot-distribution");
            let (_mu, sigma) = build_distribution(&cfg, &mut pilot_rng);
            let ranges = roles.ranges();
            let ca: Vec<usize> = ranges
                .confounders
                .clone()
                .chain(ranges.adjustment.clone())
                .collect();
            let cz: Vec<usize> = ranges
                .confounders
                .clone()
                .chain(ranges.instruments.clone())
                .collect();
            (
                projection_sd(&sigma, &ca, &b_tau),
                projection_sd(&sigma, &ca, &b_g),
                projection_sd(&sigma, &cz, &b_a),
            )
        } else {
            (1.0, 1.0, 1.0)
        };
        Self {
            cfg,
            b_tau,
            b_g,
            b_a,
            scale_tau,
            scale_g,
            scale_a,
            base_seed: seed,
        }
    }

    /// Configuration in use.
    pub fn config(&self) -> &SyntheticConfig {
        &self.cfg
    }

    /// Generate domain `domain` (0-based) of replication `rep`.
    ///
    /// Each `(domain, rep)` pair has its own mean vector, correlation
    /// structure, and sampling stream; the causal mechanism is shared.
    pub fn domain(&self, domain: usize, rep: usize) -> CausalDataset {
        let label = format!("domain-{domain}-rep-{rep}");
        let mut rng = seeds::rng_labeled(self.base_seed, &label);
        let (mu, sigma) = build_distribution(&self.cfg, &mut rng);
        let mvn = MultivariateNormal::new(mu, &sigma).expect("PD covariance");
        let x = mvn.sample_matrix(&mut rng, self.cfg.n_units);
        self.outcomes_for(x, &mut rng)
    }

    /// Apply the (fixed) causal mechanism to a covariate matrix.
    fn outcomes_for<R: Rng + ?Sized>(&self, x: Matrix, rng: &mut R) -> CausalDataset {
        let n = x.rows();
        let ranges = self.cfg.roles.ranges();

        // Propensity: a = sin((C,Z)·b_a); e0 = Φ((a − μ_a)/σ_a).
        let mut a_scores = Vec::with_capacity(n);
        for i in 0..n {
            let row = x.row(i);
            let cz: Vec<f64> = ranges
                .confounders
                .clone()
                .chain(ranges.instruments.clone())
                .map(|j| row[j])
                .collect();
            a_scores.push((dot(&cz, &self.b_a) / self.scale_a).sin());
        }
        let a_mean = mean(&a_scores);
        let a_sd = std_dev(&a_scores).max(1e-12);

        let mut t = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        let mut mu0 = Vec::with_capacity(n);
        let mut mu1 = Vec::with_capacity(n);
        let mut sn = StandardNormal::new();
        #[allow(clippy::needless_range_loop)] // parallel row/score indexing
        for i in 0..n {
            let row = x.row(i);
            let ca: Vec<f64> = ranges
                .confounders
                .clone()
                .chain(ranges.adjustment.clone())
                .map(|j| row[j])
                .collect();
            let tau = (dot(&ca, &self.b_tau) / self.scale_tau).sin().powi(2);
            let g = (dot(&ca, &self.b_g) / self.scale_g).cos().powi(2);
            let e0 = normal_cdf((a_scores[i] - a_mean) / a_sd);
            let ti = bernoulli(rng, e0.clamp(0.01, 0.99)); // positivity guard
            let eps = sn.sample(rng) * self.cfg.noise_sd;
            mu0.push(g);
            mu1.push(g + tau);
            y.push(if ti { g + tau + eps } else { g + eps });
            t.push(ti);
        }
        CausalDataset::new(x, t, y, mu0, mu1)
    }
}

/// Draw one domain's mean vector and covariance matrix (hub-Toeplitz
/// correlation blocks, bounded cross-type noise, domain-specific scales).
fn build_distribution<R: Rng + ?Sized>(cfg: &SyntheticConfig, rng: &mut R) -> (Vec<f64>, Matrix) {
    let roles = cfg.roles;
    let d = roles.total();

    // Domain-specific mean vector.
    let shift = Normal::new(0.0, cfg.mean_shift_scale);
    let mu: Vec<f64> = (0..d).map(|_| shift.sample(rng)).collect();

    // Domain-specific hub-Toeplitz correlation per role block. A Toeplitz
    // fill of a decaying hub column is not automatically PD, so indefinite
    // draws are projected back to the correlation cone (eigenvalue
    // clipping), as Hardin et al. prescribe.
    let mut blocks = Vec::with_capacity(4);
    for &size in &[
        roles.confounders,
        roles.instruments,
        roles.irrelevant,
        roles.adjustment,
    ] {
        let rho_max = sample_range(rng, cfg.rho_max_range);
        let rho_min = sample_range(rng, cfg.rho_min_range).min(rho_max);
        let mut block = hub_toeplitz(size, rho_max, rho_min, cfg.gamma);
        if !cerl_math::decomp::is_positive_definite(&block) {
            block = nearest_correlation_clip(&block, 1e-4)
                .expect("correlation repair cannot fail on a symmetric block");
        }
        blocks.push(block);
    }
    let r0 = block_diagonal(&blocks);

    // Bounded cross-type noise (Hardin et al. Alg. 3).
    let mut noise = Matrix::zeros(d, d);
    let ranges = roles.ranges();
    let block_of = |idx: usize| -> usize {
        if ranges.confounders.contains(&idx) {
            0
        } else if ranges.instruments.contains(&idx) {
            1
        } else if ranges.irrelevant.contains(&idx) {
            2
        } else {
            3
        }
    };
    for i in 0..d {
        for j in (i + 1)..d {
            if block_of(i) != block_of(j) {
                let v = (rng.gen::<f64>() * 2.0 - 1.0) * cfg.cross_type_noise;
                noise[(i, j)] = v;
                noise[(j, i)] = v;
            }
        }
    }
    let (r, _scale) =
        perturb_preserving_pd(&r0, &noise, 0.9).expect("block-diagonal hub matrix must be PD");

    // Domain-specific marginal scales -> covariance.
    let sds: Vec<f64> = (0..d).map(|_| sample_range(rng, cfg.sd_range)).collect();
    let sigma = covariance_from_correlation(&r, &sds).expect("valid correlation");
    (mu, sigma)
}

/// Standard deviation of the projection `x[cols]·b` under covariance
/// `sigma`: `√(bᵀ Σ_sub b)`, floored away from zero.
fn projection_sd(sigma: &Matrix, cols: &[usize], b: &[f64]) -> f64 {
    debug_assert_eq!(cols.len(), b.len(), "projection_sd: dimension mismatch");
    let mut v = 0.0;
    for (ii, &i) in cols.iter().enumerate() {
        for (jj, &j) in cols.iter().enumerate() {
            v += b[ii] * b[jj] * sigma[(i, j)];
        }
    }
    v.max(1e-12).sqrt()
}

fn sample_range<R: Rng + ?Sized>(rng: &mut R, (lo, hi): (f64, f64)) -> f64 {
    debug_assert!(lo <= hi, "sample_range: lo > hi");
    lo + rng.gen::<f64>() * (hi - lo)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_gen() -> SyntheticGenerator {
        SyntheticGenerator::new(SyntheticConfig::small(), 1234)
    }

    #[test]
    fn shapes_and_ranges() {
        let g = quick_gen();
        let d = g.domain(0, 0);
        assert_eq!(d.n(), 400);
        assert_eq!(d.dim(), VariableRoles::small().total());
        // τ = sin² ∈ [0,1], g = cos² ∈ [0,1] → μ0 ∈ [0,1], μ1 ∈ [0,2].
        assert!(d.mu0.iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert!(d.mu1.iter().all(|&v| (0.0..=2.0).contains(&v)));
        let ate = d.true_ate();
        assert!(ate > 0.0 && ate < 1.0, "ate={ate}");
    }

    #[test]
    fn both_groups_present() {
        let g = quick_gen();
        let d = g.domain(0, 0);
        let nt = d.n_treated();
        assert!(nt > 50 && nt < 350, "treated count {nt} out of range");
    }

    #[test]
    fn deterministic_per_domain_rep() {
        let g = quick_gen();
        let a = g.domain(1, 2);
        let b = g.domain(1, 2);
        assert!(a.x.approx_eq(&b.x, 0.0));
        assert_eq!(a.y, b.y);
    }

    #[test]
    fn domains_differ_but_mechanism_shared() {
        let g = quick_gen();
        let d0 = g.domain(0, 0);
        let d1 = g.domain(1, 0);
        // Different covariate distributions…
        let m0 = d0.x.col_means();
        let m1 = d1.x.col_means();
        let diff: f64 = m0.iter().zip(&m1).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 0.5, "domain means too similar: {diff}");
        // …but same mechanism: regenerating domain 0 covariates yields the
        // same potential outcomes (checked by replaying the same seed).
        let d0_again = g.domain(0, 0);
        assert_eq!(d0.mu0, d0_again.mu0);
    }

    #[test]
    fn replications_differ() {
        let g = quick_gen();
        let a = g.domain(0, 0);
        let b = g.domain(0, 1);
        assert!(a.x.max_abs_diff(&b.x) > 1e-6);
    }

    #[test]
    fn selection_bias_exists() {
        // Propensity depends on confounders: treated and control covariate
        // means must differ on confounder columns.
        let g = SyntheticGenerator::new(
            SyntheticConfig {
                n_units: 4000,
                ..SyntheticConfig::small()
            },
            99,
        );
        let d = g.domain(0, 0);
        let xt = d.x.select_rows(&d.treated_indices());
        let xc = d.x.select_rows(&d.control_indices());
        let mt = xt.col_means();
        let mc = xc.col_means();
        let ranges = VariableRoles::small().ranges();
        let conf_gap: f64 = ranges.confounders.map(|j| (mt[j] - mc[j]).abs()).sum();
        assert!(
            conf_gap > 0.05,
            "no selection bias detected: gap={conf_gap}"
        );
    }

    #[test]
    fn paper_roles_add_up() {
        let r = VariableRoles::paper();
        assert_eq!(r.total(), 100);
        let ranges = r.ranges();
        assert_eq!(ranges.confounders, 0..35);
        assert_eq!(ranges.instruments, 35..45);
        assert_eq!(ranges.irrelevant, 45..65);
        assert_eq!(ranges.adjustment, 65..100);
    }
}
