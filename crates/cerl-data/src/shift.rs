//! Domain-shift scenarios for sequential semi-synthetic datasets
//! (paper §IV.A).
//!
//! With 50 LDA topics the paper builds two sequential datasets from:
//! * **substantial shift** — topics 1–25 vs 26–50 (no overlap),
//! * **moderate shift** — topics 1–35 vs 16–50 (40% overlap),
//! * **no shift** — both datasets drawn from all 50 topics.

use serde::{Deserialize, Serialize};

/// Degree of distribution shift between two sequential datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DomainShift {
    /// Disjoint topic supports (paper: topics 1–25 vs 26–50).
    Substantial,
    /// Overlapping topic supports (paper: topics 1–35 vs 16–50).
    Moderate,
    /// Identical distributions (all topics for both datasets).
    None,
}

impl DomainShift {
    /// Topic index subsets `(first dataset, second dataset)` for a model
    /// with `n_topics` topics, generalizing the paper's 50-topic splits.
    ///
    /// # Panics
    /// If `n_topics < 2`.
    pub fn topic_subsets(&self, n_topics: usize) -> (Vec<usize>, Vec<usize>) {
        assert!(n_topics >= 2, "topic_subsets: need at least 2 topics");
        match self {
            DomainShift::Substantial => {
                let half = n_topics / 2;
                ((0..half).collect(), (half..n_topics).collect())
            }
            DomainShift::Moderate => {
                // Paper: 1–35 and 16–50 of 50 → first 70%, last 70%.
                let hi = (n_topics as f64 * 0.7).round() as usize;
                let lo = n_topics - hi;
                ((0..hi).collect(), (lo..n_topics).collect())
            }
            DomainShift::None => {
                let all: Vec<usize> = (0..n_topics).collect();
                (all.clone(), all)
            }
        }
    }

    /// Human-readable label used in experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            DomainShift::Substantial => "substantial",
            DomainShift::Moderate => "moderate",
            DomainShift::None => "none",
        }
    }

    /// All three scenarios in the paper's table order.
    pub fn all() -> [DomainShift; 3] {
        [
            DomainShift::Substantial,
            DomainShift::Moderate,
            DomainShift::None,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_splits_at_50_topics() {
        let (a, b) = DomainShift::Substantial.topic_subsets(50);
        assert_eq!(a, (0..25).collect::<Vec<_>>());
        assert_eq!(b, (25..50).collect::<Vec<_>>());

        let (a, b) = DomainShift::Moderate.topic_subsets(50);
        assert_eq!(a, (0..35).collect::<Vec<_>>());
        assert_eq!(b, (15..50).collect::<Vec<_>>());

        let (a, b) = DomainShift::None.topic_subsets(50);
        assert_eq!(a.len(), 50);
        assert_eq!(a, b);
    }

    #[test]
    fn substantial_is_disjoint() {
        for k in [4usize, 10, 33, 50] {
            let (a, b) = DomainShift::Substantial.topic_subsets(k);
            assert!(a.iter().all(|x| !b.contains(x)), "overlap at k={k}");
            assert!(!a.is_empty() && !b.is_empty());
        }
    }

    #[test]
    fn moderate_overlaps_partially() {
        for k in [10usize, 20, 50] {
            let (a, b) = DomainShift::Moderate.topic_subsets(k);
            let overlap = a.iter().filter(|x| b.contains(x)).count();
            assert!(overlap > 0, "no overlap at k={k}");
            assert!(overlap < a.len(), "complete overlap at k={k}");
        }
    }

    #[test]
    fn labels_and_all() {
        assert_eq!(DomainShift::all().len(), 3);
        assert_eq!(DomainShift::Substantial.label(), "substantial");
        assert_eq!(DomainShift::Moderate.label(), "moderate");
        assert_eq!(DomainShift::None.label(), "none");
    }
}
