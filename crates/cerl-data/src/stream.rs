//! Incrementally available domain sequences (paper Fig. 4).
//!
//! A [`DomainStream`] is the unit of work for continual estimators: an
//! ordered sequence of train/validation/test splits, one per domain, where
//! the learner may only look at domain `d`'s raw data while training stage
//! `d`.

use crate::dataset::{CausalDataset, TrainValTest};
use crate::error::DataError;
use crate::semisynthetic::SemiSyntheticGenerator;
use crate::shift::DomainShift;
use crate::synthetic::SyntheticGenerator;
use cerl_rand::seeds;

/// Fractions used by the paper for all benchmarks.
pub const TRAIN_FRAC: f64 = 0.6;
/// Validation fraction (paper: 20%).
pub const VAL_FRAC: f64 = 0.2;

/// An ordered sequence of per-domain splits.
#[derive(Debug, Clone)]
pub struct DomainStream {
    domains: Vec<TrainValTest>,
}

impl DomainStream {
    /// Build from pre-split domains.
    ///
    /// # Panics
    /// On an empty domain list; [`DomainStream::try_from_splits`] is the
    /// fallible form a serving process should use.
    pub fn from_splits(domains: Vec<TrainValTest>) -> Self {
        match Self::try_from_splits(domains) {
            Ok(stream) => stream,
            Err(e) => panic!("DomainStream: {e}"),
        }
    }

    /// Build from pre-split domains, returning a typed error on an empty
    /// list instead of panicking (an empty stream has no covariate
    /// dimension, no stage 0, and nothing downstream can do with it).
    pub fn try_from_splits(domains: Vec<TrainValTest>) -> Result<Self, DataError> {
        if domains.is_empty() {
            return Err(DataError::EmptyInput {
                what: "domain stream (need at least one domain)",
            });
        }
        Ok(Self { domains })
    }

    /// Split raw per-domain datasets 60/20/20 with seeded shuffles.
    ///
    /// # Panics
    /// On an empty dataset list; [`DomainStream::try_from_datasets`] is the
    /// fallible form a serving process should use.
    pub fn from_datasets(datasets: Vec<CausalDataset>, seed: u64) -> Self {
        match Self::try_from_datasets(datasets, seed) {
            Ok(stream) => stream,
            Err(e) => panic!("DomainStream: {e}"),
        }
    }

    /// Split raw per-domain datasets 60/20/20 with seeded shuffles,
    /// returning a typed error on an empty list instead of panicking.
    pub fn try_from_datasets(datasets: Vec<CausalDataset>, seed: u64) -> Result<Self, DataError> {
        if datasets.is_empty() {
            return Err(DataError::EmptyInput {
                what: "domain stream (need at least one domain)",
            });
        }
        let domains = datasets
            .into_iter()
            .enumerate()
            .map(|(d, ds)| {
                let mut rng = seeds::rng_labeled(seed, &format!("split-{d}"));
                ds.split(TRAIN_FRAC, VAL_FRAC, &mut rng)
            })
            .collect();
        Ok(Self { domains })
    }

    /// Synthetic stream of `n_domains` domains (replication `rep`).
    pub fn synthetic(gen: &SyntheticGenerator, n_domains: usize, rep: usize, seed: u64) -> Self {
        let datasets: Vec<CausalDataset> = (0..n_domains).map(|d| gen.domain(d, rep)).collect();
        Self::from_datasets(datasets, seeds::derive(seed, rep as u64))
    }

    /// Two-domain semi-synthetic stream under a [`DomainShift`] scenario.
    pub fn semisynthetic(
        gen: &SemiSyntheticGenerator,
        shift: DomainShift,
        rep: u64,
        seed: u64,
    ) -> Self {
        let (d1, d2) = gen.sequential_pair(shift, rep);
        Self::from_datasets(vec![d1, d2], seeds::derive(seed, rep))
    }

    /// Number of domains.
    pub fn len(&self) -> usize {
        self.domains.len()
    }

    /// Always false (construction requires ≥ 1 domain).
    pub fn is_empty(&self) -> bool {
        self.domains.is_empty()
    }

    /// Splits of domain `d`.
    pub fn domain(&self, d: usize) -> &TrainValTest {
        &self.domains[d]
    }

    /// Iterate over domains in arrival order.
    pub fn iter(&self) -> impl Iterator<Item = &TrainValTest> {
        self.domains.iter()
    }

    /// Union of the training sets of domains `0..=d` (what the ideal
    /// retrain-from-scratch strategy CFR-C gets to see).
    pub fn pooled_train_up_to(&self, d: usize) -> CausalDataset {
        assert!(
            d < self.domains.len(),
            "pooled_train_up_to: domain out of range"
        );
        let mut pooled = self.domains[0].train.clone();
        for dom in &self.domains[1..=d] {
            pooled = pooled.concat(&dom.train);
        }
        pooled
    }

    /// Test sets of all domains seen so far (`0..=d`), kept separate so
    /// per-domain metrics can be reported (paper's "previous data" / "new
    /// data" columns).
    pub fn test_sets_up_to(&self, d: usize) -> Vec<&CausalDataset> {
        assert!(
            d < self.domains.len(),
            "test_sets_up_to: domain out of range"
        );
        self.domains[..=d].iter().map(|s| &s.test).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticConfig;

    fn quick_stream(n_domains: usize) -> DomainStream {
        let gen = SyntheticGenerator::new(SyntheticConfig::small(), 5);
        DomainStream::synthetic(&gen, n_domains, 0, 11)
    }

    #[test]
    fn split_sizes() {
        let s = quick_stream(3);
        assert_eq!(s.len(), 3);
        for d in s.iter() {
            assert_eq!(d.train.n(), 240); // 60% of 400
            assert_eq!(d.val.n(), 80);
            assert_eq!(d.test.n(), 80);
        }
    }

    #[test]
    fn pooling_accumulates() {
        let s = quick_stream(3);
        assert_eq!(s.pooled_train_up_to(0).n(), 240);
        assert_eq!(s.pooled_train_up_to(1).n(), 480);
        assert_eq!(s.pooled_train_up_to(2).n(), 720);
        assert_eq!(s.test_sets_up_to(1).len(), 2);
    }

    #[test]
    fn deterministic() {
        let a = quick_stream(2);
        let b = quick_stream(2);
        assert_eq!(a.domain(0).train.y, b.domain(0).train.y);
        assert_eq!(a.domain(1).test.y, b.domain(1).test.y);
    }

    #[test]
    #[should_panic(expected = "at least one domain")]
    fn empty_stream_rejected() {
        let _ = DomainStream::from_splits(vec![]);
    }

    #[test]
    fn try_constructors_reject_empty_with_typed_error() {
        assert!(matches!(
            DomainStream::try_from_splits(vec![]),
            Err(DataError::EmptyInput { .. })
        ));
        assert!(matches!(
            DomainStream::try_from_datasets(vec![], 3),
            Err(DataError::EmptyInput { .. })
        ));
    }

    #[test]
    fn try_constructors_match_panicking_forms() {
        let s = quick_stream(2);
        let rebuilt = DomainStream::try_from_splits(s.domains.clone()).unwrap();
        assert_eq!(rebuilt.len(), 2);
        assert_eq!(rebuilt.domain(0).train.y, s.domain(0).train.y);
    }
}
