//! LDA-style generative topic-model simulator.
//!
//! The paper's News/BlogCatalog benchmarks consume an LDA topic model
//! fitted on a real corpus: each unit is a bag-of-words vector `x` with
//! topic distribution `z(x)`. The real corpora are not available offline,
//! so we *generate* from the same family instead: topic–word distributions
//! `φ_k ~ Dirichlet(β)` over the vocabulary, per-document topic mixtures
//! `z ~ Dirichlet(α)` (optionally restricted to a topic subset to create
//! domain shift), and word counts from the resulting mixture. The document's
//! true mixture plays the role of the fitted posterior `z(x)` — it is the
//! only quantity the downstream outcome/treatment mechanism uses.

use cerl_math::Matrix;
use cerl_rand::{Categorical, Dirichlet};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the topic model simulator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TopicModelConfig {
    /// Number of topics (paper: 50).
    pub n_topics: usize,
    /// Vocabulary size (News: 3477; BlogCatalog: 2160).
    pub vocab_size: usize,
    /// Dirichlet concentration for topic–word distributions (small → each
    /// topic concentrates on few words).
    pub word_alpha: f64,
    /// Dirichlet concentration for document–topic mixtures (small →
    /// documents concentrate on few topics).
    pub doc_alpha: f64,
    /// Inclusive range of document lengths (word tokens per document).
    pub doc_length: (usize, usize),
    /// Probability that a token is drawn from a shared background word
    /// distribution instead of its topic (models the Zipfian common
    /// vocabulary of real corpora; without it, low `word_alpha` makes
    /// topics lexically disjoint, which real NY Times / BlogCatalog text
    /// is not).
    pub background_mix: f64,
}

impl TopicModelConfig {
    /// Small configuration for tests.
    pub fn small() -> Self {
        Self {
            n_topics: 8,
            vocab_size: 60,
            word_alpha: 0.1,
            doc_alpha: 0.3,
            doc_length: (20, 40),
            background_mix: 0.3,
        }
    }
}

/// A sampled topic model: `n_topics` word distributions over the vocabulary.
#[derive(Debug, Clone)]
pub struct TopicModel {
    topic_word: Matrix,
    samplers: Vec<Categorical>,
    background: Categorical,
    cfg: TopicModelConfig,
}

/// One generated document.
#[derive(Debug, Clone)]
pub struct Document {
    /// Bag-of-words counts (length = vocabulary size).
    pub counts: Vec<f64>,
    /// True topic mixture over all topics (length = n_topics; zeros outside
    /// the allowed subset).
    pub z: Vec<f64>,
    /// Index of the largest-mass topic.
    pub dominant_topic: usize,
}

impl TopicModel {
    /// Sample a topic model from the configuration.
    pub fn generate<R: Rng + ?Sized>(cfg: TopicModelConfig, rng: &mut R) -> Self {
        assert!(cfg.n_topics >= 2, "TopicModel: need at least 2 topics");
        assert!(cfg.vocab_size >= 2, "TopicModel: need at least 2 words");
        assert!(
            cfg.doc_length.0 >= 1 && cfg.doc_length.0 <= cfg.doc_length.1,
            "TopicModel: invalid doc_length range"
        );
        assert!(
            (0.0..1.0).contains(&cfg.background_mix),
            "TopicModel: background_mix in [0,1)"
        );
        let word_prior = Dirichlet::symmetric(cfg.vocab_size, cfg.word_alpha);
        let mut topic_word = Matrix::zeros(cfg.n_topics, cfg.vocab_size);
        let mut samplers = Vec::with_capacity(cfg.n_topics);
        for k in 0..cfg.n_topics {
            let dist = word_prior.sample(rng);
            topic_word.row_mut(k).copy_from_slice(&dist);
            samplers.push(Categorical::new(&dist));
        }
        // Smoother concentration for the background: common words are
        // spread over much of the vocabulary.
        let background_dist =
            Dirichlet::symmetric(cfg.vocab_size, (cfg.word_alpha * 10.0).max(0.5)).sample(rng);
        let background = Categorical::new(&background_dist);
        Self {
            topic_word,
            samplers,
            background,
            cfg,
        }
    }

    /// Configuration in use.
    pub fn config(&self) -> &TopicModelConfig {
        &self.cfg
    }

    /// Topic–word probability matrix (`n_topics × vocab_size`).
    pub fn topic_word(&self) -> &Matrix {
        &self.topic_word
    }

    /// Generate one document whose topic mixture is supported on
    /// `allowed_topics` (paper's domain-shift construction: datasets are
    /// built from disjoint/overlapping topic ranges).
    ///
    /// # Panics
    /// If `allowed_topics` is empty or contains an out-of-range index.
    pub fn document<R: Rng + ?Sized>(&self, allowed_topics: &[usize], rng: &mut R) -> Document {
        assert!(!allowed_topics.is_empty(), "document: empty topic subset");
        assert!(
            allowed_topics.iter().all(|&k| k < self.cfg.n_topics),
            "document: topic index out of range"
        );
        // Mixture over the allowed subset, embedded into the full simplex.
        let mut z = vec![0.0; self.cfg.n_topics];
        if allowed_topics.len() == 1 {
            z[allowed_topics[0]] = 1.0;
        } else {
            let mix = Dirichlet::symmetric(allowed_topics.len(), self.cfg.doc_alpha).sample(rng);
            for (&k, &w) in allowed_topics.iter().zip(&mix) {
                z[k] = w;
            }
        }
        let topic_sampler =
            Categorical::new(&allowed_topics.iter().map(|&k| z[k]).collect::<Vec<_>>());

        let (lo, hi) = self.cfg.doc_length;
        let len = if lo == hi { lo } else { rng.gen_range(lo..=hi) };
        let mut counts = vec![0.0; self.cfg.vocab_size];
        for _ in 0..len {
            let word =
                if self.cfg.background_mix > 0.0 && rng.gen::<f64>() < self.cfg.background_mix {
                    self.background.sample(rng)
                } else {
                    let local = topic_sampler.sample(rng);
                    let topic = allowed_topics[local];
                    self.samplers[topic].sample(rng)
                };
            counts[word] += 1.0;
        }

        let dominant_topic = z
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("NaN in mixture"))
            .map(|(k, _)| k)
            .unwrap_or(0);
        Document {
            counts,
            z,
            dominant_topic,
        }
    }

    /// Mean topic mixture over `n` pilot documents drawn from the full
    /// topic set — the paper's centroid `z^c_0` ("average topic
    /// representation of all documents").
    pub fn mean_mixture<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<f64> {
        let all: Vec<usize> = (0..self.cfg.n_topics).collect();
        let mut acc = vec![0.0; self.cfg.n_topics];
        for _ in 0..n.max(1) {
            let doc = self.document(&all, rng);
            for (a, &v) in acc.iter_mut().zip(&doc.z) {
                *a += v;
            }
        }
        let scale = 1.0 / n.max(1) as f64;
        acc.iter_mut().for_each(|v| *v *= scale);
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn topic_rows_are_distributions() {
        let mut rng = StdRng::seed_from_u64(1);
        let tm = TopicModel::generate(TopicModelConfig::small(), &mut rng);
        for k in 0..tm.config().n_topics {
            let s: f64 = tm.topic_word().row(k).iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "topic {k} sums to {s}");
            assert!(tm.topic_word().row(k).iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn document_counts_and_mixture() {
        let mut rng = StdRng::seed_from_u64(2);
        let tm = TopicModel::generate(TopicModelConfig::small(), &mut rng);
        let all: Vec<usize> = (0..8).collect();
        let doc = tm.document(&all, &mut rng);
        let total: f64 = doc.counts.iter().sum();
        assert!((20.0..=40.0).contains(&total), "doc length {total}");
        assert!((doc.z.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(doc.dominant_topic < 8);
        assert!(doc.z[doc.dominant_topic] >= doc.z.iter().cloned().fold(0.0, f64::max) - 1e-15);
    }

    #[test]
    fn restricted_support() {
        let mut rng = StdRng::seed_from_u64(3);
        let tm = TopicModel::generate(TopicModelConfig::small(), &mut rng);
        let subset = [2usize, 5];
        for _ in 0..20 {
            let doc = tm.document(&subset, &mut rng);
            for (k, &w) in doc.z.iter().enumerate() {
                if !subset.contains(&k) {
                    assert_eq!(w, 0.0, "mass outside subset at topic {k}");
                }
            }
            assert!(subset.contains(&doc.dominant_topic));
        }
    }

    #[test]
    fn single_topic_document() {
        let mut rng = StdRng::seed_from_u64(4);
        let tm = TopicModel::generate(TopicModelConfig::small(), &mut rng);
        let doc = tm.document(&[3], &mut rng);
        assert_eq!(doc.z[3], 1.0);
        assert_eq!(doc.dominant_topic, 3);
    }

    #[test]
    fn restricted_docs_use_restricted_vocabulary() {
        // Words sampled only from the allowed topics' distributions: the
        // expected word histogram should correlate with those topics.
        let mut rng = StdRng::seed_from_u64(5);
        let tm = TopicModel::generate(TopicModelConfig::small(), &mut rng);
        let mut agg = vec![0.0; tm.config().vocab_size];
        for _ in 0..200 {
            let doc = tm.document(&[0], &mut rng);
            for (a, &c) in agg.iter_mut().zip(&doc.counts) {
                *a += c;
            }
        }
        let total: f64 = agg.iter().sum();
        // Empirical word frequency should be close to φ_0.
        let phi0 = tm.topic_word().row(0);
        let mut l1 = 0.0;
        for (a, &p) in agg.iter().zip(phi0) {
            l1 += (a / total - p).abs();
        }
        // background_mix=0.3 injects up to ~0.6 L1 of background mass.
        assert!(l1 < 0.75, "empirical/φ₀ L1 distance {l1}");
    }

    #[test]
    fn mean_mixture_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(6);
        let tm = TopicModel::generate(TopicModelConfig::small(), &mut rng);
        let m = tm.mean_mixture(2000, &mut rng);
        assert!((m.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        for &v in &m {
            assert!((v - 0.125).abs() < 0.05, "mean mixture component {v}");
        }
    }

    #[test]
    #[should_panic(expected = "empty topic subset")]
    fn empty_subset_panics() {
        let mut rng = StdRng::seed_from_u64(7);
        let tm = TopicModel::generate(TopicModelConfig::small(), &mut rng);
        let _ = tm.document(&[], &mut rng);
    }
}
