//! Causal dataset container and splitting/standardization utilities.
//!
//! A [`CausalDataset`] carries covariates, binary treatments, factual
//! outcomes, and — because every benchmark here is (semi-)synthetic — the
//! true noiseless potential outcomes `μ₀, μ₁`, which evaluation uses to
//! compute PEHE and the true ATE.

use crate::error::DataError;
use cerl_math::Matrix;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Observational dataset with ground-truth potential outcomes.
#[derive(Debug, Clone)]
pub struct CausalDataset {
    /// Covariates, one unit per row.
    pub x: Matrix,
    /// Treatment indicator per unit.
    pub t: Vec<bool>,
    /// Factual (observed) outcome per unit.
    pub y: Vec<f64>,
    /// True noiseless outcome under control.
    pub mu0: Vec<f64>,
    /// True noiseless outcome under treatment.
    pub mu1: Vec<f64>,
}

impl CausalDataset {
    /// Construct, validating that all fields have consistent lengths.
    ///
    /// # Panics
    /// On inconsistent lengths; [`CausalDataset::try_new`] is the fallible
    /// form.
    pub fn new(x: Matrix, t: Vec<bool>, y: Vec<f64>, mu0: Vec<f64>, mu1: Vec<f64>) -> Self {
        match Self::try_new(x, t, y, mu0, mu1) {
            Ok(ds) => ds,
            Err(e) => panic!("CausalDataset: {e}"),
        }
    }

    /// Construct, returning a typed error when any per-unit field's length
    /// disagrees with the covariate row count.
    pub fn try_new(
        x: Matrix,
        t: Vec<bool>,
        y: Vec<f64>,
        mu0: Vec<f64>,
        mu1: Vec<f64>,
    ) -> Result<Self, DataError> {
        let n = x.rows();
        for (field, found) in [
            ("t", t.len()),
            ("y", y.len()),
            ("mu0", mu0.len()),
            ("mu1", mu1.len()),
        ] {
            if found != n {
                return Err(DataError::LengthMismatch {
                    field,
                    expected: n,
                    found,
                });
            }
        }
        Ok(Self { x, t, y, mu0, mu1 })
    }

    /// Number of units.
    pub fn n(&self) -> usize {
        self.x.rows()
    }

    /// Number of covariates.
    pub fn dim(&self) -> usize {
        self.x.cols()
    }

    /// Indices of treated units.
    pub fn treated_indices(&self) -> Vec<usize> {
        (0..self.n()).filter(|&i| self.t[i]).collect()
    }

    /// Indices of control units.
    pub fn control_indices(&self) -> Vec<usize> {
        (0..self.n()).filter(|&i| !self.t[i]).collect()
    }

    /// Number of treated units.
    pub fn n_treated(&self) -> usize {
        self.t.iter().filter(|&&t| t).count()
    }

    /// True individual treatment effect per unit.
    pub fn true_ite(&self) -> Vec<f64> {
        self.mu1
            .iter()
            .zip(&self.mu0)
            .map(|(&a, &b)| a - b)
            .collect()
    }

    /// True average treatment effect.
    pub fn true_ate(&self) -> f64 {
        if self.n() == 0 {
            return 0.0;
        }
        self.true_ite().iter().sum::<f64>() / self.n() as f64
    }

    /// Subset by unit indices (repeats allowed).
    pub fn select(&self, indices: &[usize]) -> Self {
        Self {
            x: self.x.select_rows(indices),
            t: indices.iter().map(|&i| self.t[i]).collect(),
            y: indices.iter().map(|&i| self.y[i]).collect(),
            mu0: indices.iter().map(|&i| self.mu0[i]).collect(),
            mu1: indices.iter().map(|&i| self.mu1[i]).collect(),
        }
    }

    /// Concatenate two datasets (same covariate dimension).
    pub fn concat(&self, other: &Self) -> Self {
        Self {
            x: self.x.vstack(&other.x),
            t: self.t.iter().chain(&other.t).copied().collect(),
            y: self.y.iter().chain(&other.y).copied().collect(),
            mu0: self.mu0.iter().chain(&other.mu0).copied().collect(),
            mu1: self.mu1.iter().chain(&other.mu1).copied().collect(),
        }
    }

    /// Shuffled train/validation/test split (fractions must sum to ≤ 1;
    /// the remainder becomes the test set). The paper uses 60/20/20.
    pub fn split<R: Rng + ?Sized>(
        &self,
        train_frac: f64,
        val_frac: f64,
        rng: &mut R,
    ) -> TrainValTest {
        assert!(
            train_frac >= 0.0 && val_frac >= 0.0 && train_frac + val_frac <= 1.0,
            "split: invalid fractions {train_frac}/{val_frac}"
        );
        let n = self.n();
        let mut idx: Vec<usize> = (0..n).collect();
        idx.shuffle(rng);
        let n_train = ((n as f64) * train_frac).round() as usize;
        let n_val = ((n as f64) * val_frac).round() as usize;
        let n_train = n_train.min(n);
        let n_val = n_val.min(n - n_train);
        TrainValTest {
            train: self.select(&idx[..n_train]),
            val: self.select(&idx[n_train..n_train + n_val]),
            test: self.select(&idx[n_train + n_val..]),
        }
    }

    /// Factual outcomes as an `n×1` matrix (training target).
    pub fn y_matrix(&self) -> Matrix {
        Matrix::col_vector(&self.y)
    }
}

/// Train/validation/test split of a dataset.
#[derive(Debug, Clone)]
pub struct TrainValTest {
    /// Training split.
    pub train: CausalDataset,
    /// Validation split.
    pub val: CausalDataset,
    /// Held-out test split.
    pub test: CausalDataset,
}

/// Per-column affine standardizer (train-split statistics) with optional
/// z-score clipping.
///
/// Clipping matters for continual estimation on sparse count features: a
/// column that is nearly constant in the fitting domain gets a tiny std,
/// and a later domain where that feature is active would otherwise map to
/// z-scores in the tens or hundreds, destabilizing any downstream network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Standardizer {
    means: Vec<f64>,
    stds: Vec<f64>,
    clip: Option<f64>,
}

impl Standardizer {
    /// Fit on the rows of `x`; constant columns get std 1 (identity map).
    ///
    /// # Panics
    /// On an empty matrix; [`Standardizer::try_fit`] is the fallible form.
    pub fn fit(x: &Matrix) -> Self {
        match Self::try_fit(x) {
            Ok(s) => s,
            Err(e) => panic!("Standardizer: {e}"),
        }
    }

    /// Fit on the rows of `x`, rejecting empty input.
    pub fn try_fit(x: &Matrix) -> Result<Self, DataError> {
        if x.rows() == 0 || x.cols() == 0 {
            return Err(DataError::EmptyInput {
                what: "Standardizer::fit covariates",
            });
        }
        let means = x.col_means();
        let stds = x
            .col_stds()
            .into_iter()
            .map(|s| if s > 1e-12 { s } else { 1.0 })
            .collect();
        Ok(Self {
            means,
            stds,
            clip: None,
        })
    }

    /// Fit with symmetric z-score clipping at `±clip`.
    ///
    /// # Panics
    /// On invalid input; [`Standardizer::try_fit_clipped`] is the fallible
    /// form.
    pub fn fit_clipped(x: &Matrix, clip: f64) -> Self {
        match Self::try_fit_clipped(x, clip) {
            Ok(s) => s,
            Err(e) => panic!("Standardizer: {e}"),
        }
    }

    /// Fit with symmetric z-score clipping, rejecting a non-positive clip
    /// and empty input.
    pub fn try_fit_clipped(x: &Matrix, clip: f64) -> Result<Self, DataError> {
        if !clip.is_finite() || clip <= 0.0 {
            return Err(DataError::InvalidParameter {
                name: "clip",
                reason: format!("must be positive and finite, got {clip}"),
            });
        }
        let mut s = Self::try_fit(x)?;
        s.clip = Some(clip);
        Ok(s)
    }

    /// Apply `(x − μ)/σ` columnwise (then clip, when configured).
    ///
    /// # Panics
    /// On a column-count mismatch; [`Standardizer::try_transform`] is the
    /// fallible form.
    pub fn transform(&self, x: &Matrix) -> Matrix {
        match self.try_transform(x) {
            Ok(z) => z,
            Err(e) => panic!("Standardizer: {e}"),
        }
    }

    /// Apply `(x − μ)/σ` columnwise, returning a typed error when `x` has a
    /// different column count than the fitting data. A matrix with no rows
    /// carries no values to map and transforms to an empty matrix of the
    /// fitted width regardless of its nominal column count (so "no
    /// validation data" never trips the dimension check).
    pub fn try_transform(&self, x: &Matrix) -> Result<Matrix, DataError> {
        if x.rows() == 0 {
            return Ok(Matrix::zeros(0, self.means.len()));
        }
        if x.cols() != self.means.len() {
            return Err(DataError::DimensionMismatch {
                expected: self.means.len(),
                found: x.cols(),
            });
        }
        let mut out = x.clone();
        for i in 0..out.rows() {
            let row = out.row_mut(i);
            for ((v, &m), &s) in row.iter_mut().zip(&self.means).zip(&self.stds) {
                *v = (*v - m) / s;
                if let Some(c) = self.clip {
                    *v = v.clamp(-c, c);
                }
            }
        }
        Ok(out)
    }

    /// Number of columns this standardizer was fit on.
    pub fn dim(&self) -> usize {
        self.means.len()
    }

    /// Fitted per-column means.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Fitted per-column standard deviations (floored away from zero).
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }

    /// Symmetric z-score clip applied after standardization, if any.
    pub fn clip(&self) -> Option<f64> {
        self.clip
    }
}

/// Scalar standardizer for outcomes.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct OutcomeScaler {
    mean: f64,
    sd: f64,
}

impl OutcomeScaler {
    /// Fit on a slice of outcomes; constant outcomes get sd 1.
    ///
    /// # Panics
    /// On an empty slice; [`OutcomeScaler::try_fit`] is the fallible form.
    pub fn fit(y: &[f64]) -> Self {
        match Self::try_fit(y) {
            Ok(s) => s,
            Err(e) => panic!("OutcomeScaler: {e}"),
        }
    }

    /// Fit on a slice of outcomes, rejecting empty input.
    pub fn try_fit(y: &[f64]) -> Result<Self, DataError> {
        if y.is_empty() {
            return Err(DataError::EmptyInput {
                what: "OutcomeScaler::fit outcomes",
            });
        }
        let mean = cerl_math::stats::mean(y);
        let sd = cerl_math::stats::std_dev(y);
        Ok(Self {
            mean,
            sd: if sd > 1e-12 { sd } else { 1.0 },
        })
    }

    /// `(y − μ)/σ`.
    pub fn transform(&self, y: &[f64]) -> Vec<f64> {
        y.iter().map(|&v| (v - self.mean) / self.sd).collect()
    }

    /// `ŷ·σ + μ` (back to the original outcome scale).
    pub fn inverse(&self, y: &[f64]) -> Vec<f64> {
        y.iter().map(|&v| v * self.sd + self.mean).collect()
    }

    /// Fitted mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Fitted standard deviation.
    pub fn sd(&self) -> f64 {
        self.sd
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy(n: usize) -> CausalDataset {
        let x = Matrix::from_fn(n, 3, |i, j| (i * 3 + j) as f64);
        let t: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
        let mu0: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let mu1: Vec<f64> = (0..n).map(|i| i as f64 + 2.0).collect();
        let y: Vec<f64> = (0..n)
            .map(|i| if i % 2 == 0 { mu1[i] } else { mu0[i] })
            .collect();
        CausalDataset::new(x, t, y, mu0, mu1)
    }

    #[test]
    fn accessors() {
        let d = toy(6);
        assert_eq!(d.n(), 6);
        assert_eq!(d.dim(), 3);
        assert_eq!(d.n_treated(), 3);
        assert_eq!(d.treated_indices(), vec![0, 2, 4]);
        assert_eq!(d.control_indices(), vec![1, 3, 5]);
        assert_eq!(d.true_ate(), 2.0);
        assert!(d.true_ite().iter().all(|&v| v == 2.0));
    }

    #[test]
    fn select_and_concat() {
        let d = toy(4);
        let s = d.select(&[3, 0]);
        assert_eq!(s.n(), 2);
        assert_eq!(s.y[0], d.y[3]);
        assert_eq!(s.t[1], d.t[0]);

        let c = d.concat(&s);
        assert_eq!(c.n(), 6);
        assert_eq!(c.y[4], d.y[3]);
    }

    #[test]
    fn split_covers_everything() {
        let d = toy(100);
        let mut rng = StdRng::seed_from_u64(5);
        let s = d.split(0.6, 0.2, &mut rng);
        assert_eq!(s.train.n(), 60);
        assert_eq!(s.val.n(), 20);
        assert_eq!(s.test.n(), 20);
        // Outcomes are a permutation of the originals.
        let mut all: Vec<f64> = s
            .train
            .y
            .iter()
            .chain(&s.val.y)
            .chain(&s.test.y)
            .copied()
            .collect();
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut orig = d.y.clone();
        orig.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(all, orig);
    }

    #[test]
    fn split_is_seed_deterministic() {
        let d = toy(50);
        let a = d.split(0.5, 0.25, &mut StdRng::seed_from_u64(1));
        let b = d.split(0.5, 0.25, &mut StdRng::seed_from_u64(1));
        assert_eq!(a.train.y, b.train.y);
        assert_eq!(a.test.y, b.test.y);
    }

    #[test]
    fn standardizer_normalizes() {
        let x = Matrix::from_rows(&[vec![1.0, 100.0], vec![3.0, 300.0], vec![5.0, 500.0]]);
        let s = Standardizer::fit(&x);
        let z = s.transform(&x);
        let m = z.col_means();
        let sd = z.col_stds();
        assert!(m.iter().all(|&v| v.abs() < 1e-12));
        assert!(sd.iter().all(|&v| (v - 1.0).abs() < 1e-12));
    }

    #[test]
    fn standardizer_constant_column() {
        let x = Matrix::from_rows(&[vec![7.0, 1.0], vec![7.0, 2.0]]);
        let s = Standardizer::fit(&x);
        let z = s.transform(&x);
        assert_eq!(z[(0, 0)], 0.0);
        assert_eq!(z[(1, 0)], 0.0);
    }

    #[test]
    fn outcome_scaler_roundtrip() {
        let y = [10.0, 20.0, 30.0, 40.0];
        let s = OutcomeScaler::fit(&y);
        let z = s.transform(&y);
        assert!(cerl_math::stats::mean(&z).abs() < 1e-12);
        let back = s.inverse(&z);
        for (a, b) in back.iter().zip(&y) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "t length mismatch")]
    fn rejects_inconsistent_lengths() {
        let _ = CausalDataset::new(
            Matrix::zeros(3, 2),
            vec![true],
            vec![0.0; 3],
            vec![0.0; 3],
            vec![0.0; 3],
        );
    }
}
