//! Serving-grade engine facade over the continual estimator.
//!
//! [`CerlEngine`] is the object a long-running service holds across stages
//! and requests:
//!
//! * **Fallible builder** — [`CerlEngineBuilder::build`] validates the
//!   configuration up front and returns [`CerlError`] instead of panicking;
//!   the covariate dimension is inferred from the first observed domain,
//!   so the engine can be constructed before any data exists.
//! * **Typed errors end to end** — [`CerlEngine::observe`] and every
//!   predict method return `Result`, so malformed requests (wrong
//!   dimension, empty batches) surface as structured errors a handler can
//!   map to a 4xx instead of crashing a worker.
//! * **Versioned snapshots** — [`CerlEngine::save_bytes`] /
//!   [`CerlEngine::load_bytes`] persist the trained estimator across
//!   process restarts and let replicas hot-swap models; restored engines
//!   predict bitwise-identically and keep learning.
//! * **Batched inference** — [`CerlEngine::predict_ite_batch`] serves a
//!   set of request matrices in one call, and
//!   [`CerlEngine::predict_ite_chunked`] bounds peak working-set size for
//!   very large request matrices by slicing them into row chunks.
//!
//! ```
//! use cerl_core::config::CerlConfig;
//! use cerl_core::engine::CerlEngineBuilder;
//! use cerl_data::{DomainStream, SyntheticConfig, SyntheticGenerator};
//!
//! let gen = SyntheticGenerator::new(SyntheticConfig::small(), 7);
//! let stream = DomainStream::synthetic(&gen, 2, 0, 7);
//!
//! let mut cfg = CerlConfig::quick_test();
//! cfg.train.epochs = 2; // doc-test speed
//! let mut engine = CerlEngineBuilder::new(cfg).seed(7).build()?;
//!
//! for d in 0..stream.len() {
//!     engine.observe(&stream.domain(d).train, &stream.domain(d).val)?;
//! }
//! let ite = engine.predict_ite(&stream.domain(0).test.x)?;
//! assert_eq!(ite.len(), stream.domain(0).test.n());
//!
//! // Persist, restart, keep serving.
//! let bytes = engine.save_bytes()?;
//! let restored = cerl_core::engine::CerlEngine::load_bytes(&bytes)?;
//! assert_eq!(restored.predict_ite(&stream.domain(0).test.x)?, ite);
//! # Ok::<(), cerl_core::error::CerlError>(())
//! ```

use crate::config::CerlConfig;
use crate::continual::{Cerl, StageReport};
use crate::error::CerlError;
use crate::memory::Memory;
use crate::precision::{F32Plan, PrecisionMode};
use crate::snapshot::{ModelSnapshot, SnapshotPayload};
use cerl_data::CausalDataset;
use cerl_math::Matrix;

/// Default row-chunk size used by
/// [`CerlEngine::predict_ite_chunked`] when the caller passes 0.
pub const DEFAULT_PREDICT_CHUNK_ROWS: usize = 4096;

/// Fallible builder for [`CerlEngine`].
#[derive(Debug, Clone)]
pub struct CerlEngineBuilder {
    cfg: CerlConfig,
    seed: u64,
    d_in: Option<usize>,
    precision: PrecisionMode,
}

impl CerlEngineBuilder {
    /// Start building an engine with the given configuration.
    pub fn new(cfg: CerlConfig) -> Self {
        Self {
            cfg,
            seed: 0,
            d_in: None,
            precision: PrecisionMode::default(),
        }
    }

    /// Base seed for all stage RNG streams (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Precision the engine answers predict requests in (default
    /// [`PrecisionMode::F64`]). Training always runs in `f64`; see
    /// [`crate::precision`] for the per-mode determinism contract.
    pub fn precision(mut self, mode: PrecisionMode) -> Self {
        self.precision = mode;
        self
    }

    /// Fix the covariate dimension up front instead of inferring it from
    /// the first observed domain. Useful when the serving schema is known
    /// at deploy time: requests with the wrong width are rejected even
    /// before the first training domain arrives.
    pub fn covariate_dim(mut self, d_in: usize) -> Self {
        self.d_in = Some(d_in);
        self
    }

    /// Validate the configuration and produce an engine.
    ///
    /// Returns [`CerlError::InvalidConfig`] naming the offending field, or
    /// [`CerlError::EmptyInput`] when an explicit covariate dimension of 0
    /// was requested. No network parameters are allocated until the
    /// covariate dimension is known (explicitly or from the first domain).
    pub fn build(self) -> Result<CerlEngine, CerlError> {
        self.cfg.validate()?;
        let model = match self.d_in {
            Some(0) => {
                return Err(CerlError::EmptyInput {
                    what: "covariate dimension (d_in = 0)",
                })
            }
            Some(d_in) => Some(Cerl::try_new(d_in, self.cfg.clone(), self.seed)?),
            None => None,
        };
        Ok(CerlEngine {
            cfg: self.cfg,
            seed: self.seed,
            model,
            precision: self.precision,
            f32_plan: None,
        })
    }
}

/// Long-lived serving facade: observes domains as they arrive, answers
/// prediction requests, and saves/loads versioned snapshots.
///
/// `Clone` produces an independent replica (all state is owned); the
/// concurrent [`ServingEngine`](crate::serving::ServingEngine) uses this to
/// train a successor off to the side while readers keep hitting the
/// current engine.
#[derive(Clone)]
pub struct CerlEngine {
    cfg: CerlConfig,
    seed: u64,
    model: Option<Cerl>,
    /// Precision predict requests are answered in. Training and
    /// [`embed`](CerlEngine::embed) always run in `f64`.
    precision: PrecisionMode,
    /// Compiled single-precision plan; `Some` exactly when
    /// `precision == F32` and the engine is trained (recompiled after
    /// every [`observe`](CerlEngine::observe), since weights change).
    f32_plan: Option<F32Plan>,
}

impl CerlEngine {
    /// Builder entry point (alias for [`CerlEngineBuilder::new`]).
    pub fn builder(cfg: CerlConfig) -> CerlEngineBuilder {
        CerlEngineBuilder::new(cfg)
    }

    /// Observe the next incrementally available domain.
    ///
    /// On the very first call the covariate dimension is inferred from
    /// `train` (unless fixed via [`CerlEngineBuilder::covariate_dim`]) and
    /// the underlying estimator is created. On error the engine state is
    /// unchanged.
    pub fn observe(
        &mut self,
        train: &CausalDataset,
        val: &CausalDataset,
    ) -> Result<StageReport, CerlError> {
        let report = match self.model.as_mut() {
            Some(model) => model.try_observe(train, val)?,
            None => {
                if train.dim() == 0 {
                    return Err(CerlError::EmptyInput {
                        what: "first domain has no covariates",
                    });
                }
                // Build the estimator in a local and only install it once
                // the first stage succeeds, so a malformed first domain
                // does not lock in an inferred covariate dimension.
                let mut model = Cerl::try_new(train.dim(), self.cfg.clone(), self.seed)?;
                let report = model.try_observe(train, val)?;
                self.model = Some(model);
                report
            }
        };
        // The stage rewrote the weights: a compiled f32 plan is stale.
        self.refresh_plan()?;
        Ok(report)
    }

    /// Switch the precision predict requests are answered in.
    ///
    /// Under [`PrecisionMode::F32`] a single-precision plan is compiled
    /// from the current weights (immediately if trained, otherwise at the
    /// first successful [`observe`](CerlEngine::observe)); under
    /// [`PrecisionMode::F64`] any compiled plan is dropped. See
    /// [`crate::precision`] for the per-mode determinism contract.
    pub fn set_precision(&mut self, mode: PrecisionMode) -> Result<(), CerlError> {
        self.precision = mode;
        self.refresh_plan()
    }

    /// Precision predict requests are answered in.
    pub fn precision(&self) -> PrecisionMode {
        self.precision
    }

    /// Re-establish the invariant on [`CerlEngine::f32_plan`]: compiled
    /// exactly when the mode is `F32` and a trained model exists.
    fn refresh_plan(&mut self) -> Result<(), CerlError> {
        self.f32_plan = match (self.precision, self.trained().ok()) {
            (PrecisionMode::F32, Some(model)) => Some(F32Plan::compile(model.cfr())?),
            _ => None,
        };
        Ok(())
    }

    /// Predict ITEs for one validated-or-validatable request matrix in
    /// the engine's precision mode. All public predict paths funnel here,
    /// so batched/chunked/single calls stay bitwise-consistent per mode.
    fn predict_rows(&self, x: &Matrix) -> Result<Vec<f64>, CerlError> {
        let model = self.trained()?;
        match self.f32_plan.as_ref() {
            Some(plan) => plan.predict_ite(x),
            None => model.try_predict_ite(x),
        }
    }

    /// Predicted individual treatment effects for one request matrix, in
    /// the engine's [`PrecisionMode`].
    pub fn predict_ite(&self, x: &Matrix) -> Result<Vec<f64>, CerlError> {
        self.predict_rows(x)
    }

    /// Predicted potential outcomes `(ŷ₀, ŷ₁)` for one request matrix, in
    /// the engine's [`PrecisionMode`].
    pub fn predict_potential_outcomes(
        &self,
        x: &Matrix,
    ) -> Result<(Vec<f64>, Vec<f64>), CerlError> {
        let model = self.trained()?;
        match self.f32_plan.as_ref() {
            Some(plan) => plan.predict_potential_outcomes(x),
            None => model.try_predict_potential_outcomes(x),
        }
    }

    /// Representations of raw covariates under the current pipeline.
    /// Always computed in `f64` — embeddings feed training-side tooling
    /// (memory selection, diagnostics), not the serving hot path.
    pub fn embed(&self, x: &Matrix) -> Result<Matrix, CerlError> {
        self.trained()?.try_embed(x)
    }

    /// Serve a batch of request matrices in one call; result `i` is the
    /// ITE vector for `chunks[i]`.
    ///
    /// Validation is all-or-nothing: every chunk's dimension is checked
    /// before any inference runs, so a malformed chunk in the middle of a
    /// batch cannot leave the caller with partial results.
    pub fn predict_ite_batch(&self, chunks: &[Matrix]) -> Result<Vec<Vec<f64>>, CerlError> {
        let model = self.trained()?;
        let expected = model.d_in();
        for chunk in chunks {
            if chunk.cols() != expected {
                return Err(CerlError::DimensionMismatch {
                    expected,
                    found: chunk.cols(),
                });
            }
        }
        chunks
            .iter()
            .map(|chunk| self.predict_rows(chunk))
            .collect()
    }

    /// Predict ITEs for one large request matrix in row chunks of at most
    /// `chunk_rows` (0 selects [`DEFAULT_PREDICT_CHUNK_ROWS`]), bounding
    /// the transient activation memory while producing exactly the same
    /// output as a single [`CerlEngine::predict_ite`] call.
    pub fn predict_ite_chunked(
        &self,
        x: &Matrix,
        chunk_rows: usize,
    ) -> Result<Vec<f64>, CerlError> {
        let model = self.trained()?;
        if x.cols() != model.d_in() {
            return Err(CerlError::DimensionMismatch {
                expected: model.d_in(),
                found: x.cols(),
            });
        }
        let chunk_rows = if chunk_rows == 0 {
            DEFAULT_PREDICT_CHUNK_ROWS
        } else {
            chunk_rows
        };
        let n = x.rows();
        let mut out = Vec::with_capacity(n);
        let mut start = 0;
        while start < n {
            let end = (start + chunk_rows).min(n);
            out.extend(self.predict_rows(&x.slice_rows(start, end))?);
            start = end;
        }
        Ok(out)
    }

    /// Completed continual stages (0 until the first domain is observed).
    pub fn stage(&self) -> usize {
        self.model.as_ref().map_or(0, Cerl::stage)
    }

    /// Whether at least one domain has been observed.
    pub fn is_trained(&self) -> bool {
        self.stage() > 0
    }

    /// Covariate dimension served by this engine, once known (fixed via
    /// [`CerlEngineBuilder::covariate_dim`] or inferred from the first
    /// observed domain).
    pub fn covariate_dim(&self) -> Option<usize> {
        self.model.as_ref().map(Cerl::d_in)
    }

    /// Configuration in use.
    pub fn config(&self) -> &CerlConfig {
        &self.cfg
    }

    /// Base seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Current representation memory, when one exists.
    pub fn memory(&self) -> Option<&Memory> {
        self.model.as_ref().and_then(Cerl::memory)
    }

    /// Capture the engine's full state as a versioned snapshot.
    ///
    /// Fails with [`CerlError::NotTrained`] before the first observed
    /// domain — an untrained model is one configuration away from
    /// reconstruction, so there is nothing worth persisting (and nothing a
    /// restoring replica could serve).
    pub fn snapshot(&self) -> Result<ModelSnapshot, CerlError> {
        Ok(self.trained()?.to_snapshot())
    }

    /// Serialize the engine to the versioned JSON snapshot byte format.
    pub fn save_bytes(&self) -> Result<Vec<u8>, CerlError> {
        self.snapshot()?.to_bytes()
    }

    /// Serialize the engine to the compact binary snapshot container
    /// (format v3), roughly 4-5x smaller than [`CerlEngine::save_bytes`]
    /// with an f32 payload.
    ///
    /// [`SnapshotPayload::F64`] round-trips bitwise;
    /// [`SnapshotPayload::F32`] narrows model floats exactly as
    /// [`PrecisionMode::F32`] serving does, so a replica restored from it
    /// and opted into f32 mode serves bitwise-identical predictions to
    /// this engine's f32 mode. [`CerlEngine::load_bytes`] reads both
    /// payloads (and the JSON format) transparently.
    pub fn save_bytes_binary(&self, payload: SnapshotPayload) -> Result<Vec<u8>, CerlError> {
        self.snapshot()?.to_binary_bytes(payload)
    }

    /// Rebuild an engine from snapshot bytes (from [`CerlEngine::save_bytes`],
    /// another replica, or a model registry). The restored engine serves
    /// bitwise-identical predictions and continues `observe`-ing subsequent
    /// domains.
    pub fn load_bytes(bytes: &[u8]) -> Result<Self, CerlError> {
        Self::from_snapshot(ModelSnapshot::from_bytes(bytes)?)
    }

    /// Rebuild an engine from an already-parsed snapshot.
    ///
    /// The restored engine answers in [`PrecisionMode::F64`] — precision
    /// is a serving property, not model state; a fleet that wants an
    /// `f32` version calls [`CerlEngine::set_precision`] before
    /// publishing.
    pub fn from_snapshot(snapshot: ModelSnapshot) -> Result<Self, CerlError> {
        let model = Cerl::from_snapshot(snapshot)?;
        Ok(Self {
            cfg: model.config().clone(),
            seed: model.seed(),
            model: Some(model),
            precision: PrecisionMode::F64,
            f32_plan: None,
        })
    }

    /// Borrow the underlying estimator (after the first observed domain).
    pub fn estimator(&self) -> Option<&Cerl> {
        self.model.as_ref()
    }

    fn trained(&self) -> Result<&Cerl, CerlError> {
        match self.model.as_ref() {
            Some(model) if model.stage() > 0 => Ok(model),
            _ => Err(CerlError::NotTrained),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cerl_data::{DomainStream, SyntheticConfig, SyntheticGenerator};

    fn quick_cfg() -> CerlConfig {
        let mut cfg = CerlConfig::quick_test();
        cfg.train.epochs = 6;
        cfg.memory_size = 80;
        cfg
    }

    fn quick_stream(domains: usize) -> DomainStream {
        let gen = SyntheticGenerator::new(
            SyntheticConfig {
                n_units: 400,
                ..SyntheticConfig::small()
            },
            41,
        );
        DomainStream::synthetic(&gen, domains, 0, 41)
    }

    #[test]
    fn builder_validates_config() {
        let mut cfg = quick_cfg();
        cfg.memory_size = 0;
        match CerlEngineBuilder::new(cfg).build() {
            Err(CerlError::InvalidConfig { field, .. }) => assert_eq!(field, "memory_size"),
            other => panic!("expected InvalidConfig, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn engine_infers_dimension_and_serves_all_domains() {
        let stream = quick_stream(2);
        let mut engine = CerlEngineBuilder::new(quick_cfg()).seed(5).build().unwrap();
        assert!(!engine.is_trained());
        assert!(matches!(
            engine.predict_ite(&stream.domain(0).test.x),
            Err(CerlError::NotTrained)
        ));
        for d in 0..2 {
            let report = engine
                .observe(&stream.domain(d).train, &stream.domain(d).val)
                .unwrap();
            assert_eq!(report.stage, d + 1);
        }
        assert_eq!(engine.stage(), 2);
        let ite = engine.predict_ite(&stream.domain(0).test.x).unwrap();
        assert_eq!(ite.len(), stream.domain(0).test.n());
    }

    #[test]
    fn explicit_dimension_rejects_foreign_domains() {
        let stream = quick_stream(1);
        let d_in = stream.domain(0).train.dim();
        let mut engine = CerlEngineBuilder::new(quick_cfg())
            .covariate_dim(d_in + 1)
            .build()
            .unwrap();
        match engine.observe(&stream.domain(0).train, &stream.domain(0).val) {
            Err(CerlError::DimensionMismatch { expected, found }) => {
                assert_eq!(expected, d_in + 1);
                assert_eq!(found, d_in);
            }
            other => panic!("expected DimensionMismatch, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn batch_and_chunked_prediction_match_single_call() {
        let stream = quick_stream(1);
        let mut engine = CerlEngineBuilder::new(quick_cfg()).seed(6).build().unwrap();
        engine
            .observe(&stream.domain(0).train, &stream.domain(0).val)
            .unwrap();

        let x = &stream.domain(0).test.x;
        let single = engine.predict_ite(x).unwrap();

        let n = x.rows();
        let first: Vec<usize> = (0..n / 2).collect();
        let second: Vec<usize> = (n / 2..n).collect();
        let batch = engine
            .predict_ite_batch(&[x.select_rows(&first), x.select_rows(&second)])
            .unwrap();
        let rejoined: Vec<f64> = batch.into_iter().flatten().collect();
        assert_eq!(rejoined, single);

        for chunk_rows in [1, 7, n, n + 100, 0] {
            assert_eq!(engine.predict_ite_chunked(x, chunk_rows).unwrap(), single);
        }
    }

    #[test]
    fn batch_validation_is_all_or_nothing() {
        let stream = quick_stream(1);
        let mut engine = CerlEngineBuilder::new(quick_cfg()).build().unwrap();
        engine
            .observe(&stream.domain(0).train, &stream.domain(0).val)
            .unwrap();
        let x = &stream.domain(0).test.x;
        let bad = cerl_math::Matrix::zeros(3, x.cols() + 2);
        assert!(matches!(
            engine.predict_ite_batch(&[x.clone(), bad]),
            Err(CerlError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn f32_mode_is_close_to_f64_and_bitwise_stable_across_batching() {
        let stream = quick_stream(1);
        let mut engine = CerlEngineBuilder::new(quick_cfg()).seed(7).build().unwrap();
        engine
            .observe(&stream.domain(0).train, &stream.domain(0).val)
            .unwrap();
        let x = &stream.domain(0).test.x;
        let f64_ite = engine.predict_ite(x).unwrap();

        engine.set_precision(PrecisionMode::F32).unwrap();
        assert_eq!(engine.precision(), PrecisionMode::F32);
        let f32_ite = engine.predict_ite(x).unwrap();

        // Approximate agreement with the training-precision path: the
        // narrowing error through standardize → repr → heads → rescale
        // stays far below the effect scale.
        let scale = f64_ite.iter().fold(1.0f64, |acc, &v| acc.max(v.abs()));
        for (a, b) in f32_ite.iter().zip(&f64_ite) {
            assert!(
                (a - b).abs() <= 1e-3 * scale,
                "f32 {a} vs f64 {b} (scale {scale})"
            );
        }

        // Per-mode bitwise contract: batched == unbatched == chunked.
        let n = x.rows();
        let split: Vec<usize> = (0..n / 3).collect();
        let rest: Vec<usize> = (n / 3..n).collect();
        let batch: Vec<f64> = engine
            .predict_ite_batch(&[x.select_rows(&split), x.select_rows(&rest)])
            .unwrap()
            .into_iter()
            .flatten()
            .collect();
        assert_eq!(batch, f32_ite);
        for chunk_rows in [1, 7, n, 0] {
            assert_eq!(engine.predict_ite_chunked(x, chunk_rows).unwrap(), f32_ite);
        }

        // Potential outcomes are served from the same plan: the ITE is
        // exactly their difference.
        let (y0, y1) = engine.predict_potential_outcomes(x).unwrap();
        let diff: Vec<f64> = y1.iter().zip(&y0).map(|(&a, &b)| a - b).collect();
        assert_eq!(diff, f32_ite);

        // Switching back restores the f64 path bitwise.
        engine.set_precision(PrecisionMode::F64).unwrap();
        assert_eq!(engine.predict_ite(x).unwrap(), f64_ite);
    }

    #[test]
    fn f32_mode_survives_observe_and_validates_requests() {
        let stream = quick_stream(2);
        // Opt in before any training: the plan compiles at first observe.
        let mut engine = CerlEngineBuilder::new(quick_cfg())
            .seed(8)
            .precision(PrecisionMode::F32)
            .build()
            .unwrap();
        assert!(matches!(
            engine.predict_ite(&stream.domain(0).test.x),
            Err(CerlError::NotTrained)
        ));
        engine
            .observe(&stream.domain(0).train, &stream.domain(0).val)
            .unwrap();
        let x = &stream.domain(0).test.x;
        let stage1 = engine.predict_ite(x).unwrap();
        assert_eq!(stage1.len(), x.rows());

        // Wrong-width requests keep failing with the typed error.
        let bad = Matrix::zeros(2, x.cols() + 1);
        assert!(matches!(
            engine.predict_ite(&bad),
            Err(CerlError::DimensionMismatch { .. })
        ));
        // Empty requests are answered (with nothing), not rejected.
        assert!(engine
            .predict_ite(&Matrix::zeros(0, x.cols()))
            .unwrap()
            .is_empty());

        // The next stage rewrites weights; the plan must follow them.
        engine
            .observe(&stream.domain(1).train, &stream.domain(1).val)
            .unwrap();
        let stage2 = engine.predict_ite(x).unwrap();
        assert_ne!(stage1, stage2, "stale f32 plan served pre-observe weights");

        // A clone is an independent replica answering identically.
        let replica = engine.clone();
        assert_eq!(replica.precision(), PrecisionMode::F32);
        assert_eq!(replica.predict_ite(x).unwrap(), stage2);
    }

    #[test]
    fn restored_snapshot_defaults_to_f64_and_can_opt_into_f32() {
        let stream = quick_stream(1);
        let mut engine = CerlEngineBuilder::new(quick_cfg())
            .seed(10)
            .build()
            .unwrap();
        engine
            .observe(&stream.domain(0).train, &stream.domain(0).val)
            .unwrap();
        engine.set_precision(PrecisionMode::F32).unwrap();
        let x = &stream.domain(0).test.x;
        let f32_ite = engine.predict_ite(x).unwrap();

        // Precision is serving state, not model state: it does not ride
        // in the snapshot.
        let bytes = engine.save_bytes().unwrap();
        let mut restored = CerlEngine::load_bytes(&bytes).unwrap();
        assert_eq!(restored.precision(), PrecisionMode::F64);

        // Opting the replica in reproduces the f32 predictions bitwise —
        // same weights, same narrowing, same plan.
        restored.set_precision(PrecisionMode::F32).unwrap();
        assert_eq!(restored.predict_ite(x).unwrap(), f32_ite);
    }

    #[test]
    fn f32_payload_snapshot_is_compact_and_f32_serving_exact() {
        let stream = quick_stream(1);
        let mut engine = CerlEngineBuilder::new(quick_cfg())
            .seed(10)
            .build()
            .unwrap();
        engine
            .observe(&stream.domain(0).train, &stream.domain(0).val)
            .unwrap();
        engine.set_precision(PrecisionMode::F32).unwrap();
        let x = &stream.domain(0).test.x;
        let f32_ite = engine.predict_ite(x).unwrap();

        let json = engine.save_bytes().unwrap();
        let bin = engine.save_bytes_binary(SnapshotPayload::F32).unwrap();
        assert!(
            bin.len() * 4 <= json.len(),
            "f32 binary snapshot {} must be at most 1/4 of JSON {}",
            bin.len(),
            json.len()
        );

        // The narrowed payload holds exactly the floats the f32 plan
        // compiles from, so an f32-mode replica restored from it answers
        // bitwise-identically to this engine's f32 mode.
        let mut restored = CerlEngine::load_bytes(&bin).unwrap();
        assert_eq!(restored.precision(), PrecisionMode::F64);
        restored.set_precision(PrecisionMode::F32).unwrap();
        assert_eq!(restored.predict_ite(x).unwrap(), f32_ite);
    }

    #[test]
    fn save_load_roundtrip_preserves_predictions_and_learning() {
        let stream = quick_stream(2);
        let mut engine = CerlEngineBuilder::new(quick_cfg()).seed(9).build().unwrap();
        assert!(matches!(engine.save_bytes(), Err(CerlError::NotTrained)));
        engine
            .observe(&stream.domain(0).train, &stream.domain(0).val)
            .unwrap();

        let bytes = engine.save_bytes().unwrap();
        let mut restored = CerlEngine::load_bytes(&bytes).unwrap();
        let x = &stream.domain(0).test.x;
        assert_eq!(
            restored.predict_ite(x).unwrap(),
            engine.predict_ite(x).unwrap()
        );

        // Both replicas continue identically on the next domain.
        engine
            .observe(&stream.domain(1).train, &stream.domain(1).val)
            .unwrap();
        restored
            .observe(&stream.domain(1).train, &stream.domain(1).val)
            .unwrap();
        assert_eq!(
            restored.predict_ite(x).unwrap(),
            engine.predict_ite(x).unwrap()
        );
    }
}
