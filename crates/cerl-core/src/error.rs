//! Typed errors for the serving-grade estimator API.
//!
//! Every fallible `try_*` observe/predict path in this crate reports
//! failures through [`CerlError`] instead of panicking, so a serving
//! process can keep running (and return a structured error to its caller)
//! when a request is malformed, a model is not yet trained, or a snapshot
//! is incompatible.

use cerl_data::DataError;
use std::fmt;

/// Error from the CERL estimator, engine, or snapshot layers.
#[derive(Debug, Clone, PartialEq)]
pub enum CerlError {
    /// A configuration field is outside its valid range.
    InvalidConfig {
        /// Which field (dot-path into [`crate::config::CerlConfig`]).
        field: &'static str,
        /// Why it is invalid.
        reason: String,
    },
    /// Prediction (or a continual stage) was requested before any domain
    /// was observed/trained.
    NotTrained,
    /// Input covariates have the wrong dimension for this model.
    DimensionMismatch {
        /// Covariate dimension the model was built for.
        expected: usize,
        /// Dimension of the offending input.
        found: usize,
    },
    /// Replay-memory representation dimensions disagree (stored exemplars
    /// vs the model's representation width — possible only via corrupt or
    /// foreign restored state, never from a request).
    MemoryDimensionMismatch {
        /// Representation dimension of the model / incoming exemplars.
        expected: usize,
        /// Representation dimension of the offending stored memory.
        found: usize,
    },
    /// A training split is too small to fit on.
    DatasetTooSmall {
        /// Minimum number of units required.
        required: usize,
        /// Units actually provided.
        found: usize,
    },
    /// An input that must be non-empty was empty.
    EmptyInput {
        /// What was empty.
        what: &'static str,
    },
    /// Dataset/scaler validation failure from `cerl-data`.
    Data(DataError),
    /// Snapshot serialization/deserialization failure.
    Snapshot(SnapshotError),
}

/// Failure while saving or restoring a [`crate::snapshot::ModelSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotError {
    /// The snapshot was written by an unknown (usually newer) format.
    UnsupportedVersion {
        /// Version found in the snapshot.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// The snapshot bytes do not parse as a snapshot document.
    Malformed(String),
    /// The snapshot parsed but describes an internally inconsistent model
    /// (e.g. a network referencing parameters the store does not contain).
    Incompatible(String),
}

impl fmt::Display for CerlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CerlError::InvalidConfig { field, reason } => {
                write!(f, "invalid config `{field}`: {reason}")
            }
            CerlError::NotTrained => {
                write!(
                    f,
                    "model has not observed any domain yet (train before predicting)"
                )
            }
            CerlError::DimensionMismatch { expected, found } => write!(
                f,
                "covariate dimension mismatch: model expects {expected}, input has {found}"
            ),
            CerlError::MemoryDimensionMismatch { expected, found } => write!(
                f,
                "replay-memory representation dimension mismatch: expected {expected}, stored exemplars have {found}"
            ),
            CerlError::DatasetTooSmall { required, found } => write!(
                f,
                "dataset too small: need at least {required} units, found {found}"
            ),
            CerlError::EmptyInput { what } => write!(f, "empty input: {what}"),
            CerlError::Data(e) => write!(f, "{e}"),
            CerlError::Snapshot(e) => write!(f, "{e}"),
        }
    }
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported snapshot format version {found} (this build reads version {supported})"
            ),
            SnapshotError::Malformed(reason) => write!(f, "malformed snapshot: {reason}"),
            SnapshotError::Incompatible(reason) => write!(f, "incompatible snapshot: {reason}"),
        }
    }
}

impl std::error::Error for CerlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CerlError::Data(e) => Some(e),
            CerlError::Snapshot(e) => Some(e),
            _ => None,
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<DataError> for CerlError {
    fn from(e: DataError) -> Self {
        CerlError::Data(e)
    }
}

impl From<SnapshotError> for CerlError {
    fn from(e: SnapshotError) -> Self {
        CerlError::Snapshot(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = CerlError::InvalidConfig {
            field: "memory_size",
            reason: "must be > 0".into(),
        };
        assert!(e.to_string().contains("memory_size"));
        assert!(CerlError::NotTrained.to_string().contains("not observed"));
        let e = CerlError::DimensionMismatch {
            expected: 10,
            found: 3,
        };
        assert!(e.to_string().contains("10") && e.to_string().contains('3'));
        let e = CerlError::MemoryDimensionMismatch {
            expected: 16,
            found: 9,
        };
        assert!(e.to_string().contains("replay-memory") && e.to_string().contains("16"));
        let e = CerlError::Snapshot(SnapshotError::UnsupportedVersion {
            found: 9,
            supported: 1,
        });
        assert!(e.to_string().contains("version 9"));
    }

    #[test]
    fn data_errors_convert() {
        let d = DataError::DimensionMismatch {
            expected: 5,
            found: 2,
        };
        let e: CerlError = d.clone().into();
        assert_eq!(e, CerlError::Data(d));
    }
}
