//! Evaluation metrics (paper §IV.B): `√ε_PEHE` and `ε_ATE`.

use cerl_data::CausalDataset;
use serde::{Deserialize, Serialize};

/// Metrics for one dataset evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EffectMetrics {
    /// `√(mean((ITE − ÎTE)²))` — root expected precision in estimating
    /// heterogeneous effects (Hill 2011).
    pub sqrt_pehe: f64,
    /// `|ATE − ÂTE|`.
    pub ate_error: f64,
}

impl EffectMetrics {
    /// Compute both metrics from true and estimated unit-level effects.
    ///
    /// # Panics
    /// If the slices differ in length or are empty.
    pub fn from_ite(true_ite: &[f64], est_ite: &[f64]) -> Self {
        assert_eq!(
            true_ite.len(),
            est_ite.len(),
            "EffectMetrics: length mismatch"
        );
        assert!(!true_ite.is_empty(), "EffectMetrics: empty inputs");
        let n = true_ite.len() as f64;
        let mut se = 0.0;
        let mut sum_true = 0.0;
        let mut sum_est = 0.0;
        for (&t, &e) in true_ite.iter().zip(est_ite) {
            se += (t - e) * (t - e);
            sum_true += t;
            sum_est += e;
        }
        Self {
            sqrt_pehe: (se / n).sqrt(),
            ate_error: ((sum_true - sum_est) / n).abs(),
        }
    }

    /// Evaluate an ITE estimator's output against a dataset's ground truth.
    pub fn on_dataset(data: &CausalDataset, est_ite: &[f64]) -> Self {
        Self::from_ite(&data.true_ite(), est_ite)
    }
}

/// Mean of several metric values (used to aggregate replications).
pub fn mean_metrics(ms: &[EffectMetrics]) -> EffectMetrics {
    assert!(!ms.is_empty(), "mean_metrics: empty input");
    let n = ms.len() as f64;
    EffectMetrics {
        sqrt_pehe: ms.iter().map(|m| m.sqrt_pehe).sum::<f64>() / n,
        ate_error: ms.iter().map(|m| m.ate_error).sum::<f64>() / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cerl_math::Matrix;

    #[test]
    fn perfect_estimate_is_zero() {
        let ite = [1.0, 2.0, -0.5];
        let m = EffectMetrics::from_ite(&ite, &ite);
        assert_eq!(m.sqrt_pehe, 0.0);
        assert_eq!(m.ate_error, 0.0);
    }

    #[test]
    fn constant_offset() {
        let true_ite = [1.0, 1.0, 1.0, 1.0];
        let est = [2.0, 2.0, 2.0, 2.0];
        let m = EffectMetrics::from_ite(&true_ite, &est);
        assert!((m.sqrt_pehe - 1.0).abs() < 1e-12);
        assert!((m.ate_error - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ate_can_be_zero_with_nonzero_pehe() {
        // Errors cancel in the mean but not pointwise.
        let true_ite = [0.0, 0.0];
        let est = [1.0, -1.0];
        let m = EffectMetrics::from_ite(&true_ite, &est);
        assert_eq!(m.ate_error, 0.0);
        assert!((m.sqrt_pehe - 1.0).abs() < 1e-12);
    }

    #[test]
    fn on_dataset_uses_ground_truth() {
        let d = CausalDataset::new(
            Matrix::zeros(2, 1),
            vec![true, false],
            vec![3.0, 1.0],
            vec![1.0, 1.0],
            vec![3.0, 2.0],
        );
        // true ITE = [2, 1]
        let m = EffectMetrics::on_dataset(&d, &[2.0, 1.0]);
        assert_eq!(m.sqrt_pehe, 0.0);
    }

    #[test]
    fn aggregation() {
        let a = EffectMetrics {
            sqrt_pehe: 1.0,
            ate_error: 0.2,
        };
        let b = EffectMetrics {
            sqrt_pehe: 3.0,
            ate_error: 0.4,
        };
        let m = mean_metrics(&[a, b]);
        assert!((m.sqrt_pehe - 2.0).abs() < 1e-12);
        assert!((m.ate_error - 0.3).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_mismatched() {
        let _ = EffectMetrics::from_ite(&[1.0], &[1.0, 2.0]);
    }
}
