//! Two-head potential-outcome function `h_θ : R × T → Y` (paper §III-A.1,
//! "Inferring Potential Outcomes").
//!
//! To avoid losing the influence of `T` on the representation, `h` is
//! partitioned into separate networks for the treatment and control groups
//! (TARNet-style); each unit's factual prediction comes from the head
//! matching its observed treatment, implemented with 0/1 masks so a single
//! tape evaluates the whole batch.

use crate::config::NetConfig;
use cerl_math::Matrix;
use cerl_nn::{Activation, Graph, Mlp, NodeId, ParamId, ParamStore};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Paired outcome heads `h₀` (control) and `h₁` (treatment).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OutcomeHeads {
    h0: Mlp,
    h1: Mlp,
}

impl OutcomeHeads {
    /// Build both heads over a `repr_dim`-dimensional representation space.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        rng: &mut R,
        repr_dim: usize,
        cfg: &NetConfig,
        name: &str,
    ) -> Self {
        let act = cfg.activation.to_activation();
        let mut dims = vec![repr_dim];
        dims.extend_from_slice(&cfg.head_hidden);
        dims.push(1);
        let h0 = Mlp::new(
            store,
            rng,
            &dims,
            act,
            Activation::Identity,
            &format!("{name}.h0"),
        );
        let h1 = Mlp::new(
            store,
            rng,
            &dims,
            act,
            Activation::Identity,
            &format!("{name}.h1"),
        );
        Self { h0, h1 }
    }

    /// Predicted outcomes under control and treatment (`n×1` each).
    pub fn forward_both(&self, g: &mut Graph, store: &ParamStore, r: NodeId) -> (NodeId, NodeId) {
        (self.h0.forward(g, store, r), self.h1.forward(g, store, r))
    }

    /// Factual predictions: each row uses the head matching its observed
    /// treatment (`ŷ_i = h_{t_i}(r_i)`), via 0/1 masks.
    pub fn forward_factual(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        r: NodeId,
        t: &[bool],
    ) -> NodeId {
        assert_eq!(
            g.value(r).rows(),
            t.len(),
            "forward_factual: row/treatment mismatch"
        );
        let (y0, y1) = self.forward_both(g, store, r);
        let mask1 = Matrix::from_fn(t.len(), 1, |i, _| if t[i] { 1.0 } else { 0.0 });
        let mask0 = mask1.map(|v| 1.0 - v);
        let m1 = g.input(mask1);
        let m0 = g.input(mask0);
        let y1m = g.mul(y1, m1);
        let y0m = g.mul(y0, m0);
        g.add(y1m, y0m)
    }

    /// Predict both potential outcomes for a representation matrix
    /// without tracking gradients.
    pub fn predict_both(&self, store: &ParamStore, r: &Matrix) -> (Vec<f64>, Vec<f64>) {
        let mut g = Graph::new();
        let rin = g.input(r.clone());
        let (y0, y1) = self.forward_both(&mut g, store, rin);
        (g.value(y0).col(0), g.value(y1).col(0))
    }

    /// Control-arm head MLP (for inference-plan compilers).
    pub(crate) fn h0(&self) -> &Mlp {
        &self.h0
    }

    /// Treated-arm head MLP (for inference-plan compilers).
    pub(crate) fn h1(&self) -> &Mlp {
        &self.h1
    }

    /// All trainable parameters of both heads.
    pub fn params(&self) -> Vec<ParamId> {
        let mut p = self.h0.params();
        p.extend(self.h1.params());
        p
    }

    /// Weight matrices only.
    pub fn weights(&self) -> Vec<ParamId> {
        let mut w = self.h0.weights();
        w.extend(self.h1.weights());
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (ParamStore, OutcomeHeads) {
        let mut rng = StdRng::seed_from_u64(9);
        let mut store = ParamStore::new();
        let heads = OutcomeHeads::new(&mut store, &mut rng, 6, &NetConfig::default(), "h");
        (store, heads)
    }

    #[test]
    fn factual_matches_selected_head() {
        let (store, heads) = setup();
        let r = Matrix::from_fn(5, 6, |i, j| ((i * 6 + j) as f64 * 0.21).sin());
        let t = vec![true, false, true, false, false];

        let (y0, y1) = heads.predict_both(&store, &r);

        let mut g = Graph::new();
        let rin = g.input(r);
        let yf = heads.forward_factual(&mut g, &store, rin, &t);
        let yf_v = g.value(yf).col(0);
        for i in 0..5 {
            let want = if t[i] { y1[i] } else { y0[i] };
            assert!((yf_v[i] - want).abs() < 1e-12, "unit {i}");
        }
    }

    #[test]
    fn heads_are_independent() {
        // Gradient of a loss touching only treated units must not reach h0.
        let (store, heads) = setup();
        let r = Matrix::ones(4, 6);
        let t = vec![true, true, true, true];
        let mut g = Graph::new();
        let rin = g.input(r);
        let yf = heads.forward_factual(&mut g, &store, rin, &t);
        let sq = g.square(yf);
        let loss = g.mean(sq);
        let grads = g.backward(loss);
        // h1 weights get gradients, h0 gradient is identically zero (masked).
        let h1_has = heads.h1.params().iter().any(|&p| {
            grads
                .param_grad(p)
                .map(|m| m.max_abs() > 0.0)
                .unwrap_or(false)
        });
        assert!(h1_has);
        for p in heads.h0.params() {
            if let Some(m) = grads.param_grad(p) {
                assert_eq!(m.max_abs(), 0.0, "h0 {} received gradient", store.name(p));
            }
        }
    }

    #[test]
    fn param_counts() {
        let (_, heads) = setup();
        // default head_hidden [32,16] → 3 layers per head, (w+b) each.
        assert_eq!(heads.params().len(), 12);
        assert_eq!(heads.weights().len(), 6);
    }

    #[test]
    #[should_panic(expected = "row/treatment mismatch")]
    fn mismatched_treatment_length() {
        let (store, heads) = setup();
        let mut g = Graph::new();
        let rin = g.input(Matrix::ones(3, 6));
        let _ = heads.forward_factual(&mut g, &store, rin, &[true]);
    }
}
