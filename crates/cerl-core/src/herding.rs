//! Herding exemplar selection (Welling 2009; iCaRL, Rebuffi et al. 2017).
//!
//! Greedily picks exemplars so that the running mean of the selected
//! representations tracks the full-set mean — a representative subset that
//! needs far fewer samples than random subsampling for the same
//! approximation quality (paper §III-A.2). The paper runs it separately per
//! treatment group so the memory stays balanced.

use cerl_math::Matrix;
use rand::seq::SliceRandom;
use rand::Rng;

/// Greedy herding: return `m` row indices of `reprs` (without repetition)
/// whose running mean best tracks the full mean at every prefix.
///
/// If `m ≥ reprs.rows()`, all indices are returned (in herding order).
pub fn herding_select(reprs: &Matrix, m: usize) -> Vec<usize> {
    let n = reprs.rows();
    let d = reprs.cols();
    let m = m.min(n);
    if m == 0 || n == 0 {
        return Vec::new();
    }
    let target = reprs.col_means();
    let mut selected = Vec::with_capacity(m);
    let mut taken = vec![false; n];
    let mut running_sum = vec![0.0; d];

    for k in 0..m {
        // Choose x minimizing ‖target − (running_sum + x)/(k+1)‖².
        let mut best: Option<(usize, f64)> = None;
        #[allow(clippy::needless_range_loop)] // `taken` and `reprs` share the index
        for i in 0..n {
            if taken[i] {
                continue;
            }
            let row = reprs.row(i);
            let mut dist = 0.0;
            for j in 0..d {
                let cand = (running_sum[j] + row[j]) / (k as f64 + 1.0);
                let diff = target[j] - cand;
                dist += diff * diff;
            }
            match best {
                Some((_, bd)) if dist >= bd => {}
                _ => best = Some((i, dist)),
            }
        }
        // `m <= n` and each pass marks exactly one candidate, so a free
        // candidate always exists; break defensively instead of panicking.
        let idx = match best {
            Some((idx, _)) => idx,
            None => break,
        };
        taken[idx] = true;
        for (s, &v) in running_sum.iter_mut().zip(reprs.row(idx)) {
            *s += v;
        }
        selected.push(idx);
    }
    selected
}

/// Random subsampling baseline (the "w/o herding" ablation): `m` distinct
/// indices of `0..n`.
pub fn random_select<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    idx.truncate(m.min(n));
    idx
}

/// Mean-approximation error `‖mean(selected) − mean(all)‖₂` of a selection
/// (diagnostic used in tests and benches).
pub fn mean_approximation_error(reprs: &Matrix, selected: &[usize]) -> f64 {
    if selected.is_empty() {
        return f64::INFINITY;
    }
    let target = reprs.col_means();
    let sub = reprs.select_rows(selected);
    let got = sub.col_means();
    cerl_math::norms::euclidean_distance(&target, &got)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_reprs(n: usize, d: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::from_fn(n, d, |_, _| rng.gen::<f64>() * 2.0 - 1.0)
    }

    #[test]
    fn selects_requested_count_without_repeats() {
        let r = random_reprs(50, 4, 1);
        let sel = herding_select(&r, 20);
        assert_eq!(sel.len(), 20);
        let mut uniq = sel.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 20, "duplicates in herding selection");
    }

    #[test]
    fn m_larger_than_n_returns_all() {
        let r = random_reprs(7, 3, 2);
        let sel = herding_select(&r, 100);
        assert_eq!(sel.len(), 7);
    }

    #[test]
    fn empty_cases() {
        let r = Matrix::zeros(0, 3);
        assert!(herding_select(&r, 5).is_empty());
        let r2 = random_reprs(5, 3, 3);
        assert!(herding_select(&r2, 0).is_empty());
    }

    #[test]
    fn herding_beats_random_on_mean_approximation() {
        // Core claim from the paper: herding needs fewer samples than
        // random subsampling for the same approximation quality. Compare
        // the mean-approximation error at a small budget, averaged over
        // several random draws.
        let r = random_reprs(400, 8, 4);
        let m = 20;
        let herd_err = mean_approximation_error(&r, &herding_select(&r, m));
        let mut rng = StdRng::seed_from_u64(5);
        let mut rand_errs = Vec::new();
        for _ in 0..20 {
            rand_errs.push(mean_approximation_error(
                &r,
                &random_select(400, m, &mut rng),
            ));
        }
        let rand_mean = rand_errs.iter().sum::<f64>() / rand_errs.len() as f64;
        assert!(
            herd_err < rand_mean * 0.5,
            "herding err {herd_err} not clearly better than random {rand_mean}"
        );
    }

    #[test]
    fn first_pick_is_closest_to_mean() {
        let r = Matrix::from_rows(&[
            vec![10.0, 0.0],
            vec![0.1, 0.1], // closest to the mean of these rows
            vec![-10.0, 0.0],
            vec![0.0, 10.0],
            vec![0.0, -10.0],
        ]);
        let sel = herding_select(&r, 1);
        assert_eq!(sel[0], 1);
    }

    #[test]
    fn random_select_bounds() {
        let mut rng = StdRng::seed_from_u64(6);
        let sel = random_select(10, 4, &mut rng);
        assert_eq!(sel.len(), 4);
        assert!(sel.iter().all(|&i| i < 10));
        let all = random_select(3, 10, &mut rng);
        assert_eq!(all.len(), 3);
    }
}
