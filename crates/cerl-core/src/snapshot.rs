//! Versioned model snapshots: persist a trained estimator and restore it in
//! another process (or hot-swap it between serving replicas).
//!
//! A [`ModelSnapshot`] captures everything [`Cerl`]
//! needs to keep serving and keep learning after a restart:
//!
//! * the full parameter store (all stage networks, every `φ` ever created),
//! * the representation-network and outcome-head wiring (parameter ids),
//! * the covariate standardizer and outcome scaler,
//! * the herded representation memory,
//! * the stage counter, seed, and configuration.
//!
//! Two serialized forms exist, and [`ModelSnapshot::from_bytes`] reads
//! both:
//!
//! * **JSON** (format versions 1 and 2) — a self-describing document with
//!   an explicit [`format_version`](ModelSnapshot::format_version) field,
//!   written by [`ModelSnapshot::to_bytes`]. Numbers round-trip exactly,
//!   so a restored model's predictions are bitwise identical to the
//!   captured model's.
//! * **Binary v3** — a compact little-endian container written by
//!   [`ModelSnapshot::to_binary_bytes`] that hoists the float bulk (which
//!   dominates a trained snapshot) out of the JSON text into raw IEEE-754
//!   payload sections; see [`SNAPSHOT_BINARY_FORMAT_VERSION`] for the wire
//!   layout. With a [`SnapshotPayload::F64`] payload the round-trip is
//!   bitwise lossless; [`SnapshotPayload::F32`] narrows model floats for
//!   serving replicas that answer in
//!   [`PrecisionMode`](crate::precision::PrecisionMode)`::F32` anyway,
//!   cutting snapshot size roughly 4-5x versus JSON.
//!
//! Readers reject unknown versions with
//! [`SnapshotError::UnsupportedVersion`](crate::error::SnapshotError) before
//! attempting to interpret the rest of the document, so a fleet can roll
//! snapshot formats forward without replicas panicking on foreign bytes,
//! and every binary decode path is length-checked — truncated or doctored
//! bytes produce [`SnapshotError::Malformed`], never a panic or an
//! unbounded allocation.

use crate::cfr::CfrModel;
use crate::config::CerlConfig;
use crate::continual::Cerl;
use crate::error::{CerlError, SnapshotError};
use crate::heads::OutcomeHeads;
use crate::memory::Memory;
use crate::repr::ReprNet;
use cerl_data::{OutcomeScaler, Standardizer};
use cerl_nn::{ParamId, ParamStore};
use serde::{Deserialize, Serialize, Value};

/// JSON document version written by [`ModelSnapshot::to_bytes`]. Readers
/// also accept versions 1 (which predates the `shard_map` / `shard_index`
/// fields; they restore as `None`) and 2 (whose assignments carried a
/// single `shard` per domain; they restore as one-replica sets). Bump on
/// any incompatible change to the document layout.
///
/// Version history:
/// * **1** — initial JSON layout (PR 1). Still readable.
/// * **2** — adds the `shard_map` routing-metadata field. Still readable;
///   each `domain → shard` entry upgrades to a one-replica set.
/// * **3** — the binary container ([`SNAPSHOT_BINARY_FORMAT_VERSION`]);
///   the embedded JSON document stays at its own version.
/// * **4** — [`ShardMap`] assignments become `domain → replica-set`
///   ([`ReplicaSet`]): an ordered set of shard ids instead of one shard.
pub const SNAPSHOT_FORMAT_VERSION: u32 = 4;

/// Container version written by [`ModelSnapshot::to_binary_bytes`] (format
/// v3, the binary snapshot format).
///
/// Wire layout (all integers little-endian):
///
/// ```text
/// magic            8 bytes   b"CERLSNAP"
/// version          u32       3
/// payload kind     u8        0 = f64 floats, 1 = f32 floats
/// reserved         3 bytes   zero
/// section count    u32
/// section table    per section: tag u32, byte length u64
///                    tag 1 = meta, tag 2 = float payload
///                    (unknown tags are skipped, for forward compat)
/// section bodies   concatenated in table order
/// ```
///
/// The **meta** section is the snapshot's JSON document with every float
/// array under the `model` and `memory` fields replaced by a
/// `{"$floats": <index>}` placeholder. The **payload** section holds those
/// arrays as raw IEEE-754 values: an array count (`u32`), then per array
/// an element count (`u64`) followed by the elements (8 bytes each for an
/// f64 payload, 4 for f32). Decoding validates every length against the
/// remaining input before allocating, requires each placeholder index to
/// resolve exactly once, and rejects trailing bytes.
pub const SNAPSHOT_BINARY_FORMAT_VERSION: u32 = 3;

/// Leading magic of a binary (v3) snapshot. No JSON document can start
/// with these bytes, so the two forms are distinguished by sniffing.
const BINARY_MAGIC: [u8; 8] = *b"CERLSNAP";

/// Placeholder key that marks a hoisted float array in the meta document.
const PAYLOAD_KEY: &str = "$floats";

/// Section tags of the binary container.
const SECTION_META: u32 = 1;
const SECTION_PAYLOAD: u32 = 2;

/// Float encoding of a binary snapshot's payload section.
///
/// `F64` is lossless: the decoded snapshot is bitwise identical to the
/// captured one. `F32` narrows every model/memory float to `f32` — about
/// half the bytes — which is exactly the narrowing a
/// [`PrecisionMode::F32`](crate::precision::PrecisionMode) serving replica
/// applies at plan-compile time anyway, so a replica restored from an
/// `F32`-payload snapshot and opted into f32 mode serves **bitwise
/// identical** predictions to the source engine's f32 mode. Continued
/// *training* from an `F32` payload diverges (the optimizer sees rounded
/// weights); treat it as a serving artifact, not an archival one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SnapshotPayload {
    /// Lossless 8-byte floats: bitwise round-trip.
    #[default]
    F64,
    /// Narrowed 4-byte floats: half the payload, f32-serving-exact.
    F32,
}

/// Routing metadata: which serving shards own each domain id.
///
/// A fleet that splits traffic across N independently hot-swappable
/// engines (one per domain cluster or geography — see the `cerl-serve`
/// crate's `ShardRouter`) carries this map in the snapshot so a replica
/// restoring from bytes knows the fleet topology, not just its own
/// weights. Each domain maps to a [`ReplicaSet`] — an ordered set of
/// shard ids all serving identical model bytes — so a hot domain can be
/// read-scaled across several shards while cold domains keep one.
/// Assignments are kept sorted by domain id; lookups are binary searches.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardMap {
    /// Total number of shards in the fleet (shard indices are `0..shards`).
    shards: usize,
    /// Sorted, deduplicated `domain → replica-set` assignments.
    assignments: Vec<ShardAssignment>,
}

/// One `domain → replica-set` routing entry of a [`ShardMap`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardAssignment {
    /// Domain identifier as seen on requests.
    pub domain: u64,
    /// Ordered set of shards that serve this domain.
    pub replicas: ReplicaSet,
}

/// An ordered set of shard ids that all serve one domain.
///
/// The set is canonical — sorted ascending, deduplicated, never empty —
/// so two maps with the same replicas compare equal regardless of the
/// order they were built in, and the **primary** replica (the smallest
/// id, [`ReplicaSet::primary`]) is a deterministic function of the set.
/// Which replica actually answers a given sub-batch is a serving-side
/// policy decision (`cerl-serve`'s `RoutePolicy`), never encoded here:
/// the map says *where a domain's bytes live*, the policy says *which
/// copy answers*.
///
/// Serialized as a plain JSON array of shard ids (`[0, 2, 3]`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaSet {
    /// Sorted ascending, deduplicated, non-empty (constructor-enforced;
    /// deserialized sets are re-checked by [`ShardMap::validate`]).
    shards: Vec<usize>,
}

impl ReplicaSet {
    /// A canonical set from any list of shard ids: sorted, deduplicated.
    ///
    /// Fails with [`CerlError::InvalidConfig`] when `shards` is empty — a
    /// mapped domain must have at least one serving replica.
    pub fn new(shards: &[usize]) -> Result<Self, CerlError> {
        if shards.is_empty() {
            return Err(invalid_shard_map("replica-set is empty".into()));
        }
        let mut shards = shards.to_vec();
        shards.sort_unstable();
        shards.dedup();
        Ok(Self { shards })
    }

    /// The one-replica set `{shard}` — every pre-replication topology.
    pub fn single(shard: usize) -> Self {
        Self {
            shards: vec![shard],
        }
    }

    /// The primary replica: the smallest shard id in the set. This is
    /// the shard single-replica call paths route to, so a one-replica
    /// set behaves exactly like the old `domain → shard` entry.
    pub fn primary(&self) -> usize {
        self.shards[0] // panic-ok: constructor rejects empty sets
    }

    /// All replicas, sorted ascending.
    pub fn shards(&self) -> &[usize] {
        &self.shards
    }

    /// Number of replicas in the set.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the set holds no replica (only reachable via a doctored
    /// document; constructed sets are never empty).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Whether `shard` is one of this domain's replicas.
    pub fn contains(&self, shard: usize) -> bool {
        self.shards.binary_search(&shard).is_ok()
    }

    /// This set plus `shard`. Fails when `shard` is already a replica.
    pub fn with_added(&self, shard: usize) -> Result<Self, CerlError> {
        if self.contains(shard) {
            return Err(invalid_shard_map(format!(
                "shard {shard} is already in replica-set {self}"
            )));
        }
        let mut shards = self.shards.clone();
        shards.push(shard);
        shards.sort_unstable();
        Ok(Self { shards })
    }

    /// This set minus `shard`. Fails when `shard` is not a replica or is
    /// the last one (a mapped domain must keep a serving replica).
    pub fn with_removed(&self, shard: usize) -> Result<Self, CerlError> {
        if !self.contains(shard) {
            return Err(invalid_shard_map(format!(
                "shard {shard} is not in replica-set {self}"
            )));
        }
        if self.shards.len() == 1 {
            return Err(invalid_shard_map(format!(
                "shard {shard} is the last replica of the set"
            )));
        }
        Ok(Self {
            shards: self
                .shards
                .iter()
                .copied()
                .filter(|&s| s != shard)
                .collect(),
        })
    }

    /// This set with `from` replaced by `to` — a replica *move*. For a
    /// one-replica set this is exactly the old single-shard domain move.
    pub fn with_replaced(&self, from: usize, to: usize) -> Result<Self, CerlError> {
        if from == to {
            return Ok(self.clone());
        }
        self.with_added(to)?.with_removed(from)
    }
}

impl std::fmt::Display for ReplicaSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, s) in self.shards.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, "]")
    }
}

impl Serialize for ReplicaSet {
    fn serialize(&self) -> Value {
        Value::Array(self.shards.iter().map(|&s| Value::UInt(s as u64)).collect())
    }
}

impl Deserialize for ReplicaSet {
    fn deserialize(value: &Value) -> Result<Self, serde::Error> {
        let items = value
            .as_array()
            .ok_or_else(|| serde::Error::custom("replica-set is not an array"))?;
        let shards = items
            .iter()
            .map(usize::deserialize)
            .collect::<Result<Vec<usize>, serde::Error>>()?;
        // Deliberately *not* canonicalized: a doctored document must
        // surface as a typed validation error, not be silently repaired.
        Ok(Self { shards })
    }
}

impl ShardMap {
    /// Build a map over `shards` shards from `(domain, shard)` pairs —
    /// the single-replica convenience form of [`ShardMap::from_replicas`].
    ///
    /// Fails with [`CerlError::InvalidConfig`] when `shards` is 0, a pair
    /// routes to a shard index `>= shards`, or the same domain is assigned
    /// twice (to *different* shards — exact duplicates are collapsed).
    pub fn from_pairs(shards: usize, pairs: &[(u64, usize)]) -> Result<Self, CerlError> {
        let mut sorted: Vec<(u64, usize)> = pairs.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        for pair in sorted.windows(2) {
            if pair[0].0 == pair[1].0 {
                return Err(invalid_shard_map(format!(
                    "domain {} assigned to both shard {} and shard {}",
                    pair[0].0, pair[0].1, pair[1].1
                )));
            }
        }
        let entries: Vec<(u64, Vec<usize>)> =
            sorted.into_iter().map(|(d, s)| (d, vec![s])).collect();
        Self::from_replicas(shards, &entries)
    }

    /// Build a map over `shards` shards from `(domain, replica ids)`
    /// entries. Replica lists are canonicalized ([`ReplicaSet::new`]).
    ///
    /// Fails with [`CerlError::InvalidConfig`] when `shards` is 0, a
    /// replica list is empty, a replica id is `>= shards`, or the same
    /// domain appears twice with *different* replica-sets (entries that
    /// agree exactly are collapsed).
    pub fn from_replicas(shards: usize, entries: &[(u64, Vec<usize>)]) -> Result<Self, CerlError> {
        if shards == 0 {
            return Err(invalid_shard_map("shard count is 0".into()));
        }
        let mut assignments: Vec<ShardAssignment> = entries
            .iter()
            .map(|(domain, replicas)| {
                let replicas = ReplicaSet::new(replicas).map_err(|_| {
                    invalid_shard_map(format!("domain {domain} has an empty replica-set"))
                })?;
                Ok(ShardAssignment {
                    domain: *domain,
                    replicas,
                })
            })
            .collect::<Result<_, CerlError>>()?;
        assignments
            .sort_by(|a, b| (a.domain, a.replicas.shards()).cmp(&(b.domain, b.replicas.shards())));
        assignments.dedup();
        for pair in assignments.windows(2) {
            if pair[0].domain == pair[1].domain {
                return Err(invalid_shard_map(format!(
                    "domain {} assigned to both replica-set {} and replica-set {}",
                    pair[0].domain, pair[0].replicas, pair[1].replicas
                )));
            }
        }
        for a in &assignments {
            for &shard in a.replicas.shards() {
                if shard >= shards {
                    return Err(invalid_shard_map(format!(
                        "domain {} routed to shard {shard} but the map declares {shards} shard(s)",
                        a.domain
                    )));
                }
            }
        }
        Ok(Self {
            shards,
            assignments,
        })
    }

    /// The *primary* shard serving `domain` (smallest replica id), or
    /// `None` when the domain is not mapped. For single-replica maps this
    /// is the one shard that serves the domain, exactly as before
    /// replication; replica-aware callers use [`ShardMap::replicas_for`].
    pub fn shard_for(&self, domain: u64) -> Option<usize> {
        self.replicas_for(domain).map(ReplicaSet::primary)
    }

    /// The full replica-set serving `domain`, or `None` when unmapped.
    pub fn replicas_for(&self, domain: u64) -> Option<&ReplicaSet> {
        self.assignments
            .binary_search_by_key(&domain, |a| a.domain)
            .ok()
            .map(|i| &self.assignments[i].replicas)
    }

    /// Whether any domain is served by more than one replica. Routers
    /// use this to keep the single-replica demux on its historical fast
    /// path: when `false`, no routing policy has a choice to make and
    /// every row resolves through [`ShardMap::shard_for`] exactly as
    /// before replication existed.
    pub fn is_replicated(&self) -> bool {
        self.assignments.iter().any(|a| a.replicas.len() > 1)
    }

    /// Number of shards the map routes across.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// Number of mapped domains.
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// Whether no domain is mapped.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// All assignments, sorted by domain id.
    pub fn assignments(&self) -> &[ShardAssignment] {
        &self.assignments
    }

    /// A copy of this map with `shard` added to `domain`'s replica-set —
    /// the topology flip that commits a read-scaling `add_replica`.
    ///
    /// The domain must already be mapped, `shard` must be inside the
    /// declared shard range, and must not already serve the domain. The
    /// original map is untouched, so a router can build the successor
    /// topology off to the side and publish it with one atomic pointer
    /// swap.
    pub fn with_replica_added(&self, domain: u64, shard: usize) -> Result<Self, CerlError> {
        self.update_replicas(domain, |set| set.with_added(shard))
    }

    /// A copy of this map with `shard` removed from `domain`'s
    /// replica-set — the topology flip that drains a replica. Fails when
    /// `shard` does not serve the domain or is its last replica.
    pub fn with_replica_removed(&self, domain: u64, shard: usize) -> Result<Self, CerlError> {
        self.update_replicas(domain, |set| set.with_removed(shard))
    }

    /// A copy of this map with `domain`'s replica on shard `from`
    /// replaced by one on shard `to` — the topology flip a shard
    /// rebalance commits. For a single-replica domain this is exactly
    /// the old whole-domain move.
    pub fn with_replica_replaced(
        &self,
        domain: u64,
        from: usize,
        to: usize,
    ) -> Result<Self, CerlError> {
        self.update_replicas(domain, |set| set.with_replaced(from, to))
    }

    /// Rebuild the map with `domain`'s replica-set transformed by `f`,
    /// re-validating the result against the declared shard range.
    fn update_replicas(
        &self,
        domain: u64,
        f: impl FnOnce(&ReplicaSet) -> Result<ReplicaSet, CerlError>,
    ) -> Result<Self, CerlError> {
        let Some(current) = self.replicas_for(domain) else {
            return Err(invalid_shard_map(format!(
                "cannot change replicas of domain {domain}: the map does not route it"
            )));
        };
        let next = f(current).map_err(|e| match e {
            CerlError::InvalidConfig { reason, .. } => {
                invalid_shard_map(format!("domain {domain}: {reason}"))
            }
            other => other,
        })?;
        let entries: Vec<(u64, Vec<usize>)> = self
            .assignments
            .iter()
            .map(|a| {
                if a.domain == domain {
                    (a.domain, next.shards().to_vec())
                } else {
                    (a.domain, a.replicas.shards().to_vec())
                }
            })
            .collect();
        Self::from_replicas(self.shards, &entries)
    }

    /// Structural difference between this topology and `successor`:
    /// which replicas moved shard-to-shard, which were added or removed
    /// within a surviving domain, and which whole domains appeared or
    /// disappeared.
    ///
    /// A fleet restore uses this to explain *how* two replica snapshots
    /// disagree (e.g. a registry captured mid-rebalance), and an
    /// orchestrator can turn the `moved` list into a rebalance plan.
    /// Within one domain, departed and arrived replicas are paired off
    /// in sorted order into [`ShardMove`] entries; an unpaired surplus
    /// lands in [`ShardMapDiff::replicas_added`] /
    /// [`ShardMapDiff::replicas_removed`].
    pub fn diff(&self, successor: &ShardMap) -> ShardMapDiff {
        let mut diff = ShardMapDiff::default();
        for a in &self.assignments {
            match successor.replicas_for(a.domain) {
                Some(new) if new != &a.replicas => {
                    let departed: Vec<usize> = a
                        .replicas
                        .shards()
                        .iter()
                        .copied()
                        .filter(|&s| !new.contains(s))
                        .collect();
                    let arrived: Vec<usize> = new
                        .shards()
                        .iter()
                        .copied()
                        .filter(|&s| !a.replicas.contains(s))
                        .collect();
                    let paired = departed.len().min(arrived.len());
                    for i in 0..paired {
                        diff.moved.push(ShardMove {
                            domain: a.domain,
                            from: departed[i],
                            to: arrived[i],
                        });
                    }
                    for &shard in &departed[paired..] {
                        diff.replicas_removed.push(ReplicaChange {
                            domain: a.domain,
                            shard,
                        });
                    }
                    for &shard in &arrived[paired..] {
                        diff.replicas_added.push(ReplicaChange {
                            domain: a.domain,
                            shard,
                        });
                    }
                }
                Some(_) => {}
                None => diff.removed.push(a.clone()),
            }
        }
        for a in &successor.assignments {
            if self.replicas_for(a.domain).is_none() {
                diff.added.push(a.clone());
            }
        }
        diff
    }

    /// Union of two topologies: every domain either map routes, over
    /// `max(shard_count)` shards.
    ///
    /// Fails when the maps give the same domain different replica-sets —
    /// merging is for composing disjoint fleets (or re-assembling a map
    /// from per-shard fragments), not for resolving conflicts; use
    /// [`ShardMap::diff`] to see a conflict and the
    /// [`ShardMap::with_replica_added`] /
    /// [`ShardMap::with_replica_removed`] /
    /// [`ShardMap::with_replica_replaced`] family to resolve it
    /// deliberately. The conflict error names the domain and *both*
    /// replica-sets.
    pub fn merge(&self, other: &ShardMap) -> Result<Self, CerlError> {
        let entries: Vec<(u64, Vec<usize>)> = self
            .assignments
            .iter()
            .chain(&other.assignments)
            .map(|a| (a.domain, a.replicas.shards().to_vec()))
            .collect();
        Self::from_replicas(self.shards.max(other.shards), &entries)
    }

    /// Re-check the invariants [`ShardMap::from_replicas`] enforces (a
    /// deserialized map bypasses the constructor): no empty replica-set,
    /// no duplicate replica ids, every replica inside the declared shard
    /// range, assignments sorted and deduplicated by domain.
    pub(crate) fn validate(&self) -> Result<(), CerlError> {
        for a in &self.assignments {
            if a.replicas.is_empty() {
                return Err(invalid_shard_map(format!(
                    "domain {} has an empty replica-set",
                    a.domain
                )));
            }
            for pair in a.replicas.shards().windows(2) {
                if pair[0] >= pair[1] {
                    return Err(invalid_shard_map(format!(
                        "domain {} replica-set {} is not sorted/deduplicated",
                        a.domain, a.replicas
                    )));
                }
            }
        }
        let entries: Vec<(u64, Vec<usize>)> = self
            .assignments
            .iter()
            .map(|a| (a.domain, a.replicas.shards().to_vec()))
            .collect();
        let rebuilt = Self::from_replicas(self.shards, &entries)?;
        if rebuilt.assignments != self.assignments {
            return Err(invalid_shard_map(
                "assignments are not sorted/deduplicated by domain".into(),
            ));
        }
        Ok(())
    }
}

fn invalid_shard_map(reason: String) -> CerlError {
    CerlError::InvalidConfig {
        field: "shard_map",
        reason,
    }
}

/// One replica appearing on (or departing) a shard without a paired
/// counterpart — an entry of [`ShardMapDiff::replicas_added`] /
/// [`ShardMapDiff::replicas_removed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaChange {
    /// Domain whose replica-set changed size.
    pub domain: u64,
    /// The shard the replica appeared on (or departed from).
    pub shard: usize,
}

impl std::fmt::Display for ReplicaChange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "domain {} replica on shard {}", self.domain, self.shard)
    }
}

/// One replica's relocation between shards (an entry of
/// [`ShardMapDiff::moved`]). For a single-replica domain this is the
/// whole domain changing shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMove {
    /// Domain whose replica changed shards.
    pub domain: u64,
    /// Shard the replica lived on in the older topology.
    pub from: usize,
    /// Shard it lives on in the newer topology.
    pub to: usize,
}

impl std::fmt::Display for ShardMove {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "domain {} moved shard {} -> {}",
            self.domain, self.from, self.to
        )
    }
}

/// Structural difference between two [`ShardMap`] topologies
/// ([`ShardMap::diff`]). All lists are sorted by domain id.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardMapDiff {
    /// Replicas present in both maps' domains but on different shards
    /// (departures and arrivals within one domain, paired off in sorted
    /// order).
    pub moved: Vec<ShardMove>,
    /// Domains only the newer map routes.
    pub added: Vec<ShardAssignment>,
    /// Domains only the older map routes.
    pub removed: Vec<ShardAssignment>,
    /// Replicas the newer map adds to domains both maps route (a
    /// read-scaling `add_replica`).
    pub replicas_added: Vec<ReplicaChange>,
    /// Replicas the newer map drops from domains both maps route (a
    /// `drain_replica`/`remove_replica`).
    pub replicas_removed: Vec<ReplicaChange>,
}

impl ShardMapDiff {
    /// Whether the two topologies route identically (shard *counts* may
    /// still differ; the diff is about domain placement).
    pub fn is_empty(&self) -> bool {
        self.moved.is_empty()
            && self.added.is_empty()
            && self.removed.is_empty()
            && self.replicas_added.is_empty()
            && self.replicas_removed.is_empty()
    }
}

/// Serializable state of the backbone CFR model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct CfrState {
    pub(crate) store: ParamStore,
    pub(crate) repr: ReprNet,
    pub(crate) heads: OutcomeHeads,
    pub(crate) x_std: Option<Standardizer>,
    pub(crate) y_scale: Option<OutcomeScaler>,
    pub(crate) d_in: usize,
    pub(crate) stages_trained: usize,
}

/// Complete, versioned state of a continual estimator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelSnapshot {
    /// Document layout version; see [`SNAPSHOT_FORMAT_VERSION`].
    pub format_version: u32,
    /// Base seed (stage RNG streams derive from it, so a restored model
    /// continues training exactly as the original would have).
    pub seed: u64,
    /// Completed continual stages.
    pub stage: usize,
    /// Full configuration in effect when the snapshot was taken.
    pub config: CerlConfig,
    /// Fleet routing metadata (`domain → shard`), when the snapshot was
    /// taken from a sharded deployment. `None` for single-engine fleets.
    pub shard_map: Option<ShardMap>,
    /// Which shard of [`ModelSnapshot::shard_map`] this snapshot was
    /// taken from, so a fleet restored from a registry does not depend
    /// on the order replicas are fetched in.
    pub shard_index: Option<usize>,
    pub(crate) model: CfrState,
    pub(crate) memory: Option<Memory>,
}

impl ModelSnapshot {
    /// Capture a snapshot (crate-internal; use
    /// [`Cerl::to_snapshot`](crate::continual::Cerl::to_snapshot) or
    /// [`CerlEngine::snapshot`](crate::engine::CerlEngine::snapshot)).
    pub(crate) fn capture(
        seed: u64,
        stage: usize,
        config: &CerlConfig,
        model: &CfrModel,
        memory: Option<&Memory>,
    ) -> Self {
        Self {
            format_version: SNAPSHOT_FORMAT_VERSION,
            seed,
            stage,
            config: config.clone(),
            shard_map: None,
            shard_index: None,
            model: model.to_state(),
            memory: memory.cloned(),
        }
    }

    /// Attach fleet routing metadata to this snapshot (builder-style).
    pub fn with_shard_map(mut self, map: ShardMap) -> Self {
        self.shard_map = Some(map);
        self
    }

    /// Record which shard of the attached map this snapshot serves
    /// (builder-style).
    pub fn with_shard_index(mut self, shard: usize) -> Self {
        self.shard_index = Some(shard);
        self
    }

    /// Serialize to the versioned JSON byte format (format v2).
    pub fn to_bytes(&self) -> Result<Vec<u8>, CerlError> {
        serde_json::to_vec(self).map_err(|e| malformed(e.to_string()))
    }

    /// Serialize to the compact binary container (format v3; see
    /// [`SNAPSHOT_BINARY_FORMAT_VERSION`] for the wire layout).
    ///
    /// Every float array under the snapshot's `model` and `memory` fields
    /// moves into a raw little-endian payload section, encoded per
    /// `payload` ([`SnapshotPayload::F64`] is bitwise lossless;
    /// [`SnapshotPayload::F32`] halves the payload for f32-mode serving
    /// replicas). The structural remainder — configuration, wiring,
    /// shard topology — stays as a small embedded JSON document, so the
    /// binary format inherits the JSON schema's evolution story.
    /// [`ModelSnapshot::from_bytes`] reads the result back.
    pub fn to_binary_bytes(&self, payload: SnapshotPayload) -> Result<Vec<u8>, CerlError> {
        let mut doc = Serialize::serialize(self);
        let mut arrays: Vec<Vec<f64>> = Vec::new();
        if let Value::Object(fields) = &mut doc {
            for (key, value) in fields.iter_mut() {
                if key == "model" || key == "memory" {
                    hoist_float_arrays(value, &mut arrays);
                }
            }
        }
        let meta = serde_json::to_vec(&doc).map_err(|e| malformed(e.to_string()))?;

        let array_count = u32::try_from(arrays.len())
            .map_err(|_| malformed("too many float arrays for the payload section"))?;
        let mut payload_body = Vec::new();
        payload_body.extend_from_slice(&array_count.to_le_bytes());
        for arr in &arrays {
            payload_body.extend_from_slice(&(arr.len() as u64).to_le_bytes());
            match payload {
                SnapshotPayload::F64 => {
                    for &v in arr {
                        payload_body.extend_from_slice(&v.to_le_bytes());
                    }
                }
                SnapshotPayload::F32 => {
                    for &v in arr {
                        payload_body.extend_from_slice(&(v as f32).to_le_bytes());
                    }
                }
            }
        }

        let mut out = Vec::with_capacity(16 + 2 * 12 + meta.len() + payload_body.len());
        out.extend_from_slice(&BINARY_MAGIC);
        out.extend_from_slice(&SNAPSHOT_BINARY_FORMAT_VERSION.to_le_bytes());
        out.push(match payload {
            SnapshotPayload::F64 => 0,
            SnapshotPayload::F32 => 1,
        });
        out.extend_from_slice(&[0u8; 3]);
        out.extend_from_slice(&2u32.to_le_bytes());
        for (tag, body) in [(SECTION_META, &meta), (SECTION_PAYLOAD, &payload_body)] {
            out.extend_from_slice(&tag.to_le_bytes());
            out.extend_from_slice(&(body.len() as u64).to_le_bytes());
        }
        out.extend_from_slice(&meta);
        out.extend_from_slice(&payload_body);
        Ok(out)
    }

    /// Parse from either versioned byte format: the binary v3 container
    /// (recognized by its leading magic) or a JSON document (format
    /// versions 1 and 2 — a v1 document simply predates the shard routing
    /// fields, which restore as `None`).
    ///
    /// The version field is checked *before* the rest of the document is
    /// interpreted, so a newer-format snapshot yields
    /// [`SnapshotError::UnsupportedVersion`] rather than a confusing parse
    /// error about fields that were added or removed later. Parsing checks
    /// format concerns only; semantic consistency (network wiring,
    /// parameter shapes, scaler dimensions) is validated once, when a
    /// model is built from the snapshot (`into_cerl` via
    /// [`Cerl::from_snapshot`] or `CerlEngine::load_bytes`).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CerlError> {
        if bytes.starts_with(&BINARY_MAGIC) {
            return Self::from_binary(bytes);
        }
        let text = std::str::from_utf8(bytes).map_err(|e| malformed(format!("not UTF-8: {e}")))?;
        let value = serde_json::parse(text).map_err(|e| malformed(e.to_string()))?;
        Self::from_document(&value)
    }

    /// Decode a parsed JSON document, dispatching on its format version.
    fn from_document(value: &Value) -> Result<Self, CerlError> {
        let fields = value
            .as_object()
            .ok_or_else(|| malformed("top level is not an object"))?;
        let format_version: u32 =
            serde::field(fields, "format_version").map_err(|e| malformed(e.to_string()))?;
        match format_version {
            // v1 predates the shard routing fields; upgrade the document
            // in place so the derived deserializer sees the v4 shape.
            1 => {
                let mut fields = fields.to_vec();
                for key in ["shard_map", "shard_index"] {
                    if !fields.iter().any(|(k, _)| k == key) {
                        fields.push((key.to_string(), Value::Null));
                    }
                }
                Self::deserialize(&Value::Object(fields)).map_err(|e| malformed(e.to_string()))
            }
            // v2 carried one `shard` per assignment; upgrade each entry
            // to a one-replica set so the v4 deserializer reads it.
            2 => {
                let mut fields = fields.to_vec();
                for (key, field_value) in fields.iter_mut() {
                    if key == "shard_map" {
                        upgrade_v2_shard_map(field_value)?;
                    }
                }
                Self::deserialize(&Value::Object(fields)).map_err(|e| malformed(e.to_string()))
            }
            SNAPSHOT_FORMAT_VERSION => {
                Self::deserialize(value).map_err(|e| malformed(e.to_string()))
            }
            other => Err(CerlError::Snapshot(SnapshotError::UnsupportedVersion {
                found: other,
                supported: SNAPSHOT_FORMAT_VERSION,
            })),
        }
    }

    /// Decode the binary v3 container. Every read is bounds-checked; any
    /// deviation from the documented layout is [`SnapshotError::Malformed`].
    fn from_binary(bytes: &[u8]) -> Result<Self, CerlError> {
        let mut r = ByteReader::new(bytes);
        r.take(BINARY_MAGIC.len())?; // magic, verified by the caller's sniff
        let version = r.u32()?;
        if version != SNAPSHOT_BINARY_FORMAT_VERSION {
            return Err(CerlError::Snapshot(SnapshotError::UnsupportedVersion {
                found: version,
                supported: SNAPSHOT_BINARY_FORMAT_VERSION,
            }));
        }
        let payload = match r.u8()? {
            0 => SnapshotPayload::F64,
            1 => SnapshotPayload::F32,
            other => return Err(malformed(format!("unknown payload kind {other}"))),
        };
        r.take(3)?; // reserved
        let section_count = r.u32()?;
        // Each table entry costs 12 bytes; bound the count by what the
        // input can physically hold before allocating the table.
        if section_count as usize > r.remaining() / 12 {
            return Err(malformed(format!(
                "section table claims {section_count} entries"
            )));
        }
        let mut table = Vec::with_capacity(section_count as usize);
        for _ in 0..section_count {
            let tag = r.u32()?;
            let len = usize::try_from(r.u64()?)
                .map_err(|_| malformed("section length overflows usize"))?;
            table.push((tag, len));
        }
        let mut meta: Option<&[u8]> = None;
        let mut payload_body: Option<&[u8]> = None;
        for (tag, len) in table {
            let body = r.take(len)?;
            match tag {
                SECTION_META => meta = Some(body),
                SECTION_PAYLOAD => payload_body = Some(body),
                // Unknown sections are skipped: a future writer may add
                // sections without breaking this reader.
                _ => {}
            }
        }
        if r.remaining() != 0 {
            return Err(malformed(format!(
                "{} trailing bytes after the last section",
                r.remaining()
            )));
        }
        let meta = meta.ok_or_else(|| malformed("missing meta section"))?;
        let payload_body = payload_body.ok_or_else(|| malformed("missing payload section"))?;

        let mut arrays = decode_payload_arrays(payload_body, payload)?;
        let text = std::str::from_utf8(meta)
            .map_err(|e| malformed(format!("meta section is not UTF-8: {e}")))?;
        let mut value = serde_json::parse(text).map_err(|e| malformed(e.to_string()))?;
        restore_float_arrays(&mut value, &mut arrays)?;
        if arrays.iter().any(Option::is_some) {
            return Err(malformed(
                "payload contains arrays the meta document never references",
            ));
        }
        Self::from_document(&value)
    }

    /// Cross-check internal consistency: configuration sanity, network
    /// wiring against the parameter store, and memory dimensions.
    pub(crate) fn validate(&self) -> Result<(), CerlError> {
        self.config.validate()?;
        if let Some(map) = &self.shard_map {
            map.validate()?;
            if let Some(shard) = self.shard_index {
                if shard >= map.shard_count() {
                    return Err(invalid_shard_map(format!(
                        "snapshot claims shard {shard} of a {}-shard map",
                        map.shard_count()
                    )));
                }
            }
        }
        if self.model.d_in == 0 {
            return Err(incompatible("covariate dimension is 0"));
        }
        let store_len = self.model.store.len();
        let check_ids = |ids: &[ParamId], what: &str| -> Result<(), CerlError> {
            for id in ids {
                if id.index() >= store_len {
                    return Err(incompatible(&format!(
                        "{what} references parameter {} but the store holds {store_len}",
                        id.index()
                    )));
                }
            }
            Ok(())
        };
        check_ids(&self.model.repr.params(), "representation network")?;
        check_ids(&self.model.heads.params(), "outcome heads")?;
        if !self.model.repr.has_output_layer() {
            return Err(incompatible("representation network has no output layer"));
        }
        if self.stage > 0 && (self.model.x_std.is_none() || self.model.y_scale.is_none()) {
            return Err(incompatible("trained snapshot is missing its scalers"));
        }
        if let Some(x_std) = &self.model.x_std {
            if x_std.dim() != self.model.d_in {
                return Err(incompatible(&format!(
                    "standardizer dimension {} does not match covariate dimension {}",
                    x_std.dim(),
                    self.model.d_in
                )));
            }
        }
        if let Some(memory) = &self.memory {
            // Memory derives Deserialize field-by-field, bypassing
            // `Memory::try_new`; re-check its invariants here so a
            // doctored document cannot smuggle in out-of-sync arrays that
            // later index out of bounds inside `try_observe`.
            if memory.y.len() != memory.len() || memory.t.len() != memory.len() {
                return Err(incompatible(&format!(
                    "memory arrays out of sync: {} representations, {} outcomes, {} treatments",
                    memory.len(),
                    memory.y.len(),
                    memory.t.len()
                )));
            }
            if memory.dim() != self.config.net.repr_dim {
                return Err(incompatible(&format!(
                    "memory representation dimension {} does not match net.repr_dim {}",
                    memory.dim(),
                    self.config.net.repr_dim
                )));
            }
        }
        Ok(())
    }

    /// Rebuild the estimator this snapshot captured.
    pub(crate) fn into_cerl(self) -> Result<Cerl, CerlError> {
        self.validate()?;
        let ModelSnapshot {
            seed,
            stage,
            config,
            model,
            memory,
            ..
        } = self;
        let d_in = model.d_in;
        let model = CfrModel::from_state(model, config.clone(), seed);
        let cerl = Cerl::restore(config, model, memory, stage, seed);
        // Structural id checks cannot see parameter *shapes*; a hostile or
        // corrupted document can wire layers whose matrices do not chain.
        // Smoke-predict one zero row under catch_unwind and convert any
        // shape panic into a typed error, so untrusted bytes cannot crash
        // a serving process on its first real request.
        if cerl.stage() > 0 {
            let probe = cerl_math::Matrix::zeros(1, d_in);
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                cerl.try_predict_ite(&probe).map(|_| ())
            }));
            match outcome {
                Ok(Ok(())) => {}
                Ok(Err(e)) => return Err(e),
                Err(_) => {
                    return Err(incompatible(
                        "snapshot parameters are internally inconsistent (smoke prediction failed)",
                    ))
                }
            }
        }
        Ok(cerl)
    }
}

fn incompatible(reason: &str) -> CerlError {
    CerlError::Snapshot(SnapshotError::Incompatible(reason.to_string()))
}

fn malformed(reason: impl Into<String>) -> CerlError {
    CerlError::Snapshot(SnapshotError::Malformed(reason.into()))
}

/// Upgrade a format-v2 `shard_map` document value in place: each
/// assignment's `"shard": M` entry becomes `"replicas": [M]`. `Null`
/// (no map attached) passes through; any other shape is malformed.
fn upgrade_v2_shard_map(value: &mut Value) -> Result<(), CerlError> {
    let Value::Object(fields) = value else {
        if matches!(value, Value::Null) {
            return Ok(());
        }
        return Err(malformed("v2 shard_map is neither an object nor null"));
    };
    for (key, field_value) in fields.iter_mut() {
        if key != "assignments" {
            continue;
        }
        let Value::Array(items) = field_value else {
            return Err(malformed("v2 shard_map assignments is not an array"));
        };
        for item in items {
            let Value::Object(entry) = item else {
                return Err(malformed("v2 shard assignment is not an object"));
            };
            for (k, v) in entry.iter_mut() {
                if k == "shard" {
                    *k = "replicas".to_string();
                    *v = Value::Array(vec![v.clone()]);
                }
            }
        }
    }
    Ok(())
}

/// Bounds-checked cursor over untrusted snapshot bytes: every read
/// validates against the remaining input, so a truncated or doctored
/// container fails with a typed error instead of panicking.
struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CerlError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| {
                malformed(format!(
                    "truncated: need {n} bytes at offset {}, have {}",
                    self.pos,
                    self.remaining()
                ))
            })?;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| malformed(format!("truncated at offset {}", self.pos)))?;
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, CerlError> {
        Ok(self.take(1)?[0]) // panic-ok: take(1) returned exactly one byte
    }

    fn u32(&mut self) -> Result<u32, CerlError> {
        let raw = self.take(4)?;
        let mut buf = [0u8; 4];
        buf.copy_from_slice(raw);
        Ok(u32::from_le_bytes(buf))
    }

    fn u64(&mut self) -> Result<u64, CerlError> {
        let raw = self.take(8)?;
        let mut buf = [0u8; 8];
        buf.copy_from_slice(raw);
        Ok(u64::from_le_bytes(buf))
    }
}

/// Move every all-float array in `v` into `arrays`, leaving a
/// `{"$floats": index}` placeholder behind. Recurses through objects and
/// mixed arrays; empty arrays stay inline (nothing to hoist).
fn hoist_float_arrays(v: &mut Value, arrays: &mut Vec<Vec<f64>>) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            let floats: Option<Vec<f64>> = items
                .iter()
                .map(|item| match item {
                    Value::Float(f) => Some(*f),
                    _ => None,
                })
                .collect();
            match floats {
                Some(data) => {
                    let idx = arrays.len() as u64;
                    arrays.push(data);
                    *v = Value::Object(vec![(PAYLOAD_KEY.to_string(), Value::UInt(idx))]);
                }
                None => {
                    for item in items {
                        hoist_float_arrays(item, arrays);
                    }
                }
            }
        }
        Value::Object(fields) => {
            for (_, value) in fields {
                hoist_float_arrays(value, arrays);
            }
        }
        _ => {}
    }
}

/// Decode the payload section into float arrays. Element counts are
/// validated against the remaining section length *before* any allocation,
/// so a doctored count cannot trigger an unbounded `Vec` reservation.
fn decode_payload_arrays(
    body: &[u8],
    payload: SnapshotPayload,
) -> Result<Vec<Option<Vec<f64>>>, CerlError> {
    let width = match payload {
        SnapshotPayload::F64 => 8,
        SnapshotPayload::F32 => 4,
    };
    let mut r = ByteReader::new(body);
    let count = r.u32()? as usize;
    // Each array costs at least its 8-byte length prefix.
    if count > r.remaining() / 8 {
        return Err(malformed(format!("payload claims {count} arrays")));
    }
    let mut arrays = Vec::with_capacity(count);
    for _ in 0..count {
        let n = usize::try_from(r.u64()?).map_err(|_| malformed("array length overflows usize"))?;
        let nbytes = n
            .checked_mul(width)
            .ok_or_else(|| malformed("array byte length overflows usize"))?;
        let raw = r.take(nbytes)?;
        let mut data = Vec::with_capacity(n);
        match payload {
            SnapshotPayload::F64 => {
                for chunk in raw.chunks_exact(8) {
                    let mut buf = [0u8; 8];
                    buf.copy_from_slice(chunk);
                    data.push(f64::from_le_bytes(buf));
                }
            }
            SnapshotPayload::F32 => {
                for chunk in raw.chunks_exact(4) {
                    let mut buf = [0u8; 4];
                    buf.copy_from_slice(chunk);
                    data.push(f64::from(f32::from_le_bytes(buf)));
                }
            }
        }
        arrays.push(Some(data));
    }
    if r.remaining() != 0 {
        return Err(malformed(format!(
            "{} trailing bytes in the payload section",
            r.remaining()
        )));
    }
    Ok(arrays)
}

/// Replace every `{"$floats": index}` placeholder in `v` with its payload
/// array, consuming each array slot so a doctored meta document cannot
/// reference the same array twice (or dangle past the payload table).
fn restore_float_arrays(v: &mut Value, arrays: &mut [Option<Vec<f64>>]) -> Result<(), CerlError> {
    match v {
        Value::Object(fields) => {
            let placeholder = match fields.as_slice() {
                [(key, Value::UInt(idx))] if key == PAYLOAD_KEY => Some(*idx),
                _ => None,
            };
            if let Some(idx) = placeholder {
                let idx = usize::try_from(idx)
                    .map_err(|_| malformed("float placeholder index overflows usize"))?;
                let data = arrays.get_mut(idx).and_then(Option::take).ok_or_else(|| {
                    malformed(format!(
                        "float placeholder {idx} is out of range or referenced twice"
                    ))
                })?;
                *v = Value::Array(data.into_iter().map(Value::Float).collect());
            } else {
                for (_, value) in fields {
                    restore_float_arrays(value, arrays)?;
                }
            }
        }
        Value::Array(items) => {
            for item in items {
                restore_float_arrays(item, arrays)?;
            }
        }
        _ => {}
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cerl_data::{DomainStream, SyntheticConfig, SyntheticGenerator};

    fn trained_cerl(stages: usize) -> (Cerl, DomainStream) {
        let gen = SyntheticGenerator::new(
            SyntheticConfig {
                n_units: 400,
                ..SyntheticConfig::small()
            },
            11,
        );
        let stream = DomainStream::synthetic(&gen, stages.max(2), 0, 17);
        let mut cfg = CerlConfig::quick_test();
        cfg.train.epochs = 6;
        cfg.memory_size = 80;
        let mut cerl = Cerl::new(stream.domain(0).train.dim(), cfg, 23);
        for d in 0..stages {
            cerl.observe(&stream.domain(d).train, &stream.domain(d).val);
        }
        (cerl, stream)
    }

    #[test]
    fn snapshot_roundtrips_bitwise_identical_predictions() {
        let (cerl, stream) = trained_cerl(2);
        let bytes = cerl.to_snapshot().to_bytes().unwrap();
        let restored = Cerl::from_snapshot(ModelSnapshot::from_bytes(&bytes).unwrap()).unwrap();
        for d in 0..2 {
            let x = &stream.domain(d).test.x;
            let a = cerl.predict_ite(x);
            let b = restored.predict_ite(x);
            assert_eq!(a.len(), b.len());
            for (va, vb) in a.iter().zip(&b) {
                assert_eq!(va.to_bits(), vb.to_bits(), "domain {d}");
            }
        }
        assert_eq!(restored.stage(), cerl.stage());
        assert_eq!(
            restored.memory().map(Memory::len),
            cerl.memory().map(Memory::len)
        );
    }

    #[test]
    fn restored_model_continues_observing() {
        let (cerl, stream) = trained_cerl(1);
        let bytes = cerl.to_snapshot().to_bytes().unwrap();

        // "Fresh process": rebuild purely from bytes, then continue.
        let mut restored = Cerl::from_snapshot(ModelSnapshot::from_bytes(&bytes).unwrap()).unwrap();
        let report = restored
            .try_observe(&stream.domain(1).train, &stream.domain(1).val)
            .unwrap();
        assert_eq!(report.stage, 2);

        // The continuation matches what the original process would produce.
        let mut original = cerl;
        original.observe(&stream.domain(1).train, &stream.domain(1).val);
        let x = &stream.domain(1).test.x;
        assert_eq!(original.predict_ite(x), restored.predict_ite(x));
    }

    #[test]
    fn shard_map_routes_and_validates() {
        let map = ShardMap::from_pairs(3, &[(10, 0), (11, 1), (12, 2), (11, 1)]).unwrap();
        assert_eq!(map.shard_count(), 3);
        assert_eq!(map.len(), 3); // exact duplicate collapsed
        assert_eq!(map.shard_for(11), Some(1));
        assert_eq!(map.shard_for(99), None);

        assert!(ShardMap::from_pairs(0, &[]).is_err());
        assert!(ShardMap::from_pairs(2, &[(1, 2)]).is_err());
        assert!(ShardMap::from_pairs(2, &[(1, 0), (1, 1)]).is_err());
    }

    #[test]
    fn replica_sets_route_and_mutate() {
        let map = ShardMap::from_replicas(4, &[(0, vec![2, 0]), (1, vec![3])]).unwrap();
        // Canonical order: sorted ascending, primary = smallest id.
        assert_eq!(map.replicas_for(0).unwrap().shards(), &[0, 2]);
        assert_eq!(map.shard_for(0), Some(0));
        assert_eq!(map.replicas_for(1).unwrap().shards(), &[3]);
        assert_eq!(map.replicas_for(9), None);
        assert!(map.replicas_for(0).unwrap().contains(2));
        assert!(!map.replicas_for(0).unwrap().contains(1));

        let grown = map.with_replica_added(1, 1).unwrap();
        assert_eq!(grown.replicas_for(1).unwrap().shards(), &[1, 3]);
        assert_eq!(map.replicas_for(1).unwrap().len(), 1, "original untouched");
        assert!(map.with_replica_added(1, 3).is_err(), "already a replica");
        assert!(map.with_replica_added(1, 9).is_err(), "out of range");
        assert!(map.with_replica_added(7, 0).is_err(), "unmapped domain");

        let shrunk = grown.with_replica_removed(1, 3).unwrap();
        assert_eq!(shrunk.replicas_for(1).unwrap().shards(), &[1]);
        assert!(map.with_replica_removed(1, 3).is_err(), "last replica");
        assert!(map.with_replica_removed(0, 1).is_err(), "not a replica");

        // Exact-duplicate entries collapse; conflicting sets are refused
        // with both sets named.
        let dup = ShardMap::from_replicas(4, &[(0, vec![1, 2]), (0, vec![2, 1])]).unwrap();
        assert_eq!(dup.len(), 1);
        let err = ShardMap::from_replicas(4, &[(0, vec![1]), (0, vec![1, 2])]).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("[1]") && msg.contains("[1, 2]"), "{msg}");
        // An empty replica list never builds.
        assert!(ShardMap::from_replicas(4, &[(0, vec![])]).is_err());
    }

    #[test]
    fn replica_diff_pairs_moves_and_reports_surplus() {
        let old = ShardMap::from_replicas(5, &[(0, vec![0, 1]), (1, vec![2])]).unwrap();
        // Domain 0: replica 1 -> 3 (paired move) plus a brand-new replica
        // on 4 (surplus arrival). Domain 1: untouched.
        let new = ShardMap::from_replicas(5, &[(0, vec![0, 3, 4]), (1, vec![2])]).unwrap();
        let diff = old.diff(&new);
        assert_eq!(
            diff.moved,
            vec![ShardMove {
                domain: 0,
                from: 1,
                to: 3
            }]
        );
        assert_eq!(
            diff.replicas_added,
            vec![ReplicaChange {
                domain: 0,
                shard: 4
            }]
        );
        assert!(diff.replicas_removed.is_empty());
        assert!(diff.added.is_empty() && diff.removed.is_empty());
        assert!(!diff.is_empty());
        // The reverse direction sees the surplus as a removal.
        let back = new.diff(&old);
        assert_eq!(back.moved.len(), 1);
        assert_eq!(
            back.replicas_removed,
            vec![ReplicaChange {
                domain: 0,
                shard: 4
            }]
        );
        assert_eq!(
            back.replicas_removed[0].to_string(),
            "domain 0 replica on shard 4"
        );
        // A pure add_replica diff has no moves at all.
        let scaled = old.with_replica_added(1, 4).unwrap();
        let diff = old.diff(&scaled);
        assert!(diff.moved.is_empty());
        assert_eq!(diff.replicas_added.len(), 1);
    }

    #[test]
    fn hostile_replica_metadata_is_rejected_not_a_panic() {
        let (cerl, _) = trained_cerl(1);
        let reject = |map: ShardMap, what: &str| {
            let mut snapshot = cerl.to_snapshot();
            snapshot.shard_map = Some(map);
            let parsed = ModelSnapshot::from_bytes(&snapshot.to_bytes().unwrap()).unwrap();
            match Cerl::from_snapshot(parsed) {
                Err(CerlError::InvalidConfig { field, .. }) => {
                    assert_eq!(field, "shard_map", "{what}")
                }
                other => panic!(
                    "{what}: expected InvalidConfig, got {:?}",
                    other.map(|_| ())
                ),
            }
        };
        // Duplicate replica ids inside one set.
        reject(
            ShardMap {
                shards: 2,
                assignments: vec![ShardAssignment {
                    domain: 0,
                    replicas: ReplicaSet { shards: vec![1, 1] },
                }],
            },
            "duplicate replica ids",
        );
        // Empty replica-set.
        reject(
            ShardMap {
                shards: 2,
                assignments: vec![ShardAssignment {
                    domain: 0,
                    replicas: ReplicaSet { shards: vec![] },
                }],
            },
            "empty replica-set",
        );
        // Replica id past the declared fleet size.
        reject(
            ShardMap {
                shards: 2,
                assignments: vec![ShardAssignment {
                    domain: 0,
                    replicas: ReplicaSet {
                        shards: vec![0, 17],
                    },
                }],
            },
            "replica id >= fleet size",
        );
    }

    #[test]
    fn v2_json_documents_with_single_shard_assignments_still_load() {
        let (cerl, stream) = trained_cerl(1);
        let map = ShardMap::from_pairs(3, &[(0, 0), (1, 2)]).unwrap();
        let bytes = cerl
            .to_snapshot()
            .with_shard_map(map.clone())
            .with_shard_index(0)
            .to_bytes()
            .unwrap();
        // Rewrite the document to the v2 shape: one `shard` per
        // assignment instead of a `replicas` array.
        let mut value = serde_json::parse(std::str::from_utf8(&bytes).unwrap()).unwrap();
        fn downgrade(v: &mut serde::Value) {
            if let serde::Value::Object(fields) = v {
                for (k, val) in fields.iter_mut() {
                    if k == "replicas" {
                        let shard = match val {
                            serde::Value::Array(items) => items[0].clone(),
                            _ => panic!("replicas is an array"),
                        };
                        *k = "shard".to_string();
                        *val = shard;
                    } else {
                        downgrade(val);
                    }
                }
            } else if let serde::Value::Array(items) = v {
                for item in items.iter_mut() {
                    downgrade(item);
                }
            }
        }
        downgrade(&mut value);
        if let serde::Value::Object(fields) = &mut value {
            for (k, v) in fields.iter_mut() {
                if k == "format_version" {
                    *v = serde::Value::UInt(2);
                }
            }
        }
        let v2 = serde_json::to_string(&value).unwrap();
        let parsed = ModelSnapshot::from_bytes(v2.as_bytes()).unwrap();
        assert_eq!(parsed.shard_map, Some(map));
        assert_eq!(parsed.shard_index, Some(0));
        let restored = Cerl::from_snapshot(parsed).unwrap();
        let x = &stream.domain(0).test.x;
        assert_eq!(restored.predict_ite(x), cerl.predict_ite(x));
    }

    #[test]
    fn shard_map_move_diff_and_merge() {
        let map = ShardMap::from_pairs(3, &[(0, 0), (1, 0), (2, 1)]).unwrap();

        let moved = map.with_replica_replaced(1, 0, 2).unwrap();
        assert_eq!(moved.shard_for(1), Some(2));
        assert_eq!(moved.shard_for(0), Some(0));
        assert_eq!(map.shard_for(1), Some(0), "original map is untouched");
        assert!(
            map.with_replica_replaced(99, 0, 1).is_err(),
            "unmapped domain"
        );
        assert!(
            map.with_replica_replaced(1, 0, 7).is_err(),
            "shard out of range"
        );
        assert!(
            map.with_replica_replaced(1, 2, 1).is_err(),
            "source shard does not hold the domain"
        );

        let diff = map.diff(&moved);
        assert_eq!(
            diff.moved,
            vec![ShardMove {
                domain: 1,
                from: 0,
                to: 2
            }]
        );
        assert!(diff.added.is_empty() && diff.removed.is_empty());
        assert!(map.diff(&map).is_empty());
        assert_eq!(diff.moved[0].to_string(), "domain 1 moved shard 0 -> 2");

        // Added/removed domains show up on the right side of the diff.
        let grown = map
            .merge(&ShardMap::from_pairs(3, &[(7, 2)]).unwrap())
            .unwrap();
        assert_eq!(map.diff(&grown).added.len(), 1);
        assert_eq!(grown.diff(&map).removed.len(), 1);
        assert_eq!(grown.len(), 4);
        assert_eq!(grown.shard_for(7), Some(2));

        // Merging conflicting placements is refused; identical overlap is
        // fine (re-assembling a topology from per-shard fragments).
        let conflicting = ShardMap::from_pairs(3, &[(1, 2)]).unwrap();
        assert!(map.merge(&conflicting).is_err());
        assert_eq!(map.merge(&map).unwrap(), map);

        // A rebalanced topology round-trips through format-v2 bytes.
        let (cerl, _) = trained_cerl(1);
        let bytes = cerl
            .to_snapshot()
            .with_shard_map(moved.clone())
            .to_bytes()
            .unwrap();
        let restored = ModelSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(restored.shard_map, Some(moved));
    }

    #[test]
    fn shard_map_diff_spans_fleets_of_different_sizes() {
        // A rebalance planner diffs the live topology against a target
        // that may declare brand-new shards; the diff must describe the
        // change faithfully across shard-count boundaries.
        let current = ShardMap::from_pairs(2, &[(0, 0), (1, 0), (2, 1)]).unwrap();
        let grown = ShardMap::from_pairs(4, &[(0, 0), (1, 3), (2, 1)]).unwrap();
        let diff = current.diff(&grown);
        assert_eq!(
            diff.moved,
            vec![ShardMove {
                domain: 1,
                from: 0,
                to: 3
            }]
        );
        assert!(diff.added.is_empty() && diff.removed.is_empty());
        // Same placements over more declared shards: an empty diff even
        // though the shard counts differ (the diff is about placement).
        let widened = ShardMap::from_pairs(4, &[(0, 0), (1, 0), (2, 1)]).unwrap();
        assert!(current.diff(&widened).is_empty());
        assert_ne!(current, widened);
        // The reverse direction sees the move coming back.
        assert_eq!(
            grown.diff(&current).moved,
            vec![ShardMove {
                domain: 1,
                from: 3,
                to: 0
            }]
        );
    }

    #[test]
    fn shard_map_merge_conflicts_name_the_domain_and_both_replica_sets() {
        let a = ShardMap::from_pairs(3, &[(0, 0), (1, 0), (2, 1)]).unwrap();
        let b = ShardMap::from_pairs(3, &[(1, 2), (5, 2)]).unwrap();
        let err = a.merge(&b).unwrap_err();
        assert!(
            matches!(err, CerlError::InvalidConfig { field, .. } if field == "shard_map"),
            "conflict must stay a typed shard_map error"
        );
        let msg = err.to_string();
        assert!(
            msg.contains("domain 1") && msg.contains("[0]") && msg.contains("[2]"),
            "conflict must name the domain and both replica-sets: {msg}"
        );
        // Multi-replica conflicts render the full sets on both sides.
        let wide_a = ShardMap::from_replicas(4, &[(1, vec![0, 2])]).unwrap();
        let wide_b = ShardMap::from_replicas(4, &[(1, vec![0, 3])]).unwrap();
        let msg = wide_a.merge(&wide_b).unwrap_err().to_string();
        assert!(
            msg.contains("domain 1") && msg.contains("[0, 2]") && msg.contains("[0, 3]"),
            "conflict must name both full replica-sets: {msg}"
        );
        // Merge order does not change the verdict.
        assert!(b.merge(&a).is_err());
        // Disjoint merge over differing shard counts takes the wider
        // fleet and keeps every placement.
        let wide = ShardMap::from_pairs(5, &[(9, 4)]).unwrap();
        let merged = a.merge(&wide).unwrap();
        assert_eq!(merged.shard_count(), 5);
        assert_eq!(merged.len(), 4);
        assert_eq!(merged.shard_for(9), Some(4));
        assert_eq!(merged.shard_for(1), Some(0));
    }

    #[test]
    fn shard_map_roundtrips_in_snapshot_and_is_validated_on_load() {
        let (cerl, _) = trained_cerl(1);
        let map = ShardMap::from_pairs(2, &[(0, 0), (1, 1)]).unwrap();
        let bytes = cerl
            .to_snapshot()
            .with_shard_map(map.clone())
            .to_bytes()
            .unwrap();
        let restored = ModelSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(restored.shard_map.as_ref(), Some(&map));
        // The restored map still builds a working estimator.
        assert!(Cerl::from_snapshot(restored).is_ok());

        // A doctored map (shard index out of range) is rejected when the
        // model is built, even though the document parses.
        let mut snapshot = cerl.to_snapshot();
        snapshot.shard_map = Some(ShardMap {
            shards: 1,
            assignments: vec![ShardAssignment {
                domain: 0,
                replicas: ReplicaSet { shards: vec![5] },
            }],
        });
        let parsed = ModelSnapshot::from_bytes(&snapshot.to_bytes().unwrap()).unwrap();
        match Cerl::from_snapshot(parsed) {
            Err(CerlError::InvalidConfig { field, .. }) => assert_eq!(field, "shard_map"),
            other => panic!("expected InvalidConfig, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn wrong_format_version_is_a_typed_error() {
        let (cerl, _) = trained_cerl(1);
        let mut snapshot = cerl.to_snapshot();
        snapshot.format_version = SNAPSHOT_FORMAT_VERSION + 1;
        let bytes = snapshot.to_bytes().unwrap();
        match ModelSnapshot::from_bytes(&bytes) {
            Err(CerlError::Snapshot(SnapshotError::UnsupportedVersion { found, supported })) => {
                assert_eq!(found, SNAPSHOT_FORMAT_VERSION + 1);
                assert_eq!(supported, SNAPSHOT_FORMAT_VERSION);
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn binary_snapshot_roundtrips_bitwise_and_reencodes_identically() {
        let (cerl, stream) = trained_cerl(2);
        let snapshot = cerl.to_snapshot();
        let json = snapshot.to_bytes().unwrap();
        let bin = snapshot.to_binary_bytes(SnapshotPayload::F64).unwrap();
        assert!(
            bin.len() < json.len(),
            "binary {} must beat JSON {}",
            bin.len(),
            json.len()
        );

        let parsed = ModelSnapshot::from_bytes(&bin).unwrap();
        // Lossless payload: decode → re-encode is byte-identical.
        let reencoded = parsed.to_binary_bytes(SnapshotPayload::F64).unwrap();
        assert!(
            reencoded == bin,
            "f64 binary re-encode must be byte-identical"
        );

        let restored = Cerl::from_snapshot(parsed).unwrap();
        for d in 0..2 {
            let x = &stream.domain(d).test.x;
            assert_eq!(cerl.predict_ite(x), restored.predict_ite(x), "domain {d}");
        }
        assert_eq!(restored.stage(), cerl.stage());
        assert_eq!(
            restored.memory().map(Memory::len),
            cerl.memory().map(Memory::len)
        );
    }

    #[test]
    fn f32_payload_is_at_most_a_quarter_of_json_and_loads() {
        let (cerl, stream) = trained_cerl(2);
        let snapshot = cerl.to_snapshot();
        let json = snapshot.to_bytes().unwrap();
        let bin = snapshot.to_binary_bytes(SnapshotPayload::F32).unwrap();
        assert!(
            bin.len() * 4 <= json.len(),
            "f32 binary {} must be at most 1/4 of JSON {}",
            bin.len(),
            json.len()
        );
        // Widening a narrowed float then narrowing again is the identity,
        // so an f32-payload snapshot re-encodes byte-identically too.
        let parsed = ModelSnapshot::from_bytes(&bin).unwrap();
        let reencoded = parsed.to_binary_bytes(SnapshotPayload::F32).unwrap();
        assert!(
            reencoded == bin,
            "f32 binary re-encode must be byte-identical"
        );
        // The narrowed model still restores and predicts (close to, but
        // not equal to, the f64 original).
        let restored = Cerl::from_snapshot(parsed).unwrap();
        let x = &stream.domain(0).test.x;
        let a = cerl.predict_ite(x);
        let b = restored.predict_ite(x);
        let scale = a.iter().fold(1.0f64, |m, v| m.max(v.abs()));
        for (va, vb) in a.iter().zip(&b) {
            assert!((va - vb).abs() <= 1e-3 * scale, "{va} vs {vb}");
        }
    }

    #[test]
    fn binary_snapshot_carries_shard_topology() {
        let (cerl, _) = trained_cerl(1);
        let map = ShardMap::from_pairs(2, &[(0, 0), (1, 1)]).unwrap();
        let bin = cerl
            .to_snapshot()
            .with_shard_map(map.clone())
            .with_shard_index(1)
            .to_binary_bytes(SnapshotPayload::F64)
            .unwrap();
        let restored = ModelSnapshot::from_bytes(&bin).unwrap();
        assert_eq!(restored.shard_map, Some(map));
        assert_eq!(restored.shard_index, Some(1));
    }

    #[test]
    fn v1_json_documents_without_shard_fields_still_load() {
        let (cerl, stream) = trained_cerl(1);
        let bytes = cerl.to_snapshot().to_bytes().unwrap();
        // Rewrite the document to the v1 shape: no shard routing fields.
        let mut value = serde_json::parse(std::str::from_utf8(&bytes).unwrap()).unwrap();
        if let serde::Value::Object(fields) = &mut value {
            fields.retain(|(k, _)| k != "shard_map" && k != "shard_index");
            for (k, v) in fields.iter_mut() {
                if k == "format_version" {
                    *v = serde::Value::UInt(1);
                }
            }
        }
        let v1 = serde_json::to_string(&value).unwrap();
        let parsed = ModelSnapshot::from_bytes(v1.as_bytes()).unwrap();
        assert_eq!(parsed.format_version, 1);
        assert_eq!(parsed.shard_map, None);
        assert_eq!(parsed.shard_index, None);
        let restored = Cerl::from_snapshot(parsed).unwrap();
        let x = &stream.domain(0).test.x;
        assert_eq!(restored.predict_ite(x), cerl.predict_ite(x));
    }

    #[test]
    fn truncated_or_doctored_binary_is_malformed_not_a_panic() {
        let (cerl, _) = trained_cerl(1);
        let bin = cerl
            .to_snapshot()
            .to_binary_bytes(SnapshotPayload::F64)
            .unwrap();

        // Cut at every header boundary and a spread of body offsets. All
        // cuts keep the magic, so each exercises the binary decoder.
        let cuts = [8, 12, 13, 16, 20, 28, 40, bin.len() / 3, bin.len() - 1];
        for &cut in &cuts {
            match ModelSnapshot::from_bytes(&bin[..cut]) {
                Err(CerlError::Snapshot(SnapshotError::Malformed(_))) => {}
                other => panic!("cut {cut}: expected Malformed, got {:?}", other.map(|_| ())),
            }
        }
        let malformed = |bytes: &[u8]| {
            matches!(
                ModelSnapshot::from_bytes(bytes),
                Err(CerlError::Snapshot(SnapshotError::Malformed(_)))
            )
        };

        // Trailing bytes after the last section.
        let mut extended = bin.clone();
        extended.extend_from_slice(&[0u8; 5]);
        assert!(malformed(&extended), "trailing bytes must be rejected");

        // Unknown payload kind.
        let mut kind = bin.clone();
        kind[12] = 9;
        assert!(malformed(&kind), "unknown payload kind must be rejected");

        // A section length far past the end of the input must fail fast
        // (bounds are checked before any allocation).
        let mut huge = bin.clone();
        huge[24..32].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(
            malformed(&huge),
            "oversized section length must be rejected"
        );

        // An inflated section *count* must be rejected before the table
        // allocation, too.
        let mut many = bin.clone();
        many[16..20].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(malformed(&many), "oversized section count must be rejected");
    }

    #[test]
    fn unknown_binary_version_is_a_typed_error() {
        let (cerl, _) = trained_cerl(1);
        let mut bin = cerl
            .to_snapshot()
            .to_binary_bytes(SnapshotPayload::F64)
            .unwrap();
        bin[8..12].copy_from_slice(&9u32.to_le_bytes());
        match ModelSnapshot::from_bytes(&bin) {
            Err(CerlError::Snapshot(SnapshotError::UnsupportedVersion { found, supported })) => {
                assert_eq!(found, 9);
                assert_eq!(supported, SNAPSHOT_BINARY_FORMAT_VERSION);
            }
            other => panic!("expected UnsupportedVersion, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn garbage_bytes_are_malformed_not_panics() {
        for bytes in [&b"not json"[..], &[0xFF, 0xFE][..], b"{}", b"[1,2,3]"] {
            match ModelSnapshot::from_bytes(bytes) {
                Err(CerlError::Snapshot(SnapshotError::Malformed(_))) => {}
                other => panic!("expected Malformed for {bytes:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn missing_output_layer_is_rejected() {
        let (cerl, _) = trained_cerl(1);
        let bytes = cerl.to_snapshot().to_bytes().unwrap();
        // Null out both output layers in the document itself (the typed
        // ModelSnapshot cannot express this; a hostile document can).
        fn null_field(v: &mut serde::Value, name: &str) {
            if let serde::Value::Object(fields) = v {
                for (k, val) in fields.iter_mut() {
                    if k == name {
                        *val = serde::Value::Null;
                    } else {
                        null_field(val, name);
                    }
                }
            }
        }
        let mut value = serde_json::parse(std::str::from_utf8(&bytes).unwrap()).unwrap();
        null_field(&mut value, "out_cosine");
        null_field(&mut value, "out_plain");
        let doctored = serde_json::to_string(&value).unwrap();
        let parsed = ModelSnapshot::from_bytes(doctored.as_bytes()).expect("format is valid");
        match Cerl::from_snapshot(parsed) {
            Err(CerlError::Snapshot(SnapshotError::Incompatible(reason))) => {
                assert!(reason.contains("output layer"), "{reason}");
            }
            Err(other) => panic!("expected Incompatible, got {other:?}"),
            Ok(_) => panic!("doctored snapshot must not load"),
        }
    }

    #[test]
    fn doctored_parameter_shapes_fail_closed_not_panic() {
        let (cerl, _) = trained_cerl(1);
        let bytes = cerl.to_snapshot().to_bytes().unwrap();
        // Shrink every parameter matrix to 1x1 — ids stay valid, shapes no
        // longer chain. Loading must return a typed error, not panic.
        fn shrink_matrices(v: &mut serde::Value) {
            if let serde::Value::Object(fields) = v {
                let is_matrix = fields.iter().any(|(k, _)| k == "rows")
                    && fields.iter().any(|(k, _)| k == "cols")
                    && fields.iter().any(|(k, _)| k == "data");
                if is_matrix {
                    for (k, val) in fields.iter_mut() {
                        match k.as_str() {
                            "rows" | "cols" => *val = serde::Value::UInt(1),
                            "data" => *val = serde::Value::Array(vec![serde::Value::Float(0.5)]),
                            _ => {}
                        }
                    }
                    return;
                }
                for (_, val) in fields.iter_mut() {
                    shrink_matrices(val);
                }
            } else if let serde::Value::Array(items) = v {
                for item in items.iter_mut() {
                    shrink_matrices(item);
                }
            }
        }
        let mut value = serde_json::parse(std::str::from_utf8(&bytes).unwrap()).unwrap();
        shrink_matrices(&mut value);
        let doctored = serde_json::to_string(&value).unwrap();
        let parsed = ModelSnapshot::from_bytes(doctored.as_bytes()).expect("format is valid");
        match Cerl::from_snapshot(parsed) {
            Err(CerlError::Snapshot(SnapshotError::Incompatible(_))) => {}
            Err(other) => panic!("expected Incompatible, got {other:?}"),
            Ok(_) => panic!("doctored shapes must not load"),
        }
    }

    #[test]
    fn out_of_sync_memory_arrays_are_rejected() {
        let (cerl, _) = trained_cerl(2);
        let mut snapshot = cerl.to_snapshot();
        // Doctor the memory arrays out of sync at the document level (the
        // typed constructor would reject this, serde does not).
        let repr_dim = snapshot.config.net.repr_dim;
        snapshot.memory = Some(Memory {
            r: cerl_math::Matrix::zeros(4, repr_dim),
            y: vec![0.0; 2],
            t: vec![true; 4],
        });
        let parsed = ModelSnapshot::from_bytes(&snapshot.to_bytes().unwrap()).unwrap();
        match Cerl::from_snapshot(parsed) {
            Err(CerlError::Snapshot(SnapshotError::Incompatible(reason))) => {
                assert!(reason.contains("out of sync"), "{reason}");
            }
            Err(other) => panic!("expected Incompatible, got {other:?}"),
            Ok(_) => panic!("out-of-sync memory must not load"),
        }
    }

    #[test]
    fn inconsistent_wiring_is_rejected() {
        let (cerl, _) = trained_cerl(1);
        let mut snapshot = cerl.to_snapshot();
        // Claim a memory in a different representation space.
        snapshot.memory = Some(Memory::new(
            cerl_math::Matrix::zeros(4, snapshot.config.net.repr_dim + 3),
            vec![0.0; 4],
            vec![true, false, true, false],
        ));
        let bytes = snapshot.to_bytes().unwrap();
        let parsed = ModelSnapshot::from_bytes(&bytes).expect("format is valid");
        match Cerl::from_snapshot(parsed) {
            Err(CerlError::Snapshot(SnapshotError::Incompatible(_))) => {}
            Err(other) => panic!("expected Incompatible, got {other:?}"),
            Ok(_) => panic!("inconsistent memory must not load"),
        }
    }
}
