//! Versioned model snapshots: persist a trained estimator and restore it in
//! another process (or hot-swap it between serving replicas).
//!
//! A [`ModelSnapshot`] captures everything [`Cerl`]
//! needs to keep serving and keep learning after a restart:
//!
//! * the full parameter store (all stage networks, every `φ` ever created),
//! * the representation-network and outcome-head wiring (parameter ids),
//! * the covariate standardizer and outcome scaler,
//! * the herded representation memory,
//! * the stage counter, seed, and configuration.
//!
//! The serialized form is a JSON document with an explicit
//! [`format_version`](ModelSnapshot::format_version) field; readers reject
//! unknown versions with
//! [`SnapshotError::UnsupportedVersion`](crate::error::SnapshotError) before
//! attempting to interpret the rest of the document, so a fleet can roll
//! snapshot formats forward without replicas panicking on foreign bytes.
//! Numbers round-trip exactly, so a restored model's predictions are
//! bitwise identical to the captured model's.

use crate::cfr::CfrModel;
use crate::config::CerlConfig;
use crate::continual::Cerl;
use crate::error::{CerlError, SnapshotError};
use crate::heads::OutcomeHeads;
use crate::memory::Memory;
use crate::repr::ReprNet;
use cerl_data::{OutcomeScaler, Standardizer};
use cerl_nn::{ParamId, ParamStore};
use serde::{Deserialize, Serialize};

/// Snapshot format version written by this build (and the only one it
/// reads). Bump on any incompatible change to the document layout.
///
/// Version history:
/// * **1** — initial layout (PR 1).
/// * **2** — adds the `shard_map` routing-metadata field ([`ShardMap`]).
pub const SNAPSHOT_FORMAT_VERSION: u32 = 2;

/// Routing metadata: which serving shard owns each domain id.
///
/// A fleet that splits traffic across N independently hot-swappable
/// engines (one per domain cluster or geography — see the `cerl-serve`
/// crate's `ShardRouter`) carries this map in the snapshot so a replica
/// restoring from bytes knows the fleet topology, not just its own
/// weights. Assignments are kept sorted by domain id; lookups are binary
/// searches.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardMap {
    /// Total number of shards in the fleet (shard indices are `0..shards`).
    shards: usize,
    /// Sorted, deduplicated `domain → shard` assignments.
    assignments: Vec<ShardAssignment>,
}

/// One `domain → shard` routing entry of a [`ShardMap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardAssignment {
    /// Domain identifier as seen on requests.
    pub domain: u64,
    /// Index of the shard that serves this domain.
    pub shard: usize,
}

impl ShardMap {
    /// Build a map over `shards` shards from `(domain, shard)` pairs.
    ///
    /// Fails with [`CerlError::InvalidConfig`] when `shards` is 0, a pair
    /// routes to a shard index `>= shards`, or the same domain is assigned
    /// twice (to *different* shards — exact duplicates are collapsed).
    pub fn from_pairs(shards: usize, pairs: &[(u64, usize)]) -> Result<Self, CerlError> {
        if shards == 0 {
            return Err(invalid_shard_map("shard count is 0".into()));
        }
        let mut assignments: Vec<ShardAssignment> = pairs
            .iter()
            .map(|&(domain, shard)| ShardAssignment { domain, shard })
            .collect();
        assignments.sort_by_key(|a| (a.domain, a.shard));
        assignments.dedup();
        for pair in assignments.windows(2) {
            if pair[0].domain == pair[1].domain {
                return Err(invalid_shard_map(format!(
                    "domain {} assigned to both shard {} and shard {}",
                    pair[0].domain, pair[0].shard, pair[1].shard
                )));
            }
        }
        for a in &assignments {
            if a.shard >= shards {
                return Err(invalid_shard_map(format!(
                    "domain {} routed to shard {} but the map declares {shards} shard(s)",
                    a.domain, a.shard
                )));
            }
        }
        Ok(Self {
            shards,
            assignments,
        })
    }

    /// The shard serving `domain`, or `None` when the domain is not mapped.
    pub fn shard_for(&self, domain: u64) -> Option<usize> {
        self.assignments
            .binary_search_by_key(&domain, |a| a.domain)
            .ok()
            .map(|i| self.assignments[i].shard)
    }

    /// Number of shards the map routes across.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// Number of mapped domains.
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// Whether no domain is mapped.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// All assignments, sorted by domain id.
    pub fn assignments(&self) -> &[ShardAssignment] {
        &self.assignments
    }

    /// A copy of this map with `domain` re-routed to `to_shard` — the
    /// topology flip a shard rebalance commits.
    ///
    /// The domain must already be mapped (rebalancing moves existing
    /// traffic; use [`ShardMap::merge`] to introduce new domains) and
    /// `to_shard` must be inside the declared shard range. The original
    /// map is untouched, so a router can build the successor topology off
    /// to the side and publish it with one atomic pointer swap.
    pub fn with_domain_moved(&self, domain: u64, to_shard: usize) -> Result<Self, CerlError> {
        if self.shard_for(domain).is_none() {
            return Err(invalid_shard_map(format!(
                "cannot move domain {domain}: the map does not route it"
            )));
        }
        let pairs: Vec<(u64, usize)> = self
            .assignments
            .iter()
            .map(|a| {
                if a.domain == domain {
                    (a.domain, to_shard)
                } else {
                    (a.domain, a.shard)
                }
            })
            .collect();
        Self::from_pairs(self.shards, &pairs)
    }

    /// Structural difference between this topology and `successor`:
    /// which domains moved shards, which were added, which were removed.
    ///
    /// A fleet restore uses this to explain *how* two replica snapshots
    /// disagree (e.g. a registry captured mid-rebalance), and an
    /// orchestrator can turn the `moved` list into a rebalance plan.
    pub fn diff(&self, successor: &ShardMap) -> ShardMapDiff {
        let mut diff = ShardMapDiff::default();
        for a in &self.assignments {
            match successor.shard_for(a.domain) {
                Some(shard) if shard != a.shard => diff.moved.push(ShardMove {
                    domain: a.domain,
                    from: a.shard,
                    to: shard,
                }),
                Some(_) => {}
                None => diff.removed.push(*a),
            }
        }
        for a in &successor.assignments {
            if self.shard_for(a.domain).is_none() {
                diff.added.push(*a);
            }
        }
        diff
    }

    /// Union of two topologies: every domain either map routes, over
    /// `max(shard_count)` shards.
    ///
    /// Fails when the maps route the same domain to different shards —
    /// merging is for composing disjoint fleets (or re-assembling a map
    /// from per-shard fragments), not for resolving conflicts; use
    /// [`ShardMap::diff`] to see a conflict and
    /// [`ShardMap::with_domain_moved`] to resolve it deliberately.
    pub fn merge(&self, other: &ShardMap) -> Result<Self, CerlError> {
        let mut pairs: Vec<(u64, usize)> = self
            .assignments
            .iter()
            .chain(&other.assignments)
            .map(|a| (a.domain, a.shard))
            .collect();
        pairs.sort_unstable();
        pairs.dedup();
        Self::from_pairs(self.shards.max(other.shards), &pairs)
    }

    /// Re-check the invariants [`ShardMap::from_pairs`] enforces (a
    /// deserialized map bypasses the constructor).
    pub(crate) fn validate(&self) -> Result<(), CerlError> {
        let pairs: Vec<(u64, usize)> = self
            .assignments
            .iter()
            .map(|a| (a.domain, a.shard))
            .collect();
        let rebuilt = Self::from_pairs(self.shards, &pairs)?;
        if rebuilt.assignments != self.assignments {
            return Err(invalid_shard_map(
                "assignments are not sorted/deduplicated by domain".into(),
            ));
        }
        Ok(())
    }
}

fn invalid_shard_map(reason: String) -> CerlError {
    CerlError::InvalidConfig {
        field: "shard_map",
        reason,
    }
}

/// One domain's relocation between shards (an entry of
/// [`ShardMapDiff::moved`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMove {
    /// Domain that changed shards.
    pub domain: u64,
    /// Shard it was routed to in the older topology.
    pub from: usize,
    /// Shard it is routed to in the newer topology.
    pub to: usize,
}

impl std::fmt::Display for ShardMove {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "domain {} moved shard {} -> {}",
            self.domain, self.from, self.to
        )
    }
}

/// Structural difference between two [`ShardMap`] topologies
/// ([`ShardMap::diff`]). All lists are sorted by domain id.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardMapDiff {
    /// Domains routed by both maps, to different shards.
    pub moved: Vec<ShardMove>,
    /// Domains only the newer map routes.
    pub added: Vec<ShardAssignment>,
    /// Domains only the older map routes.
    pub removed: Vec<ShardAssignment>,
}

impl ShardMapDiff {
    /// Whether the two topologies route identically (shard *counts* may
    /// still differ; the diff is about domain placement).
    pub fn is_empty(&self) -> bool {
        self.moved.is_empty() && self.added.is_empty() && self.removed.is_empty()
    }
}

/// Serializable state of the backbone CFR model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct CfrState {
    pub(crate) store: ParamStore,
    pub(crate) repr: ReprNet,
    pub(crate) heads: OutcomeHeads,
    pub(crate) x_std: Option<Standardizer>,
    pub(crate) y_scale: Option<OutcomeScaler>,
    pub(crate) d_in: usize,
    pub(crate) stages_trained: usize,
}

/// Complete, versioned state of a continual estimator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelSnapshot {
    /// Document layout version; see [`SNAPSHOT_FORMAT_VERSION`].
    pub format_version: u32,
    /// Base seed (stage RNG streams derive from it, so a restored model
    /// continues training exactly as the original would have).
    pub seed: u64,
    /// Completed continual stages.
    pub stage: usize,
    /// Full configuration in effect when the snapshot was taken.
    pub config: CerlConfig,
    /// Fleet routing metadata (`domain → shard`), when the snapshot was
    /// taken from a sharded deployment. `None` for single-engine fleets.
    pub shard_map: Option<ShardMap>,
    /// Which shard of [`ModelSnapshot::shard_map`] this snapshot was
    /// taken from, so a fleet restored from a registry does not depend
    /// on the order replicas are fetched in.
    pub shard_index: Option<usize>,
    pub(crate) model: CfrState,
    pub(crate) memory: Option<Memory>,
}

impl ModelSnapshot {
    /// Capture a snapshot (crate-internal; use
    /// [`Cerl::to_snapshot`](crate::continual::Cerl::to_snapshot) or
    /// [`CerlEngine::snapshot`](crate::engine::CerlEngine::snapshot)).
    pub(crate) fn capture(
        seed: u64,
        stage: usize,
        config: &CerlConfig,
        model: &CfrModel,
        memory: Option<&Memory>,
    ) -> Self {
        Self {
            format_version: SNAPSHOT_FORMAT_VERSION,
            seed,
            stage,
            config: config.clone(),
            shard_map: None,
            shard_index: None,
            model: model.to_state(),
            memory: memory.cloned(),
        }
    }

    /// Attach fleet routing metadata to this snapshot (builder-style).
    pub fn with_shard_map(mut self, map: ShardMap) -> Self {
        self.shard_map = Some(map);
        self
    }

    /// Record which shard of the attached map this snapshot serves
    /// (builder-style).
    pub fn with_shard_index(mut self, shard: usize) -> Self {
        self.shard_index = Some(shard);
        self
    }

    /// Serialize to the versioned byte format.
    pub fn to_bytes(&self) -> Result<Vec<u8>, CerlError> {
        serde_json::to_vec(self)
            .map_err(|e| CerlError::Snapshot(SnapshotError::Malformed(e.to_string())))
    }

    /// Parse from the versioned byte format.
    ///
    /// The version field is checked *before* the rest of the document is
    /// interpreted, so a newer-format snapshot yields
    /// [`SnapshotError::UnsupportedVersion`] rather than a confusing parse
    /// error about fields that were added or removed later. Parsing checks
    /// format concerns only; semantic consistency (network wiring,
    /// parameter shapes, scaler dimensions) is validated once, when a
    /// model is built from the snapshot (`into_cerl` via
    /// [`Cerl::from_snapshot`] or `CerlEngine::load_bytes`).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CerlError> {
        let text = std::str::from_utf8(bytes).map_err(|e| {
            CerlError::Snapshot(SnapshotError::Malformed(format!("not UTF-8: {e}")))
        })?;
        let value = serde_json::parse(text)
            .map_err(|e| CerlError::Snapshot(SnapshotError::Malformed(e.to_string())))?;
        let fields = value.as_object().ok_or_else(|| {
            CerlError::Snapshot(SnapshotError::Malformed(
                "top level is not an object".into(),
            ))
        })?;
        let format_version: u32 = serde::field(fields, "format_version")
            .map_err(|e| CerlError::Snapshot(SnapshotError::Malformed(e.to_string())))?;
        if format_version != SNAPSHOT_FORMAT_VERSION {
            return Err(CerlError::Snapshot(SnapshotError::UnsupportedVersion {
                found: format_version,
                supported: SNAPSHOT_FORMAT_VERSION,
            }));
        }
        Self::deserialize(&value)
            .map_err(|e| CerlError::Snapshot(SnapshotError::Malformed(e.to_string())))
    }

    /// Cross-check internal consistency: configuration sanity, network
    /// wiring against the parameter store, and memory dimensions.
    pub(crate) fn validate(&self) -> Result<(), CerlError> {
        self.config.validate()?;
        if let Some(map) = &self.shard_map {
            map.validate()?;
            if let Some(shard) = self.shard_index {
                if shard >= map.shard_count() {
                    return Err(invalid_shard_map(format!(
                        "snapshot claims shard {shard} of a {}-shard map",
                        map.shard_count()
                    )));
                }
            }
        }
        if self.model.d_in == 0 {
            return Err(incompatible("covariate dimension is 0"));
        }
        let store_len = self.model.store.len();
        let check_ids = |ids: &[ParamId], what: &str| -> Result<(), CerlError> {
            for id in ids {
                if id.index() >= store_len {
                    return Err(incompatible(&format!(
                        "{what} references parameter {} but the store holds {store_len}",
                        id.index()
                    )));
                }
            }
            Ok(())
        };
        check_ids(&self.model.repr.params(), "representation network")?;
        check_ids(&self.model.heads.params(), "outcome heads")?;
        if !self.model.repr.has_output_layer() {
            return Err(incompatible("representation network has no output layer"));
        }
        if self.stage > 0 && (self.model.x_std.is_none() || self.model.y_scale.is_none()) {
            return Err(incompatible("trained snapshot is missing its scalers"));
        }
        if let Some(x_std) = &self.model.x_std {
            if x_std.dim() != self.model.d_in {
                return Err(incompatible(&format!(
                    "standardizer dimension {} does not match covariate dimension {}",
                    x_std.dim(),
                    self.model.d_in
                )));
            }
        }
        if let Some(memory) = &self.memory {
            // Memory derives Deserialize field-by-field, bypassing
            // `Memory::try_new`; re-check its invariants here so a
            // doctored document cannot smuggle in out-of-sync arrays that
            // later index out of bounds inside `try_observe`.
            if memory.y.len() != memory.len() || memory.t.len() != memory.len() {
                return Err(incompatible(&format!(
                    "memory arrays out of sync: {} representations, {} outcomes, {} treatments",
                    memory.len(),
                    memory.y.len(),
                    memory.t.len()
                )));
            }
            if memory.dim() != self.config.net.repr_dim {
                return Err(incompatible(&format!(
                    "memory representation dimension {} does not match net.repr_dim {}",
                    memory.dim(),
                    self.config.net.repr_dim
                )));
            }
        }
        Ok(())
    }

    /// Rebuild the estimator this snapshot captured.
    pub(crate) fn into_cerl(self) -> Result<Cerl, CerlError> {
        self.validate()?;
        let ModelSnapshot {
            seed,
            stage,
            config,
            model,
            memory,
            ..
        } = self;
        let d_in = model.d_in;
        let model = CfrModel::from_state(model, config.clone(), seed);
        let cerl = Cerl::restore(config, model, memory, stage, seed);
        // Structural id checks cannot see parameter *shapes*; a hostile or
        // corrupted document can wire layers whose matrices do not chain.
        // Smoke-predict one zero row under catch_unwind and convert any
        // shape panic into a typed error, so untrusted bytes cannot crash
        // a serving process on its first real request.
        if cerl.stage() > 0 {
            let probe = cerl_math::Matrix::zeros(1, d_in);
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                cerl.try_predict_ite(&probe).map(|_| ())
            }));
            match outcome {
                Ok(Ok(())) => {}
                Ok(Err(e)) => return Err(e),
                Err(_) => {
                    return Err(incompatible(
                        "snapshot parameters are internally inconsistent (smoke prediction failed)",
                    ))
                }
            }
        }
        Ok(cerl)
    }
}

fn incompatible(reason: &str) -> CerlError {
    CerlError::Snapshot(SnapshotError::Incompatible(reason.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cerl_data::{DomainStream, SyntheticConfig, SyntheticGenerator};

    fn trained_cerl(stages: usize) -> (Cerl, DomainStream) {
        let gen = SyntheticGenerator::new(
            SyntheticConfig {
                n_units: 400,
                ..SyntheticConfig::small()
            },
            11,
        );
        let stream = DomainStream::synthetic(&gen, stages.max(2), 0, 17);
        let mut cfg = CerlConfig::quick_test();
        cfg.train.epochs = 6;
        cfg.memory_size = 80;
        let mut cerl = Cerl::new(stream.domain(0).train.dim(), cfg, 23);
        for d in 0..stages {
            cerl.observe(&stream.domain(d).train, &stream.domain(d).val);
        }
        (cerl, stream)
    }

    #[test]
    fn snapshot_roundtrips_bitwise_identical_predictions() {
        let (cerl, stream) = trained_cerl(2);
        let bytes = cerl.to_snapshot().to_bytes().unwrap();
        let restored = Cerl::from_snapshot(ModelSnapshot::from_bytes(&bytes).unwrap()).unwrap();
        for d in 0..2 {
            let x = &stream.domain(d).test.x;
            let a = cerl.predict_ite(x);
            let b = restored.predict_ite(x);
            assert_eq!(a.len(), b.len());
            for (va, vb) in a.iter().zip(&b) {
                assert_eq!(va.to_bits(), vb.to_bits(), "domain {d}");
            }
        }
        assert_eq!(restored.stage(), cerl.stage());
        assert_eq!(
            restored.memory().map(Memory::len),
            cerl.memory().map(Memory::len)
        );
    }

    #[test]
    fn restored_model_continues_observing() {
        let (cerl, stream) = trained_cerl(1);
        let bytes = cerl.to_snapshot().to_bytes().unwrap();

        // "Fresh process": rebuild purely from bytes, then continue.
        let mut restored = Cerl::from_snapshot(ModelSnapshot::from_bytes(&bytes).unwrap()).unwrap();
        let report = restored
            .try_observe(&stream.domain(1).train, &stream.domain(1).val)
            .unwrap();
        assert_eq!(report.stage, 2);

        // The continuation matches what the original process would produce.
        let mut original = cerl;
        original.observe(&stream.domain(1).train, &stream.domain(1).val);
        let x = &stream.domain(1).test.x;
        assert_eq!(original.predict_ite(x), restored.predict_ite(x));
    }

    #[test]
    fn shard_map_routes_and_validates() {
        let map = ShardMap::from_pairs(3, &[(10, 0), (11, 1), (12, 2), (11, 1)]).unwrap();
        assert_eq!(map.shard_count(), 3);
        assert_eq!(map.len(), 3); // exact duplicate collapsed
        assert_eq!(map.shard_for(11), Some(1));
        assert_eq!(map.shard_for(99), None);

        assert!(ShardMap::from_pairs(0, &[]).is_err());
        assert!(ShardMap::from_pairs(2, &[(1, 2)]).is_err());
        assert!(ShardMap::from_pairs(2, &[(1, 0), (1, 1)]).is_err());
    }

    #[test]
    fn shard_map_move_diff_and_merge() {
        let map = ShardMap::from_pairs(3, &[(0, 0), (1, 0), (2, 1)]).unwrap();

        let moved = map.with_domain_moved(1, 2).unwrap();
        assert_eq!(moved.shard_for(1), Some(2));
        assert_eq!(moved.shard_for(0), Some(0));
        assert_eq!(map.shard_for(1), Some(0), "original map is untouched");
        assert!(map.with_domain_moved(99, 1).is_err(), "unmapped domain");
        assert!(map.with_domain_moved(1, 7).is_err(), "shard out of range");

        let diff = map.diff(&moved);
        assert_eq!(
            diff.moved,
            vec![ShardMove {
                domain: 1,
                from: 0,
                to: 2
            }]
        );
        assert!(diff.added.is_empty() && diff.removed.is_empty());
        assert!(map.diff(&map).is_empty());
        assert_eq!(diff.moved[0].to_string(), "domain 1 moved shard 0 -> 2");

        // Added/removed domains show up on the right side of the diff.
        let grown = map
            .merge(&ShardMap::from_pairs(3, &[(7, 2)]).unwrap())
            .unwrap();
        assert_eq!(map.diff(&grown).added.len(), 1);
        assert_eq!(grown.diff(&map).removed.len(), 1);
        assert_eq!(grown.len(), 4);
        assert_eq!(grown.shard_for(7), Some(2));

        // Merging conflicting placements is refused; identical overlap is
        // fine (re-assembling a topology from per-shard fragments).
        let conflicting = ShardMap::from_pairs(3, &[(1, 2)]).unwrap();
        assert!(map.merge(&conflicting).is_err());
        assert_eq!(map.merge(&map).unwrap(), map);

        // A rebalanced topology round-trips through format-v2 bytes.
        let (cerl, _) = trained_cerl(1);
        let bytes = cerl
            .to_snapshot()
            .with_shard_map(moved.clone())
            .to_bytes()
            .unwrap();
        let restored = ModelSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(restored.shard_map, Some(moved));
    }

    #[test]
    fn shard_map_diff_spans_fleets_of_different_sizes() {
        // A rebalance planner diffs the live topology against a target
        // that may declare brand-new shards; the diff must describe the
        // change faithfully across shard-count boundaries.
        let current = ShardMap::from_pairs(2, &[(0, 0), (1, 0), (2, 1)]).unwrap();
        let grown = ShardMap::from_pairs(4, &[(0, 0), (1, 3), (2, 1)]).unwrap();
        let diff = current.diff(&grown);
        assert_eq!(
            diff.moved,
            vec![ShardMove {
                domain: 1,
                from: 0,
                to: 3
            }]
        );
        assert!(diff.added.is_empty() && diff.removed.is_empty());
        // Same placements over more declared shards: an empty diff even
        // though the shard counts differ (the diff is about placement).
        let widened = ShardMap::from_pairs(4, &[(0, 0), (1, 0), (2, 1)]).unwrap();
        assert!(current.diff(&widened).is_empty());
        assert_ne!(current, widened);
        // The reverse direction sees the move coming back.
        assert_eq!(
            grown.diff(&current).moved,
            vec![ShardMove {
                domain: 1,
                from: 3,
                to: 0
            }]
        );
    }

    #[test]
    fn shard_map_merge_conflicts_name_the_domain_and_both_shards() {
        let a = ShardMap::from_pairs(3, &[(0, 0), (1, 0), (2, 1)]).unwrap();
        let b = ShardMap::from_pairs(3, &[(1, 2), (5, 2)]).unwrap();
        let msg = a.merge(&b).unwrap_err().to_string();
        assert!(
            msg.contains("domain 1") && msg.contains("shard 0") && msg.contains("shard 2"),
            "conflict must name the domain and both placements: {msg}"
        );
        // Merge order does not change the verdict.
        assert!(b.merge(&a).is_err());
        // Disjoint merge over differing shard counts takes the wider
        // fleet and keeps every placement.
        let wide = ShardMap::from_pairs(5, &[(9, 4)]).unwrap();
        let merged = a.merge(&wide).unwrap();
        assert_eq!(merged.shard_count(), 5);
        assert_eq!(merged.len(), 4);
        assert_eq!(merged.shard_for(9), Some(4));
        assert_eq!(merged.shard_for(1), Some(0));
    }

    #[test]
    fn shard_map_roundtrips_in_snapshot_and_is_validated_on_load() {
        let (cerl, _) = trained_cerl(1);
        let map = ShardMap::from_pairs(2, &[(0, 0), (1, 1)]).unwrap();
        let bytes = cerl
            .to_snapshot()
            .with_shard_map(map.clone())
            .to_bytes()
            .unwrap();
        let restored = ModelSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(restored.shard_map.as_ref(), Some(&map));
        // The restored map still builds a working estimator.
        assert!(Cerl::from_snapshot(restored).is_ok());

        // A doctored map (shard index out of range) is rejected when the
        // model is built, even though the document parses.
        let mut snapshot = cerl.to_snapshot();
        snapshot.shard_map = Some(ShardMap {
            shards: 1,
            assignments: vec![ShardAssignment {
                domain: 0,
                shard: 5,
            }],
        });
        let parsed = ModelSnapshot::from_bytes(&snapshot.to_bytes().unwrap()).unwrap();
        match Cerl::from_snapshot(parsed) {
            Err(CerlError::InvalidConfig { field, .. }) => assert_eq!(field, "shard_map"),
            other => panic!("expected InvalidConfig, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn wrong_format_version_is_a_typed_error() {
        let (cerl, _) = trained_cerl(1);
        let mut snapshot = cerl.to_snapshot();
        snapshot.format_version = SNAPSHOT_FORMAT_VERSION + 1;
        let bytes = snapshot.to_bytes().unwrap();
        match ModelSnapshot::from_bytes(&bytes) {
            Err(CerlError::Snapshot(SnapshotError::UnsupportedVersion { found, supported })) => {
                assert_eq!(found, SNAPSHOT_FORMAT_VERSION + 1);
                assert_eq!(supported, SNAPSHOT_FORMAT_VERSION);
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn garbage_bytes_are_malformed_not_panics() {
        for bytes in [&b"not json"[..], &[0xFF, 0xFE][..], b"{}", b"[1,2,3]"] {
            match ModelSnapshot::from_bytes(bytes) {
                Err(CerlError::Snapshot(SnapshotError::Malformed(_))) => {}
                other => panic!("expected Malformed for {bytes:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn missing_output_layer_is_rejected() {
        let (cerl, _) = trained_cerl(1);
        let bytes = cerl.to_snapshot().to_bytes().unwrap();
        // Null out both output layers in the document itself (the typed
        // ModelSnapshot cannot express this; a hostile document can).
        fn null_field(v: &mut serde::Value, name: &str) {
            if let serde::Value::Object(fields) = v {
                for (k, val) in fields.iter_mut() {
                    if k == name {
                        *val = serde::Value::Null;
                    } else {
                        null_field(val, name);
                    }
                }
            }
        }
        let mut value = serde_json::parse(std::str::from_utf8(&bytes).unwrap()).unwrap();
        null_field(&mut value, "out_cosine");
        null_field(&mut value, "out_plain");
        let doctored = serde_json::to_string(&value).unwrap();
        let parsed = ModelSnapshot::from_bytes(doctored.as_bytes()).expect("format is valid");
        match Cerl::from_snapshot(parsed) {
            Err(CerlError::Snapshot(SnapshotError::Incompatible(reason))) => {
                assert!(reason.contains("output layer"), "{reason}");
            }
            Err(other) => panic!("expected Incompatible, got {other:?}"),
            Ok(_) => panic!("doctored snapshot must not load"),
        }
    }

    #[test]
    fn doctored_parameter_shapes_fail_closed_not_panic() {
        let (cerl, _) = trained_cerl(1);
        let bytes = cerl.to_snapshot().to_bytes().unwrap();
        // Shrink every parameter matrix to 1x1 — ids stay valid, shapes no
        // longer chain. Loading must return a typed error, not panic.
        fn shrink_matrices(v: &mut serde::Value) {
            if let serde::Value::Object(fields) = v {
                let is_matrix = fields.iter().any(|(k, _)| k == "rows")
                    && fields.iter().any(|(k, _)| k == "cols")
                    && fields.iter().any(|(k, _)| k == "data");
                if is_matrix {
                    for (k, val) in fields.iter_mut() {
                        match k.as_str() {
                            "rows" | "cols" => *val = serde::Value::UInt(1),
                            "data" => *val = serde::Value::Array(vec![serde::Value::Float(0.5)]),
                            _ => {}
                        }
                    }
                    return;
                }
                for (_, val) in fields.iter_mut() {
                    shrink_matrices(val);
                }
            } else if let serde::Value::Array(items) = v {
                for item in items.iter_mut() {
                    shrink_matrices(item);
                }
            }
        }
        let mut value = serde_json::parse(std::str::from_utf8(&bytes).unwrap()).unwrap();
        shrink_matrices(&mut value);
        let doctored = serde_json::to_string(&value).unwrap();
        let parsed = ModelSnapshot::from_bytes(doctored.as_bytes()).expect("format is valid");
        match Cerl::from_snapshot(parsed) {
            Err(CerlError::Snapshot(SnapshotError::Incompatible(_))) => {}
            Err(other) => panic!("expected Incompatible, got {other:?}"),
            Ok(_) => panic!("doctored shapes must not load"),
        }
    }

    #[test]
    fn out_of_sync_memory_arrays_are_rejected() {
        let (cerl, _) = trained_cerl(2);
        let mut snapshot = cerl.to_snapshot();
        // Doctor the memory arrays out of sync at the document level (the
        // typed constructor would reject this, serde does not).
        let repr_dim = snapshot.config.net.repr_dim;
        snapshot.memory = Some(Memory {
            r: cerl_math::Matrix::zeros(4, repr_dim),
            y: vec![0.0; 2],
            t: vec![true; 4],
        });
        let parsed = ModelSnapshot::from_bytes(&snapshot.to_bytes().unwrap()).unwrap();
        match Cerl::from_snapshot(parsed) {
            Err(CerlError::Snapshot(SnapshotError::Incompatible(reason))) => {
                assert!(reason.contains("out of sync"), "{reason}");
            }
            Err(other) => panic!("expected Incompatible, got {other:?}"),
            Ok(_) => panic!("out-of-sync memory must not load"),
        }
    }

    #[test]
    fn inconsistent_wiring_is_rejected() {
        let (cerl, _) = trained_cerl(1);
        let mut snapshot = cerl.to_snapshot();
        // Claim a memory in a different representation space.
        snapshot.memory = Some(Memory::new(
            cerl_math::Matrix::zeros(4, snapshot.config.net.repr_dim + 3),
            vec![0.0; 4],
            vec![true, false, true, false],
        ));
        let bytes = snapshot.to_bytes().unwrap();
        let parsed = ModelSnapshot::from_bytes(&bytes).expect("format is valid");
        match Cerl::from_snapshot(parsed) {
            Err(CerlError::Snapshot(SnapshotError::Incompatible(_))) => {}
            Err(other) => panic!("expected Incompatible, got {other:?}"),
            Ok(_) => panic!("inconsistent memory must not load"),
        }
    }
}
