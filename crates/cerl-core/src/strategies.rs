//! The three straightforward adaptation strategies the paper compares
//! against (§IV.B), built on the same CFR backbone:
//!
//! * **CFR-A** — train once on the first domain; apply as-is forever.
//!   Good on previous data, degrades on shifted new data.
//! * **CFR-B** — fine-tune the previous model on each new domain only.
//!   Adapts, but catastrophically forgets previous domains.
//! * **CFR-C** — store *all* raw data and retrain from scratch on the
//!   pooled set whenever a domain arrives. The ideal (and most expensive)
//!   reference: no memory constraint, no accessibility constraint.
//!
//! All strategies and CERL implement [`ContinualEstimator`] so experiment
//! harnesses can treat them interchangeably.

use crate::cfr::CfrModel;
use crate::config::CerlConfig;
use crate::continual::Cerl;
use crate::error::CerlError;
use crate::metrics::EffectMetrics;
use cerl_data::CausalDataset;
use cerl_math::Matrix;

/// A learner that consumes domains one at a time and predicts ITEs.
///
/// The fallible `try_*` methods are the required surface (serving systems
/// route through them); the infallible historical methods are provided as
/// thin wrappers that panic with the typed error's message, preserving the
/// original research-facing API during migration.
pub trait ContinualEstimator {
    /// Short display name (matches the paper's table rows).
    fn name(&self) -> String;

    /// Consume the next incrementally available domain, reporting malformed
    /// input as a typed error.
    fn try_observe(&mut self, train: &CausalDataset, val: &CausalDataset) -> Result<(), CerlError>;

    /// Predict unit-level treatment effects for raw covariates, failing
    /// with a typed error before training or on malformed input.
    fn try_predict_ite(&self, x: &Matrix) -> Result<Vec<f64>, CerlError>;

    /// Consume the next incrementally available domain.
    ///
    /// # Panics
    /// On invalid input; [`ContinualEstimator::try_observe`] is the
    /// fallible form.
    fn observe(&mut self, train: &CausalDataset, val: &CausalDataset) {
        if let Err(e) = self.try_observe(train, val) {
            panic!("{}::observe: {e}", self.name());
        }
    }

    /// Predict unit-level treatment effects for raw covariates.
    ///
    /// # Panics
    /// On invalid input; [`ContinualEstimator::try_predict_ite`] is the
    /// fallible form.
    fn predict_ite(&self, x: &Matrix) -> Vec<f64> {
        match self.try_predict_ite(x) {
            Ok(ite) => ite,
            Err(e) => panic!("{}::predict_ite: {e}", self.name()),
        }
    }

    /// Serve a batch of request matrices; result `i` is the ITE vector for
    /// `chunks[i]`. The default implementation predicts chunk by chunk and
    /// fails fast on the first malformed chunk.
    fn try_predict_ite_batch(&self, chunks: &[Matrix]) -> Result<Vec<Vec<f64>>, CerlError> {
        chunks
            .iter()
            .map(|chunk| self.try_predict_ite(chunk))
            .collect()
    }

    /// Evaluate on a labeled dataset.
    fn evaluate(&self, data: &CausalDataset) -> EffectMetrics {
        EffectMetrics::on_dataset(data, &self.predict_ite(&data.x))
    }

    /// Evaluate on a labeled dataset, reporting failures as typed errors.
    fn try_evaluate(&self, data: &CausalDataset) -> Result<EffectMetrics, CerlError> {
        if data.n() == 0 {
            return Err(CerlError::EmptyInput {
                what: "evaluation dataset",
            });
        }
        Ok(EffectMetrics::on_dataset(
            data,
            &self.try_predict_ite(&data.x)?,
        ))
    }
}

/// CFR-A: freeze after the first domain.
pub struct CfrA {
    model: CfrModel,
    trained: bool,
}

impl CfrA {
    /// Create for `d_in`-dimensional covariates.
    pub fn new(d_in: usize, cfg: CerlConfig, seed: u64) -> Self {
        Self {
            model: CfrModel::new(d_in, cfg, seed),
            trained: false,
        }
    }
}

impl ContinualEstimator for CfrA {
    fn name(&self) -> String {
        "CFR-A".into()
    }

    fn try_observe(&mut self, train: &CausalDataset, val: &CausalDataset) -> Result<(), CerlError> {
        if !self.trained {
            self.model.try_train(train, val)?;
            self.trained = true;
        }
        // Later domains are ignored: the model was trained once on the
        // original data and is applied directly to everything.
        Ok(())
    }

    fn try_predict_ite(&self, x: &Matrix) -> Result<Vec<f64>, CerlError> {
        self.model.try_predict_ite(x)
    }
}

/// CFR-B: fine-tune on each new domain (no access to previous data).
pub struct CfrB {
    model: CfrModel,
}

impl CfrB {
    /// Create for `d_in`-dimensional covariates.
    pub fn new(d_in: usize, cfg: CerlConfig, seed: u64) -> Self {
        Self {
            model: CfrModel::new(d_in, cfg, seed),
        }
    }
}

impl ContinualEstimator for CfrB {
    fn name(&self) -> String {
        "CFR-B".into()
    }

    fn try_observe(&mut self, train: &CausalDataset, val: &CausalDataset) -> Result<(), CerlError> {
        // First call trains from scratch; later calls warm-start from the
        // previous parameters — exactly "utilize newly available data to
        // fine-tune the previously learned model".
        self.model.try_train(train, val).map(|_| ())
    }

    fn try_predict_ite(&self, x: &Matrix) -> Result<Vec<f64>, CerlError> {
        self.model.try_predict_ite(x)
    }
}

/// CFR-C: keep every domain's raw data, retrain from scratch on the pool.
pub struct CfrC {
    cfg: CerlConfig,
    seed: u64,
    d_in: usize,
    pooled_train: Option<CausalDataset>,
    pooled_val: Option<CausalDataset>,
    model: Option<CfrModel>,
    retrain_count: usize,
}

impl CfrC {
    /// Create for `d_in`-dimensional covariates.
    pub fn new(d_in: usize, cfg: CerlConfig, seed: u64) -> Self {
        Self {
            cfg,
            seed,
            d_in,
            pooled_train: None,
            pooled_val: None,
            model: None,
            retrain_count: 0,
        }
    }

    /// Total units of raw data this strategy is holding on to (the
    /// resource cost the paper's "Memory" column highlights).
    pub fn stored_units(&self) -> usize {
        self.pooled_train.as_ref().map_or(0, CausalDataset::n)
            + self.pooled_val.as_ref().map_or(0, CausalDataset::n)
    }
}

impl ContinualEstimator for CfrC {
    fn name(&self) -> String {
        "CFR-C".into()
    }

    fn try_observe(&mut self, train: &CausalDataset, val: &CausalDataset) -> Result<(), CerlError> {
        if train.dim() != self.d_in {
            return Err(CerlError::DimensionMismatch {
                expected: self.d_in,
                found: train.dim(),
            });
        }
        if val.n() > 0 && val.dim() != self.d_in {
            return Err(CerlError::DimensionMismatch {
                expected: self.d_in,
                found: val.dim(),
            });
        }
        // Build the grown pools first and commit them only after a
        // successful retrain, so a failed observe leaves the strategy's
        // state untouched.
        let pooled_train = match &self.pooled_train {
            Some(p) => p.concat(train),
            None => train.clone(),
        };
        let pooled_val = match &self.pooled_val {
            Some(p) => p.concat(val),
            None => val.clone(),
        };
        // Retrain from scratch (fresh initialization) on everything.
        let mut model = CfrModel::try_new(
            self.d_in,
            self.cfg.clone(),
            cerl_rand::seeds::derive(self.seed, self.retrain_count as u64),
        )?;
        model.try_train(&pooled_train, &pooled_val)?;
        self.pooled_train = Some(pooled_train);
        self.pooled_val = Some(pooled_val);
        self.model = Some(model);
        self.retrain_count += 1;
        Ok(())
    }

    fn try_predict_ite(&self, x: &Matrix) -> Result<Vec<f64>, CerlError> {
        match self.model.as_ref() {
            Some(model) => model.try_predict_ite(x),
            None => Err(CerlError::NotTrained),
        }
    }
}

impl ContinualEstimator for Cerl {
    fn name(&self) -> String {
        "CERL".into()
    }

    fn try_observe(&mut self, train: &CausalDataset, val: &CausalDataset) -> Result<(), CerlError> {
        Cerl::try_observe(self, train, val).map(|_| ())
    }

    fn try_predict_ite(&self, x: &Matrix) -> Result<Vec<f64>, CerlError> {
        Cerl::try_predict_ite(self, x)
    }
}

/// Construct every estimator of the paper's Table I/II comparison.
pub fn paper_lineup(d_in: usize, cfg: &CerlConfig, seed: u64) -> Vec<Box<dyn ContinualEstimator>> {
    vec![
        Box::new(CfrA::new(d_in, cfg.clone(), seed)),
        Box::new(CfrB::new(d_in, cfg.clone(), seed)),
        Box::new(CfrC::new(d_in, cfg.clone(), seed)),
        Box::new(Cerl::new(d_in, cfg.clone(), seed)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use cerl_data::{DomainStream, SyntheticConfig, SyntheticGenerator};

    fn quick_stream() -> DomainStream {
        let gen = SyntheticGenerator::new(
            SyntheticConfig {
                n_units: 400,
                ..SyntheticConfig::small()
            },
            55,
        );
        DomainStream::synthetic(&gen, 2, 0, 66)
    }

    fn quick_cfg() -> CerlConfig {
        let mut cfg = CerlConfig::quick_test();
        cfg.train.epochs = 10;
        cfg
    }

    #[test]
    fn lineup_names() {
        let lineup = paper_lineup(5, &quick_cfg(), 1);
        let names: Vec<String> = lineup.iter().map(|e| e.name()).collect();
        assert_eq!(names, vec!["CFR-A", "CFR-B", "CFR-C", "CERL"]);
    }

    #[test]
    fn cfr_a_ignores_later_domains() {
        let stream = quick_stream();
        let d_in = stream.domain(0).train.dim();
        let mut a = CfrA::new(d_in, quick_cfg(), 2);
        a.observe(&stream.domain(0).train, &stream.domain(0).val);
        let before = a.predict_ite(&stream.domain(0).test.x);
        a.observe(&stream.domain(1).train, &stream.domain(1).val);
        let after = a.predict_ite(&stream.domain(0).test.x);
        assert_eq!(
            before, after,
            "CFR-A must not change after the first domain"
        );
    }

    #[test]
    fn cfr_b_changes_with_new_domains() {
        let stream = quick_stream();
        let d_in = stream.domain(0).train.dim();
        let mut b = CfrB::new(d_in, quick_cfg(), 3);
        b.observe(&stream.domain(0).train, &stream.domain(0).val);
        let before = b.predict_ite(&stream.domain(0).test.x);
        b.observe(&stream.domain(1).train, &stream.domain(1).val);
        let after = b.predict_ite(&stream.domain(0).test.x);
        assert_ne!(before, after, "CFR-B must adapt to new data");
    }

    #[test]
    fn cfr_c_accumulates_raw_data() {
        let stream = quick_stream();
        let d_in = stream.domain(0).train.dim();
        let mut c = CfrC::new(d_in, quick_cfg(), 4);
        c.observe(&stream.domain(0).train, &stream.domain(0).val);
        let first = c.stored_units();
        c.observe(&stream.domain(1).train, &stream.domain(1).val);
        assert_eq!(c.stored_units(), 2 * first);
    }

    #[test]
    fn all_strategies_produce_finite_metrics() {
        let stream = quick_stream();
        let d_in = stream.domain(0).train.dim();
        for mut est in paper_lineup(d_in, &quick_cfg(), 5) {
            for d in 0..2 {
                est.observe(&stream.domain(d).train, &stream.domain(d).val);
            }
            for d in 0..2 {
                let m = est.evaluate(&stream.domain(d).test);
                assert!(
                    m.sqrt_pehe.is_finite() && m.ate_error.is_finite(),
                    "{} domain {d}: {m:?}",
                    est.name()
                );
            }
        }
    }
}
