//! Concurrent serving layer: many reader threads, lock-free-in-spirit
//! snapshot hot-swap.
//!
//! [`ServingEngine`] is the multi-threaded counterpart of
//! [`CerlEngine`]. A long-running service keeps
//! one `ServingEngine` (typically inside an `Arc`) and lets every request
//! thread call the predict methods directly:
//!
//! * **Readers never block on training.** The current engine lives behind
//!   an atomically swappable `Arc` pointer guarded by a lightweight
//!   `RwLock` that is held only for the pointer clone/replace — never
//!   across inference, deserialization, or an `observe` pass. A reader
//!   pins a [`VersionedEngine`] handle (one `Arc` clone) and serves the
//!   whole request from that immutable engine, so a swap mid-request can
//!   never tear a prediction.
//! * **Writers publish whole engines.** [`ServingEngine::swap_engine`],
//!   [`ServingEngine::swap_snapshot_bytes`] (a replica shipping in a new
//!   [`ModelSnapshot`](crate::snapshot::ModelSnapshot)), and
//!   [`ServingEngine::observe_and_swap`] (train a successor off to the
//!   side, then publish) all build the successor *outside* the reader
//!   lock and install it with a single pointer store. Writers are
//!   serialized with each other for their whole read-modify-publish span,
//!   so a newly published engine is never clobbered by a successor that
//!   was derived from a predecessor. Versions increase by exactly one per
//!   swap, under the lock, so readers observe a monotone sequence.
//! * **Parallel inference.** [`ServingEngine::predict_ite_parallel`] fans
//!   fixed-size row chunks of one large request matrix across scoped
//!   worker threads (same row-partitioning idea as the parallel GEMM in
//!   `cerl-math`). Chunk boundaries are independent of the thread count
//!   and per-row inference is batch-independent, so the output is bitwise
//!   identical for any number of workers — within the pinned version's
//!   [`PrecisionMode`]; each published version carries its own mode (see
//!   [`crate::precision`] and
//!   [`ServingEngine::swap_snapshot_bytes_with_precision`]).
//! * **Observability.** Every request updates a [`ServingStats`] block of
//!   atomic counters; [`ServingEngine::stats`] returns a coherent-enough
//!   [`ServingStatsSnapshot`] for dashboards and load tests.
//!
//! ```
//! use cerl_core::config::CerlConfig;
//! use cerl_core::engine::CerlEngineBuilder;
//! use cerl_core::serving::ServingEngine;
//! use cerl_data::{DomainStream, SyntheticConfig, SyntheticGenerator};
//!
//! let gen = SyntheticGenerator::new(SyntheticConfig::small(), 3);
//! let stream = DomainStream::synthetic(&gen, 2, 0, 3);
//!
//! let mut cfg = CerlConfig::quick_test();
//! cfg.train.epochs = 2; // doc-test speed
//! let mut engine = CerlEngineBuilder::new(cfg).seed(3).build()?;
//! engine.observe(&stream.domain(0).train, &stream.domain(0).val)?;
//!
//! let serving = ServingEngine::new(engine);
//! let x = &stream.domain(0).test.x;
//! let serial = serving.predict_ite(x)?;
//! let parallel = serving.predict_ite_parallel(x, 4)?;
//! assert_eq!(serial, parallel); // bitwise, regardless of thread count
//!
//! // Hot-swap: train a successor on the next domain while readers keep
//! // answering from version 1, then publish version 2.
//! let (report, version) =
//!     serving.observe_and_swap(&stream.domain(1).train, &stream.domain(1).val)?;
//! assert_eq!(report.stage, 2);
//! assert_eq!(version, 2);
//! assert_eq!(serving.stats().swaps, 1);
//! # Ok::<(), cerl_core::error::CerlError>(())
//! ```

use crate::continual::StageReport;
use crate::engine::CerlEngine;
use crate::error::CerlError;
use crate::precision::PrecisionMode;
use cerl_data::CausalDataset;
use cerl_math::Matrix;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};

/// Row-chunk size used by [`ServingEngine::predict_ite_parallel`].
///
/// Chosen so one chunk's forward-pass GEMMs stay below the parallel
/// threshold of `cerl_math::matmul` — reader threads scale the request,
/// the kernels underneath stay serial, and the two layers do not fight
/// over the same cores.
pub const PARALLEL_CHUNK_ROWS: usize = 512;

/// One published engine version: an immutable [`CerlEngine`] plus the
/// monotone version number it was installed under.
///
/// Readers obtain these from [`ServingEngine::current`] and may hold them
/// for as long as a request needs a consistent model — a concurrent swap
/// only redirects *future* readers.
pub struct VersionedEngine {
    engine: CerlEngine,
    version: u64,
}

impl std::fmt::Debug for VersionedEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VersionedEngine")
            .field("version", &self.version)
            .field("stage", &self.engine.stage())
            .finish_non_exhaustive()
    }
}

impl VersionedEngine {
    /// The pinned engine (immutable; safe to share across threads).
    pub fn engine(&self) -> &CerlEngine {
        &self.engine
    }

    /// Monotone swap version this engine was published under (the engine a
    /// [`ServingEngine`] is created with has version 1).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Precision this version answers predict requests in. Fixed at
    /// publish: a version's precision never changes once readers can pin
    /// it, so every row served from one version is attributable to one
    /// mode (see [`crate::precision`]).
    pub fn precision(&self) -> PrecisionMode {
        self.engine.precision()
    }

    /// Parallel chunked inference against this pinned version (the batch
    /// execution hook used by `cerl-serve`'s micro-batching scheduler: pin
    /// once, run one fanned-out pass for a whole coalesced batch, demux).
    ///
    /// Identical semantics to [`ServingEngine::predict_ite_parallel`],
    /// except the version is the caller's pin rather than whatever is
    /// current, and no serving-stats counters are touched — callers that
    /// want accounting should go through the [`ServingEngine`] methods.
    pub fn predict_ite_parallel(&self, x: &Matrix, threads: usize) -> Result<Vec<f64>, CerlError> {
        ServingEngine::predict_parallel_pinned(&self.engine, x, threads)
    }
}

/// Slots in the wait-free per-version counter ring (see
/// [`ServingStats::version_stats`]): per-version history is kept for the
/// most recent `VERSION_RING_SLOTS` published versions; publishing
/// version `v` evicts the slot last claimed by version
/// `v - VERSION_RING_SLOTS`.
pub const VERSION_RING_SLOTS: usize = 64;

/// One ring slot: a version tag plus its served/rejected counters.
/// Recorders attribute to a slot only when the tag matches their pinned
/// version, so counts never bleed across an eviction.
#[derive(Debug, Default)]
struct VersionSlot {
    /// The version this slot currently counts for (0 = unclaimed).
    version: AtomicU64,
    served: AtomicU64,
    rejected: AtomicU64,
}

/// Atomic request counters maintained by every [`ServingEngine`] call.
#[derive(Debug)]
pub struct ServingStats {
    requests_served: AtomicU64,
    rows_predicted: AtomicU64,
    swaps: AtomicU64,
    rejected_requests: AtomicU64,
    retired_versions: AtomicU64,
    /// Per-version request accounting — the canary signal a rebalance
    /// orchestrator watches: a freshly published version that rejects
    /// requests shows up here, attributable to exactly that version,
    /// while the aggregate counters above only say *something* failed.
    ///
    /// A wait-free ring keyed by `version % VERSION_RING_SLOTS`: the
    /// request path is two atomic ops (tag check + counter bump) with no
    /// lock anywhere, so a reactor multiplexing thousands of in-flight
    /// network requests never serializes on stats. The trade is history
    /// depth — a version's counters survive until the version
    /// `VERSION_RING_SLOTS` swaps later evicts its slot. Slots are
    /// claimed under the publisher's writer lock, so claims never race
    /// each other; a recorder racing an eviction (its version is exactly
    /// `VERSION_RING_SLOTS` behind the publish) drops that one request's
    /// per-version attribution, never the aggregate counters.
    per_version: [VersionSlot; VERSION_RING_SLOTS],
}

impl Default for ServingStats {
    fn default() -> Self {
        Self {
            requests_served: AtomicU64::new(0),
            rows_predicted: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
            rejected_requests: AtomicU64::new(0),
            retired_versions: AtomicU64::new(0),
            per_version: std::array::from_fn(|_| VersionSlot::default()),
        }
    }
}

impl ServingStats {
    /// Read all counters (each individually coherent).
    pub fn snapshot(&self) -> ServingStatsSnapshot {
        ServingStatsSnapshot {
            // ordering: independent monotone counters — the snapshot is
            // advisory and promises per-counter coherence only, so
            // Relaxed atomicity is all that is needed (no edges).
            requests_served: self.requests_served.load(Ordering::Relaxed),
            rows_predicted: self.rows_predicted.load(Ordering::Relaxed),
            swaps: self.swaps.load(Ordering::Relaxed),
            rejected_requests: self.rejected_requests.load(Ordering::Relaxed),
            retired_versions: self.retired_versions.load(Ordering::Relaxed),
        }
    }

    /// Per-version served/rejected counts, ascending by version (the
    /// most recent [`VERSION_RING_SLOTS`] versions — older slots have
    /// been evicted by the ring).
    pub fn version_stats(&self) -> Vec<VersionStats> {
        let mut out = Vec::new();
        for slot in &self.per_version {
            // ordering: Acquire pairs with claim_version's Release tag
            // stores — counts read below belong to the generation
            // observed here (or the re-check discards them).
            let version = slot.version.load(Ordering::Acquire);
            if version == 0 {
                continue;
            }
            let served = slot.served.load(Ordering::Relaxed); // ordering: guarded by tag re-check below
            let rejected = slot.rejected.load(Ordering::Relaxed); // ordering: guarded by tag re-check below
                                                                  // Re-check the tag: a claim racing between the loads means
                                                                  // the counters may mix two versions — skip the slot for this
                                                                  // snapshot rather than report a torn row.
                                                                  // ordering: Acquire pairs with claim_version's Release; a
                                                                  // changed tag proves the slot was recycled mid-read.
            if slot.version.load(Ordering::Acquire) != version {
                continue;
            }
            out.push(VersionStats {
                version,
                served,
                rejected,
            });
        }
        out.sort_unstable_by_key(|v| v.version);
        out
    }

    fn slot(&self, version: u64) -> &VersionSlot {
        // panic-ok: the modulo bounds the index below VERSION_RING_SLOTS
        // by construction.
        &self.per_version[(version % VERSION_RING_SLOTS as u64) as usize]
    }

    /// Claim the ring slot for a freshly published version. Must be
    /// called with the publisher's writer lock held, so claims are
    /// serialized; recorders are wait-free throughout.
    fn claim_version(&self, version: u64) {
        let slot = self.slot(version);
        // Retire the tag first so concurrent recorders stop attributing
        // to the evicted version before its counters reset.
        // ordering: both Release tag stores pair with the Acquire tag
        // loads in version_stats/record_* — a recorder that observes the
        // new tag also observes the zeroed counters; one that observes 0
        // skips the slot.
        slot.version.store(0, Ordering::Release);
        slot.served.store(0, Ordering::Relaxed); // ordering: published by the Release tag store below
        slot.rejected.store(0, Ordering::Relaxed); // ordering: published by the Release tag store below
        slot.version.store(version, Ordering::Release); // ordering: see block comment above
    }

    fn record_success(&self, version: u64, rows: usize) {
        self.requests_served.fetch_add(1, Ordering::Relaxed); // ordering: lone monotone counter, no edges
                                                              // ordering: lone monotone counter, no edges.
        self.rows_predicted
            .fetch_add(rows as u64, Ordering::Relaxed);
        let slot = self.slot(version);
        // ordering: Acquire pairs with claim_version's Release — seeing
        // our tag proves the slot's counters were reset for this version.
        if slot.version.load(Ordering::Acquire) == version {
            slot.served.fetch_add(1, Ordering::Relaxed); // ordering: tag check above attributes it
        }
    }

    fn record_rejection(&self, version: u64) {
        self.rejected_requests.fetch_add(1, Ordering::Relaxed); // ordering: lone monotone counter, no edges
        let slot = self.slot(version);
        // ordering: Acquire pairs with claim_version's Release — seeing
        // our tag proves the slot's counters were reset for this version.
        if slot.version.load(Ordering::Acquire) == version {
            slot.rejected.fetch_add(1, Ordering::Relaxed); // ordering: tag check above attributes it
        }
    }
}

/// One engine version's request accounting ([`ServingStats::version_stats`]).
///
/// The canary counters a rebalance orchestrator reads during a dual-route
/// window: a regression on the version currently published by an involved
/// shard is visible as `rejected` growing against `served`, attributable
/// to that exact version rather than smeared across the engine's history.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VersionStats {
    /// Engine version these counters describe.
    pub version: u64,
    /// Requests this version answered successfully.
    pub served: u64,
    /// Requests this version rejected with a typed error.
    pub rejected: u64,
}

/// Point-in-time copy of a [`ServingStats`] block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServingStatsSnapshot {
    /// Prediction requests answered successfully.
    pub requests_served: u64,
    /// Total rows across all successful prediction requests.
    pub rows_predicted: u64,
    /// Engine versions published (swaps) since construction.
    pub swaps: u64,
    /// Prediction requests rejected with a typed error.
    pub rejected_requests: u64,
    /// Superseded engine versions fully retired — dropped from the swap
    /// grace list after their last pinned handle was released.
    pub retired_versions: u64,
}

/// Thread-safe serving facade: shared by reader threads, hot-swappable by
/// a writer, instrumented with [`ServingStats`].
///
/// See the [module docs](self) for the concurrency contract.
pub struct ServingEngine {
    current: RwLock<Arc<VersionedEngine>>,
    /// Serializes writers — every publish path ([`swap_engine`],
    /// [`swap_snapshot_bytes`], [`observe_and_swap`]) holds this for its
    /// whole read-modify-publish span. Without it, a swap landing while
    /// `observe_and_swap` trains its successor (cloned from the pre-swap
    /// engine) would be silently overwritten by that stale successor.
    /// Readers never touch this lock.
    ///
    /// [`swap_engine`]: ServingEngine::swap_engine
    /// [`swap_snapshot_bytes`]: ServingEngine::swap_snapshot_bytes
    /// [`observe_and_swap`]: ServingEngine::observe_and_swap
    writer_lock: Mutex<()>,
    stats: ServingStats,
    /// Swap grace period: superseded engine versions are parked here at
    /// publish time and retired only once their last pinned
    /// [`VersionedEngine`] handle drops — a long-lived request (e.g. a
    /// network connection mid-inference) may still be running on a
    /// version that is no longer current. Reaped opportunistically on
    /// every publish and [`stats`](ServingEngine::stats) call, or
    /// explicitly via [`reap_superseded`](ServingEngine::reap_superseded).
    superseded: Mutex<Vec<Arc<VersionedEngine>>>,
}

impl ServingEngine {
    /// Wrap an engine (trained or not) as version 1.
    pub fn new(engine: CerlEngine) -> Self {
        let stats = ServingStats::default();
        stats.claim_version(1);
        Self {
            current: RwLock::new(Arc::new(VersionedEngine { engine, version: 1 })),
            writer_lock: Mutex::new(()),
            stats,
            superseded: Mutex::new(Vec::new()),
        }
    }

    /// Build version 1 directly from snapshot bytes (a fresh replica
    /// joining a fleet).
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<Self, CerlError> {
        Ok(Self::new(CerlEngine::load_bytes(bytes)?))
    }

    /// Pin the currently published engine version.
    ///
    /// This is one `Arc` clone under a read lock held for nanoseconds;
    /// the returned handle stays valid (and immutable) for as long as the
    /// caller keeps it, across any number of concurrent swaps.
    pub fn current(&self) -> Arc<VersionedEngine> {
        self.current
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Pin the current versions of **two** serving engines coherently:
    /// the returned pair was simultaneously published at some instant
    /// during the call.
    ///
    /// A dual-route reader (e.g. a shard rebalance comparing the source
    /// and destination shards of a moving domain) must not pair a stale
    /// pin of one engine with a fresh pin of the other — conclusions
    /// drawn from such a pair describe a fleet state that never existed.
    /// `pin_pair` pins `a`, pins `b`, then re-checks that `a` still
    /// serves the pinned version; versions are monotone and never reused,
    /// so a passing re-check proves `a`'s pin spanned the instant `b`'s
    /// pin was taken. On a concurrent swap of `a` it simply retries —
    /// swaps are rare and pins are nanoseconds, so the loop terminates
    /// immediately in practice.
    pub fn pin_pair(
        a: &ServingEngine,
        b: &ServingEngine,
    ) -> (Arc<VersionedEngine>, Arc<VersionedEngine>) {
        loop {
            let pa = a.current();
            let pb = b.current();
            if a.version() == pa.version {
                return (pa, pb);
            }
        }
    }

    /// Version of the currently published engine.
    pub fn version(&self) -> u64 {
        self.current().version
    }

    /// Precision of the currently published engine version. Per-version:
    /// a swap may change it (see
    /// [`ServingEngine::swap_snapshot_bytes_with_precision`]), so callers
    /// that need the mode a *specific* request was served under should pin
    /// via [`ServingEngine::current`] and read
    /// [`VersionedEngine::precision`].
    pub fn precision(&self) -> PrecisionMode {
        self.current().precision()
    }

    /// Counters accumulated since construction.
    ///
    /// Reaps the swap grace list first so `retired_versions` reflects
    /// pins released since the last publish.
    pub fn stats(&self) -> ServingStatsSnapshot {
        self.reap_superseded();
        self.stats.snapshot()
    }

    /// Drop superseded engine versions whose last pinned handle is gone;
    /// returns how many versions were retired by this call. Versions
    /// still pinned by an in-flight request stay parked (and alive) on
    /// the grace list.
    pub fn reap_superseded(&self) -> usize {
        let mut superseded = self
            .superseded
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let before = superseded.len();
        // strong_count == 1 means the grace list holds the only handle:
        // the version cannot be re-pinned (it is no longer `current`), so
        // dropping it here frees the engine.
        superseded.retain(|engine| Arc::strong_count(engine) > 1);
        let retired = before - superseded.len();
        if retired > 0 {
            // ordering: lone monotone counter, no edges.
            self.stats
                .retired_versions
                .fetch_add(retired as u64, Ordering::Relaxed);
        }
        retired
    }

    /// Superseded engine versions currently kept alive by pinned handles.
    pub fn superseded_count(&self) -> usize {
        self.superseded
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Engine versions currently alive in this process: the published
    /// version plus every superseded version still pinned by in-flight
    /// requests. This is the `<version-count>` a readiness probe
    /// reports — 1 in steady state, transiently higher across a swap.
    pub fn live_version_count(&self) -> usize {
        self.reap_superseded();
        1 + self.superseded_count()
    }

    /// Per-version served/rejected canary counters, ascending by version
    /// (see [`VersionStats`]). A canary watcher compares the currently
    /// published version's rejection share against earlier versions to
    /// judge whether a swap (or a rebalance's dual-route window) is
    /// regressing.
    pub fn version_stats(&self) -> Vec<VersionStats> {
        self.stats.version_stats()
    }

    /// Predicted ITEs for one request matrix against the current engine
    /// version.
    pub fn predict_ite(&self, x: &Matrix) -> Result<Vec<f64>, CerlError> {
        Ok(self.predict_ite_versioned(x)?.1)
    }

    /// Like [`ServingEngine::predict_ite`], also reporting which engine
    /// version served the request (for audit trails and consistency
    /// checks: predictions are bitwise-stable *per version*).
    pub fn predict_ite_versioned(&self, x: &Matrix) -> Result<(u64, Vec<f64>), CerlError> {
        let pinned = self.current();
        match pinned.engine.predict_ite(x) {
            Ok(ite) => {
                self.stats.record_success(pinned.version, ite.len());
                Ok((pinned.version, ite))
            }
            Err(e) => {
                self.stats.record_rejection(pinned.version);
                Err(e)
            }
        }
    }

    /// Predicted potential outcomes `(ŷ₀, ŷ₁)` against the current engine
    /// version.
    pub fn predict_potential_outcomes(
        &self,
        x: &Matrix,
    ) -> Result<(Vec<f64>, Vec<f64>), CerlError> {
        let pinned = self.current();
        match pinned.engine.predict_potential_outcomes(x) {
            Ok(out) => {
                self.stats.record_success(pinned.version, out.0.len());
                Ok(out)
            }
            Err(e) => {
                self.stats.record_rejection(pinned.version);
                Err(e)
            }
        }
    }

    /// Predict ITEs for one large request matrix with `threads` scoped
    /// worker threads (`0` selects the GEMM worker count of the machine).
    ///
    /// The whole request is served from a single pinned engine version,
    /// even if a swap lands mid-request. Rows are split into
    /// [`PARALLEL_CHUNK_ROWS`]-sized chunks drained from a shared cursor
    /// (dynamic load balancing); chunk boundaries do not depend on
    /// `threads`, and per-row inference does not depend on its batch, so
    /// the result is bitwise identical to [`ServingEngine::predict_ite`]
    /// for every thread count.
    pub fn predict_ite_parallel(&self, x: &Matrix, threads: usize) -> Result<Vec<f64>, CerlError> {
        Ok(self.predict_ite_parallel_versioned(x, threads)?.1)
    }

    /// Like [`ServingEngine::predict_ite_parallel`], also reporting which
    /// engine version served the request.
    ///
    /// The whole matrix — typically a coalesced micro-batch assembled by a
    /// scheduler — is executed against one pinned version, so every row of
    /// the result is attributable to the returned version even if a swap
    /// lands mid-call.
    pub fn predict_ite_parallel_versioned(
        &self,
        x: &Matrix,
        threads: usize,
    ) -> Result<(u64, Vec<f64>), CerlError> {
        let pinned = self.current();
        match Self::predict_parallel_pinned(&pinned.engine, x, threads) {
            Ok(ite) => {
                self.stats.record_success(pinned.version, ite.len());
                Ok((pinned.version, ite))
            }
            Err(e) => {
                self.stats.record_rejection(pinned.version);
                Err(e)
            }
        }
    }

    fn predict_parallel_pinned(
        engine: &CerlEngine,
        x: &Matrix,
        threads: usize,
    ) -> Result<Vec<f64>, CerlError> {
        let threads = if threads == 0 {
            cerl_math::matmul::worker_threads()
        } else {
            threads
        };
        let n = x.rows();
        let n_chunks = n.div_ceil(PARALLEL_CHUNK_ROWS).max(1);
        let workers = threads.clamp(1, n_chunks);
        if workers == 1 {
            // Same chunk walk on the caller's thread: identical output,
            // no scope setup.
            return engine.predict_ite_chunked(x, PARALLEL_CHUNK_ROWS);
        }
        // Fail malformed requests before spinning up any worker.
        if let Some(expected) = engine.covariate_dim() {
            if x.cols() != expected {
                return Err(CerlError::DimensionMismatch {
                    expected,
                    found: x.cols(),
                });
            }
        }

        // One slot per chunk; each is written exactly once by whichever
        // worker drains that chunk from the cursor.
        type ChunkSlot = Mutex<Option<Result<Vec<f64>, CerlError>>>;
        let cursor = AtomicUsize::new(0);
        let slots: Vec<ChunkSlot> = (0..n_chunks).map(|_| Mutex::new(None)).collect();
        crossbeam::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|_| loop {
                    // ordering: fetch_add's atomicity alone partitions
                    // chunks; results are published to the caller by the
                    // scope join (thread-exit happens-before), not by
                    // this counter.
                    let c = cursor.fetch_add(1, Ordering::Relaxed);
                    if c >= n_chunks {
                        break;
                    }
                    let start = c * PARALLEL_CHUNK_ROWS;
                    let end = (start + PARALLEL_CHUNK_ROWS).min(n);
                    let result = engine.predict_ite(&x.slice_rows(start, end));
                    // panic-ok: `c < n_chunks` was checked above, and
                    // `slots` holds exactly `n_chunks` entries.
                    *slots[c].lock().unwrap_or_else(PoisonError::into_inner) = Some(result);
                });
            }
        })
        // panic-ok: Err only if a worker panicked — an engine bug, not a
        // request fault; propagating the panic is the honest outcome.
        .expect("predict_ite_parallel: worker thread panicked");

        let mut out = Vec::with_capacity(n);
        for slot in slots {
            let chunk = slot
                .into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                // panic-ok: the cursor hands every chunk index below
                // n_chunks to exactly one worker, which always writes
                // its slot; an empty slot is an engine bug.
                .expect("cursor visits every chunk exactly once");
            out.extend(chunk?);
        }
        Ok(out)
    }

    /// Publish a new engine; returns the version it was installed under.
    ///
    /// Waits for any in-flight writer (including a training
    /// [`ServingEngine::observe_and_swap`]) — writers are serialized so a
    /// publish can never be silently overwritten by a successor that was
    /// trained from a pre-publish engine. The reader-facing write lock is
    /// still held only for the pointer replacement, so readers that
    /// already pinned the old version finish undisturbed and new readers
    /// block only for the swap itself.
    pub fn swap_engine(&self, engine: CerlEngine) -> u64 {
        let _writer = self
            .writer_lock
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        self.publish(engine)
    }

    /// Deserialize snapshot bytes into a fresh engine and publish it.
    ///
    /// Parsing and validation happen *before* either lock is taken, so a
    /// slow or malformed snapshot never stalls readers; on error the
    /// published engine is unchanged. Like [`ServingEngine::swap_engine`],
    /// the publish waits for any in-flight writer.
    pub fn swap_snapshot_bytes(&self, bytes: &[u8]) -> Result<u64, CerlError> {
        let engine = CerlEngine::load_bytes(bytes)?;
        Ok(self.swap_engine(engine))
    }

    /// [`ServingEngine::swap_snapshot_bytes`], opting the restored engine
    /// into a [`PrecisionMode`] before it becomes visible — the fleet
    /// hook for publishing an `f32` serving version from a shipped
    /// snapshot. The single-precision plan is compiled *before* either
    /// lock is taken, so readers never stall on plan compilation, and on
    /// any error the published engine is unchanged.
    pub fn swap_snapshot_bytes_with_precision(
        &self,
        bytes: &[u8],
        mode: PrecisionMode,
    ) -> Result<u64, CerlError> {
        let mut engine = CerlEngine::load_bytes(bytes)?;
        engine.set_precision(mode)?;
        Ok(self.swap_engine(engine))
    }

    /// Like [`ServingEngine::swap_engine`], but run one probe batch
    /// against the successor *before* publishing (swap hygiene).
    ///
    /// The probe is a single zero row of the successor's covariate
    /// dimension; it pre-touches every parameter matrix along the forward
    /// path (so the first real request does not pay the page-in cost) and,
    /// more importantly, proves the successor can actually answer. A
    /// successor that cannot serve — untrained, or with internally
    /// inconsistent parameters that would panic on the first request — is
    /// dropped and its error returned; the published engine is unchanged
    /// and readers never see the broken version.
    pub fn swap_engine_warm(&self, engine: CerlEngine) -> Result<u64, CerlError> {
        let _writer = self
            .writer_lock
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        Self::probe(&engine)?;
        Ok(self.publish(engine))
    }

    /// [`ServingEngine::swap_snapshot_bytes`] with the warm-up probe of
    /// [`ServingEngine::swap_engine_warm`]: the snapshot is parsed,
    /// validated, *and probed* before the pointer swap, so corrupt replica
    /// bytes can never become the visible version.
    pub fn swap_snapshot_bytes_warm(&self, bytes: &[u8]) -> Result<u64, CerlError> {
        let engine = CerlEngine::load_bytes(bytes)?;
        self.swap_engine_warm(engine)
    }

    /// Run one probe batch against a successor candidate; `Ok` means it
    /// can serve requests.
    ///
    /// This is the warm-up check [`ServingEngine::swap_engine_warm`] runs
    /// before publishing, exposed so staging paths (a shard rebalance
    /// warming a successor it will not publish until commit) can fail
    /// fast at staging time: an untrained engine or one with internally
    /// inconsistent parameters returns its typed error (panics along the
    /// forward path are converted into
    /// [`SnapshotError::Incompatible`](crate::error::SnapshotError))
    /// instead of blowing up a serving thread later.
    pub fn probe_successor(engine: &CerlEngine) -> Result<(), CerlError> {
        Self::probe(engine)
    }

    fn probe(engine: &CerlEngine) -> Result<(), CerlError> {
        let d_in = engine.covariate_dim().ok_or(CerlError::NotTrained)?;
        let probe = Matrix::zeros(1, d_in);
        // A well-formed engine returns a 1-row prediction; a corrupted one
        // returns its typed error (or, defensively, panics — convert that
        // into the snapshot-incompatibility error rather than taking down
        // the serving process's writer thread).
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.predict_ite(&probe).map(|_| ())
        }));
        match outcome {
            Ok(result) => result,
            Err(_) => Err(CerlError::Snapshot(
                crate::error::SnapshotError::Incompatible(
                    "successor engine panicked on the warm-up probe batch".into(),
                ),
            )),
        }
    }

    /// Observe the next domain on a private successor of the current
    /// engine, then publish the successor.
    ///
    /// The (long) training pass runs entirely outside the reader lock —
    /// readers keep serving the previous version throughout — and the
    /// publish is a single pointer swap. The writer lock is held for the
    /// whole clone-train-publish span: concurrent trainers are serialized
    /// so each observed domain lands on top of the previous one, and a
    /// plain swap cannot slip in mid-training only to be clobbered by a
    /// successor cloned from the pre-swap engine. On error nothing is
    /// published.
    pub fn observe_and_swap(
        &self,
        train: &CausalDataset,
        val: &CausalDataset,
    ) -> Result<(StageReport, u64), CerlError> {
        let _writer = self
            .writer_lock
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let mut successor = self.current().engine.clone();
        let report = successor.observe(train, val)?;
        let version = self.publish(successor);
        Ok((report, version))
    }

    /// Install `engine` as the next version. Caller must hold
    /// `writer_lock`.
    ///
    /// lock-order: `writer_lock` strictly precedes this pointer-lock
    /// write — taking `current.write()` without it would let two
    /// publishers interleave version assignment with the swap.
    fn publish(&self, engine: CerlEngine) -> u64 {
        let mut guard = self.current.write().unwrap_or_else(PoisonError::into_inner);
        let version = guard.version + 1;
        let old = std::mem::replace(&mut *guard, Arc::new(VersionedEngine { engine, version }));
        drop(guard);
        // Park the superseded version until its last pin drops, then
        // reap anything whose grace period has ended.
        self.superseded
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(old);
        self.reap_superseded();
        self.stats.swaps.fetch_add(1, Ordering::Relaxed); // ordering: lone monotone counter, no edges
        self.stats.claim_version(version);
        version
    }
}

// The whole point of this module: compile-time proof the serving stack may
// be shared across threads.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<CerlEngine>();
    assert_send_sync::<VersionedEngine>();
    assert_send_sync::<ServingEngine>();
    assert_send_sync::<ServingStats>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CerlConfig;
    use crate::engine::CerlEngineBuilder;
    use cerl_data::{DomainStream, SyntheticConfig, SyntheticGenerator};

    fn quick_cfg() -> CerlConfig {
        let mut cfg = CerlConfig::quick_test();
        cfg.train.epochs = 6;
        cfg.memory_size = 80;
        cfg
    }

    fn quick_stream(domains: usize) -> DomainStream {
        let gen = SyntheticGenerator::new(
            SyntheticConfig {
                n_units: 400,
                ..SyntheticConfig::small()
            },
            51,
        );
        DomainStream::synthetic(&gen, domains, 0, 51)
    }

    fn trained_serving(stream: &DomainStream, stages: usize) -> ServingEngine {
        let mut engine = CerlEngineBuilder::new(quick_cfg()).seed(7).build().unwrap();
        for d in 0..stages {
            engine
                .observe(&stream.domain(d).train, &stream.domain(d).val)
                .unwrap();
        }
        ServingEngine::new(engine)
    }

    #[test]
    fn precision_is_a_per_version_property() {
        let stream = quick_stream(1);
        let serving = trained_serving(&stream, 1);
        assert_eq!(serving.precision(), PrecisionMode::F64);
        let x = &stream.domain(0).test.x;
        let f64_ite = serving.predict_ite(x).unwrap();
        let bytes = serving.current().engine().save_bytes().unwrap();

        // A long request pins version 1 (f64) before the f32 publish.
        let pinned_v1 = serving.current();

        let v2 = serving
            .swap_snapshot_bytes_with_precision(&bytes, PrecisionMode::F32)
            .unwrap();
        assert_eq!(v2, 2);
        assert_eq!(serving.precision(), PrecisionMode::F32);
        let f32_ite = serving.predict_ite(x).unwrap();
        assert_ne!(f32_ite, f64_ite, "narrowed weights must round differently");

        // Within the f32 version, parallel fan-out is bitwise identical
        // to the serial path — the per-mode contract.
        for threads in [1usize, 2, 5] {
            assert_eq!(serving.predict_ite_parallel(x, threads).unwrap(), f32_ite);
        }

        // The pinned pre-swap version still answers in its own mode.
        assert_eq!(pinned_v1.precision(), PrecisionMode::F64);
        assert_eq!(pinned_v1.engine().predict_ite(x).unwrap(), f64_ite);

        // A successor trained off the f32 version inherits its mode.
        let (_, v3) = serving
            .observe_and_swap(&stream.domain(0).train, &stream.domain(0).val)
            .unwrap();
        assert_eq!(v3, 3);
        assert_eq!(serving.precision(), PrecisionMode::F32);
    }

    #[test]
    fn parallel_prediction_is_bitwise_identical_across_thread_counts() {
        let stream = quick_stream(1);
        let serving = trained_serving(&stream, 1);
        let x = &stream.domain(0).test.x;
        let serial = serving.predict_ite(x).unwrap();
        for threads in [0, 1, 2, 3, 4, 8] {
            let par = serving.predict_ite_parallel(x, threads).unwrap();
            assert_eq!(par.len(), serial.len());
            for (a, b) in par.iter().zip(&serial) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn swap_bumps_version_and_redirects_new_readers() {
        let stream = quick_stream(2);
        let serving = trained_serving(&stream, 1);
        assert_eq!(serving.version(), 1);
        let x = &stream.domain(0).test.x;
        let v1_pred = serving.predict_ite(x).unwrap();

        // A reader that pinned version 1 before the swap...
        let pinned = serving.current();

        let (report, version) = serving
            .observe_and_swap(&stream.domain(1).train, &stream.domain(1).val)
            .unwrap();
        assert_eq!(report.stage, 2);
        assert_eq!(version, 2);
        assert_eq!(serving.version(), 2);

        // ...still answers with version-1 predictions after it.
        assert_eq!(pinned.version(), 1);
        assert_eq!(pinned.engine().predict_ite(x).unwrap(), v1_pred);

        // New readers see the retrained model (2 stages observed).
        assert_eq!(serving.current().engine().stage(), 2);
        let v2_pred = serving.predict_ite(x).unwrap();
        assert_ne!(v1_pred, v2_pred, "stage-2 model should differ");
    }

    #[test]
    fn snapshot_swap_installs_replica_bytes() {
        let stream = quick_stream(2);
        let serving = trained_serving(&stream, 1);

        // Another replica trains one stage further and ships its bytes.
        let mut donor = CerlEngineBuilder::new(quick_cfg()).seed(7).build().unwrap();
        for d in 0..2 {
            donor
                .observe(&stream.domain(d).train, &stream.domain(d).val)
                .unwrap();
        }
        let bytes = donor.save_bytes().unwrap();

        let version = serving.swap_snapshot_bytes(&bytes).unwrap();
        assert_eq!(version, 2);
        let x = &stream.domain(1).test.x;
        assert_eq!(
            serving.predict_ite(x).unwrap(),
            donor.predict_ite(x).unwrap()
        );

        // Malformed bytes leave the published engine untouched.
        assert!(serving.swap_snapshot_bytes(b"not a snapshot").is_err());
        assert_eq!(serving.version(), 2);
    }

    #[test]
    fn trainer_builds_on_latest_published_engine() {
        // Writers serialize: after a plain swap, `observe_and_swap` must
        // clone the *swapped-in* engine, not any earlier version.
        let stream = quick_stream(2);
        let serving = trained_serving(&stream, 1);

        let mut fresh = CerlEngineBuilder::new(quick_cfg())
            .seed(99)
            .build()
            .unwrap();
        fresh
            .observe(&stream.domain(0).train, &stream.domain(0).val)
            .unwrap();
        let mut replica = fresh.clone();
        assert_eq!(serving.swap_engine(fresh), 2);

        let (report, version) = serving
            .observe_and_swap(&stream.domain(1).train, &stream.domain(1).val)
            .unwrap();
        assert_eq!((report.stage, version), (2, 3));

        // The successor matches an offline replica continued from the
        // swapped-in engine — proof the clone base was the latest publish.
        replica
            .observe(&stream.domain(1).train, &stream.domain(1).val)
            .unwrap();
        let x = &stream.domain(1).test.x;
        assert_eq!(
            serving.predict_ite(x).unwrap(),
            replica.predict_ite(x).unwrap()
        );
        assert_eq!(serving.stats().swaps, 2);
    }

    #[test]
    fn stats_count_requests_rows_swaps_and_rejections() {
        let stream = quick_stream(1);
        let serving = trained_serving(&stream, 1);
        let x = &stream.domain(0).test.x;

        serving.predict_ite(x).unwrap();
        serving.predict_ite_parallel(x, 2).unwrap();
        let bad = Matrix::zeros(3, x.cols() + 1);
        assert!(serving.predict_ite(&bad).is_err());
        assert!(serving.predict_ite_parallel(&bad, 2).is_err());

        let stats = serving.stats();
        assert_eq!(stats.requests_served, 2);
        assert_eq!(stats.rows_predicted, 2 * x.rows() as u64);
        assert_eq!(stats.rejected_requests, 2);
        assert_eq!(stats.swaps, 0);
        assert_eq!(
            serving.version_stats(),
            vec![VersionStats {
                version: 1,
                served: 2,
                rejected: 2
            }]
        );
    }

    #[test]
    fn version_stats_attribute_requests_to_the_version_that_answered() {
        let stream = quick_stream(2);
        let serving = trained_serving(&stream, 1);
        let x = &stream.domain(0).test.x;
        serving.predict_ite(x).unwrap();
        serving
            .observe_and_swap(&stream.domain(1).train, &stream.domain(1).val)
            .unwrap();
        serving.predict_ite(x).unwrap();
        serving.predict_ite(x).unwrap();
        assert!(serving
            .predict_ite(&Matrix::zeros(1, x.cols() + 3))
            .is_err());
        assert_eq!(
            serving.version_stats(),
            vec![
                VersionStats {
                    version: 1,
                    served: 1,
                    rejected: 0
                },
                VersionStats {
                    version: 2,
                    served: 2,
                    rejected: 1
                },
            ]
        );
    }

    #[test]
    fn warm_swap_publishes_probed_successor() {
        let stream = quick_stream(2);
        let serving = trained_serving(&stream, 1);

        let mut donor = CerlEngineBuilder::new(quick_cfg()).seed(7).build().unwrap();
        for d in 0..2 {
            donor
                .observe(&stream.domain(d).train, &stream.domain(d).val)
                .unwrap();
        }
        let version = serving.swap_engine_warm(donor.clone()).unwrap();
        assert_eq!(version, 2);
        let x = &stream.domain(1).test.x;
        assert_eq!(
            serving.predict_ite(x).unwrap(),
            donor.predict_ite(x).unwrap()
        );

        // The snapshot variant probes too.
        let version = serving
            .swap_snapshot_bytes_warm(&donor.save_bytes().unwrap())
            .unwrap();
        assert_eq!(version, 3);
    }

    #[test]
    fn warm_swap_never_publishes_a_broken_successor() {
        let stream = quick_stream(1);
        let serving = trained_serving(&stream, 1);
        let x = &stream.domain(0).test.x;
        let before = serving.predict_ite(x).unwrap();

        // An untrained successor cannot answer the probe: the swap fails,
        // the version does not move, and readers keep the old engine.
        let untrained = CerlEngineBuilder::new(quick_cfg()).build().unwrap();
        assert!(matches!(
            serving.swap_engine_warm(untrained),
            Err(CerlError::NotTrained)
        ));
        assert_eq!(serving.version(), 1);
        assert_eq!(serving.predict_ite(x).unwrap(), before);

        // Corrupt replica bytes fail before the pointer swap as well.
        assert!(serving.swap_snapshot_bytes_warm(b"not a snapshot").is_err());
        assert_eq!(serving.version(), 1);
        assert_eq!(serving.stats().swaps, 0);
        assert_eq!(serving.predict_ite(x).unwrap(), before);
    }

    #[test]
    fn pinned_parallel_hook_matches_engine_path_and_reports_version() {
        let stream = quick_stream(1);
        let serving = trained_serving(&stream, 1);
        let x = &stream.domain(0).test.x;
        let (version, batched) = serving.predict_ite_parallel_versioned(x, 2).unwrap();
        assert_eq!(version, 1);
        let pinned = serving.current();
        assert_eq!(pinned.predict_ite_parallel(x, 3).unwrap(), batched);
        assert_eq!(serving.predict_ite(x).unwrap(), batched);
    }

    #[test]
    fn pin_pair_is_coherent_under_concurrent_swaps() {
        let stream = quick_stream(2);
        let a = trained_serving(&stream, 1);
        let b = trained_serving(&stream, 2);

        // Quiet fleet: the pair is simply both currents.
        let (pa, pb) = ServingEngine::pin_pair(&a, &b);
        assert_eq!((pa.version(), pb.version()), (1, 1));

        // Hammer pin_pair while `a` is swapped repeatedly: every returned
        // pair must reflect versions that were simultaneously published,
        // i.e. pa's version is never behind a publish that pb observed...
        // with only `a` swapping, that reduces to: pa.version must be
        // current-at-pin, which the re-check loop enforces. Assert the
        // cheap observable: pins are internally consistent and monotone.
        let donor = a.current().engine().clone();
        std::thread::scope(|scope| {
            let (a, b) = (&a, &b);
            let swaps = scope.spawn(move || {
                for _ in 0..50 {
                    a.swap_engine(donor.clone());
                }
            });
            let mut last_a = 0;
            for _ in 0..200 {
                let (pa, pb) = ServingEngine::pin_pair(a, b);
                assert!(pa.version() >= last_a, "a's pins are monotone");
                assert_eq!(pb.version(), 1, "b never swapped");
                last_a = pa.version();
            }
            swaps.join().unwrap();
        });
        assert_eq!(a.version(), 51);
    }

    #[test]
    fn swap_grace_holds_superseded_versions_until_last_pin_drops() {
        let stream = quick_stream(1);
        let serving = trained_serving(&stream, 1);
        let donor = serving.current().engine().clone();
        let x = &stream.domain(0).test.x;

        // A long-lived request pins version 1 across a swap: the
        // superseded engine is parked on the grace list, not dropped, and
        // keeps answering.
        let pinned = serving.current();
        assert_eq!(serving.swap_engine(donor.clone()), 2);
        assert_eq!(serving.superseded_count(), 1);
        assert_eq!(serving.stats().retired_versions, 0);
        assert_eq!(pinned.version(), 1);
        assert!(pinned.engine().predict_ite(x).is_ok());

        // Last pin drops → the grace period ends on the next reap.
        drop(pinned);
        assert_eq!(serving.reap_superseded(), 1);
        assert_eq!(serving.superseded_count(), 0);
        assert_eq!(serving.stats().retired_versions, 1);

        // An unpinned swap retires its predecessor immediately: publish
        // reaps the grace list after parking.
        assert_eq!(serving.swap_engine(donor), 3);
        assert_eq!(serving.superseded_count(), 0);
        assert_eq!(serving.stats().retired_versions, 2);
    }

    #[test]
    fn version_ring_attributes_exactly_under_concurrent_traffic_and_swaps() {
        let stream = quick_stream(1);
        let serving = trained_serving(&stream, 1);
        let donor = serving.current().engine().clone();
        let x = stream.domain(0).test.x.slice_rows(0, 2);
        let bad = Matrix::zeros(1, x.cols() + 1);

        std::thread::scope(|scope| {
            let serving = &serving;
            let (x, bad) = (&x, &bad);
            let writer = scope.spawn(move || {
                for _ in 0..5 {
                    serving.swap_engine(donor.clone());
                    std::thread::yield_now();
                }
            });
            let readers: Vec<_> = (0..4)
                .map(|_| {
                    scope.spawn(move || {
                        for _ in 0..25 {
                            serving.predict_ite(x).unwrap();
                            serving.predict_ite(bad).unwrap_err();
                        }
                    })
                })
                .collect();
            for reader in readers {
                reader.join().unwrap();
            }
            writer.join().unwrap();
        });

        // Fewer than VERSION_RING_SLOTS versions ever existed, so no slot
        // was evicted: per-version counts must reconcile exactly with the
        // aggregates, attributed only to versions 1..=6.
        let stats = serving.stats();
        assert_eq!(stats.swaps, 5);
        assert_eq!(stats.requests_served, 100);
        assert_eq!(stats.rejected_requests, 100);
        let per_version = serving.version_stats();
        assert!(per_version.windows(2).all(|w| w[0].version < w[1].version));
        assert!(per_version.iter().all(|v| (1..=6).contains(&v.version)));
        assert_eq!(per_version.iter().map(|v| v.served).sum::<u64>(), 100);
        assert_eq!(per_version.iter().map(|v| v.rejected).sum::<u64>(), 100);
    }

    #[test]
    fn public_probe_matches_warm_swap_judgement() {
        let stream = quick_stream(1);
        let trained = trained_serving(&stream, 1);
        assert!(ServingEngine::probe_successor(trained.current().engine()).is_ok());
        let untrained = CerlEngineBuilder::new(quick_cfg()).build().unwrap();
        assert!(matches!(
            ServingEngine::probe_successor(&untrained),
            Err(CerlError::NotTrained)
        ));
    }

    #[test]
    fn untrained_engine_rejects_reads_until_first_swap() {
        let stream = quick_stream(1);
        let serving = ServingEngine::new(CerlEngineBuilder::new(quick_cfg()).build().unwrap());
        let x = &stream.domain(0).test.x;
        assert!(matches!(serving.predict_ite(x), Err(CerlError::NotTrained)));
        let (report, version) = serving
            .observe_and_swap(&stream.domain(0).train, &stream.domain(0).val)
            .unwrap();
        assert_eq!((report.stage, version), (1, 2));
        assert!(serving.predict_ite(x).is_ok());
    }
}
