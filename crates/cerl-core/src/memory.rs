//! Bounded memory of feature representations (paper §III-A.2).
//!
//! After each stage the model stores `M_d = {R_d, Y_d, T_d} ∪ φ(M_{d-1})`
//! — *representations*, never raw covariates — reduced to the memory budget
//! by herding run separately for the treatment and control groups so both
//! keep the same number of exemplars.

use crate::error::CerlError;
use crate::herding::{herding_select, random_select};
use cerl_math::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Stored representations with their outcomes and treatments.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Memory {
    /// Representation vectors (one per row).
    pub r: Matrix,
    /// Factual outcomes (original scale).
    pub y: Vec<f64>,
    /// Treatment indicators.
    pub t: Vec<bool>,
}

impl Memory {
    /// Construct, validating lengths.
    ///
    /// # Panics
    /// On inconsistent lengths; [`Memory::try_new`] is the fallible form.
    pub fn new(r: Matrix, y: Vec<f64>, t: Vec<bool>) -> Self {
        match Self::try_new(r, y, t) {
            Ok(m) => m,
            Err(e) => panic!("Memory: {e}"),
        }
    }

    /// Construct, returning a typed error when outcome or treatment lengths
    /// disagree with the representation row count.
    pub fn try_new(r: Matrix, y: Vec<f64>, t: Vec<bool>) -> Result<Self, CerlError> {
        if y.len() != r.rows() {
            return Err(CerlError::Data(cerl_data::DataError::LengthMismatch {
                field: "y",
                expected: r.rows(),
                found: y.len(),
            }));
        }
        if t.len() != r.rows() {
            return Err(CerlError::Data(cerl_data::DataError::LengthMismatch {
                field: "t",
                expected: r.rows(),
                found: t.len(),
            }));
        }
        Ok(Self { r, y, t })
    }

    /// Empty memory with the given representation dimension.
    pub fn empty(dim: usize) -> Self {
        Self {
            r: Matrix::zeros(0, dim),
            y: Vec::new(),
            t: Vec::new(),
        }
    }

    /// Number of stored exemplars.
    pub fn len(&self) -> usize {
        self.r.rows()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Representation dimension.
    pub fn dim(&self) -> usize {
        self.r.cols()
    }

    /// Indices of treated exemplars.
    pub fn treated_indices(&self) -> Vec<usize> {
        (0..self.len()).filter(|&i| self.t[i]).collect()
    }

    /// Indices of control exemplars.
    pub fn control_indices(&self) -> Vec<usize> {
        (0..self.len()).filter(|&i| !self.t[i]).collect()
    }

    /// Subset by indices.
    pub fn select(&self, indices: &[usize]) -> Self {
        Self {
            r: self.r.select_rows(indices),
            y: indices.iter().map(|&i| self.y[i]).collect(),
            t: indices.iter().map(|&i| self.t[i]).collect(),
        }
    }

    /// Union of two memories (same representation dimension).
    ///
    /// # Panics
    /// On representation-dimension mismatch; [`Memory::try_concat`] is the
    /// fallible form.
    pub fn concat(&self, other: &Self) -> Self {
        match self.try_concat(other) {
            Ok(m) => m,
            Err(e) => panic!("Memory::concat: {e}"),
        }
    }

    /// Union of two memories, failing with
    /// [`CerlError::MemoryDimensionMismatch`] when the representation
    /// dimensions disagree.
    ///
    /// The check is unconditional — even for an empty side, whose dimension
    /// is still carried by its matrix — so replay memory restored from a
    /// corrupt or foreign snapshot is rejected here instead of silently
    /// poisoning the exemplar store (or panicking inside `vstack` mid-way
    /// through a serving process's `observe`).
    pub fn try_concat(&self, other: &Self) -> Result<Self, CerlError> {
        if self.dim() != other.dim() {
            return Err(CerlError::MemoryDimensionMismatch {
                expected: self.dim(),
                found: other.dim(),
            });
        }
        Ok(Self {
            r: self.r.vstack(&other.r),
            y: self.y.iter().chain(&other.y).copied().collect(),
            t: self.t.iter().chain(&other.t).copied().collect(),
        })
    }

    /// Reduce to at most `budget` exemplars, half per treatment group
    /// (herding per group when `use_herding`, random subsampling otherwise).
    ///
    /// When a group has fewer members than its half-budget, the group is
    /// kept whole (the other group is *not* expanded, keeping the groups as
    /// balanced as the data allows — the paper stores "the same number of
    /// feature representations from treatment and control groups").
    pub fn reduce<R: Rng + ?Sized>(&self, budget: usize, use_herding: bool, rng: &mut R) -> Self {
        if self.len() <= budget {
            return self.clone();
        }
        let per_group = budget / 2;
        let treated = self.treated_indices();
        let control = self.control_indices();

        let pick = |group: &[usize], k: usize, rng: &mut R| -> Vec<usize> {
            if group.len() <= k {
                return group.to_vec();
            }
            if use_herding {
                let sub = self.r.select_rows(group);
                herding_select(&sub, k)
                    .into_iter()
                    .map(|local| group[local])
                    .collect()
            } else {
                random_select(group.len(), k, rng)
                    .into_iter()
                    .map(|local| group[local])
                    .collect()
            }
        };

        let mut keep = pick(&treated, per_group, rng);
        keep.extend(pick(&control, per_group, rng));
        self.select(&keep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_memory(n: usize, seed: u64) -> Memory {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng as _;
        let r = Matrix::from_fn(n, 4, |_, _| rng.gen::<f64>());
        let t: Vec<bool> = (0..n).map(|_| rng.gen::<f64>() < 0.5).collect();
        let y: Vec<f64> = (0..n).map(|i| i as f64).collect();
        Memory::new(r, y, t)
    }

    #[test]
    fn construction_and_accessors() {
        let m = toy_memory(10, 1);
        assert_eq!(m.len(), 10);
        assert_eq!(m.dim(), 4);
        assert_eq!(m.treated_indices().len() + m.control_indices().len(), 10);
        assert!(!m.is_empty());
        assert!(Memory::empty(4).is_empty());
    }

    #[test]
    fn select_and_concat() {
        let m = toy_memory(6, 2);
        let s = m.select(&[0, 5]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.y, vec![0.0, 5.0]);
        let c = m.concat(&s);
        assert_eq!(c.len(), 8);
    }

    #[test]
    fn concat_rejects_dimension_mismatch() {
        let a = toy_memory(4, 10);
        let b = Memory::new(Matrix::zeros(3, 7), vec![0.0; 3], vec![false; 3]);
        match a.try_concat(&b) {
            Err(CerlError::MemoryDimensionMismatch { expected, found }) => {
                assert_eq!(expected, 4);
                assert_eq!(found, 7);
            }
            other => panic!(
                "expected MemoryDimensionMismatch, got {:?}",
                other.map(|_| ())
            ),
        }
        // Emptiness does not bypass the check: an empty memory still
        // declares a representation dimension.
        let empty = Memory::empty(7);
        assert!(a.try_concat(&empty).is_err());
        assert!(Memory::empty(4).try_concat(&a).is_ok());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn concat_panicking_wrapper_uses_typed_message() {
        let a = toy_memory(4, 11);
        let b = Memory::empty(9);
        let _ = a.concat(&b);
    }

    #[test]
    fn reduce_respects_budget_and_balance() {
        let m = toy_memory(200, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let reduced = m.reduce(40, true, &mut rng);
        assert!(reduced.len() <= 40);
        let nt = reduced.treated_indices().len();
        let nc = reduced.control_indices().len();
        assert_eq!(nt, 20);
        assert_eq!(nc, 20);
    }

    #[test]
    fn reduce_noop_when_under_budget() {
        let m = toy_memory(10, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let reduced = m.reduce(100, true, &mut rng);
        assert_eq!(reduced.len(), 10);
    }

    #[test]
    fn reduce_with_tiny_group_keeps_it_whole() {
        // 3 treated, 50 control, budget 20 → treated kept whole (3),
        // control reduced to 10.
        let mut r = Matrix::zeros(53, 2);
        for i in 0..53 {
            r[(i, 0)] = i as f64;
        }
        let mut t = vec![false; 53];
        t[0] = true;
        t[1] = true;
        t[2] = true;
        let y = vec![0.0; 53];
        let m = Memory::new(r, y, t);
        let mut rng = StdRng::seed_from_u64(7);
        let reduced = m.reduce(20, true, &mut rng);
        assert_eq!(reduced.treated_indices().len(), 3);
        assert_eq!(reduced.control_indices().len(), 10);
    }

    #[test]
    fn random_reduction_also_respects_budget() {
        let m = toy_memory(100, 8);
        let mut rng = StdRng::seed_from_u64(9);
        let reduced = m.reduce(30, false, &mut rng);
        assert!(reduced.len() <= 30);
    }
}
