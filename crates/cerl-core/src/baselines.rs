//! Classic meta-learner baselines: S-learner and T-learner.
//!
//! These are the standard regression-adjustment estimators the causal-
//! inference literature compares representation methods against (and what
//! packages like EconML ship as defaults). Both reuse the `cerl-nn`
//! substrate; under incremental data they behave like CFR-B (fine-tune on
//! each newly arrived domain), providing additional reference points beyond
//! the paper's CFR-A/B/C lineup.
//!
//! * **S-learner** — a single network `f(x, t)` with the treatment appended
//!   as an input feature; `ÎTE(x) = f(x, 1) − f(x, 0)`.
//! * **T-learner** — two networks `f₁(x)`, `f₀(x)` fit on the treated and
//!   control subsets respectively; `ÎTE(x) = f₁(x) − f₀(x)`.

use crate::config::CerlConfig;
use crate::error::CerlError;
use crate::strategies::ContinualEstimator;
use crate::trainer::{minibatches, validate_stage_inputs, EarlyStopper, TrainReport};
use cerl_data::{CausalDataset, OutcomeScaler, Standardizer};
use cerl_math::Matrix;
use cerl_nn::compose::mse;
use cerl_nn::{Activation, Adam, Graph, Mlp, Optimizer, ParamStore};
use cerl_rand::seeds;

/// Append the treatment indicator as one extra covariate column.
fn augment_with_treatment(x: &Matrix, t: &[bool]) -> Matrix {
    let tcol = Matrix::from_fn(x.rows(), 1, |i, _| if t[i] { 1.0 } else { 0.0 });
    x.hstack(&tcol)
}

#[allow(clippy::too_many_arguments)]
fn train_regressor(
    store: &mut ParamStore,
    net: &Mlp,
    x: &Matrix,
    y: &[f64],
    xv: &Matrix,
    yv: &[f64],
    cfg: &CerlConfig,
    seed: u64,
) -> TrainReport {
    let params = net.params();
    let mut opt = Adam::new(cfg.train.learning_rate);
    let mut stopper = EarlyStopper::new(params.clone(), cfg.train.patience);
    let mut rng = seeds::rng(seed, 0);
    let y_mat = Matrix::col_vector(y);

    let val_loss = |store: &ParamStore| -> f64 {
        if xv.rows() == 0 {
            return 0.0;
        }
        let mut g = Graph::new();
        let xin = g.input(xv.clone());
        let pred = net.forward(&mut g, store, xin);
        let pv = g.value(pred).col(0);
        pv.iter()
            .zip(yv)
            .map(|(p, t)| (p - t) * (p - t))
            .sum::<f64>()
            / xv.rows() as f64
    };

    let mut final_train_loss = f64::NAN;
    let mut epochs_run = 0;
    for _ in 0..cfg.train.epochs {
        epochs_run += 1;
        let mut epoch_loss = 0.0;
        let batches = minibatches(
            x.rows(),
            cfg.train.batch_size.min(x.rows().max(2)),
            &mut rng,
        );
        let n_batches = batches.len();
        for batch in batches {
            let xb = x.select_rows(&batch);
            let yb = y_mat.select_rows(&batch);
            let mut g = Graph::new();
            let xin = g.input(xb);
            let yin = g.input(yb);
            let pred = net.forward(&mut g, store, xin);
            let loss = mse(&mut g, pred, yin);
            epoch_loss += g.scalar(loss);
            let mut grads = g.backward(loss);
            if cfg.train.clip_norm > 0.0 {
                grads.clip_global_norm(cfg.train.clip_norm);
            }
            opt.step(store, &grads, &params);
        }
        final_train_loss = epoch_loss / n_batches.max(1) as f64;
        if stopper.update(store, val_loss(store)) {
            break;
        }
    }
    stopper.restore_best(store);
    TrainReport {
        epochs_run,
        best_val_loss: stopper.best_loss(),
        final_train_loss,
    }
}

/// S-learner: one regression network over `(x, t)`.
pub struct SLearner {
    cfg: CerlConfig,
    store: ParamStore,
    net: Mlp,
    x_std: Option<Standardizer>,
    y_scale: Option<OutcomeScaler>,
    seed: u64,
    d_in: usize,
}

impl SLearner {
    /// Create for `d_in`-dimensional covariates.
    pub fn new(d_in: usize, cfg: CerlConfig, seed: u64) -> Self {
        let mut store = ParamStore::new();
        let mut rng = seeds::rng_labeled(seed, "s-learner");
        let mut dims = vec![d_in + 1];
        dims.extend_from_slice(&cfg.net.repr_hidden);
        dims.push(cfg.net.repr_dim);
        dims.extend_from_slice(&cfg.net.head_hidden);
        dims.push(1);
        let net = Mlp::new(
            &mut store,
            &mut rng,
            &dims,
            cfg.net.activation.to_activation(),
            Activation::Identity,
            "s",
        );
        Self {
            cfg,
            store,
            net,
            x_std: None,
            y_scale: None,
            seed,
            d_in,
        }
    }

    /// Train (or fine-tune) on one dataset.
    ///
    /// # Panics
    /// On invalid input; [`SLearner::try_train`] is the fallible form.
    pub fn train(&mut self, train: &CausalDataset, val: &CausalDataset) -> TrainReport {
        match self.try_train(train, val) {
            Ok(report) => report,
            Err(e) => panic!("SLearner::train: {e}"),
        }
    }

    /// Train (or fine-tune) on one dataset, reporting malformed input as a
    /// typed error.
    pub fn try_train(
        &mut self,
        train: &CausalDataset,
        val: &CausalDataset,
    ) -> Result<TrainReport, CerlError> {
        validate_stage_inputs(train, val, self.d_in)?;
        let x_std = Standardizer::try_fit_clipped(&train.x, crate::cfr::Z_CLIP)?;
        let y_scale = OutcomeScaler::try_fit(&train.y)?;
        let xs = augment_with_treatment(&x_std.try_transform(&train.x)?, &train.t);
        let ys = y_scale.transform(&train.y);
        let xv = augment_with_treatment(&x_std.try_transform(&val.x)?, &val.t);
        let yv = y_scale.transform(&val.y);
        self.x_std = Some(x_std);
        self.y_scale = Some(y_scale);
        Ok(train_regressor(
            &mut self.store,
            &self.net,
            &xs,
            &ys,
            &xv,
            &yv,
            &self.cfg,
            self.seed,
        ))
    }
}

impl ContinualEstimator for SLearner {
    fn name(&self) -> String {
        "S-learner".into()
    }

    fn try_observe(&mut self, train: &CausalDataset, val: &CausalDataset) -> Result<(), CerlError> {
        self.try_train(train, val).map(|_| ())
    }

    fn try_predict_ite(&self, x: &Matrix) -> Result<Vec<f64>, CerlError> {
        let (std, scale) = match (self.x_std.as_ref(), self.y_scale.as_ref()) {
            (Some(std), Some(scale)) => (std, scale),
            _ => return Err(CerlError::NotTrained),
        };
        let xs = std.try_transform(x)?;
        let all_true = vec![true; x.rows()];
        let all_false = vec![false; x.rows()];
        let eval = |t: &[bool]| -> Vec<f64> {
            let mut g = Graph::new();
            let xin = g.input(augment_with_treatment(&xs, t));
            let pred = self.net.forward(&mut g, &self.store, xin);
            scale.inverse(&g.value(pred).col(0))
        };
        let y1 = eval(&all_true);
        let y0 = eval(&all_false);
        Ok(y1.iter().zip(&y0).map(|(a, b)| a - b).collect())
    }
}

/// T-learner: separate regression networks per treatment arm.
pub struct TLearner {
    cfg: CerlConfig,
    store: ParamStore,
    net0: Mlp,
    net1: Mlp,
    x_std: Option<Standardizer>,
    y_scale: Option<OutcomeScaler>,
    seed: u64,
    d_in: usize,
}

impl TLearner {
    /// Create for `d_in`-dimensional covariates.
    pub fn new(d_in: usize, cfg: CerlConfig, seed: u64) -> Self {
        let mut store = ParamStore::new();
        let mut rng = seeds::rng_labeled(seed, "t-learner");
        let mut dims = vec![d_in];
        dims.extend_from_slice(&cfg.net.repr_hidden);
        dims.push(cfg.net.repr_dim);
        dims.extend_from_slice(&cfg.net.head_hidden);
        dims.push(1);
        let act = cfg.net.activation.to_activation();
        let net0 = Mlp::new(&mut store, &mut rng, &dims, act, Activation::Identity, "t0");
        let net1 = Mlp::new(&mut store, &mut rng, &dims, act, Activation::Identity, "t1");
        Self {
            cfg,
            store,
            net0,
            net1,
            x_std: None,
            y_scale: None,
            seed,
            d_in,
        }
    }

    /// Train (or fine-tune) on one dataset.
    ///
    /// # Panics
    /// On invalid input; [`TLearner::try_train`] is the fallible form.
    pub fn train(&mut self, train: &CausalDataset, val: &CausalDataset) {
        if let Err(e) = self.try_train(train, val) {
            panic!("TLearner::train: {e}");
        }
    }

    /// Train (or fine-tune) on one dataset, reporting malformed input as a
    /// typed error.
    pub fn try_train(
        &mut self,
        train: &CausalDataset,
        val: &CausalDataset,
    ) -> Result<(), CerlError> {
        validate_stage_inputs(train, val, self.d_in)?;
        let x_std = Standardizer::try_fit_clipped(&train.x, crate::cfr::Z_CLIP)?;
        let y_scale = OutcomeScaler::try_fit(&train.y)?;
        let xs = x_std.try_transform(&train.x)?;
        let ys = y_scale.transform(&train.y);
        let xv = x_std.try_transform(&val.x)?;
        let yv = y_scale.transform(&val.y);

        for (arm, net) in [(false, &self.net0), (true, &self.net1)] {
            let idx: Vec<usize> = (0..train.n()).filter(|&i| train.t[i] == arm).collect();
            if idx.len() < 4 {
                continue; // degenerate arm: keep previous parameters
            }
            let vidx: Vec<usize> = (0..val.n()).filter(|&i| val.t[i] == arm).collect();
            let ya: Vec<f64> = idx.iter().map(|&i| ys[i]).collect();
            let yva: Vec<f64> = vidx.iter().map(|&i| yv[i]).collect();
            train_regressor(
                &mut self.store,
                net,
                &xs.select_rows(&idx),
                &ya,
                &xv.select_rows(&vidx),
                &yva,
                &self.cfg,
                seeds::derive(self.seed, arm as u64),
            );
        }
        self.x_std = Some(x_std);
        self.y_scale = Some(y_scale);
        Ok(())
    }
}

impl ContinualEstimator for TLearner {
    fn name(&self) -> String {
        "T-learner".into()
    }

    fn try_observe(&mut self, train: &CausalDataset, val: &CausalDataset) -> Result<(), CerlError> {
        self.try_train(train, val)
    }

    fn try_predict_ite(&self, x: &Matrix) -> Result<Vec<f64>, CerlError> {
        let (std, scale) = match (self.x_std.as_ref(), self.y_scale.as_ref()) {
            (Some(std), Some(scale)) => (std, scale),
            _ => return Err(CerlError::NotTrained),
        };
        let xs = std.try_transform(x)?;
        let eval = |net: &Mlp| -> Vec<f64> {
            let mut g = Graph::new();
            let xin = g.input(xs.clone());
            let pred = net.forward(&mut g, &self.store, xin);
            scale.inverse(&g.value(pred).col(0))
        };
        let y1 = eval(&self.net1);
        let y0 = eval(&self.net0);
        Ok(y1.iter().zip(&y0).map(|(a, b)| a - b).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::EffectMetrics;
    use cerl_data::{SyntheticConfig, SyntheticGenerator};
    use rand::SeedableRng;

    fn quick_data() -> (CausalDataset, CausalDataset, CausalDataset) {
        let gen = SyntheticGenerator::new(
            SyntheticConfig {
                n_units: 600,
                noise_sd: 0.4,
                ..SyntheticConfig::small()
            },
            9,
        );
        let data = gen.domain(0, 0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let s = data.split(0.6, 0.2, &mut rng);
        (s.train, s.val, s.test)
    }

    fn quick_cfg() -> CerlConfig {
        let mut cfg = CerlConfig::quick_test();
        cfg.train.epochs = 30;
        cfg
    }

    #[test]
    fn s_learner_beats_trivial() {
        let (train, val, test) = quick_data();
        let mut s = SLearner::new(train.dim(), quick_cfg(), 3);
        let report = s.train(&train, &val);
        assert!(report.best_val_loss.is_finite());
        let m = EffectMetrics::on_dataset(&test, &s.predict_ite(&test.x));
        let trivial = EffectMetrics::on_dataset(&test, &vec![0.0; test.n()]);
        assert!(m.sqrt_pehe < trivial.sqrt_pehe, "{m:?} vs {trivial:?}");
    }

    #[test]
    fn t_learner_beats_trivial_on_ate() {
        // T-learner's per-arm nets see only ~180 units each here, so its
        // PEHE carries the well-known regularization-bias penalty; its ATE,
        // however, must clearly beat the trivial zero estimator.
        let (train, val, test) = quick_data();
        let mut t = TLearner::new(train.dim(), quick_cfg(), 4);
        t.train(&train, &val);
        let m = EffectMetrics::on_dataset(&test, &t.predict_ite(&test.x));
        let trivial = EffectMetrics::on_dataset(&test, &vec![0.0; test.n()]);
        assert!(
            m.ate_error < trivial.ate_error * 0.7,
            "{m:?} vs {trivial:?}"
        );
        assert!(
            m.sqrt_pehe < trivial.sqrt_pehe * 1.3,
            "{m:?} vs {trivial:?}"
        );
    }

    #[test]
    fn both_implement_the_estimator_interface() {
        let (train, val, test) = quick_data();
        let mut cfg = quick_cfg();
        cfg.train.epochs = 5;
        let mut lineup: Vec<Box<dyn ContinualEstimator>> = vec![
            Box::new(SLearner::new(train.dim(), cfg.clone(), 5)),
            Box::new(TLearner::new(train.dim(), cfg, 5)),
        ];
        for est in &mut lineup {
            est.observe(&train, &val);
            let m = est.evaluate(&test);
            assert!(m.sqrt_pehe.is_finite(), "{}", est.name());
        }
        assert_eq!(lineup[0].name(), "S-learner");
        assert_eq!(lineup[1].name(), "T-learner");
    }

    #[test]
    fn t_learner_skips_degenerate_arm() {
        // All-control data: the treated net keeps its init; predictions
        // remain finite.
        let (mut train, mut val, test) = quick_data();
        train.t.iter_mut().for_each(|t| *t = false);
        train.y = train.mu0.clone();
        val.t.iter_mut().for_each(|t| *t = false);
        let mut t = TLearner::new(train.dim(), quick_cfg(), 6);
        t.train(&train, &val);
        let ite = t.predict_ite(&test.x);
        assert!(ite.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn s_learner_ite_consistency() {
        // ITE from predict_ite equals f(x,1) − f(x,0) by construction;
        // check it differs across units (treatment column matters).
        let (train, val, test) = quick_data();
        let mut s = SLearner::new(train.dim(), quick_cfg(), 7);
        s.train(&train, &val);
        let ite = s.predict_ite(&test.x);
        let spread = cerl_math::stats::std_dev(&ite);
        assert!(spread > 0.0, "S-learner predicts a constant effect");
    }
}
