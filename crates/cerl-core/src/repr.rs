//! Selective and balanced representation network `g_w : X → R`
//! (paper §III-A.1).
//!
//! A stack of dense hidden layers followed by a **cosine-normalized** output
//! layer (Eq. 2) bounds every representation coordinate in `[-1, 1]`,
//! which is what neutralizes magnitude differences between treatment groups
//! and between data domains. The elastic-net penalty on the weights (Eq. 1)
//! implements "deep feature selection"; the penalty itself is assembled by
//! the trainers from [`ReprNet::weights`].

use crate::config::NetConfig;
use cerl_math::Matrix;
use cerl_nn::{Activation, CosineDense, Dense, Graph, NodeId, ParamId, ParamStore};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Representation network: hidden dense layers + (cosine-normalized or
/// plain) output layer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReprNet {
    hidden: Vec<Dense>,
    out_cosine: Option<CosineDense>,
    out_plain: Option<Dense>,
    out_dim: usize,
}

impl ReprNet {
    /// Build from an input dimension and [`NetConfig`]; `cosine_norm`
    /// selects the paper's Eq. 2 output layer (the "w/o cosine norm"
    /// ablation passes `false`).
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        rng: &mut R,
        d_in: usize,
        cfg: &NetConfig,
        cosine_norm: bool,
        name: &str,
    ) -> Self {
        let act = cfg.activation.to_activation();
        let mut hidden = Vec::with_capacity(cfg.repr_hidden.len());
        let mut prev = d_in;
        for (i, &h) in cfg.repr_hidden.iter().enumerate() {
            hidden.push(Dense::new(
                store,
                rng,
                prev,
                h,
                act,
                &format!("{name}.h{i}"),
            ));
            prev = h;
        }
        let (out_cosine, out_plain) = if cosine_norm {
            // σ(cos(w, x)): sigmoid over the bounded pre-activation, per Eq. 2.
            (
                Some(CosineDense::new(
                    store,
                    rng,
                    prev,
                    cfg.repr_dim,
                    Activation::Sigmoid,
                    &format!("{name}.out"),
                )),
                None,
            )
        } else {
            (
                None,
                Some(Dense::new(
                    store,
                    rng,
                    prev,
                    cfg.repr_dim,
                    Activation::Sigmoid,
                    &format!("{name}.out"),
                )),
            )
        };
        Self {
            hidden,
            out_cosine,
            out_plain,
            out_dim: cfg.repr_dim,
        }
    }

    /// Representation dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Whether an output layer (cosine or plain) is installed. Always true
    /// for constructed networks; deserialized state is checked against this
    /// by the snapshot validator.
    pub fn has_output_layer(&self) -> bool {
        self.out_cosine.is_some() || self.out_plain.is_some()
    }

    /// Hidden dense layers in forward order (for inference-plan compilers).
    pub(crate) fn hidden(&self) -> &[Dense] {
        &self.hidden
    }

    /// Cosine-normalized output layer, when this is the cosine variant.
    pub(crate) fn out_cosine(&self) -> Option<&CosineDense> {
        self.out_cosine.as_ref()
    }

    /// Plain dense output layer, when this is the ablation variant.
    pub(crate) fn out_plain(&self) -> Option<&Dense> {
        self.out_plain.as_ref()
    }

    /// Forward pass on the tape.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: NodeId) -> NodeId {
        let mut h = x;
        for layer in &self.hidden {
            h = layer.forward(g, store, h);
        }
        match (&self.out_cosine, &self.out_plain) {
            (Some(c), _) => c.forward(g, store, h),
            (None, Some(p)) => p.forward(g, store, h),
            // Construction always installs exactly one output layer, and
            // the snapshot validator rejects documents without one; fail
            // loudly rather than silently serving hidden-layer activations.
            (None, None) => panic!("ReprNet: no output layer installed"),
        }
    }

    /// Embed a covariate matrix without tracking gradients (builds a
    /// throwaway tape).
    pub fn embed(&self, store: &ParamStore, x: &Matrix) -> Matrix {
        let mut g = Graph::new();
        let xin = g.input(x.clone());
        let r = self.forward(&mut g, store, xin);
        g.value(r).clone()
    }

    /// All trainable parameters.
    pub fn params(&self) -> Vec<ParamId> {
        let mut p: Vec<ParamId> = self.hidden.iter().flat_map(Dense::params).collect();
        if let Some(c) = &self.out_cosine {
            p.extend(c.params());
        }
        if let Some(d) = &self.out_plain {
            p.extend(d.params());
        }
        p
    }

    /// Weight matrices only (elastic-net targets; biases excluded).
    pub fn weights(&self) -> Vec<ParamId> {
        let mut w: Vec<ParamId> = self.hidden.iter().map(Dense::weight).collect();
        if let Some(c) = &self.out_cosine {
            w.push(c.weight());
        }
        if let Some(d) = &self.out_plain {
            w.push(d.weight());
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg() -> NetConfig {
        NetConfig {
            repr_hidden: vec![12, 8],
            repr_dim: 6,
            head_hidden: vec![8],
            activation: crate::config::ActivationKind::Elu,
            transform_hidden: vec![8],
        }
    }

    #[test]
    fn output_shape_and_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let net = ReprNet::new(&mut store, &mut rng, 10, &cfg(), true, "g");
        assert_eq!(net.out_dim(), 6);
        let x = Matrix::from_fn(7, 10, |i, j| ((i + j) as f64 * 13.7).sin() * 1e3);
        let r = net.embed(&store, &x);
        assert_eq!(r.shape(), (7, 6));
        // σ(cos(...)) ∈ (0, 1); bounded despite huge inputs.
        assert!(r.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn cosine_output_bounded_under_magnitude_shift() {
        // Same direction, wildly different magnitude → nearly identical
        // representations (the point of cosine normalization).
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let net = ReprNet::new(&mut store, &mut rng, 5, &cfg(), true, "g");
        let x1 = Matrix::from_fn(1, 5, |_, j| (j as f64 + 1.0) * 0.1);
        // ELU is not positively homogeneous, so representations won't be
        // exactly equal, but they must stay bounded and close in direction.
        let x1000 = x1.scale(1000.0);
        let r1 = net.embed(&store, &x1);
        let r1000 = net.embed(&store, &x1000);
        assert!(r1000.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert!(r1.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn plain_ablation_variant() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let net = ReprNet::new(&mut store, &mut rng, 10, &cfg(), false, "g");
        let x = Matrix::ones(4, 10);
        let r = net.embed(&store, &x);
        assert_eq!(r.shape(), (4, 6));
        // Weights: 2 hidden + 1 output.
        assert_eq!(net.weights().len(), 3);
        // Params: hidden (w+b each) + output dense (w+b).
        assert_eq!(net.params().len(), 6);
    }

    #[test]
    fn cosine_variant_has_no_output_bias() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut store = ParamStore::new();
        let net = ReprNet::new(&mut store, &mut rng, 10, &cfg(), true, "g");
        assert_eq!(net.params().len(), 5); // 2×(w+b) hidden + cosine w
        assert_eq!(net.weights().len(), 3);
    }

    #[test]
    fn gradients_flow_to_all_weights() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut store = ParamStore::new();
        let net = ReprNet::new(&mut store, &mut rng, 8, &cfg(), true, "g");
        let mut g = Graph::new();
        let x = g.input(Matrix::from_fn(6, 8, |i, j| {
            ((i * 8 + j) as f64 * 0.37).sin()
        }));
        let r = net.forward(&mut g, &store, x);
        let sq = g.square(r);
        let loss = g.mean(sq);
        let grads = g.backward(loss);
        for pid in net.params() {
            let gp = grads.param_grad(pid);
            assert!(gp.is_some(), "no grad for {}", store.name(pid));
            assert!(
                gp.unwrap().max_abs() > 0.0,
                "zero grad for {}",
                store.name(pid)
            );
        }
    }
}
