//! Opt-in `f32` inference for serving.
//!
//! Training is always `f64` — optimizer dynamics, loss landscapes and the
//! continual-regularization terms are far more rounding-sensitive than a
//! single forward pass. Serving, by contrast, reads frozen weights, and a
//! whole fleet of replicas answering the same request should agree
//! *bitwise* — which only holds if they agree on the precision. This
//! module makes precision an explicit, per-engine property instead of an
//! implementation accident:
//!
//! * [`PrecisionMode`] selects how an engine answers predict requests.
//!   [`PrecisionMode::F64`] (the default) runs the training-precision
//!   forward pass. [`PrecisionMode::F32`] runs a precompiled
//!   single-precision replica of the same network — roughly twice the
//!   SIMD lanes per cycle and half the weight-matrix footprint.
//! * `F32Plan` is that replica: weights narrowed once at compile time
//!   (including the cosine output layer's column normalization, which is
//!   input-independent), plus `f32` re-statements of the standardize →
//!   hidden → cosine/plain output → heads → outcome-rescale pipeline.
//!
//! # Determinism contract (per precision mode)
//!
//! Within one precision mode, prediction is **bitwise deterministic and
//! row-independent**: every output row is a pure function of its input
//! row and the (mode-narrowed) weights, with a fixed accumulation order
//! that does not depend on the batch it rides in. Consequently batched ==
//! unbatched == chunked == scatter-gather, bitwise, *within a mode* — the
//! same contract the `f64` path has always had, now stated per mode.
//! Across modes, results differ by narrowing error (no contract beyond
//! approximate agreement); a fleet must therefore pin one mode per
//! published engine version, which is exactly how
//! [`CerlEngine`](crate::engine::CerlEngine) threads it.

use crate::cfr::CfrModel;
use crate::error::CerlError;
use cerl_data::Standardizer;
use cerl_math::Matrix;
use cerl_nn::layers::{Activation, Dense, Mlp};
use cerl_nn::params::ParamStore;

/// The precision an engine answers predict requests in.
///
/// See the [module docs](self) for the determinism contract. The mode is
/// a *serving* property: it is not persisted in snapshots (a restored
/// engine defaults to [`PrecisionMode::F64`]) and has no effect on
/// training or on [`embed`](crate::engine::CerlEngine::embed), which
/// always run in `f64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PrecisionMode {
    /// Training-precision (`f64`) inference — the default.
    #[default]
    F64,
    /// Single-precision inference from a precompiled `F32Plan`.
    F32,
}

impl PrecisionMode {
    /// Stable lowercase label (`"f64"` / `"f32"`) for metrics and logs.
    pub fn as_str(self) -> &'static str {
        match self {
            PrecisionMode::F64 => "f64",
            PrecisionMode::F32 => "f32",
        }
    }
}

impl std::fmt::Display for PrecisionMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// `f32` replica of the normalization threshold used by the `f64` graph
/// ops (`cerl-nn`'s `NORM_EPS = 1e-12`): a row or column whose L2 norm is
/// at or below this is zeroed instead of normalized. `1e-12` is exactly
/// representable territory for `f32` (min normal ≈ `1.18e-38`), so the
/// threshold semantics carry over unchanged.
const NORM_EPS_F32: f32 = 1e-12;

/// Fused multiply-add in `f32` under the same compile-time policy as the
/// `f64` GEMM in `cerl-math`: with hardware FMA, `mul_add` is one
/// instruction (one rounding); without it, it would be a libm call per
/// element, so the separate multiply-and-add is kept. Bitwise determinism
/// is per-build either way.
#[inline(always)]
fn fma32(a: f32, b: f32, c: f32) -> f32 {
    #[cfg(target_feature = "fma")]
    {
        a.mul_add(b, c)
    }
    #[cfg(not(target_feature = "fma"))]
    {
        a * b + c
    }
}

/// Row-major `f32` GEMM accumulating into `out += a · b`, where `a` is
/// `m×k` (`m = a.len()/k`), `b` is `k×n`, `out` is `m×n`.
///
/// `ikj` loop order: each output row is produced from its own `a` row
/// with terms added in ascending `p` — row-independent and batch-
/// independent by construction, which is what makes the per-mode bitwise
/// contract (module docs) hold through chunking and scatter.
fn gemm32(a: &[f32], k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    if n == 0 || k == 0 {
        return;
    }
    for (arow, orow) in a.chunks_exact(k).zip(out.chunks_exact_mut(n)) {
        for (&av, brow) in arow.iter().zip(b.chunks_exact(n)) {
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o = fma32(av, bv, *o);
            }
        }
    }
}

/// Numerically stable logistic sigmoid, the `f32` restatement of
/// `cerl_math::special::sigmoid`.
#[inline]
fn sigmoid32(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// `f32` restatement of [`Activation`].
#[derive(Debug, Clone, Copy)]
enum ActF32 {
    Identity,
    Relu,
    Elu(f32),
    Sigmoid,
    Tanh,
}

impl ActF32 {
    fn from_activation(act: Activation) -> Self {
        match act {
            Activation::Identity => ActF32::Identity,
            Activation::Relu => ActF32::Relu,
            Activation::Elu(alpha) => ActF32::Elu(alpha as f32),
            Activation::Sigmoid => ActF32::Sigmoid,
            Activation::Tanh => ActF32::Tanh,
        }
    }

    #[inline]
    fn apply(self, x: f32) -> f32 {
        match self {
            ActF32::Identity => x,
            ActF32::Relu => x.max(0.0),
            ActF32::Elu(alpha) => {
                if x > 0.0 {
                    x
                } else {
                    alpha * (x.exp() - 1.0)
                }
            }
            ActF32::Sigmoid => sigmoid32(x),
            ActF32::Tanh => x.tanh(),
        }
    }
}

/// One dense layer, weights narrowed: `act(x·W + b)`.
#[derive(Debug, Clone)]
struct DenseF32 {
    /// `d_in×d_out`, row-major.
    w: Vec<f32>,
    /// `d_out` biases.
    b: Vec<f32>,
    d_in: usize,
    d_out: usize,
    act: ActF32,
}

impl DenseF32 {
    fn compile(store: &ParamStore, layer: &Dense) -> Self {
        let w = store.value(layer.weight());
        let b = store.value(layer.bias());
        Self {
            d_in: w.rows(),
            d_out: w.cols(),
            w: narrow(w.as_slice()),
            b: narrow(b.as_slice()),
            act: ActF32::from_activation(layer.activation()),
        }
    }

    /// Forward an `m×d_in` row-major batch.
    fn forward(&self, x: &[f32], m: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * self.d_out];
        if self.d_out == 0 {
            return out;
        }
        gemm32(x, self.d_in, &self.w, self.d_out, &mut out);
        for orow in out.chunks_exact_mut(self.d_out) {
            for (o, &bias) in orow.iter_mut().zip(&self.b) {
                *o = self.act.apply(*o + bias);
            }
        }
        out
    }
}

/// The representation output layer in `f32`.
#[derive(Debug, Clone)]
enum OutF32 {
    /// Cosine-normalized output: `act(row_l2_normalize(x) · Ŵ)` where `Ŵ`
    /// is the column-L2-normalized weight matrix, precomputed in `f32` at
    /// compile time (it does not depend on the input).
    Cosine {
        /// `d_in×d_out` column-normalized weights, row-major.
        w: Vec<f32>,
        d_in: usize,
        d_out: usize,
        act: ActF32,
    },
    /// Plain dense output (the no-cosine ablation variant).
    Plain(DenseF32),
}

impl OutF32 {
    fn forward(&self, x: &[f32], m: usize) -> Vec<f32> {
        match self {
            OutF32::Plain(dense) => dense.forward(x, m),
            OutF32::Cosine {
                w,
                d_in,
                d_out,
                act,
            } => {
                // Row-normalize a scratch copy of the input (invariant:
                // `d_in >= 1` — the engine builder rejects a zero
                // covariate dimension, and every layer has >= 1 unit).
                let mut xn = x.to_vec();
                for row in xn.chunks_exact_mut(*d_in) {
                    let norm = row.iter().map(|&v| v * v).sum::<f32>().sqrt();
                    if norm > NORM_EPS_F32 {
                        for v in row.iter_mut() {
                            *v /= norm;
                        }
                    } else {
                        for v in row.iter_mut() {
                            *v = 0.0;
                        }
                    }
                }
                let mut out = vec![0.0f32; m * d_out];
                gemm32(&xn, *d_in, w, *d_out, &mut out);
                for v in out.iter_mut() {
                    *v = act.apply(*v);
                }
                out
            }
        }
    }
}

fn narrow(values: &[f64]) -> Vec<f32> {
    values.iter().map(|&v| v as f32).collect()
}

fn compile_mlp(store: &ParamStore, mlp: &Mlp) -> Vec<DenseF32> {
    mlp.layers()
        .iter()
        .map(|layer| DenseF32::compile(store, layer))
        .collect()
}

/// Precompiled single-precision inference plan for one trained model.
///
/// Compiled once per published engine version (weights are frozen at
/// publish), then shared read-only by every request thread. See the
/// [module docs](self) for what the plan promises — and does not — about
/// agreement with the `f64` path.
#[derive(Debug, Clone)]
pub(crate) struct F32Plan {
    d_in: usize,
    /// Standardizer in `f32`: `(x−μ)/σ` then the symmetric z-clip.
    means: Vec<f32>,
    stds: Vec<f32>,
    clip: Option<f32>,
    hidden: Vec<DenseF32>,
    out: OutF32,
    h0: Vec<DenseF32>,
    h1: Vec<DenseF32>,
    /// Outcome rescale `y·sd + mean`, applied in `f32` before widening.
    y_mean: f32,
    y_sd: f32,
}

impl F32Plan {
    /// Narrow a trained model into a single-precision plan.
    ///
    /// Fails with [`CerlError::NotTrained`] before the first observed
    /// domain (no fitted standardizer / outcome scaler exists yet).
    pub(crate) fn compile(model: &CfrModel) -> Result<Self, CerlError> {
        let x_std: &Standardizer = model.x_std().ok_or(CerlError::NotTrained)?;
        let y_scale = model.y_scale().ok_or(CerlError::NotTrained)?;
        let store = model.store();
        let repr = model.repr();

        let out = match (repr.out_cosine(), repr.out_plain()) {
            (Some(cosine), _) => {
                let w = store.value(cosine.weight());
                let (d_in, d_out) = w.shape();
                let mut w32 = narrow(w.as_slice());
                // Column L2 norms in f32, rows ascending — fixed order,
                // computed once (input-independent).
                for j in 0..d_out {
                    let mut sum = 0.0f32;
                    for row in w32.chunks_exact(d_out) {
                        // panic-ok: j < d_out == row.len() by chunking.
                        let v = row[j];
                        sum += v * v;
                    }
                    let norm = sum.sqrt();
                    for row in w32.chunks_exact_mut(d_out) {
                        // panic-ok: j < d_out == row.len() by chunking.
                        let v = &mut row[j];
                        if norm > NORM_EPS_F32 {
                            *v /= norm;
                        } else {
                            *v = 0.0;
                        }
                    }
                }
                OutF32::Cosine {
                    w: w32,
                    d_in,
                    d_out,
                    act: ActF32::from_activation(cosine.activation()),
                }
            }
            (None, Some(plain)) => OutF32::Plain(DenseF32::compile(store, plain)),
            // Construction always installs exactly one output layer and
            // the snapshot validator enforces it on restore.
            // panic-ok: unreachable by the invariant above.
            (None, None) => unreachable!("ReprNet without an output layer"),
        };

        Ok(Self {
            d_in: model.d_in(),
            means: narrow(x_std.means()),
            stds: narrow(x_std.stds()),
            clip: x_std.clip().map(|c| c as f32),
            hidden: repr
                .hidden()
                .iter()
                .map(|l| DenseF32::compile(store, l))
                .collect(),
            out,
            h0: compile_mlp(store, model.heads().h0()),
            h1: compile_mlp(store, model.heads().h1()),
            y_mean: y_scale.mean() as f32,
            y_sd: y_scale.sd() as f32,
        })
    }

    /// Predict both potential outcomes `(ŷ₀, ŷ₁)` in `f32`, widened to
    /// `f64` at the boundary. Row-independent (module docs).
    pub(crate) fn predict_potential_outcomes(
        &self,
        x: &Matrix,
    ) -> Result<(Vec<f64>, Vec<f64>), CerlError> {
        if x.cols() != self.d_in {
            return Err(CerlError::DimensionMismatch {
                expected: self.d_in,
                found: x.cols(),
            });
        }
        let m = x.rows();
        if m == 0 {
            return Ok((Vec::new(), Vec::new()));
        }

        // Narrow + standardize + clip, all in f32.
        let mut h = Vec::with_capacity(m * self.d_in);
        for i in 0..m {
            for ((&v, &mu), &sd) in x.row(i).iter().zip(&self.means).zip(&self.stds) {
                let mut z = (v as f32 - mu) / sd;
                if let Some(c) = self.clip {
                    z = z.clamp(-c, c);
                }
                h.push(z);
            }
        }

        for layer in &self.hidden {
            h = layer.forward(&h, m);
        }
        let r = self.out.forward(&h, m);

        let y0 = Self::head_forward(&self.h0, &r, m);
        let y1 = Self::head_forward(&self.h1, &r, m);
        let widen = |y: Vec<f32>| -> Vec<f64> {
            y.into_iter()
                .map(|v| f64::from(fma32(v, self.y_sd, self.y_mean)))
                .collect()
        };
        Ok((widen(y0), widen(y1)))
    }

    /// Predicted individual treatment effects `ŷ₁ − ŷ₀` (widened `f64`).
    pub(crate) fn predict_ite(&self, x: &Matrix) -> Result<Vec<f64>, CerlError> {
        let (y0, y1) = self.predict_potential_outcomes(x)?;
        Ok(y1.iter().zip(&y0).map(|(&a, &b)| a - b).collect())
    }

    /// Run one head MLP over the `m×repr_dim` batch; the final layer has
    /// one unit, so the result is the `m` scalar outcomes.
    fn head_forward(layers: &[DenseF32], r: &[f32], m: usize) -> Vec<f32> {
        let mut h = r.to_vec();
        for layer in layers {
            h = layer.forward(&h, m);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_labels_are_stable() {
        assert_eq!(PrecisionMode::F64.as_str(), "f64");
        assert_eq!(PrecisionMode::F32.as_str(), "f32");
        assert_eq!(PrecisionMode::default(), PrecisionMode::F64);
        assert_eq!(format!("{}", PrecisionMode::F32), "f32");
    }

    #[test]
    fn gemm32_matches_reference_and_is_row_independent() {
        // 3×4 times 4×2, reference computed per element.
        let a: Vec<f32> = (0..12).map(|i| i as f32 * 0.5 - 2.0).collect();
        let b: Vec<f32> = (0..8).map(|i| 1.0 - i as f32 * 0.25).collect();
        let mut full = vec![0.0f32; 6];
        gemm32(&a, 4, &b, 2, &mut full);
        for i in 0..3 {
            let mut row = vec![0.0f32; 2];
            gemm32(&a[i * 4..(i + 1) * 4], 4, &b, 2, &mut row);
            assert_eq!(
                row.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                full[i * 2..(i + 1) * 2]
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                "row {i} depends on its batch"
            );
        }
    }

    #[test]
    fn gemm32_zero_dims_are_noops() {
        let mut out = vec![0.0f32; 0];
        gemm32(&[], 0, &[], 3, &mut out); // k == 0
        gemm32(&[], 4, &[], 0, &mut out); // n == 0
    }

    #[test]
    fn sigmoid32_is_stable_at_extremes() {
        assert_eq!(sigmoid32(0.0), 0.5);
        assert!((sigmoid32(100.0) - 1.0).abs() < 1e-6);
        assert!(sigmoid32(-100.0).abs() < 1e-6);
        assert!(sigmoid32(-100.0) >= 0.0, "must not overflow to NaN");
    }

    #[test]
    fn activations_match_f64_semantics() {
        for &x in &[-2.0f32, -0.5, 0.0, 0.5, 2.0] {
            assert_eq!(ActF32::Identity.apply(x), x);
            assert_eq!(ActF32::Relu.apply(x), x.max(0.0));
            let elu = ActF32::Elu(1.0).apply(x);
            if x > 0.0 {
                assert_eq!(elu, x);
            } else {
                assert!((elu - (x.exp() - 1.0)).abs() < 1e-6);
            }
            assert_eq!(ActF32::Tanh.apply(x), x.tanh());
        }
    }
}
