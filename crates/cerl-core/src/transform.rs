//! Feature-representation transformation `φ_{d-1→d} : R_{d-1} → R̃_{d-1}`
//! (paper §III-A.3, Eq. 7).
//!
//! Old memory representations live in the previous model's representation
//! space and are incompatible with the new one; `φ` maps them across.
//! It is trained jointly with the main objective through
//! `L_FT = 1 − cos(φ(g_{d-1}(x)), g_d(x))` over new-data pairs, then applied
//! to the stored memory at stage end.

use crate::config::NetConfig;
use cerl_math::Matrix;
use cerl_nn::{Activation, Graph, Mlp, NodeId, ParamId, ParamStore};
use rand::Rng;

/// Representation-space transformation network.
#[derive(Debug, Clone)]
pub struct FeatureTransform {
    net: Mlp,
}

impl FeatureTransform {
    /// Build `φ : R^{repr_dim} → R^{repr_dim}`. The output activation is a
    /// sigmoid so transformed representations live in the same `(0,1)`
    /// range the (cosine-normalized, sigmoid-activated) representation
    /// layer produces.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        rng: &mut R,
        cfg: &NetConfig,
        name: &str,
    ) -> Self {
        let mut dims = vec![cfg.repr_dim];
        dims.extend_from_slice(&cfg.transform_hidden);
        dims.push(cfg.repr_dim);
        let net = Mlp::new(
            store,
            rng,
            &dims,
            cfg.activation.to_activation(),
            Activation::Sigmoid,
            name,
        );
        Self { net }
    }

    /// Forward pass on the tape.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, r: NodeId) -> NodeId {
        self.net.forward(g, store, r)
    }

    /// Transform a representation matrix without tracking gradients.
    pub fn apply(&self, store: &ParamStore, r: &Matrix) -> Matrix {
        let mut g = Graph::new();
        let rin = g.input(r.clone());
        let out = self.forward(&mut g, store, rin);
        g.value(out).clone()
    }

    /// Trainable parameters.
    pub fn params(&self) -> Vec<ParamId> {
        self.net.params()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetConfig;
    use cerl_nn::compose::mean_cosine_distance;
    use cerl_nn::{Adam, Optimizer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg() -> NetConfig {
        NetConfig {
            repr_dim: 8,
            transform_hidden: vec![16],
            ..NetConfig::default()
        }
    }

    #[test]
    fn output_shape_and_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let phi = FeatureTransform::new(&mut store, &mut rng, &cfg(), "phi");
        let r = Matrix::from_fn(5, 8, |i, j| ((i + j) as f64 * 0.17).sin());
        let out = phi.apply(&store, &r);
        assert_eq!(out.shape(), (5, 8));
        assert!(out.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn learns_a_fixed_rotation_under_lft() {
        // Train φ with L_FT to align φ(old) with new = permuted(old):
        // the cosine distance must drop substantially.
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let phi = FeatureTransform::new(&mut store, &mut rng, &cfg(), "phi");
        let params = phi.params();
        let mut opt = Adam::new(5e-3);

        let n = 64;
        let old = Matrix::from_fn(n, 8, |_, _| rng.gen::<f64>());
        // "New space": coordinates permuted cyclically.
        let new = Matrix::from_fn(n, 8, |i, j| old[(i, (j + 1) % 8)]);

        let loss_at = |store: &ParamStore| {
            let mut g = Graph::new();
            let o = g.input(old.clone());
            let nv = g.input(new.clone());
            let mapped = phi.forward(&mut g, store, o);
            let l = mean_cosine_distance(&mut g, mapped, nv);
            g.scalar(l)
        };
        let before = loss_at(&store);
        for _ in 0..300 {
            let mut g = Graph::new();
            let o = g.input(old.clone());
            let nv = g.input(new.clone());
            let mapped = phi.forward(&mut g, &store, o);
            let l = mean_cosine_distance(&mut g, mapped, nv);
            let grads = g.backward(l);
            opt.step(&mut store, &grads, &params);
        }
        let after = loss_at(&store);
        assert!(
            after < before * 0.5,
            "L_FT did not improve: {before:.4} -> {after:.4}"
        );
        assert!(after < 0.05, "alignment too loose: {after:.4}");
    }
}
