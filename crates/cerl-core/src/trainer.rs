//! Shared training-loop machinery: mini-batching, early stopping, and the
//! report type returned by every training stage.

use crate::error::CerlError;
use cerl_data::CausalDataset;
use cerl_math::Matrix;
use cerl_nn::{ParamId, ParamStore};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Shared input validation for every `try_train`/`try_observe` stage:
/// enough units to fit on, and train/val covariate widths matching the
/// model (an empty validation set is allowed and skips the width check).
pub(crate) fn validate_stage_inputs(
    train: &CausalDataset,
    val: &CausalDataset,
    d_in: usize,
) -> Result<(), CerlError> {
    if train.n() < 4 {
        return Err(CerlError::DatasetTooSmall {
            required: 4,
            found: train.n(),
        });
    }
    if train.dim() != d_in {
        return Err(CerlError::DimensionMismatch {
            expected: d_in,
            found: train.dim(),
        });
    }
    if val.n() > 0 && val.dim() != d_in {
        return Err(CerlError::DimensionMismatch {
            expected: d_in,
            found: val.dim(),
        });
    }
    Ok(())
}

/// Outcome of one training stage.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainReport {
    /// Epochs actually run (≤ configured epochs under early stopping).
    pub epochs_run: usize,
    /// Best validation loss seen (scaled-outcome factual MSE).
    pub best_val_loss: f64,
    /// Training loss at the final epoch.
    pub final_train_loss: f64,
}

/// Shuffled mini-batch index lists covering `0..n`.
///
/// The tail batch is kept if it has at least 2 units (a 1-unit batch makes
/// MSE/IPM terms degenerate), otherwise merged into the previous batch.
/// A `batch_size` below 2 is clamped to 2 (config validation rejects it on
/// the fallible paths before it ever reaches here).
pub fn minibatches<R: Rng + ?Sized>(n: usize, batch_size: usize, rng: &mut R) -> Vec<Vec<usize>> {
    let batch_size = batch_size.max(2);
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    let mut out: Vec<Vec<usize>> = idx.chunks(batch_size).map(<[usize]>::to_vec).collect();
    if out.len() >= 2 && out.last().map_or(0, Vec::len) < 2 {
        if let Some(tail) = out.pop() {
            if let Some(prev) = out.last_mut() {
                prev.extend(tail);
            }
        }
    }
    out
}

/// Early stopper that snapshots the best parameters.
pub struct EarlyStopper {
    patience: usize,
    best_loss: f64,
    wait: usize,
    param_ids: Vec<ParamId>,
    best_params: Option<Vec<Matrix>>,
}

impl EarlyStopper {
    /// Track the given parameters; `patience == 0` disables stopping (but
    /// best-snapshot restoration still applies).
    pub fn new(param_ids: Vec<ParamId>, patience: usize) -> Self {
        Self {
            patience,
            best_loss: f64::INFINITY,
            wait: 0,
            param_ids,
            best_params: None,
        }
    }

    /// Report a validation loss; returns `true` when training should stop.
    pub fn update(&mut self, store: &ParamStore, val_loss: f64) -> bool {
        if val_loss < self.best_loss {
            self.best_loss = val_loss;
            self.wait = 0;
            self.best_params = Some(store.snapshot(&self.param_ids));
            false
        } else {
            self.wait += 1;
            self.patience > 0 && self.wait >= self.patience
        }
    }

    /// Best validation loss so far.
    pub fn best_loss(&self) -> f64 {
        self.best_loss
    }

    /// Restore the best snapshot into the store (no-op if none recorded).
    pub fn restore_best(&self, store: &mut ParamStore) {
        if let Some(best) = &self.best_params {
            store.restore(&self.param_ids, best);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn minibatches_cover_all_indices() {
        let mut rng = StdRng::seed_from_u64(1);
        let batches = minibatches(103, 20, &mut rng);
        let mut all: Vec<usize> = batches.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..103).collect::<Vec<_>>());
        // 103 = 5×20 + 3 → tail of 3 stays.
        assert_eq!(batches.len(), 6);
    }

    #[test]
    fn tiny_tail_merges() {
        let mut rng = StdRng::seed_from_u64(2);
        let batches = minibatches(41, 20, &mut rng);
        // tail of 1 merges into previous batch.
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[1].len(), 21);
    }

    #[test]
    fn early_stopper_restores_best() {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::filled(1, 1, 1.0));
        let mut es = EarlyStopper::new(vec![w], 2);

        assert!(!es.update(&store, 1.0)); // best
        store.value_mut(w)[(0, 0)] = 2.0;
        assert!(!es.update(&store, 1.5)); // worse ×1
        store.value_mut(w)[(0, 0)] = 3.0;
        assert!(es.update(&store, 1.6)); // worse ×2 → stop
        es.restore_best(&mut store);
        assert_eq!(store.value(w)[(0, 0)], 1.0);
        assert_eq!(es.best_loss(), 1.0);
    }

    #[test]
    fn zero_patience_never_stops() {
        let store = ParamStore::new();
        let mut es = EarlyStopper::new(vec![], 0);
        for i in 0..100 {
            assert!(!es.update(&store, 1.0 + i as f64));
        }
    }
}
