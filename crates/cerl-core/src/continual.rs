//! CERL: continual causal-effect representation learning (paper §III,
//! Algorithm 1).
//!
//! Stage 1 trains the baseline CFR model (Eq. 5). Every later stage `d`
//! trains on the newly arrived domain *only* — raw previous data is gone —
//! with (Eq. 9):
//!
//! ```text
//! L = L_G + α·Wass(P,Q) + λ·L_w + β·L_FD + δ·L_FT
//! ```
//!
//! * `L_G` (Eq. 8): factual MSE over transformed memory representations
//!   `φ(r)` *and* the new domain's representations.
//! * `Wass(P,Q)` (Eq. 3): balances treated vs control in the **global**
//!   representation space (transformed memory ∪ new representations).
//! * `L_FD` (Eq. 6): cosine distillation pinning `g_d(x)` to the frozen
//!   `g_{d-1}(x)` on new data.
//! * `L_FT` (Eq. 7): trains `φ` to map old-space representations into the
//!   new space.
//!
//! At stage end the memory is rebuilt as `{R_d, Y_d, T_d} ∪ φ(M_{d-1})`,
//! reduced by per-group herding to the memory budget.

use crate::cfr::CfrModel;
use crate::config::{CerlConfig, DistillKind, IpmKind};
use crate::error::CerlError;
use crate::memory::Memory;
use crate::snapshot::ModelSnapshot;
use crate::trainer::{minibatches, validate_stage_inputs, EarlyStopper, TrainReport};
use crate::transform::FeatureTransform;
use cerl_data::{CausalDataset, OutcomeScaler, Standardizer};
use cerl_math::Matrix;
use cerl_nn::compose::{
    elastic_net_penalty, mean_cosine_distance, mean_squared_distance, mse, weighted_sum,
};
use cerl_nn::{Adam, Graph, NodeId, Optimizer};
use cerl_ot::{linear_mmd, rbf_mmd, wasserstein, Bandwidth};
use cerl_rand::seeds;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Report of one continual stage.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StageReport {
    /// 1-based stage index just completed.
    pub stage: usize,
    /// Training statistics.
    pub train: TrainReport,
    /// Memory size after the stage's herding reduction.
    pub memory_len: usize,
}

/// The continual causal-effect learner.
#[derive(Clone)]
pub struct Cerl {
    cfg: CerlConfig,
    model: CfrModel,
    memory: Option<Memory>,
    stage: usize,
    seed: u64,
}

impl Cerl {
    /// Create an untrained learner for `d_in`-dimensional covariates.
    ///
    /// # Panics
    /// On an invalid configuration; [`Cerl::try_new`] is the fallible form.
    pub fn new(d_in: usize, cfg: CerlConfig, seed: u64) -> Self {
        match Self::try_new(d_in, cfg, seed) {
            Ok(cerl) => cerl,
            Err(e) => panic!("Cerl::new: {e}"),
        }
    }

    /// Create an untrained learner, validating the configuration and the
    /// covariate dimension first.
    pub fn try_new(d_in: usize, cfg: CerlConfig, seed: u64) -> Result<Self, CerlError> {
        let model = CfrModel::try_new(d_in, cfg.clone(), seed)?;
        Ok(Self {
            cfg,
            model,
            memory: None,
            stage: 0,
            seed,
        })
    }

    /// Covariate dimension this learner was built for.
    pub fn d_in(&self) -> usize {
        self.model.d_in()
    }

    /// The current CFR model (for inference-plan compilers).
    pub(crate) fn cfr(&self) -> &CfrModel {
        &self.model
    }

    /// Seed the learner was built with (stage RNG streams derive from it).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of completed stages (domains observed).
    pub fn stage(&self) -> usize {
        self.stage
    }

    /// Current memory (None before the first stage, or always None in the
    /// "w/o FRT" ablation).
    pub fn memory(&self) -> Option<&Memory> {
        self.memory.as_ref()
    }

    /// Configuration in use.
    pub fn config(&self) -> &CerlConfig {
        &self.cfg
    }

    /// Observe the next incrementally available domain (Algorithm 1 step).
    ///
    /// # Panics
    /// On invalid input; [`Cerl::try_observe`] is the fallible form.
    pub fn observe(&mut self, train: &CausalDataset, val: &CausalDataset) -> StageReport {
        match self.try_observe(train, val) {
            Ok(report) => report,
            Err(e) => panic!("Cerl::observe: {e}"),
        }
    }

    /// Observe the next incrementally available domain (Algorithm 1 step),
    /// failing with a typed error on malformed input instead of panicking.
    ///
    /// On error the learner is left exactly as it was: validation happens
    /// before any training step mutates parameters or memory.
    pub fn try_observe(
        &mut self,
        train: &CausalDataset,
        val: &CausalDataset,
    ) -> Result<StageReport, CerlError> {
        let report = if self.stage == 0 {
            self.model.try_train(train, val)?
        } else {
            self.continual_stage(train, val)?
        };
        self.rebuild_memory(train)?;
        self.stage += 1;
        Ok(StageReport {
            stage: self.stage,
            train: report,
            memory_len: self.memory.as_ref().map_or(0, Memory::len),
        })
    }

    /// Predicted ITE on raw covariates (current model, any seen domain).
    ///
    /// # Panics
    /// Before the first stage; [`Cerl::try_predict_ite`] is the fallible
    /// form.
    pub fn predict_ite(&self, x: &Matrix) -> Vec<f64> {
        match self.try_predict_ite(x) {
            Ok(ite) => ite,
            Err(e) => panic!("Cerl::predict_ite: {e}"),
        }
    }

    /// Predicted ITE on raw covariates, failing with a typed error before
    /// the first stage or on a covariate-dimension mismatch.
    pub fn try_predict_ite(&self, x: &Matrix) -> Result<Vec<f64>, CerlError> {
        self.model.try_predict_ite(x)
    }

    /// Predicted potential outcomes on raw covariates.
    ///
    /// # Panics
    /// Before the first stage; [`Cerl::try_predict_potential_outcomes`] is
    /// the fallible form.
    pub fn predict_potential_outcomes(&self, x: &Matrix) -> (Vec<f64>, Vec<f64>) {
        match self.try_predict_potential_outcomes(x) {
            Ok(pair) => pair,
            Err(e) => panic!("Cerl::predict_potential_outcomes: {e}"),
        }
    }

    /// Predicted potential outcomes on raw covariates, failing with a typed
    /// error before the first stage or on a dimension mismatch.
    pub fn try_predict_potential_outcomes(
        &self,
        x: &Matrix,
    ) -> Result<(Vec<f64>, Vec<f64>), CerlError> {
        self.model.try_predict_potential_outcomes(x)
    }

    /// Representations of raw covariates under the current pipeline.
    ///
    /// # Panics
    /// Before the first stage; [`Cerl::try_embed`] is the fallible form.
    pub fn embed(&self, x: &Matrix) -> Matrix {
        match self.try_embed(x) {
            Ok(r) => r,
            Err(e) => panic!("Cerl::embed: {e}"),
        }
    }

    /// Representations of raw covariates, failing with a typed error before
    /// the first stage or on a dimension mismatch.
    pub fn try_embed(&self, x: &Matrix) -> Result<Matrix, CerlError> {
        self.model.try_embed(x)
    }

    /// Capture the full learner state (parameters, scalers, memory, stage
    /// counter, configuration) as a versioned snapshot.
    pub fn to_snapshot(&self) -> ModelSnapshot {
        ModelSnapshot::capture(
            self.seed,
            self.stage,
            &self.cfg,
            &self.model,
            self.memory.as_ref(),
        )
    }

    /// Rebuild a learner from a snapshot, validating the format version and
    /// internal consistency. The restored learner continues exactly where
    /// the captured one stopped: it serves predictions for all previously
    /// seen domains and `observe`s subsequent domains.
    pub fn from_snapshot(snapshot: ModelSnapshot) -> Result<Self, CerlError> {
        snapshot.into_cerl()
    }

    /// Reassemble a learner from restored parts (snapshot support).
    pub(crate) fn restore(
        cfg: CerlConfig,
        model: CfrModel,
        memory: Option<Memory>,
        stage: usize,
        seed: u64,
    ) -> Self {
        Self {
            cfg,
            model,
            memory,
            stage,
            seed,
        }
    }

    fn continual_stage(
        &mut self,
        train: &CausalDataset,
        val: &CausalDataset,
    ) -> Result<TrainReport, CerlError> {
        validate_stage_inputs(train, val, self.d_in())?;
        // Freeze the previous pipeline g_{d-1} (params + covariate scaler).
        let old_store = self.model.store().clone();
        let old_x_std = match self.model.x_std().cloned() {
            Some(std) => std,
            // Unreachable through the public API (stage > 0 implies a
            // trained first stage), but kept typed for defense in depth.
            None => return Err(CerlError::NotTrained),
        };

        // Scalers: by default the first-stage scalers are kept so that the
        // old and new models share one input pipeline (see
        // `CerlConfig::refit_scalers_per_stage`).
        let (x_std, y_scale) = if self.cfg.refit_scalers_per_stage {
            (
                Standardizer::try_fit_clipped(&train.x, crate::cfr::Z_CLIP)?,
                OutcomeScaler::try_fit(&train.y)?,
            )
        } else {
            match self.model.y_scale().copied() {
                Some(y_scale) => (old_x_std.clone(), y_scale),
                None => return Err(CerlError::NotTrained),
            }
        };
        let xs = x_std.try_transform(&train.x)?;
        let ys = Matrix::col_vector(&y_scale.transform(&train.y));
        let xv = x_std.try_transform(&val.x)?;
        let yv = y_scale.transform(&val.y);
        // Old-model representations of new data (constants for L_FD / L_FT).
        let xs_old_pipeline = old_x_std.try_transform(&train.x)?;
        let r_old_full = self.model.repr().embed(&old_store, &xs_old_pipeline);
        self.model.set_scalers(x_std, y_scale);

        // The paper trains *new parameters* w_d each stage; the old model
        // survives only through `old_store` (distillation targets, memory).
        if self.cfg.fresh_params_per_stage {
            self.model.reinitialize(self.stage);
        }

        // Fresh transformation network φ_{d-1→d} for this stage.
        let use_transform = self.cfg.ablation.feature_transform;
        let mut rng = seeds::rng_labeled(self.seed, &format!("stage-{}", self.stage));
        let phi = FeatureTransform::new(
            self.model.store_mut(),
            &mut rng,
            &self.cfg.net.clone(),
            &format!("phi{}", self.stage),
        );

        // Memory in scaled-outcome space for this stage's L_G (the scaler
        // was installed by `set_scalers` a few lines up).
        let mem = if use_transform {
            self.memory.clone()
        } else {
            None
        };
        let mem_y_scaled: Vec<f64> = match (&mem, self.model.y_scale()) {
            (Some(m), Some(scale)) => scale.transform(&m.y),
            _ => Vec::new(),
        };

        // Warm up φ so it approximates the old→new pipeline map before the
        // heads ever see φ(memory). At stage start the new model is the
        // warm-started old model, so the target is the (nearly identical)
        // new-pipeline representation of the same units.
        if use_transform && self.cfg.train.phi_warmup_steps > 0 {
            let r_new_init = self.model.repr().embed(self.model.store(), &xs);
            let phi_params = phi.params();
            let mut phi_opt = Adam::new(self.cfg.train.learning_rate);
            let n = xs.rows();
            for step in 0..self.cfg.train.phi_warmup_steps {
                let k = self.cfg.train.batch_size.min(n);
                let start = (step * k) % n;
                let idx: Vec<usize> = (0..k).map(|i| (start + i) % n).collect();
                let (loss, grads) = {
                    let store = self.model.store();
                    let mut g = Graph::new();
                    let src = g.input(r_old_full.select_rows(&idx));
                    let tgt = g.input(r_new_init.select_rows(&idx));
                    let mapped = phi.forward(&mut g, store, src);
                    let l = match self.cfg.distill_loss {
                        DistillKind::SquaredL2 => mean_squared_distance(&mut g, mapped, tgt),
                        DistillKind::Cosine => mean_cosine_distance(&mut g, mapped, tgt),
                    };
                    (l, g.backward(l))
                };
                let _ = loss;
                phi_opt.step(self.model.store_mut(), &grads, &phi_params);
            }
        }

        let params = {
            let mut p = self.model.repr().params();
            p.extend(self.model.heads().params());
            if use_transform {
                p.extend(phi.params());
            }
            p
        };
        let mut opt = Adam::new(self.cfg.train.learning_rate);
        let mut stopper = EarlyStopper::new(params.clone(), self.cfg.train.patience);

        let mut final_train_loss = f64::NAN;
        let mut epochs_run = 0;
        for _epoch in 0..self.cfg.train.epochs {
            epochs_run += 1;
            let mut epoch_loss = 0.0;
            let batches = minibatches(train.n(), self.cfg.train.batch_size, &mut rng);
            let n_batches = batches.len();
            for batch in batches {
                let loss_val = self.continual_step(
                    &batch,
                    &xs,
                    &ys,
                    train,
                    &r_old_full,
                    &phi,
                    mem.as_ref(),
                    &mem_y_scaled,
                    &params,
                    &mut opt,
                    &mut rng,
                );
                epoch_loss += loss_val;
            }
            final_train_loss = epoch_loss / n_batches.max(1) as f64;

            let val_loss = self.stage_val_loss(&xv, &yv, &val.t, &phi, mem.as_ref(), &mem_y_scaled);
            if stopper.update(self.model.store(), val_loss) {
                break;
            }
        }
        stopper.restore_best(self.model.store_mut());

        // Transform the stored memory into the new representation space.
        if use_transform {
            if let Some(m) = &self.memory {
                let transformed = phi.apply(self.model.store(), &m.r);
                self.memory = Some(Memory::new(transformed, m.y.clone(), m.t.clone()));
            }
        } else {
            self.memory = None;
        }
        self.model.bump_stage();
        Ok(TrainReport {
            epochs_run,
            best_val_loss: stopper.best_loss(),
            final_train_loss,
        })
    }

    /// One optimization step of the continual objective; returns the loss.
    #[allow(clippy::too_many_arguments)]
    fn continual_step<R: Rng + ?Sized>(
        &mut self,
        batch: &[usize],
        xs: &Matrix,
        ys: &Matrix,
        train: &CausalDataset,
        r_old_full: &Matrix,
        phi: &FeatureTransform,
        mem: Option<&Memory>,
        mem_y_scaled: &[f64],
        params: &[cerl_nn::ParamId],
        opt: &mut Adam,
        rng: &mut R,
    ) -> f64 {
        let xb = xs.select_rows(batch);
        let yb = ys.select_rows(batch);
        let tb: Vec<bool> = batch.iter().map(|&i| train.t[i]).collect();
        let r_old_b = r_old_full.select_rows(batch);

        // Build the tape under an immutable borrow; the returned gradients
        // own their data, so the optimizer step below can borrow mutably.
        let (loss_val, mut grads) = {
            let store = self.model.store();
            let mut g = Graph::new();
            let x = g.input(xb);
            let r_new = self.model.repr().forward(&mut g, store, x);
            let y_hat = self
                .model
                .heads()
                .forward_factual(&mut g, store, r_new, &tb);
            let y_node = g.input(yb);
            let l_new = mse(&mut g, y_hat, y_node);

            let mut terms = vec![(l_new, 1.0)];

            // L_FD: distillation toward the frozen previous representations.
            let r_old_node = g.input(r_old_b);
            if self.cfg.beta > 0.0 {
                let lfd = match self.cfg.distill_loss {
                    DistillKind::SquaredL2 => mean_squared_distance(&mut g, r_old_node, r_new),
                    DistillKind::Cosine => mean_cosine_distance(&mut g, r_old_node, r_new),
                };
                terms.push((lfd, self.cfg.beta));
            }

            // L_FT and memory-side L_G when the transformation is enabled.
            let mut mem_nodes: Option<(NodeId, Vec<bool>)> = None;
            if let Some(mem) = mem {
                if self.cfg.delta > 0.0 {
                    let phi_new = phi.forward(&mut g, store, r_old_node);
                    let lft = match self.cfg.distill_loss {
                        DistillKind::SquaredL2 => mean_squared_distance(&mut g, phi_new, r_new),
                        DistillKind::Cosine => mean_cosine_distance(&mut g, phi_new, r_new),
                    };
                    terms.push((lft, self.cfg.delta));
                }
                if !mem.is_empty() {
                    let k = self.cfg.train.memory_batch_size.min(mem.len()).max(2);
                    let midx: Vec<usize> = (0..k).map(|_| rng.gen_range(0..mem.len())).collect();
                    let mr = mem.r.select_rows(&midx);
                    let mt: Vec<bool> = midx.iter().map(|&i| mem.t[i]).collect();
                    let my = Matrix::from_fn(k, 1, |i, _| mem_y_scaled[midx[i]]);
                    let mr_node = g.input(mr);
                    let phi_mem = phi.forward(&mut g, store, mr_node);
                    let y_mem_hat = self
                        .model
                        .heads()
                        .forward_factual(&mut g, store, phi_mem, &mt);
                    let my_node = g.input(my);
                    let l_mem = mse(&mut g, y_mem_hat, my_node);
                    terms.push((l_mem, 1.0));
                    mem_nodes = Some((phi_mem, mt));
                }
            }

            // Global IPM over (transformed memory ∪ new) representations.
            if let Some(ipm) = self.global_ipm(&mut g, r_new, &tb, mem_nodes.as_ref()) {
                terms.push((ipm, self.cfg.alpha));
            }

            if self.cfg.lambda > 0.0 {
                let lw = elastic_net_penalty(&mut g, store, &self.model.repr().weights());
                terms.push((lw, self.cfg.lambda));
            }

            let loss = weighted_sum(&mut g, &terms);
            let loss_val = g.scalar(loss);
            (loss_val, g.backward(loss))
        };

        if self.cfg.train.clip_norm > 0.0 {
            grads.clip_global_norm(self.cfg.train.clip_norm);
        }
        opt.step(self.model.store_mut(), &grads, params);
        loss_val
    }

    /// IPM over the global representation space: treated/control stacks of
    /// transformed-memory plus new-data representations.
    fn global_ipm(
        &self,
        g: &mut Graph,
        r_new: NodeId,
        t_new: &[bool],
        mem_nodes: Option<&(NodeId, Vec<bool>)>,
    ) -> Option<NodeId> {
        if self.cfg.alpha == 0.0 || self.cfg.ipm == IpmKind::None {
            return None;
        }
        let nt: Vec<usize> = (0..t_new.len()).filter(|&i| t_new[i]).collect();
        let nc: Vec<usize> = (0..t_new.len()).filter(|&i| !t_new[i]).collect();

        let (treated, control) = match mem_nodes {
            Some((phi_mem, mt)) => {
                let mt_idx: Vec<usize> = (0..mt.len()).filter(|&i| mt[i]).collect();
                let mc_idx: Vec<usize> = (0..mt.len()).filter(|&i| !mt[i]).collect();
                if nt.len() + mt_idx.len() < 2 || nc.len() + mc_idx.len() < 2 {
                    return None;
                }
                let new_t = g.select_rows(r_new, &nt);
                let new_c = g.select_rows(r_new, &nc);
                let mem_t = g.select_rows(*phi_mem, &mt_idx);
                let mem_c = g.select_rows(*phi_mem, &mc_idx);
                (g.concat_rows(mem_t, new_t), g.concat_rows(mem_c, new_c))
            }
            None => {
                if nt.len() < 2 || nc.len() < 2 {
                    return None;
                }
                (g.select_rows(r_new, &nt), g.select_rows(r_new, &nc))
            }
        };
        match self.cfg.ipm {
            IpmKind::Wasserstein => Some(wasserstein(g, treated, control, self.cfg.sinkhorn())),
            IpmKind::LinearMmd => Some(linear_mmd(g, treated, control)),
            IpmKind::RbfMmd => Some(rbf_mmd(g, treated, control, Bandwidth::MedianHeuristic)),
            IpmKind::None => None,
        }
    }

    /// Early-stopping criterion for a continual stage: new-domain factual
    /// MSE plus the memory factual MSE (both in scaled-outcome space), so
    /// the snapshot balances plasticity and retention.
    fn stage_val_loss(
        &self,
        xv_std: &Matrix,
        yv_scaled: &[f64],
        tv: &[bool],
        phi: &FeatureTransform,
        mem: Option<&Memory>,
        mem_y_scaled: &[f64],
    ) -> f64 {
        let store = self.model.store();
        let mut loss = 0.0;
        if xv_std.rows() > 0 {
            let r = self.model.repr().embed(store, xv_std);
            let (y0, y1) = self.model.heads().predict_both(store, &r);
            let mut se = 0.0;
            for i in 0..xv_std.rows() {
                let pred = if tv[i] { y1[i] } else { y0[i] };
                se += (pred - yv_scaled[i]) * (pred - yv_scaled[i]);
            }
            loss += se / xv_std.rows() as f64;
        }
        if let Some(m) = mem {
            if !m.is_empty() {
                let mapped = phi.apply(store, &m.r);
                let (y0, y1) = self.model.heads().predict_both(store, &mapped);
                let mut se = 0.0;
                for i in 0..m.len() {
                    let pred = if m.t[i] { y1[i] } else { y0[i] };
                    se += (pred - mem_y_scaled[i]) * (pred - mem_y_scaled[i]);
                }
                loss += se / m.len() as f64;
            }
        }
        loss
    }

    /// `M_d = herding({R_d, Y_d, T_d} ∪ φ(M_{d-1}))` (the φ part was already
    /// applied at stage end; here we add the new domain and reduce).
    ///
    /// Fallible: the checked [`Memory::try_concat`] rejects a stored memory
    /// whose representation dimension disagrees with the new embeddings
    /// (possible only via corrupt restored state), so the mismatch surfaces
    /// as a typed error instead of poisoning the exemplar store.
    fn rebuild_memory(&mut self, train: &CausalDataset) -> Result<(), CerlError> {
        if !self.cfg.ablation.feature_transform {
            self.memory = None;
            return Ok(());
        }
        let r_new = self.model.embed(&train.x);
        let new_part = Memory::try_new(r_new, train.y.clone(), train.t.clone())?;
        let combined = match &self.memory {
            Some(old) => new_part.try_concat(old)?,
            None => new_part,
        };
        let mut rng = seeds::rng_labeled(self.seed, &format!("herding-{}", self.stage));
        self.memory =
            Some(combined.reduce(self.cfg.memory_size, self.cfg.ablation.herding, &mut rng));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::EffectMetrics;
    use cerl_data::{DomainStream, SyntheticConfig, SyntheticGenerator};

    fn quick_stream(n_domains: usize) -> DomainStream {
        let gen = SyntheticGenerator::new(
            SyntheticConfig {
                n_units: 500,
                ..SyntheticConfig::small()
            },
            21,
        );
        DomainStream::synthetic(&gen, n_domains, 0, 33)
    }

    fn quick_cfg() -> CerlConfig {
        let mut cfg = CerlConfig::quick_test();
        cfg.train.epochs = 25;
        cfg.memory_size = 120;
        cfg
    }

    #[test]
    fn two_stage_continual_run() {
        let stream = quick_stream(2);
        let d_in = stream.domain(0).train.dim();
        let mut cerl = Cerl::new(d_in, quick_cfg(), 5);

        let r1 = cerl.observe(&stream.domain(0).train, &stream.domain(0).val);
        assert_eq!(r1.stage, 1);
        assert!(r1.memory_len > 0 && r1.memory_len <= 120);

        let r2 = cerl.observe(&stream.domain(1).train, &stream.domain(1).val);
        assert_eq!(r2.stage, 2);
        assert!(r2.memory_len > 0 && r2.memory_len <= 120);

        // Must predict reasonably on BOTH domains' test sets.
        for d in 0..2 {
            let test = &stream.domain(d).test;
            let est = cerl.predict_ite(&test.x);
            let m = EffectMetrics::on_dataset(test, &est);
            let trivial = EffectMetrics::on_dataset(test, &vec![0.0; test.n()]);
            assert!(
                m.sqrt_pehe < trivial.sqrt_pehe * 1.5,
                "domain {d}: {m:?} vs trivial {trivial:?}"
            );
            assert!(m.sqrt_pehe.is_finite() && m.ate_error.is_finite());
        }
    }

    #[test]
    fn memory_respects_budget_across_stages() {
        let stream = quick_stream(3);
        let d_in = stream.domain(0).train.dim();
        let mut cfg = quick_cfg();
        cfg.memory_size = 60;
        cfg.train.epochs = 8;
        let mut cerl = Cerl::new(d_in, cfg, 6);
        for d in 0..3 {
            let rep = cerl.observe(&stream.domain(d).train, &stream.domain(d).val);
            assert!(rep.memory_len <= 60, "stage {d}: memory {}", rep.memory_len);
        }
        let mem = cerl.memory().unwrap();
        // Balanced between groups.
        let nt = mem.treated_indices().len();
        let nc = mem.control_indices().len();
        assert!(
            (nt as i64 - nc as i64).abs() <= 2,
            "unbalanced memory {nt}/{nc}"
        );
    }

    #[test]
    fn without_frt_keeps_no_memory() {
        let stream = quick_stream(2);
        let d_in = stream.domain(0).train.dim();
        let mut cfg = quick_cfg();
        cfg.ablation.feature_transform = false;
        cfg.train.epochs = 6;
        let mut cerl = Cerl::new(d_in, cfg, 7);
        cerl.observe(&stream.domain(0).train, &stream.domain(0).val);
        assert!(cerl.memory().is_none());
        cerl.observe(&stream.domain(1).train, &stream.domain(1).val);
        assert!(cerl.memory().is_none());
    }

    #[test]
    fn stage_counter_and_embed() {
        let stream = quick_stream(1);
        let d_in = stream.domain(0).train.dim();
        let mut cfg = quick_cfg();
        cfg.train.epochs = 4;
        let mut cerl = Cerl::new(d_in, cfg, 8);
        assert_eq!(cerl.stage(), 0);
        cerl.observe(&stream.domain(0).train, &stream.domain(0).val);
        assert_eq!(cerl.stage(), 1);
        let r = cerl.embed(&stream.domain(0).test.x);
        assert_eq!(r.rows(), stream.domain(0).test.n());
    }
}
