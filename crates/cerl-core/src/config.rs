//! Configuration for the CERL models and trainers.
//!
//! The continual objective (paper Eq. 9) is
//! `L = L_G + α·Wass(P,Q) + λ·L_w + β·L_FD + δ·L_FT`;
//! every knob there appears here, plus architecture, optimization, memory,
//! and ablation switches (Table II: w/o FRT, w/o herding, w/o cosine norm).

use crate::error::CerlError;
use cerl_nn::Activation;
use cerl_ot::{EpsilonMode, SinkhornConfig};
use serde::{Deserialize, Serialize};

/// Serializable activation choice (mirrors [`cerl_nn::Activation`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ActivationKind {
    /// Identity.
    Identity,
    /// ReLU.
    Relu,
    /// ELU with α = 1.
    Elu,
    /// Sigmoid.
    Sigmoid,
    /// Tanh.
    Tanh,
}

impl ActivationKind {
    /// Convert to the runtime activation.
    pub fn to_activation(self) -> Activation {
        match self {
            ActivationKind::Identity => Activation::Identity,
            ActivationKind::Relu => Activation::Relu,
            ActivationKind::Elu => Activation::Elu(1.0),
            ActivationKind::Sigmoid => Activation::Sigmoid,
            ActivationKind::Tanh => Activation::Tanh,
        }
    }
}

/// Functional form of the distillation (Eq. 6) and transformation (Eq. 7)
/// losses. The paper writes both as `1 − cos(·,·)` and justifies the form
/// via `‖A−B‖² = 2(1 − cos)` *for normalized vectors*; for bounded sigmoid
/// representations the squared-Euclidean form is the one that actually
/// pins representations pointwise, so it is the default.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DistillKind {
    /// `mean ‖a − b‖²` (default).
    SquaredL2,
    /// `mean (1 − cos(a, b))` (the paper's literal form).
    Cosine,
}

/// Which IPM balances the representation space.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum IpmKind {
    /// Sinkhorn-Wasserstein (the paper's choice, Eq. 3).
    Wasserstein,
    /// Linear MMD (ablation alternative).
    LinearMmd,
    /// RBF MMD with median-heuristic bandwidth (ablation alternative).
    RbfMmd,
    /// No balancing term (α effectively 0).
    None,
}

/// Network architecture.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetConfig {
    /// Hidden-layer widths of the representation network `g`.
    pub repr_hidden: Vec<usize>,
    /// Output dimension of the representation space `R`.
    pub repr_dim: usize,
    /// Hidden-layer widths of each potential-outcome head.
    pub head_hidden: Vec<usize>,
    /// Hidden activation everywhere.
    pub activation: ActivationKind,
    /// Hidden-layer widths of the feature transformation `φ` (continual
    /// stages only); the in/out dimensions are both `repr_dim`.
    pub transform_hidden: Vec<usize>,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            repr_hidden: vec![64, 64],
            repr_dim: 32,
            head_hidden: vec![32, 16],
            activation: ActivationKind::Elu,
            transform_hidden: vec![64],
        }
    }
}

/// Optimization settings.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Maximum training epochs per stage.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Global gradient-norm clip (0 disables clipping).
    pub clip_norm: f64,
    /// Early-stopping patience in epochs (0 disables early stopping).
    pub patience: usize,
    /// Memory mini-batch size during continual stages (how many stored
    /// representations join each step's global loss).
    pub memory_batch_size: usize,
    /// Adam steps aligning the fresh transformation φ to the
    /// old-pipeline→new-pipeline representation map *before* joint training
    /// (stabilizes the heads, which otherwise fit a random φ's outputs).
    pub phi_warmup_steps: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 100,
            batch_size: 128,
            learning_rate: 1e-3,
            clip_norm: 5.0,
            patience: 15,
            memory_batch_size: 128,
            phi_warmup_steps: 200,
        }
    }
}

/// Ablation switches (Table II rows).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Ablation {
    /// `false` → "w/o FRT": skip the feature-representation transformation;
    /// memory is not carried into the new space (distillation only) and the
    /// balance term uses new data only.
    pub feature_transform: bool,
    /// `false` → "w/o herding": random subsampling picks the memory.
    pub herding: bool,
    /// `false` → "w/o cosine norm": plain dense final representation layer.
    pub cosine_norm: bool,
}

impl Default for Ablation {
    fn default() -> Self {
        Self {
            feature_transform: true,
            herding: true,
            cosine_norm: true,
        }
    }
}

/// Full CERL configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CerlConfig {
    /// Architecture.
    pub net: NetConfig,
    /// Optimization.
    pub train: TrainConfig,
    /// IPM weight α (Eq. 5 and Eq. 9).
    pub alpha: f64,
    /// Elastic-net weight λ (Eqs. 1, 5, 9).
    pub lambda: f64,
    /// Feature-distillation weight β (Eq. 9; the paper fixes β = 1).
    pub beta: f64,
    /// Transformation-loss weight δ (Eq. 9).
    pub delta: f64,
    /// Memory budget `M`: max stored feature representations (split evenly
    /// between treatment and control groups by herding).
    pub memory_size: usize,
    /// Which IPM to use.
    pub ipm: IpmKind,
    /// Sinkhorn ε (relative to mean batch cost).
    pub sinkhorn_epsilon: f64,
    /// Sinkhorn iterations.
    pub sinkhorn_iterations: usize,
    /// Functional form of L_FD / L_FT.
    pub distill_loss: DistillKind,
    /// Train fresh parameters `w_d` at every continual stage (the paper's
    /// formulation; knowledge transfers via distillation and memory
    /// replay). `false` warm-starts from the previous stage's weights.
    pub fresh_params_per_stage: bool,
    /// Refit covariate/outcome scalers on every new domain (`true` mimics
    /// naive per-domain preprocessing; `false`, the default, keeps the
    /// first-stage scalers so the distillation pins one consistent input
    /// pipeline — cross-domain magnitude differences are the cosine
    /// normalization layer's job, per the paper).
    pub refit_scalers_per_stage: bool,
    /// Ablation switches.
    pub ablation: Ablation,
}

impl Default for CerlConfig {
    fn default() -> Self {
        Self {
            net: NetConfig::default(),
            train: TrainConfig::default(),
            alpha: 0.1,
            lambda: 1e-4,
            beta: 1.0,
            delta: 1.0,
            memory_size: 500,
            ipm: IpmKind::Wasserstein,
            sinkhorn_epsilon: 0.1,
            sinkhorn_iterations: 30,
            distill_loss: DistillKind::SquaredL2,
            fresh_params_per_stage: true,
            refit_scalers_per_stage: false,
            ablation: Ablation::default(),
        }
    }
}

impl CerlConfig {
    /// Fast configuration for tests: tiny nets, few epochs.
    pub fn quick_test() -> Self {
        Self {
            net: NetConfig {
                repr_hidden: vec![32],
                repr_dim: 16,
                head_hidden: vec![16],
                activation: ActivationKind::Elu,
                transform_hidden: vec![32],
            },
            train: TrainConfig {
                epochs: 30,
                batch_size: 64,
                learning_rate: 3e-3,
                clip_norm: 5.0,
                patience: 8,
                memory_batch_size: 64,
                phi_warmup_steps: 100,
            },
            memory_size: 200,
            ..Self::default()
        }
    }

    /// Validate every field, returning the first violation as a typed
    /// error. Called by [`crate::engine::CerlEngineBuilder::build`] and the
    /// fallible estimator constructors so invalid settings surface before
    /// any training starts.
    pub fn validate(&self) -> Result<(), CerlError> {
        fn bad(field: &'static str, reason: String) -> Result<(), CerlError> {
            Err(CerlError::InvalidConfig { field, reason })
        }
        if self.net.repr_dim == 0 {
            return bad(
                "net.repr_dim",
                "representation dimension must be > 0".into(),
            );
        }
        for (field, widths) in [
            ("net.repr_hidden", &self.net.repr_hidden),
            ("net.head_hidden", &self.net.head_hidden),
            ("net.transform_hidden", &self.net.transform_hidden),
        ] {
            if widths.contains(&0) {
                return bad(field, "hidden-layer widths must be > 0".into());
            }
        }
        if self.train.epochs == 0 {
            return bad("train.epochs", "must run at least one epoch".into());
        }
        if self.train.batch_size < 2 {
            return bad(
                "train.batch_size",
                format!(
                    "must be ≥ 2 (MSE/IPM terms degenerate below that), got {}",
                    self.train.batch_size
                ),
            );
        }
        if self.train.memory_batch_size < 2 {
            return bad(
                "train.memory_batch_size",
                format!("must be ≥ 2, got {}", self.train.memory_batch_size),
            );
        }
        if !(self.train.learning_rate > 0.0 && self.train.learning_rate.is_finite()) {
            return bad(
                "train.learning_rate",
                format!(
                    "must be positive and finite, got {}",
                    self.train.learning_rate
                ),
            );
        }
        if !self.train.clip_norm.is_finite() || self.train.clip_norm < 0.0 {
            return bad(
                "train.clip_norm",
                format!(
                    "must be finite and ≥ 0 (0 disables), got {}",
                    self.train.clip_norm
                ),
            );
        }
        for (field, value) in [
            ("alpha", self.alpha),
            ("lambda", self.lambda),
            ("beta", self.beta),
            ("delta", self.delta),
        ] {
            if !(value >= 0.0 && value.is_finite()) {
                return bad(
                    field,
                    format!("loss weight must be ≥ 0 and finite, got {value}"),
                );
            }
        }
        if self.memory_size == 0 {
            return bad("memory_size", "memory budget must be > 0".into());
        }
        if self.ipm == IpmKind::Wasserstein {
            if !(self.sinkhorn_epsilon > 0.0 && self.sinkhorn_epsilon.is_finite()) {
                return bad(
                    "sinkhorn_epsilon",
                    format!("must be positive and finite, got {}", self.sinkhorn_epsilon),
                );
            }
            if self.sinkhorn_iterations == 0 {
                return bad(
                    "sinkhorn_iterations",
                    "must run at least one iteration".into(),
                );
            }
        }
        Ok(())
    }

    /// Sinkhorn configuration derived from the scalar knobs.
    pub fn sinkhorn(&self) -> SinkhornConfig {
        SinkhornConfig {
            epsilon: self.sinkhorn_epsilon,
            epsilon_mode: EpsilonMode::RelativeToMeanCost,
            iterations: self.sinkhorn_iterations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = CerlConfig::default();
        assert!(c.alpha > 0.0);
        assert_eq!(c.beta, 1.0, "paper sets β = 1");
        assert!(c.memory_size > 0);
        assert!(c.ablation.feature_transform && c.ablation.herding && c.ablation.cosine_norm);
    }

    #[test]
    fn serde_roundtrip() {
        let c = CerlConfig::default();
        let json = serde_json::to_string(&c).unwrap();
        let back: CerlConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.net.repr_dim, c.net.repr_dim);
        assert_eq!(back.alpha, c.alpha);
    }

    #[test]
    fn activation_mapping() {
        assert_eq!(ActivationKind::Relu.to_activation(), Activation::Relu);
        assert_eq!(ActivationKind::Elu.to_activation(), Activation::Elu(1.0));
        assert_eq!(
            ActivationKind::Identity.to_activation(),
            Activation::Identity
        );
    }

    #[test]
    fn validate_accepts_defaults_and_rejects_bad_fields() {
        assert!(CerlConfig::default().validate().is_ok());
        assert!(CerlConfig::quick_test().validate().is_ok());

        let c = CerlConfig {
            memory_size: 0,
            ..CerlConfig::default()
        };
        assert!(matches!(
            c.validate(),
            Err(CerlError::InvalidConfig {
                field: "memory_size",
                ..
            })
        ));

        let c = CerlConfig {
            alpha: -0.5,
            ..CerlConfig::default()
        };
        assert!(matches!(
            c.validate(),
            Err(CerlError::InvalidConfig { field: "alpha", .. })
        ));

        let mut c = CerlConfig::default();
        c.train.batch_size = 1;
        assert!(matches!(
            c.validate(),
            Err(CerlError::InvalidConfig {
                field: "train.batch_size",
                ..
            })
        ));

        let mut c = CerlConfig::default();
        c.net.repr_dim = 0;
        assert!(matches!(
            c.validate(),
            Err(CerlError::InvalidConfig {
                field: "net.repr_dim",
                ..
            })
        ));
    }

    #[test]
    fn sinkhorn_derivation() {
        let c = CerlConfig::default();
        let s = c.sinkhorn();
        assert_eq!(s.iterations, c.sinkhorn_iterations);
        assert_eq!(s.epsilon, c.sinkhorn_epsilon);
    }
}
