//! Configuration for the CERL models and trainers.
//!
//! The continual objective (paper Eq. 9) is
//! `L = L_G + α·Wass(P,Q) + λ·L_w + β·L_FD + δ·L_FT`;
//! every knob there appears here, plus architecture, optimization, memory,
//! and ablation switches (Table II: w/o FRT, w/o herding, w/o cosine norm).

use cerl_nn::Activation;
use cerl_ot::{EpsilonMode, SinkhornConfig};
use serde::{Deserialize, Serialize};

/// Serializable activation choice (mirrors [`cerl_nn::Activation`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ActivationKind {
    /// Identity.
    Identity,
    /// ReLU.
    Relu,
    /// ELU with α = 1.
    Elu,
    /// Sigmoid.
    Sigmoid,
    /// Tanh.
    Tanh,
}

impl ActivationKind {
    /// Convert to the runtime activation.
    pub fn to_activation(self) -> Activation {
        match self {
            ActivationKind::Identity => Activation::Identity,
            ActivationKind::Relu => Activation::Relu,
            ActivationKind::Elu => Activation::Elu(1.0),
            ActivationKind::Sigmoid => Activation::Sigmoid,
            ActivationKind::Tanh => Activation::Tanh,
        }
    }
}

/// Functional form of the distillation (Eq. 6) and transformation (Eq. 7)
/// losses. The paper writes both as `1 − cos(·,·)` and justifies the form
/// via `‖A−B‖² = 2(1 − cos)` *for normalized vectors*; for bounded sigmoid
/// representations the squared-Euclidean form is the one that actually
/// pins representations pointwise, so it is the default.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DistillKind {
    /// `mean ‖a − b‖²` (default).
    SquaredL2,
    /// `mean (1 − cos(a, b))` (the paper's literal form).
    Cosine,
}

/// Which IPM balances the representation space.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum IpmKind {
    /// Sinkhorn-Wasserstein (the paper's choice, Eq. 3).
    Wasserstein,
    /// Linear MMD (ablation alternative).
    LinearMmd,
    /// RBF MMD with median-heuristic bandwidth (ablation alternative).
    RbfMmd,
    /// No balancing term (α effectively 0).
    None,
}

/// Network architecture.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetConfig {
    /// Hidden-layer widths of the representation network `g`.
    pub repr_hidden: Vec<usize>,
    /// Output dimension of the representation space `R`.
    pub repr_dim: usize,
    /// Hidden-layer widths of each potential-outcome head.
    pub head_hidden: Vec<usize>,
    /// Hidden activation everywhere.
    pub activation: ActivationKind,
    /// Hidden-layer widths of the feature transformation `φ` (continual
    /// stages only); the in/out dimensions are both `repr_dim`.
    pub transform_hidden: Vec<usize>,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            repr_hidden: vec![64, 64],
            repr_dim: 32,
            head_hidden: vec![32, 16],
            activation: ActivationKind::Elu,
            transform_hidden: vec![64],
        }
    }
}

/// Optimization settings.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Maximum training epochs per stage.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Global gradient-norm clip (0 disables clipping).
    pub clip_norm: f64,
    /// Early-stopping patience in epochs (0 disables early stopping).
    pub patience: usize,
    /// Memory mini-batch size during continual stages (how many stored
    /// representations join each step's global loss).
    pub memory_batch_size: usize,
    /// Adam steps aligning the fresh transformation φ to the
    /// old-pipeline→new-pipeline representation map *before* joint training
    /// (stabilizes the heads, which otherwise fit a random φ's outputs).
    pub phi_warmup_steps: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 100,
            batch_size: 128,
            learning_rate: 1e-3,
            clip_norm: 5.0,
            patience: 15,
            memory_batch_size: 128,
            phi_warmup_steps: 200,
        }
    }
}

/// Ablation switches (Table II rows).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Ablation {
    /// `false` → "w/o FRT": skip the feature-representation transformation;
    /// memory is not carried into the new space (distillation only) and the
    /// balance term uses new data only.
    pub feature_transform: bool,
    /// `false` → "w/o herding": random subsampling picks the memory.
    pub herding: bool,
    /// `false` → "w/o cosine norm": plain dense final representation layer.
    pub cosine_norm: bool,
}

impl Default for Ablation {
    fn default() -> Self {
        Self { feature_transform: true, herding: true, cosine_norm: true }
    }
}

/// Full CERL configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CerlConfig {
    /// Architecture.
    pub net: NetConfig,
    /// Optimization.
    pub train: TrainConfig,
    /// IPM weight α (Eq. 5 and Eq. 9).
    pub alpha: f64,
    /// Elastic-net weight λ (Eqs. 1, 5, 9).
    pub lambda: f64,
    /// Feature-distillation weight β (Eq. 9; the paper fixes β = 1).
    pub beta: f64,
    /// Transformation-loss weight δ (Eq. 9).
    pub delta: f64,
    /// Memory budget `M`: max stored feature representations (split evenly
    /// between treatment and control groups by herding).
    pub memory_size: usize,
    /// Which IPM to use.
    pub ipm: IpmKind,
    /// Sinkhorn ε (relative to mean batch cost).
    pub sinkhorn_epsilon: f64,
    /// Sinkhorn iterations.
    pub sinkhorn_iterations: usize,
    /// Functional form of L_FD / L_FT.
    pub distill_loss: DistillKind,
    /// Train fresh parameters `w_d` at every continual stage (the paper's
    /// formulation; knowledge transfers via distillation and memory
    /// replay). `false` warm-starts from the previous stage's weights.
    pub fresh_params_per_stage: bool,
    /// Refit covariate/outcome scalers on every new domain (`true` mimics
    /// naive per-domain preprocessing; `false`, the default, keeps the
    /// first-stage scalers so the distillation pins one consistent input
    /// pipeline — cross-domain magnitude differences are the cosine
    /// normalization layer's job, per the paper).
    pub refit_scalers_per_stage: bool,
    /// Ablation switches.
    pub ablation: Ablation,
}

impl Default for CerlConfig {
    fn default() -> Self {
        Self {
            net: NetConfig::default(),
            train: TrainConfig::default(),
            alpha: 0.1,
            lambda: 1e-4,
            beta: 1.0,
            delta: 1.0,
            memory_size: 500,
            ipm: IpmKind::Wasserstein,
            sinkhorn_epsilon: 0.1,
            sinkhorn_iterations: 30,
            distill_loss: DistillKind::SquaredL2,
            fresh_params_per_stage: true,
            refit_scalers_per_stage: false,
            ablation: Ablation::default(),
        }
    }
}

impl CerlConfig {
    /// Fast configuration for tests: tiny nets, few epochs.
    pub fn quick_test() -> Self {
        Self {
            net: NetConfig {
                repr_hidden: vec![32],
                repr_dim: 16,
                head_hidden: vec![16],
                activation: ActivationKind::Elu,
                transform_hidden: vec![32],
            },
            train: TrainConfig {
                epochs: 30,
                batch_size: 64,
                learning_rate: 3e-3,
                clip_norm: 5.0,
                patience: 8,
                memory_batch_size: 64,
                phi_warmup_steps: 100,
            },
            memory_size: 200,
            ..Self::default()
        }
    }

    /// Sinkhorn configuration derived from the scalar knobs.
    pub fn sinkhorn(&self) -> SinkhornConfig {
        SinkhornConfig {
            epsilon: self.sinkhorn_epsilon,
            epsilon_mode: EpsilonMode::RelativeToMeanCost,
            iterations: self.sinkhorn_iterations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = CerlConfig::default();
        assert!(c.alpha > 0.0);
        assert_eq!(c.beta, 1.0, "paper sets β = 1");
        assert!(c.memory_size > 0);
        assert!(c.ablation.feature_transform && c.ablation.herding && c.ablation.cosine_norm);
    }

    #[test]
    fn serde_roundtrip() {
        let c = CerlConfig::default();
        let json = serde_json::to_string(&c).unwrap();
        let back: CerlConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.net.repr_dim, c.net.repr_dim);
        assert_eq!(back.alpha, c.alpha);
    }

    #[test]
    fn activation_mapping() {
        assert_eq!(ActivationKind::Relu.to_activation(), Activation::Relu);
        assert_eq!(ActivationKind::Elu.to_activation(), Activation::Elu(1.0));
        assert_eq!(ActivationKind::Identity.to_activation(), Activation::Identity);
    }

    #[test]
    fn sinkhorn_derivation() {
        let c = CerlConfig::default();
        let s = c.sinkhorn();
        assert_eq!(s.iterations, c.sinkhorn_iterations);
        assert_eq!(s.epsilon, c.sinkhorn_epsilon);
    }
}
