//! Baseline causal-effect learning model (paper §III-A.1) — a
//! counterfactual-regression (CFR) estimator: selective + balanced
//! representation learning with two-head outcome inference.
//!
//! Objective (Eq. 5): `L = L_Y + α·Wass(P,Q) + λ·L_w`.
//!
//! This model is both CERL's first-stage learner and the backbone of the
//! three adaptation strategies (CFR-A/B/C) the paper compares against.

use crate::config::{CerlConfig, IpmKind};
use crate::heads::OutcomeHeads;
use crate::repr::ReprNet;
use crate::trainer::{minibatches, EarlyStopper, TrainReport};
use cerl_data::{CausalDataset, OutcomeScaler, Standardizer};
use cerl_math::Matrix;
use cerl_nn::compose::{elastic_net_penalty, mse, weighted_sum};
use cerl_nn::{Adam, Graph, NodeId, Optimizer, ParamStore};
use cerl_ot::{linear_mmd, rbf_mmd, wasserstein, Bandwidth};
use cerl_rand::seeds;

/// Symmetric z-score clip applied by all model standardizers (guards
/// against exploding inputs when later domains activate features that were
/// nearly constant in the fitting domain).
pub(crate) const Z_CLIP: f64 = 8.0;

/// Counterfactual-regression model (representation net + two heads).
pub struct CfrModel {
    cfg: CerlConfig,
    store: ParamStore,
    repr: ReprNet,
    heads: OutcomeHeads,
    x_std: Option<Standardizer>,
    y_scale: Option<OutcomeScaler>,
    seed: u64,
    d_in: usize,
    stages_trained: usize,
}

impl CfrModel {
    /// Create an untrained model for `d_in`-dimensional covariates.
    pub fn new(d_in: usize, cfg: CerlConfig, seed: u64) -> Self {
        let mut store = ParamStore::new();
        let mut rng = seeds::rng_labeled(seed, "init");
        let repr = ReprNet::new(&mut store, &mut rng, d_in, &cfg.net, cfg.ablation.cosine_norm, "g");
        let heads = OutcomeHeads::new(&mut store, &mut rng, cfg.net.repr_dim, &cfg.net, "h");
        Self { cfg, store, repr, heads, x_std: None, y_scale: None, seed, d_in, stages_trained: 0 }
    }

    /// Configuration in use.
    pub fn config(&self) -> &CerlConfig {
        &self.cfg
    }

    /// Train from the current parameters on `train`, early-stopping on
    /// `val`. Refits the covariate/outcome scalers on `train` (this is what
    /// fine-tuning strategies do when new data arrives).
    pub fn train(&mut self, train: &CausalDataset, val: &CausalDataset) -> TrainReport {
        assert!(train.n() >= 4, "CfrModel::train: need at least 4 units");
        let x_std = Standardizer::fit_clipped(&train.x, Z_CLIP);
        let y_scale = OutcomeScaler::fit(&train.y);
        let xs = x_std.transform(&train.x);
        let ys = Matrix::col_vector(&y_scale.transform(&train.y));
        let xv = x_std.transform(&val.x);
        let yv = y_scale.transform(&val.y);
        self.x_std = Some(x_std);
        self.y_scale = Some(y_scale);

        let params = {
            let mut p = self.repr.params();
            p.extend(self.heads.params());
            p
        };
        let mut opt = Adam::new(self.cfg.train.learning_rate);
        let mut stopper = EarlyStopper::new(params.clone(), self.cfg.train.patience);
        let mut rng = seeds::rng_labeled(self.seed, &format!("train-{}", self.stages_trained));

        let mut final_train_loss = f64::NAN;
        let mut epochs_run = 0;
        for _epoch in 0..self.cfg.train.epochs {
            epochs_run += 1;
            let mut epoch_loss = 0.0;
            let batches = minibatches(train.n(), self.cfg.train.batch_size, &mut rng);
            let n_batches = batches.len();
            for batch in batches {
                let xb = xs.select_rows(&batch);
                let yb = ys.select_rows(&batch);
                let tb: Vec<bool> = batch.iter().map(|&i| train.t[i]).collect();

                let mut g = Graph::new();
                let x = g.input(xb);
                let r = self.repr.forward(&mut g, &self.store, x);
                let y_hat = self.heads.forward_factual(&mut g, &self.store, r, &tb);
                let y_node = g.input(yb);
                let ly = mse(&mut g, y_hat, y_node);

                let mut terms = vec![(ly, 1.0)];
                if let Some(ipm) = self.ipm_term(&mut g, r, &tb) {
                    terms.push((ipm, self.cfg.alpha));
                }
                if self.cfg.lambda > 0.0 {
                    let lw = elastic_net_penalty(&mut g, &self.store, &self.repr.weights());
                    terms.push((lw, self.cfg.lambda));
                }
                let loss = weighted_sum(&mut g, &terms);
                epoch_loss += g.scalar(loss);

                let mut grads = g.backward(loss);
                if self.cfg.train.clip_norm > 0.0 {
                    grads.clip_global_norm(self.cfg.train.clip_norm);
                }
                opt.step(&mut self.store, &grads, &params);
            }
            final_train_loss = epoch_loss / n_batches.max(1) as f64;

            let val_loss = self.factual_mse_scaled(&xv, &yv, &val.t);
            if stopper.update(&self.store, val_loss) {
                break;
            }
        }
        stopper.restore_best(&mut self.store);
        self.stages_trained += 1;
        TrainReport { epochs_run, best_val_loss: stopper.best_loss(), final_train_loss }
    }

    /// IPM balance term between treated/control representations within a
    /// batch; `None` when disabled or a group has < 2 units.
    fn ipm_term(&self, g: &mut Graph, r: NodeId, t: &[bool]) -> Option<NodeId> {
        if self.cfg.alpha == 0.0 || self.cfg.ipm == IpmKind::None {
            return None;
        }
        let treated: Vec<usize> = (0..t.len()).filter(|&i| t[i]).collect();
        let control: Vec<usize> = (0..t.len()).filter(|&i| !t[i]).collect();
        if treated.len() < 2 || control.len() < 2 {
            return None;
        }
        let rt = g.select_rows(r, &treated);
        let rc = g.select_rows(r, &control);
        Some(match self.cfg.ipm {
            IpmKind::Wasserstein => wasserstein(g, rt, rc, self.cfg.sinkhorn()),
            IpmKind::LinearMmd => linear_mmd(g, rt, rc),
            IpmKind::RbfMmd => rbf_mmd(g, rt, rc, Bandwidth::MedianHeuristic),
            IpmKind::None => unreachable!("filtered above"),
        })
    }

    /// Factual MSE in scaled-outcome space on pre-standardized covariates
    /// (validation criterion).
    fn factual_mse_scaled(&self, x_std: &Matrix, y_scaled: &[f64], t: &[bool]) -> f64 {
        if x_std.rows() == 0 {
            return 0.0;
        }
        let r = self.repr.embed(&self.store, x_std);
        let (y0, y1) = self.heads.predict_both(&self.store, &r);
        let mut se = 0.0;
        for i in 0..x_std.rows() {
            let pred = if t[i] { y1[i] } else { y0[i] };
            se += (pred - y_scaled[i]) * (pred - y_scaled[i]);
        }
        se / x_std.rows() as f64
    }

    /// Representations of (raw) covariates under the trained pipeline.
    ///
    /// # Panics
    /// If called before training.
    pub fn embed(&self, x: &Matrix) -> Matrix {
        let std = self.x_std.as_ref().expect("CfrModel: not trained yet");
        self.repr.embed(&self.store, &std.transform(x))
    }

    /// Predict both potential outcomes (original outcome scale).
    pub fn predict_potential_outcomes(&self, x: &Matrix) -> (Vec<f64>, Vec<f64>) {
        let r = self.embed(x);
        let (y0s, y1s) = self.heads.predict_both(&self.store, &r);
        let scale = self.y_scale.as_ref().expect("CfrModel: not trained yet");
        (scale.inverse(&y0s), scale.inverse(&y1s))
    }

    /// Predicted individual treatment effects `ŷ₁ − ŷ₀`.
    pub fn predict_ite(&self, x: &Matrix) -> Vec<f64> {
        let (y0, y1) = self.predict_potential_outcomes(x);
        y1.iter().zip(&y0).map(|(&a, &b)| a - b).collect()
    }

    // ---- internals exposed to the continual trainer -------------------

    pub(crate) fn store(&self) -> &ParamStore {
        &self.store
    }

    pub(crate) fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    pub(crate) fn repr(&self) -> &ReprNet {
        &self.repr
    }

    pub(crate) fn heads(&self) -> &OutcomeHeads {
        &self.heads
    }

    pub(crate) fn x_std(&self) -> Option<&Standardizer> {
        self.x_std.as_ref()
    }

    pub(crate) fn y_scale(&self) -> Option<&OutcomeScaler> {
        self.y_scale.as_ref()
    }

    pub(crate) fn set_scalers(&mut self, x_std: Standardizer, y_scale: OutcomeScaler) {
        self.x_std = Some(x_std);
        self.y_scale = Some(y_scale);
    }

    /// Re-initialize the representation network and heads with fresh
    /// random parameters (the paper's continual stages train *new
    /// parameters* `w_d`; knowledge transfer happens through distillation
    /// and memory replay, not warm starting).
    pub(crate) fn reinitialize(&mut self, stage: usize) {
        let mut rng = seeds::rng_labeled(self.seed, &format!("reinit-{stage}"));
        let d_in = self.d_in;
        self.repr = ReprNet::new(
            &mut self.store,
            &mut rng,
            d_in,
            &self.cfg.net,
            self.cfg.ablation.cosine_norm,
            &format!("g{stage}"),
        );
        self.heads = OutcomeHeads::new(
            &mut self.store,
            &mut rng,
            self.cfg.net.repr_dim,
            &self.cfg.net,
            &format!("h{stage}"),
        );
    }

    pub(crate) fn bump_stage(&mut self) {
        self.stages_trained += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::EffectMetrics;
    use cerl_data::{SyntheticConfig, SyntheticGenerator};
    use rand::SeedableRng;

    fn quick_data() -> (CausalDataset, CausalDataset, CausalDataset) {
        let gen = SyntheticGenerator::new(
            SyntheticConfig { n_units: 600, ..SyntheticConfig::small() },
            42,
        );
        let data = gen.domain(0, 0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let s = data.split(0.6, 0.2, &mut rng);
        (s.train, s.val, s.test)
    }

    #[test]
    fn training_reduces_validation_loss_and_learns_effects() {
        let (train, val, test) = quick_data();
        let mut cfg = CerlConfig::quick_test();
        cfg.train.epochs = 40;
        let mut model = CfrModel::new(train.dim(), cfg, 3);
        let report = model.train(&train, &val);
        assert!(report.best_val_loss.is_finite());
        assert!(report.epochs_run >= 1);

        let est = model.predict_ite(&test.x);
        let m = EffectMetrics::on_dataset(&test, &est);
        // True ATE ≈ 0.4–0.6 with τ = sin²; an untrained/na(ï)ve zero
        // estimator would have √PEHE ≈ 0.55. Require clear improvement.
        let zero = EffectMetrics::on_dataset(&test, &vec![0.0; test.n()]);
        assert!(
            m.sqrt_pehe < zero.sqrt_pehe,
            "learned {:.3} vs trivial {:.3}",
            m.sqrt_pehe,
            zero.sqrt_pehe
        );
        assert!(m.ate_error < 0.4, "ate_error {}", m.ate_error);
    }

    #[test]
    fn predict_before_training_panics() {
        let model = CfrModel::new(5, CerlConfig::quick_test(), 1);
        let x = Matrix::zeros(2, 5);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            model.predict_ite(&x)
        }));
        assert!(result.is_err());
    }

    #[test]
    fn embedding_dimension_matches_config() {
        let (train, val, _) = quick_data();
        let cfg = CerlConfig::quick_test();
        let repr_dim = cfg.net.repr_dim;
        let mut model = CfrModel::new(train.dim(), cfg, 5);
        let small_cfg_train = train.clone();
        // Train briefly just to fit scalers.
        model.cfg.train.epochs = 2;
        model.train(&small_cfg_train, &val);
        let r = model.embed(&train.x);
        assert_eq!(r.shape(), (train.n(), repr_dim));
    }

    #[test]
    fn deterministic_given_seed() {
        let (train, val, test) = quick_data();
        let mut cfg = CerlConfig::quick_test();
        cfg.train.epochs = 5;
        let mut m1 = CfrModel::new(train.dim(), cfg.clone(), 11);
        let mut m2 = CfrModel::new(train.dim(), cfg, 11);
        m1.train(&train, &val);
        m2.train(&train, &val);
        let e1 = m1.predict_ite(&test.x);
        let e2 = m2.predict_ite(&test.x);
        for (a, b) in e1.iter().zip(&e2) {
            assert_eq!(a, b, "non-deterministic training");
        }
    }
}
