//! Baseline causal-effect learning model (paper §III-A.1) — a
//! counterfactual-regression (CFR) estimator: selective + balanced
//! representation learning with two-head outcome inference.
//!
//! Objective (Eq. 5): `L = L_Y + α·Wass(P,Q) + λ·L_w`.
//!
//! This model is both CERL's first-stage learner and the backbone of the
//! three adaptation strategies (CFR-A/B/C) the paper compares against.

use crate::config::{CerlConfig, IpmKind};
use crate::error::CerlError;
use crate::heads::OutcomeHeads;
use crate::repr::ReprNet;
use crate::snapshot::CfrState;
use crate::trainer::{minibatches, validate_stage_inputs, EarlyStopper, TrainReport};
use cerl_data::{CausalDataset, OutcomeScaler, Standardizer};
use cerl_math::Matrix;
use cerl_nn::compose::{elastic_net_penalty, mse, weighted_sum};
use cerl_nn::{Adam, Graph, NodeId, Optimizer, ParamStore};
use cerl_ot::{linear_mmd, rbf_mmd, wasserstein, Bandwidth};
use cerl_rand::seeds;

/// Symmetric z-score clip applied by all model standardizers (guards
/// against exploding inputs when later domains activate features that were
/// nearly constant in the fitting domain).
pub(crate) const Z_CLIP: f64 = 8.0;

/// Counterfactual-regression model (representation net + two heads).
#[derive(Clone)]
pub struct CfrModel {
    cfg: CerlConfig,
    store: ParamStore,
    repr: ReprNet,
    heads: OutcomeHeads,
    x_std: Option<Standardizer>,
    y_scale: Option<OutcomeScaler>,
    seed: u64,
    d_in: usize,
    stages_trained: usize,
}

impl CfrModel {
    /// Create an untrained model for `d_in`-dimensional covariates.
    ///
    /// # Panics
    /// On an invalid configuration; [`CfrModel::try_new`] is the fallible
    /// form.
    pub fn new(d_in: usize, cfg: CerlConfig, seed: u64) -> Self {
        match Self::try_new(d_in, cfg, seed) {
            Ok(model) => model,
            Err(e) => panic!("CfrModel::new: {e}"),
        }
    }

    /// Create an untrained model, validating the configuration and the
    /// covariate dimension first.
    pub fn try_new(d_in: usize, cfg: CerlConfig, seed: u64) -> Result<Self, CerlError> {
        cfg.validate()?;
        if d_in == 0 {
            return Err(CerlError::EmptyInput {
                what: "covariate dimension (d_in = 0)",
            });
        }
        let mut store = ParamStore::new();
        let mut rng = seeds::rng_labeled(seed, "init");
        let repr = ReprNet::new(
            &mut store,
            &mut rng,
            d_in,
            &cfg.net,
            cfg.ablation.cosine_norm,
            "g",
        );
        let heads = OutcomeHeads::new(&mut store, &mut rng, cfg.net.repr_dim, &cfg.net, "h");
        Ok(Self {
            cfg,
            store,
            repr,
            heads,
            x_std: None,
            y_scale: None,
            seed,
            d_in,
            stages_trained: 0,
        })
    }

    /// Covariate dimension this model was built for.
    pub fn d_in(&self) -> usize {
        self.d_in
    }

    /// Configuration in use.
    pub fn config(&self) -> &CerlConfig {
        &self.cfg
    }

    /// Train from the current parameters on `train`, early-stopping on
    /// `val`.
    ///
    /// # Panics
    /// On invalid input; [`CfrModel::try_train`] is the fallible form.
    pub fn train(&mut self, train: &CausalDataset, val: &CausalDataset) -> TrainReport {
        match self.try_train(train, val) {
            Ok(report) => report,
            Err(e) => panic!("CfrModel::train: {e}"),
        }
    }

    /// Train from the current parameters on `train`, early-stopping on
    /// `val`. Refits the covariate/outcome scalers on `train` (this is what
    /// fine-tuning strategies do when new data arrives).
    pub fn try_train(
        &mut self,
        train: &CausalDataset,
        val: &CausalDataset,
    ) -> Result<TrainReport, CerlError> {
        validate_stage_inputs(train, val, self.d_in)?;
        let x_std = Standardizer::try_fit_clipped(&train.x, Z_CLIP)?;
        let y_scale = OutcomeScaler::try_fit(&train.y)?;
        let xs = x_std.try_transform(&train.x)?;
        let ys = Matrix::col_vector(&y_scale.transform(&train.y));
        let xv = x_std.try_transform(&val.x)?;
        let yv = y_scale.transform(&val.y);
        self.x_std = Some(x_std);
        self.y_scale = Some(y_scale);

        let params = {
            let mut p = self.repr.params();
            p.extend(self.heads.params());
            p
        };
        let mut opt = Adam::new(self.cfg.train.learning_rate);
        let mut stopper = EarlyStopper::new(params.clone(), self.cfg.train.patience);
        let mut rng = seeds::rng_labeled(self.seed, &format!("train-{}", self.stages_trained));

        let mut final_train_loss = f64::NAN;
        let mut epochs_run = 0;
        for _epoch in 0..self.cfg.train.epochs {
            epochs_run += 1;
            let mut epoch_loss = 0.0;
            let batches = minibatches(train.n(), self.cfg.train.batch_size, &mut rng);
            let n_batches = batches.len();
            for batch in batches {
                let xb = xs.select_rows(&batch);
                let yb = ys.select_rows(&batch);
                let tb: Vec<bool> = batch.iter().map(|&i| train.t[i]).collect();

                let mut g = Graph::new();
                let x = g.input(xb);
                let r = self.repr.forward(&mut g, &self.store, x);
                let y_hat = self.heads.forward_factual(&mut g, &self.store, r, &tb);
                let y_node = g.input(yb);
                let ly = mse(&mut g, y_hat, y_node);

                let mut terms = vec![(ly, 1.0)];
                if let Some(ipm) = self.ipm_term(&mut g, r, &tb) {
                    terms.push((ipm, self.cfg.alpha));
                }
                if self.cfg.lambda > 0.0 {
                    let lw = elastic_net_penalty(&mut g, &self.store, &self.repr.weights());
                    terms.push((lw, self.cfg.lambda));
                }
                let loss = weighted_sum(&mut g, &terms);
                epoch_loss += g.scalar(loss);

                let mut grads = g.backward(loss);
                if self.cfg.train.clip_norm > 0.0 {
                    grads.clip_global_norm(self.cfg.train.clip_norm);
                }
                opt.step(&mut self.store, &grads, &params);
            }
            final_train_loss = epoch_loss / n_batches.max(1) as f64;

            let val_loss = self.factual_mse_scaled(&xv, &yv, &val.t);
            if stopper.update(&self.store, val_loss) {
                break;
            }
        }
        stopper.restore_best(&mut self.store);
        self.stages_trained += 1;
        Ok(TrainReport {
            epochs_run,
            best_val_loss: stopper.best_loss(),
            final_train_loss,
        })
    }

    /// IPM balance term between treated/control representations within a
    /// batch; `None` when disabled or a group has < 2 units.
    fn ipm_term(&self, g: &mut Graph, r: NodeId, t: &[bool]) -> Option<NodeId> {
        if self.cfg.alpha == 0.0 || self.cfg.ipm == IpmKind::None {
            return None;
        }
        let treated: Vec<usize> = (0..t.len()).filter(|&i| t[i]).collect();
        let control: Vec<usize> = (0..t.len()).filter(|&i| !t[i]).collect();
        if treated.len() < 2 || control.len() < 2 {
            return None;
        }
        let rt = g.select_rows(r, &treated);
        let rc = g.select_rows(r, &control);
        match self.cfg.ipm {
            IpmKind::Wasserstein => Some(wasserstein(g, rt, rc, self.cfg.sinkhorn())),
            IpmKind::LinearMmd => Some(linear_mmd(g, rt, rc)),
            IpmKind::RbfMmd => Some(rbf_mmd(g, rt, rc, Bandwidth::MedianHeuristic)),
            IpmKind::None => None,
        }
    }

    /// Factual MSE in scaled-outcome space on pre-standardized covariates
    /// (validation criterion).
    fn factual_mse_scaled(&self, x_std: &Matrix, y_scaled: &[f64], t: &[bool]) -> f64 {
        if x_std.rows() == 0 {
            return 0.0;
        }
        let r = self.repr.embed(&self.store, x_std);
        let (y0, y1) = self.heads.predict_both(&self.store, &r);
        let mut se = 0.0;
        for i in 0..x_std.rows() {
            let pred = if t[i] { y1[i] } else { y0[i] };
            se += (pred - y_scaled[i]) * (pred - y_scaled[i]);
        }
        se / x_std.rows() as f64
    }

    /// Representations of (raw) covariates under the trained pipeline.
    ///
    /// # Panics
    /// If called before training; [`CfrModel::try_embed`] is the fallible
    /// form.
    pub fn embed(&self, x: &Matrix) -> Matrix {
        match self.try_embed(x) {
            Ok(r) => r,
            Err(e) => panic!("CfrModel::embed: {e}"),
        }
    }

    /// Representations of (raw) covariates under the trained pipeline,
    /// failing with a typed error before training or on a dimension
    /// mismatch.
    pub fn try_embed(&self, x: &Matrix) -> Result<Matrix, CerlError> {
        let std = match self.x_std.as_ref() {
            Some(std) => std,
            None => return Err(CerlError::NotTrained),
        };
        if x.cols() != self.d_in {
            return Err(CerlError::DimensionMismatch {
                expected: self.d_in,
                found: x.cols(),
            });
        }
        Ok(self.repr.embed(&self.store, &std.try_transform(x)?))
    }

    /// Predict both potential outcomes (original outcome scale).
    ///
    /// # Panics
    /// If called before training;
    /// [`CfrModel::try_predict_potential_outcomes`] is the fallible form.
    pub fn predict_potential_outcomes(&self, x: &Matrix) -> (Vec<f64>, Vec<f64>) {
        match self.try_predict_potential_outcomes(x) {
            Ok(pair) => pair,
            Err(e) => panic!("CfrModel::predict_potential_outcomes: {e}"),
        }
    }

    /// Predict both potential outcomes (original outcome scale), failing
    /// with a typed error before training or on a dimension mismatch.
    pub fn try_predict_potential_outcomes(
        &self,
        x: &Matrix,
    ) -> Result<(Vec<f64>, Vec<f64>), CerlError> {
        let r = self.try_embed(x)?;
        let (y0s, y1s) = self.heads.predict_both(&self.store, &r);
        let scale = match self.y_scale.as_ref() {
            Some(scale) => scale,
            None => return Err(CerlError::NotTrained),
        };
        Ok((scale.inverse(&y0s), scale.inverse(&y1s)))
    }

    /// Predicted individual treatment effects `ŷ₁ − ŷ₀`.
    ///
    /// # Panics
    /// If called before training; [`CfrModel::try_predict_ite`] is the
    /// fallible form.
    pub fn predict_ite(&self, x: &Matrix) -> Vec<f64> {
        match self.try_predict_ite(x) {
            Ok(ite) => ite,
            Err(e) => panic!("CfrModel::predict_ite: {e}"),
        }
    }

    /// Predicted individual treatment effects `ŷ₁ − ŷ₀`, failing with a
    /// typed error before training or on a dimension mismatch.
    pub fn try_predict_ite(&self, x: &Matrix) -> Result<Vec<f64>, CerlError> {
        let (y0, y1) = self.try_predict_potential_outcomes(x)?;
        Ok(y1.iter().zip(&y0).map(|(&a, &b)| a - b).collect())
    }

    // ---- internals exposed to the continual trainer -------------------

    pub(crate) fn store(&self) -> &ParamStore {
        &self.store
    }

    pub(crate) fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    pub(crate) fn repr(&self) -> &ReprNet {
        &self.repr
    }

    pub(crate) fn heads(&self) -> &OutcomeHeads {
        &self.heads
    }

    pub(crate) fn x_std(&self) -> Option<&Standardizer> {
        self.x_std.as_ref()
    }

    pub(crate) fn y_scale(&self) -> Option<&OutcomeScaler> {
        self.y_scale.as_ref()
    }

    pub(crate) fn set_scalers(&mut self, x_std: Standardizer, y_scale: OutcomeScaler) {
        self.x_std = Some(x_std);
        self.y_scale = Some(y_scale);
    }

    /// Re-initialize the representation network and heads with fresh
    /// random parameters (the paper's continual stages train *new
    /// parameters* `w_d`; knowledge transfer happens through distillation
    /// and memory replay, not warm starting).
    pub(crate) fn reinitialize(&mut self, stage: usize) {
        let mut rng = seeds::rng_labeled(self.seed, &format!("reinit-{stage}"));
        let d_in = self.d_in;
        self.repr = ReprNet::new(
            &mut self.store,
            &mut rng,
            d_in,
            &self.cfg.net,
            self.cfg.ablation.cosine_norm,
            &format!("g{stage}"),
        );
        self.heads = OutcomeHeads::new(
            &mut self.store,
            &mut rng,
            self.cfg.net.repr_dim,
            &self.cfg.net,
            &format!("h{stage}"),
        );
    }

    pub(crate) fn bump_stage(&mut self) {
        self.stages_trained += 1;
    }

    /// Capture everything needed to reconstruct this model (snapshot
    /// support).
    pub(crate) fn to_state(&self) -> CfrState {
        CfrState {
            store: self.store.clone(),
            repr: self.repr.clone(),
            heads: self.heads.clone(),
            x_std: self.x_std.clone(),
            y_scale: self.y_scale,
            d_in: self.d_in,
            stages_trained: self.stages_trained,
        }
    }

    /// Rebuild a model from a captured state; the caller (snapshot layer)
    /// has already validated parameter-id consistency.
    pub(crate) fn from_state(state: CfrState, cfg: CerlConfig, seed: u64) -> Self {
        Self {
            cfg,
            store: state.store,
            repr: state.repr,
            heads: state.heads,
            x_std: state.x_std,
            y_scale: state.y_scale,
            seed,
            d_in: state.d_in,
            stages_trained: state.stages_trained,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::EffectMetrics;
    use cerl_data::{SyntheticConfig, SyntheticGenerator};
    use rand::SeedableRng;

    fn quick_data() -> (CausalDataset, CausalDataset, CausalDataset) {
        let gen = SyntheticGenerator::new(
            SyntheticConfig {
                n_units: 600,
                ..SyntheticConfig::small()
            },
            42,
        );
        let data = gen.domain(0, 0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let s = data.split(0.6, 0.2, &mut rng);
        (s.train, s.val, s.test)
    }

    #[test]
    fn training_reduces_validation_loss_and_learns_effects() {
        let (train, val, test) = quick_data();
        let mut cfg = CerlConfig::quick_test();
        cfg.train.epochs = 40;
        let mut model = CfrModel::new(train.dim(), cfg, 3);
        let report = model.train(&train, &val);
        assert!(report.best_val_loss.is_finite());
        assert!(report.epochs_run >= 1);

        let est = model.predict_ite(&test.x);
        let m = EffectMetrics::on_dataset(&test, &est);
        // True ATE ≈ 0.4–0.6 with τ = sin²; an untrained/na(ï)ve zero
        // estimator would have √PEHE ≈ 0.55. Require clear improvement.
        let zero = EffectMetrics::on_dataset(&test, &vec![0.0; test.n()]);
        assert!(
            m.sqrt_pehe < zero.sqrt_pehe,
            "learned {:.3} vs trivial {:.3}",
            m.sqrt_pehe,
            zero.sqrt_pehe
        );
        assert!(m.ate_error < 0.4, "ate_error {}", m.ate_error);
    }

    #[test]
    fn predict_before_training_panics() {
        let model = CfrModel::new(5, CerlConfig::quick_test(), 1);
        let x = Matrix::zeros(2, 5);
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| model.predict_ite(&x)));
        assert!(result.is_err());
    }

    #[test]
    fn embedding_dimension_matches_config() {
        let (train, val, _) = quick_data();
        let cfg = CerlConfig::quick_test();
        let repr_dim = cfg.net.repr_dim;
        let mut model = CfrModel::new(train.dim(), cfg, 5);
        let small_cfg_train = train.clone();
        // Train briefly just to fit scalers.
        model.cfg.train.epochs = 2;
        model.train(&small_cfg_train, &val);
        let r = model.embed(&train.x);
        assert_eq!(r.shape(), (train.n(), repr_dim));
    }

    #[test]
    fn deterministic_given_seed() {
        let (train, val, test) = quick_data();
        let mut cfg = CerlConfig::quick_test();
        cfg.train.epochs = 5;
        let mut m1 = CfrModel::new(train.dim(), cfg.clone(), 11);
        let mut m2 = CfrModel::new(train.dim(), cfg, 11);
        m1.train(&train, &val);
        m2.train(&train, &val);
        let e1 = m1.predict_ite(&test.x);
        let e2 = m2.predict_ite(&test.x);
        for (a, b) in e1.iter().zip(&e2) {
            assert_eq!(a, b, "non-deterministic training");
        }
    }
}
