//! # cerl-core
//!
//! CERL — *Continual Causal Effect Representation Learning* (Chu et al.,
//! ICDE 2023) — estimates individual and average treatment effects from
//! observational data that arrives **incrementally from non-stationary
//! domains**, without retaining raw previous data.
//!
//! The crate provides:
//!
//! * [`engine`] — the serving facade: [`CerlEngine`]
//!   with a fallible builder, typed errors, batched inference, and
//!   versioned model snapshots.
//! * [`serving`] — the concurrent layer on top:
//!   [`ServingEngine`] shares one engine across
//!   reader threads behind an atomically swappable snapshot pointer,
//!   fans large requests across workers
//!   ([`predict_ite_parallel`](serving::ServingEngine::predict_ite_parallel)),
//!   and counts traffic in [`ServingStats`].
//! * [`error`] / [`snapshot`] — [`CerlError`] and the
//!   [`ModelSnapshot`] persistence format.
//! * [`cfr`] — the baseline causal-effect learner (Eq. 5): selective +
//!   balanced representation learning with two-head outcome inference.
//! * [`continual`] — [`Cerl`], Algorithm 1: feature
//!   distillation (Eq. 6), feature transformation (Eq. 7), herding memory,
//!   and global representation balancing (Eqs. 8–9).
//! * [`strategies`] — CFR-A/B/C adaptation baselines and the common
//!   [`ContinualEstimator`] trait (fallible
//!   `try_observe`/`try_predict_ite` core with infallible wrappers).
//! * [`baselines`] — classic S-learner / T-learner meta-learners.
//! * [`herding`] / [`memory`] — bounded representation memory.
//! * [`repr`] / [`heads`] / [`transform`] — network components.
//! * [`metrics`] — `√ε_PEHE` and `ε_ATE`.
//! * [`config`] — every hyper-parameter of Eq. 9 plus ablation switches,
//!   with up-front validation ([`CerlConfig::validate`](config::CerlConfig::validate)).
//!
//! ## Quick example
//!
//! ```
//! use cerl_core::config::CerlConfig;
//! use cerl_core::engine::CerlEngineBuilder;
//! use cerl_core::metrics::EffectMetrics;
//! use cerl_data::{DomainStream, SyntheticConfig, SyntheticGenerator};
//!
//! // Two incrementally available domains from shifted distributions.
//! let gen = SyntheticGenerator::new(SyntheticConfig::small(), 7);
//! let stream = DomainStream::synthetic(&gen, 2, 0, 7);
//!
//! let mut cfg = CerlConfig::quick_test();
//! cfg.train.epochs = 3; // demo speed
//! let mut engine = CerlEngineBuilder::new(cfg).seed(7).build()?;
//! for d in 0..stream.len() {
//!     engine.observe(&stream.domain(d).train, &stream.domain(d).val)?;
//! }
//! // One model now serves all seen domains — no raw data retained — and
//! // survives process restarts via versioned snapshot bytes.
//! let test = &stream.domain(0).test;
//! let metrics = EffectMetrics::on_dataset(test, &engine.predict_ite(&test.x)?);
//! assert!(metrics.sqrt_pehe.is_finite());
//! let restored = cerl_core::engine::CerlEngine::load_bytes(&engine.save_bytes()?)?;
//! assert_eq!(restored.predict_ite(&test.x)?, engine.predict_ite(&test.x)?);
//! # Ok::<(), cerl_core::error::CerlError>(())
//! ```
//!
//! ## Serving under concurrency
//!
//! To serve many request threads from one process — and keep serving while
//! new domains are trained in — wrap the engine in a
//! [`ServingEngine`]. Readers pin the current
//! engine version through a lock held only for an `Arc` clone;
//! [`observe_and_swap`](serving::ServingEngine::observe_and_swap) trains a
//! successor off to the side and publishes it with a single pointer swap:
//!
//! ```
//! use cerl_core::config::CerlConfig;
//! use cerl_core::engine::CerlEngineBuilder;
//! use cerl_core::serving::ServingEngine;
//! use cerl_data::{DomainStream, SyntheticConfig, SyntheticGenerator};
//!
//! let gen = SyntheticGenerator::new(SyntheticConfig::small(), 7);
//! let stream = DomainStream::synthetic(&gen, 2, 0, 7);
//! let mut cfg = CerlConfig::quick_test();
//! cfg.train.epochs = 2; // doc-test speed
//! let mut engine = CerlEngineBuilder::new(cfg).seed(7).build()?;
//! engine.observe(&stream.domain(0).train, &stream.domain(0).val)?;
//!
//! let serving = std::sync::Arc::new(ServingEngine::new(engine));
//! let x = &stream.domain(0).test.x;
//! // Request threads: `serving.predict_ite(&x)` from as many threads as
//! // desired; large matrices can fan out across workers.
//! let ite = serving.predict_ite_parallel(x, 4)?;
//! // Trainer thread: readers keep answering version 1 during this call.
//! serving.observe_and_swap(&stream.domain(1).train, &stream.domain(1).val)?;
//! assert_eq!(serving.version(), 2);
//! assert_eq!(serving.stats().requests_served, 1);
//! # assert_eq!(ite.len(), x.rows());
//! # Ok::<(), cerl_core::error::CerlError>(())
//! ```

#![warn(missing_docs)]

pub mod baselines;
pub mod cfr;
pub mod config;
pub mod continual;
pub mod engine;
pub mod error;
pub mod heads;
pub mod herding;
pub mod memory;
pub mod metrics;
pub mod precision;
pub mod repr;
pub mod serving;
pub mod snapshot;
pub mod strategies;
pub mod trainer;
pub mod transform;

pub use baselines::{SLearner, TLearner};
pub use cfr::CfrModel;
pub use config::{
    Ablation, ActivationKind, CerlConfig, DistillKind, IpmKind, NetConfig, TrainConfig,
};
pub use continual::{Cerl, StageReport};
pub use engine::{CerlEngine, CerlEngineBuilder};
pub use error::{CerlError, SnapshotError};
pub use memory::Memory;
pub use metrics::EffectMetrics;
pub use precision::PrecisionMode;
pub use serving::{
    ServingEngine, ServingStats, ServingStatsSnapshot, VersionStats, VersionedEngine,
};
pub use snapshot::{
    ModelSnapshot, ReplicaChange, ReplicaSet, ShardAssignment, ShardMap, ShardMapDiff, ShardMove,
    SnapshotPayload, SNAPSHOT_BINARY_FORMAT_VERSION, SNAPSHOT_FORMAT_VERSION,
};
pub use strategies::{paper_lineup, CfrA, CfrB, CfrC, ContinualEstimator};
pub use trainer::TrainReport;
