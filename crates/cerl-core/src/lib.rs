//! # cerl-core
//!
//! CERL — *Continual Causal Effect Representation Learning* (Chu et al.,
//! ICDE 2023) — estimates individual and average treatment effects from
//! observational data that arrives **incrementally from non-stationary
//! domains**, without retaining raw previous data.
//!
//! The crate provides:
//!
//! * [`cfr`] — the baseline causal-effect learner (Eq. 5): selective +
//!   balanced representation learning with two-head outcome inference.
//! * [`continual`] — [`Cerl`](continual::Cerl), Algorithm 1: feature
//!   distillation (Eq. 6), feature transformation (Eq. 7), herding memory,
//!   and global representation balancing (Eqs. 8–9).
//! * [`strategies`] — CFR-A/B/C adaptation baselines and the common
//!   [`ContinualEstimator`](strategies::ContinualEstimator) trait.
//! * [`baselines`] — classic S-learner / T-learner meta-learners.
//! * [`herding`] / [`memory`] — bounded representation memory.
//! * [`repr`] / [`heads`] / [`transform`] — network components.
//! * [`metrics`] — `√ε_PEHE` and `ε_ATE`.
//! * [`config`] — every hyper-parameter of Eq. 9 plus ablation switches.
//!
//! ## Quick example
//!
//! ```
//! use cerl_core::config::CerlConfig;
//! use cerl_core::continual::Cerl;
//! use cerl_core::metrics::EffectMetrics;
//! use cerl_data::{DomainStream, SyntheticConfig, SyntheticGenerator};
//!
//! // Two incrementally available domains from shifted distributions.
//! let gen = SyntheticGenerator::new(SyntheticConfig::small(), 7);
//! let stream = DomainStream::synthetic(&gen, 2, 0, 7);
//!
//! let mut cfg = CerlConfig::quick_test();
//! cfg.train.epochs = 3; // demo speed
//! let mut cerl = Cerl::new(stream.domain(0).train.dim(), cfg, 7);
//! for d in 0..stream.len() {
//!     cerl.observe(&stream.domain(d).train, &stream.domain(d).val);
//! }
//! // One model now serves all seen domains — no raw data retained.
//! let test = &stream.domain(0).test;
//! let metrics = EffectMetrics::on_dataset(test, &cerl.predict_ite(&test.x));
//! assert!(metrics.sqrt_pehe.is_finite());
//! ```

#![warn(missing_docs)]

pub mod baselines;
pub mod cfr;
pub mod config;
pub mod continual;
pub mod heads;
pub mod herding;
pub mod memory;
pub mod metrics;
pub mod repr;
pub mod strategies;
pub mod trainer;
pub mod transform;

pub use baselines::{SLearner, TLearner};
pub use cfr::CfrModel;
pub use config::{Ablation, ActivationKind, CerlConfig, DistillKind, IpmKind, NetConfig, TrainConfig};
pub use continual::{Cerl, StageReport};
pub use memory::Memory;
pub use metrics::EffectMetrics;
pub use strategies::{paper_lineup, CfrA, CfrB, CfrC, ContinualEstimator};
pub use trainer::TrainReport;
