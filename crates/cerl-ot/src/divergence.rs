//! Debiased Sinkhorn divergence.
//!
//! Entropic regularization biases the Sinkhorn cost upward:
//! `W_ε(P, P) > 0` for `ε > 0`, and the bias grows with `ε`. The Sinkhorn
//! divergence removes it:
//!
//! ```text
//! S_ε(P, Q) = W_ε(P, Q) − ½ W_ε(P, P) − ½ W_ε(Q, Q)
//! ```
//!
//! which is non-negative, zero iff `P = Q`, and metrizes weak convergence
//! (Feydy et al., 2019). Useful when a larger `ε` is wanted for speed but
//! the raw entropic cost would report spurious imbalance.

use crate::sinkhorn::SinkhornConfig;
use crate::wasserstein::wasserstein;
use cerl_nn::compose::weighted_sum;
use cerl_nn::{Graph, NodeId};

/// Insert a debiased Sinkhorn divergence node between two batches.
///
/// Composes three [`wasserstein`] ops on the tape, so gradients flow
/// through all terms (self-terms included, which is what keeps the
/// divergence's minimum exactly at `P = Q`).
pub fn sinkhorn_divergence(g: &mut Graph, a: NodeId, b: NodeId, cfg: SinkhornConfig) -> NodeId {
    let w_ab = wasserstein(g, a, b, cfg);
    let w_aa = wasserstein(g, a, a, cfg);
    let w_bb = wasserstein(g, b, b, cfg);
    weighted_sum(g, &[(w_ab, 1.0), (w_aa, -0.5), (w_bb, -0.5)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sinkhorn::EpsilonMode;
    use cerl_math::Matrix;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn cfg(eps: f64) -> SinkhornConfig {
        SinkhornConfig {
            epsilon: eps,
            epsilon_mode: EpsilonMode::Absolute,
            iterations: 300,
        }
    }

    fn batch(n: usize, d: usize, shift: f64, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::from_fn(n, d, |_, _| rng.gen::<f64>() + shift)
    }

    #[test]
    fn self_divergence_is_zero_even_at_large_epsilon() {
        let x = batch(12, 3, 0.0, 1);
        let mut g = Graph::new();
        let a = g.input(x.clone());
        let b = g.input(x);
        // Raw entropic cost at large ε is visibly positive on identical sets…
        let w = wasserstein(&mut g, a, b, cfg(1.0));
        // (identical batches still couple diagonally, so raw W_ε here is
        // tiny; use slightly different views to expose the bias instead)
        let s = sinkhorn_divergence(&mut g, a, b, cfg(1.0));
        assert!(g.scalar(s).abs() < 1e-9, "S={}", g.scalar(s));
        assert!(g.scalar(w) >= 0.0);
    }

    #[test]
    fn debiasing_reduces_epsilon_sensitivity() {
        // Same pair of distinct batches, small vs large ε: the *raw* cost
        // inflates with ε; the divergence stays far closer.
        let x = batch(16, 3, 0.0, 2);
        let y = batch(16, 3, 0.4, 3);
        let at = |eps: f64| -> (f64, f64) {
            let mut g = Graph::new();
            let a = g.input(x.clone());
            let b = g.input(y.clone());
            let w = wasserstein(&mut g, a, b, cfg(eps));
            let s = sinkhorn_divergence(&mut g, a, b, cfg(eps));
            (g.scalar(w), g.scalar(s))
        };
        let (w_small, s_small) = at(0.01);
        let (w_large, s_large) = at(2.0);
        let w_inflation = (w_large - w_small).abs() / w_small.max(1e-12);
        let s_inflation = (s_large - s_small).abs() / s_small.max(1e-12);
        assert!(
            s_inflation < w_inflation,
            "divergence should be less ε-sensitive: S {s_inflation:.3} vs W {w_inflation:.3}"
        );
    }

    #[test]
    fn divergence_detects_shift_and_is_nonnegative() {
        let x = batch(14, 2, 0.0, 4);
        for shift in [0.0, 0.3, 0.8] {
            let y = batch(14, 2, shift, 5);
            let mut g = Graph::new();
            let a = g.input(x.clone());
            let b = g.input(y);
            let s = sinkhorn_divergence(&mut g, a, b, cfg(0.1));
            let v = g.scalar(s);
            assert!(v > -1e-9, "negative divergence {v} at shift {shift}");
        }
        // Larger shift → larger divergence.
        let val = |shift: f64| {
            let y = batch(14, 2, shift, 5);
            let mut g = Graph::new();
            let a = g.input(x.clone());
            let b = g.input(y);
            let s = sinkhorn_divergence(&mut g, a, b, cfg(0.1));
            g.scalar(s)
        };
        assert!(val(0.8) > val(0.3));
    }

    #[test]
    fn gradients_flow_through_all_terms() {
        let mut store = cerl_nn::ParamStore::new();
        let xa = store.add("a", batch(6, 2, 0.0, 7));
        let y = batch(6, 2, 0.5, 8);
        let mut g = Graph::new();
        let a = g.param(&store, xa);
        let b = g.input(y);
        let s = sinkhorn_divergence(&mut g, a, b, cfg(0.05));
        let grads = g.backward(s);
        let ga = grads.param_grad(xa).expect("gradient exists");
        assert!(ga.max_abs() > 0.0);
    }
}
