//! # cerl-ot
//!
//! Integral probability metrics for representation balancing, with
//! gradients that plug into the `cerl-nn` tape:
//!
//! * [`sinkhorn`] — log-domain Sinkhorn solver for entropy-regularized OT.
//! * [`wasserstein`](mod@wasserstein) — the paper's IPM (Eq. 3): Sinkhorn-Wasserstein
//!   between treated/control representation batches, with envelope
//!   gradients through the cached transport plan.
//! * [`divergence`] — debiased Sinkhorn divergence `S_ε` (Feydy et al.).
//! * [`mmd`] — linear and RBF MMD alternatives (for ablations).
//! * [`exact1d`] — exact 1-D OT used as a test oracle.

#![warn(missing_docs)]

pub mod divergence;
pub mod exact1d;
pub mod mmd;
pub mod sinkhorn;
pub mod wasserstein;

pub use divergence::sinkhorn_divergence;
pub use mmd::{linear_mmd, rbf_mmd, Bandwidth, LinearMmdOp, RbfMmdOp};
pub use sinkhorn::{sinkhorn_plan, sinkhorn_uniform, EpsilonMode, SinkhornConfig, SinkhornResult};
pub use wasserstein::{wasserstein, WassersteinOp};
