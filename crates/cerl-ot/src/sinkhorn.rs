//! Log-domain Sinkhorn iterations for entropy-regularized optimal transport.
//!
//! The paper balances treated/control representation distributions with an
//! IPM instantiated as the Wasserstein distance (Eq. 3), following the CFR
//! line of work, which computes it with Sinkhorn iterations. The log-domain
//! form is robust to small `ε`.

use cerl_math::Matrix;

/// Configuration for the Sinkhorn solver.
#[derive(Debug, Clone, Copy)]
pub struct SinkhornConfig {
    /// Entropic regularization strength. Interpreted per [`EpsilonMode`].
    pub epsilon: f64,
    /// How `epsilon` relates to the cost matrix.
    pub epsilon_mode: EpsilonMode,
    /// Number of Sinkhorn iterations.
    pub iterations: usize,
}

/// Interpretation of the `epsilon` field.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EpsilonMode {
    /// Use `epsilon` directly.
    Absolute,
    /// Use `epsilon · mean(cost)`, adapting regularization to the scale of
    /// the batch (recommended; cost scales vary wildly across domains).
    RelativeToMeanCost,
}

impl Default for SinkhornConfig {
    fn default() -> Self {
        Self {
            epsilon: 0.05,
            epsilon_mode: EpsilonMode::RelativeToMeanCost,
            iterations: 50,
        }
    }
}

/// Output of [`sinkhorn_plan`].
#[derive(Debug, Clone)]
pub struct SinkhornResult {
    /// Transport plan `P` (rows sum to `a`, columns to `b`).
    pub plan: Matrix,
    /// Transport cost `⟨P, C⟩` (without the entropy term).
    pub cost: f64,
    /// Effective `ε` actually used (after mode resolution).
    pub effective_epsilon: f64,
}

/// Solve entropy-regularized OT between histograms `a` (len n) and `b`
/// (len m) under cost matrix `cost` (n×m), returning the plan and cost.
///
/// # Panics
/// If marginals are not positive probability vectors matching `cost`'s
/// shape.
pub fn sinkhorn_plan(cost: &Matrix, a: &[f64], b: &[f64], cfg: &SinkhornConfig) -> SinkhornResult {
    let (n, m) = cost.shape();
    assert_eq!(a.len(), n, "sinkhorn_plan: marginal a length mismatch");
    assert_eq!(b.len(), m, "sinkhorn_plan: marginal b length mismatch");
    if n == 0 || m == 0 {
        return SinkhornResult {
            plan: Matrix::zeros(n, m),
            cost: 0.0,
            effective_epsilon: cfg.epsilon,
        };
    }
    assert!(
        a.iter().all(|&v| v > 0.0),
        "sinkhorn_plan: marginal a must be positive"
    );
    assert!(
        b.iter().all(|&v| v > 0.0),
        "sinkhorn_plan: marginal b must be positive"
    );

    let eps = match cfg.epsilon_mode {
        EpsilonMode::Absolute => cfg.epsilon,
        EpsilonMode::RelativeToMeanCost => {
            let mean_c = cost.mean().max(1e-12);
            cfg.epsilon * mean_c
        }
    }
    .max(1e-12);

    let log_a: Vec<f64> = a.iter().map(|&v| v.ln()).collect();
    let log_b: Vec<f64> = b.iter().map(|&v| v.ln()).collect();
    let mut f = vec![0.0; n]; // potential for rows
    let mut g = vec![0.0; m]; // potential for columns

    for _ in 0..cfg.iterations.max(1) {
        // f_i ← ε·log a_i − ε·LSE_j((g_j − C_ij)/ε)
        for i in 0..n {
            let row = cost.row(i);
            let mut mx = f64::NEG_INFINITY;
            for (j, &c) in row.iter().enumerate() {
                mx = mx.max((g[j] - c) / eps);
            }
            let mut s = 0.0;
            for (j, &c) in row.iter().enumerate() {
                s += ((g[j] - c) / eps - mx).exp();
            }
            f[i] = eps * log_a[i] - eps * (mx + s.ln());
        }
        // g_j ← ε·log b_j − ε·LSE_i((f_i − C_ij)/ε)
        for j in 0..m {
            let mut mx = f64::NEG_INFINITY;
            for i in 0..n {
                mx = mx.max((f[i] - cost[(i, j)]) / eps);
            }
            let mut s = 0.0;
            for i in 0..n {
                s += ((f[i] - cost[(i, j)]) / eps - mx).exp();
            }
            g[j] = eps * log_b[j] - eps * (mx + s.ln());
        }
    }

    let mut plan = Matrix::zeros(n, m);
    let mut total = 0.0;
    for i in 0..n {
        for j in 0..m {
            let p = ((f[i] + g[j] - cost[(i, j)]) / eps).exp();
            plan[(i, j)] = p;
            total += p * cost[(i, j)];
        }
    }
    SinkhornResult {
        plan,
        cost: total,
        effective_epsilon: eps,
    }
}

/// [`sinkhorn_plan`] with uniform marginals.
pub fn sinkhorn_uniform(cost: &Matrix, cfg: &SinkhornConfig) -> SinkhornResult {
    let (n, m) = cost.shape();
    let a = vec![1.0 / n.max(1) as f64; n];
    let b = vec![1.0 / m.max(1) as f64; m];
    sinkhorn_plan(cost, &a, &b, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cerl_math::norms::pairwise_sq_dists;

    fn cfg(eps: f64, iters: usize) -> SinkhornConfig {
        SinkhornConfig {
            epsilon: eps,
            epsilon_mode: EpsilonMode::Absolute,
            iterations: iters,
        }
    }

    #[test]
    fn marginals_are_respected() {
        let cost = Matrix::from_fn(4, 6, |i, j| ((i * 3 + j) as f64 * 0.7).sin().abs() + 0.1);
        let r = sinkhorn_uniform(&cost, &cfg(0.05, 300));
        // Row sums ≈ 1/4, column sums ≈ 1/6.
        for i in 0..4 {
            let s: f64 = r.plan.row(i).iter().sum();
            assert!((s - 0.25).abs() < 1e-6, "row {i} sum {s}");
        }
        for j in 0..6 {
            let s: f64 = r.plan.col(j).iter().sum();
            assert!((s - 1.0 / 6.0).abs() < 1e-6, "col {j} sum {s}");
        }
    }

    #[test]
    fn identical_points_give_zero_cost() {
        let x = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let cost = pairwise_sq_dists(&x, &x);
        let r = sinkhorn_uniform(&cost, &cfg(0.01, 200));
        assert!(r.cost < 1e-6, "cost={}", r.cost);
    }

    #[test]
    fn matches_exact_on_two_points() {
        // Two treated at {0, 1}, two control at {0, 1} shifted by δ:
        // optimal coupling matches nearest neighbours.
        let xt = Matrix::from_rows(&[vec![0.0], vec![1.0]]);
        let xc = Matrix::from_rows(&[vec![0.1], vec![1.1]]);
        let cost = pairwise_sq_dists(&xt, &xc);
        let r = sinkhorn_uniform(&cost, &cfg(0.001, 500));
        // Exact W2² = mean of (0.1)² = 0.01.
        assert!((r.cost - 0.01).abs() < 1e-3, "cost={}", r.cost);
        // Plan concentrates on the diagonal.
        assert!(r.plan[(0, 0)] > 0.4 && r.plan[(1, 1)] > 0.4);
        assert!(r.plan[(0, 1)] < 0.1 && r.plan[(1, 0)] < 0.1);
    }

    #[test]
    fn larger_epsilon_blurs_plan() {
        let xt = Matrix::from_rows(&[vec![0.0], vec![10.0]]);
        let xc = Matrix::from_rows(&[vec![0.0], vec![10.0]]);
        let cost = pairwise_sq_dists(&xt, &xc);
        let sharp = sinkhorn_uniform(&cost, &cfg(0.1, 300));
        let blurred = sinkhorn_uniform(&cost, &cfg(100.0, 300));
        assert!(sharp.plan[(0, 0)] > blurred.plan[(0, 0)]);
        assert!(blurred.cost > sharp.cost);
    }

    #[test]
    fn relative_epsilon_scales_with_cost() {
        let cost_small =
            Matrix::from_fn(3, 3, |i, j| ((i + 2 * j) as f64 * 0.31).cos().abs() * 0.01);
        let cost_big = cost_small.scale(1e6);
        let cfg_rel = SinkhornConfig {
            epsilon: 0.05,
            epsilon_mode: EpsilonMode::RelativeToMeanCost,
            iterations: 200,
        };
        let rs = sinkhorn_uniform(&cost_small, &cfg_rel);
        let rb = sinkhorn_uniform(&cost_big, &cfg_rel);
        // Plans should be (nearly) identical because ε scales with cost.
        assert!(rs.plan.approx_eq(&rb.plan, 1e-6));
        assert!((rb.cost / rs.cost - 1e6).abs() / 1e6 < 1e-6);
    }

    #[test]
    fn empty_inputs_are_zero() {
        let cost = Matrix::zeros(0, 3);
        let r = sinkhorn_plan(&cost, &[], &[0.3, 0.3, 0.4], &SinkhornConfig::default());
        assert_eq!(r.cost, 0.0);
        assert_eq!(r.plan.shape(), (0, 3));
    }

    #[test]
    fn nonuniform_marginals() {
        let cost = Matrix::from_fn(2, 2, |i, j| if i == j { 0.0 } else { 1.0 });
        let r = sinkhorn_plan(&cost, &[0.9, 0.1], &[0.9, 0.1], &cfg(0.01, 300));
        assert!((r.plan[(0, 0)] - 0.9).abs() < 1e-3);
        assert!((r.plan[(1, 1)] - 0.1).abs() < 1e-3);
        assert!(r.cost < 1e-2);
    }
}
