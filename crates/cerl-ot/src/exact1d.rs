//! Exact 1-D optimal transport (test oracle).
//!
//! In one dimension the optimal coupling under any convex cost is the
//! monotone (sorted) coupling; for equal-size uniform samples the squared
//! W₂ distance is the mean of squared differences of sorted values. Used to
//! validate the Sinkhorn solver.

/// Exact squared 2-Wasserstein distance between two equal-size empirical
/// distributions on ℝ (uniform weights).
///
/// # Panics
/// If the slices have different lengths, are empty, or contain NaN.
pub fn w2_squared_1d(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "w2_squared_1d: sample sizes must match");
    assert!(!a.is_empty(), "w2_squared_1d: empty samples");
    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    sa.sort_by(|x, y| x.partial_cmp(y).expect("NaN in sample"));
    sb.sort_by(|x, y| x.partial_cmp(y).expect("NaN in sample"));
    sa.iter()
        .zip(&sb)
        .map(|(&x, &y)| (x - y) * (x - y))
        .sum::<f64>()
        / a.len() as f64
}

/// Exact 1-Wasserstein (earth mover's) distance between two equal-size
/// empirical distributions on ℝ (uniform weights).
pub fn w1_1d(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "w1_1d: sample sizes must match");
    assert!(!a.is_empty(), "w1_1d: empty samples");
    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    sa.sort_by(|x, y| x.partial_cmp(y).expect("NaN in sample"));
    sb.sort_by(|x, y| x.partial_cmp(y).expect("NaN in sample"));
    sa.iter()
        .zip(&sb)
        .map(|(&x, &y)| (x - y).abs())
        .sum::<f64>()
        / a.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sinkhorn::{sinkhorn_uniform, EpsilonMode, SinkhornConfig};
    use cerl_math::norms::pairwise_sq_dists;
    use cerl_math::Matrix;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn translation_distance() {
        let a = [0.0, 1.0, 2.0];
        let b = [1.0, 2.0, 3.0]; // a + 1
        assert!((w2_squared_1d(&a, &b) - 1.0).abs() < 1e-12);
        assert!((w1_1d(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn permutation_invariance_and_identity() {
        let a = [3.0, 1.0, 2.0];
        let b = [2.0, 3.0, 1.0];
        assert_eq!(w2_squared_1d(&a, &b), 0.0);
        assert_eq!(w1_1d(&a, &b), 0.0);
    }

    #[test]
    fn sinkhorn_converges_to_exact_oracle() {
        let mut rng = StdRng::seed_from_u64(77);
        let n = 24;
        let a: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() * 4.0).collect();
        let b: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() * 4.0 + 1.5).collect();
        let exact = w2_squared_1d(&a, &b);

        let xa = Matrix::col_vector(&a);
        let xb = Matrix::col_vector(&b);
        let cost = pairwise_sq_dists(&xa, &xb);
        let cfg = SinkhornConfig {
            epsilon: 0.005,
            epsilon_mode: EpsilonMode::Absolute,
            iterations: 3000,
        };
        let r = sinkhorn_uniform(&cost, &cfg);
        // Entropic bias is positive and shrinks with ε; 5% agreement is
        // plenty to establish correctness against the oracle.
        let rel = (r.cost - exact).abs() / exact.max(1e-12);
        assert!(
            rel < 0.05,
            "sinkhorn {} vs exact {exact} (rel {rel})",
            r.cost
        );
    }

    #[test]
    #[should_panic(expected = "sizes must match")]
    fn mismatched_sizes_panic() {
        let _ = w2_squared_1d(&[1.0], &[1.0, 2.0]);
    }
}
