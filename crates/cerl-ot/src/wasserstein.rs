//! Differentiable Wasserstein IPM between two representation batches
//! (paper Eq. 3), as a [`CustomOp`] on the `cerl-nn` tape.
//!
//! Forward: pairwise squared Euclidean cost between treated rows and
//! control rows, then Sinkhorn; the transport plan is cached. Backward uses
//! the envelope theorem — the plan is held fixed and the gradient flows
//! through the cost matrix only:
//!
//! ```text
//! ∂⟨P,C⟩/∂x_i = Σ_j P_ij · 2 (x_i − y_j),   ∂⟨P,C⟩/∂y_j = Σ_i P_ij · 2 (y_j − x_i)
//! ```
//!
//! This is the standard practice for Sinkhorn-based penalties in the CFR
//! family and is validated against finite differences in the tests (the
//! envelope gradient is exact in the limit of converged potentials).

use crate::sinkhorn::{sinkhorn_uniform, SinkhornConfig};
use cerl_math::norms::pairwise_sq_dists;
use cerl_math::Matrix;
use cerl_nn::{CustomOp, Graph, NodeId};
use std::cell::RefCell;

/// Sinkhorn-Wasserstein distance op. Inputs: `[treated (n1×d), control (n0×d)]`;
/// output: 1×1 cost.
#[derive(Debug)]
pub struct WassersteinOp {
    cfg: SinkhornConfig,
    plan: RefCell<Option<Matrix>>,
}

impl WassersteinOp {
    /// Create with the given Sinkhorn configuration.
    pub fn new(cfg: SinkhornConfig) -> Self {
        Self {
            cfg,
            plan: RefCell::new(None),
        }
    }
}

impl CustomOp for WassersteinOp {
    fn name(&self) -> &'static str {
        "Wasserstein"
    }

    fn forward(&mut self, inputs: &[&Matrix]) -> Matrix {
        assert_eq!(
            inputs.len(),
            2,
            "WassersteinOp: expected [treated, control]"
        );
        let (xt, xc) = (inputs[0], inputs[1]);
        if xt.rows() == 0 || xc.rows() == 0 {
            *self.plan.borrow_mut() = Some(Matrix::zeros(xt.rows(), xc.rows()));
            return Matrix::zeros(1, 1);
        }
        let cost = pairwise_sq_dists(xt, xc);
        let result = sinkhorn_uniform(&cost, &self.cfg);
        *self.plan.borrow_mut() = Some(result.plan);
        Matrix::filled(1, 1, result.cost)
    }

    fn backward(&self, inputs: &[&Matrix], _output: &Matrix, grad_output: &Matrix) -> Vec<Matrix> {
        let (xt, xc) = (inputs[0], inputs[1]);
        let go = grad_output[(0, 0)];
        let plan_ref = self.plan.borrow();
        let plan = plan_ref
            .as_ref()
            .expect("WassersteinOp: backward before forward");

        let (n1, d) = xt.shape();
        let n0 = xc.rows();
        let mut gt = Matrix::zeros(n1, d);
        let mut gc = Matrix::zeros(n0, d);
        for i in 0..n1 {
            let xi = xt.row(i);
            for j in 0..n0 {
                let p = plan[(i, j)];
                if p == 0.0 {
                    continue;
                }
                let yj = xc.row(j);
                let w = 2.0 * p * go;
                let gti = gt.row_mut(i);
                for (k, g) in gti.iter_mut().enumerate() {
                    *g += w * (xi[k] - yj[k]);
                }
                let gcj = gc.row_mut(j);
                for (k, g) in gcj.iter_mut().enumerate() {
                    *g += w * (yj[k] - xi[k]);
                }
            }
        }
        vec![gt, gc]
    }
}

/// Insert a Wasserstein IPM node between `treated` and `control` batches.
pub fn wasserstein(g: &mut Graph, treated: NodeId, control: NodeId, cfg: SinkhornConfig) -> NodeId {
    g.custom(&[treated, control], Box::new(WassersteinOp::new(cfg)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sinkhorn::EpsilonMode;
    use cerl_nn::gradcheck::check_param_gradient;
    use cerl_nn::ParamStore;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn cfg() -> SinkhornConfig {
        SinkhornConfig {
            epsilon: 0.02,
            epsilon_mode: EpsilonMode::Absolute,
            iterations: 400,
        }
    }

    #[test]
    fn zero_for_identical_batches() {
        let mut g = Graph::new();
        let x = Matrix::from_rows(&[vec![0.0, 1.0], vec![2.0, -1.0], vec![0.5, 0.5]]);
        let a = g.input(x.clone());
        let b = g.input(x);
        let w = wasserstein(&mut g, a, b, cfg());
        assert!(g.scalar(w) < 1e-6, "w={}", g.scalar(w));
    }

    #[test]
    fn grows_with_separation() {
        let base = Matrix::from_rows(&[vec![0.0, 0.0], vec![1.0, 1.0]]);
        let mut prev = 0.0;
        for shift in [0.5, 1.0, 2.0] {
            let mut g = Graph::new();
            let a = g.input(base.clone());
            let b = g.input(base.map(|v| v + shift));
            let w = wasserstein(&mut g, a, b, cfg());
            let val = g.scalar(w);
            assert!(val > prev, "shift={shift}: {val} <= {prev}");
            prev = val;
        }
    }

    #[test]
    fn empty_groups_yield_zero() {
        let mut g = Graph::new();
        let a = g.input(Matrix::zeros(0, 3));
        let b = g.input(Matrix::from_rows(&[vec![1.0, 2.0, 3.0]]));
        let w = wasserstein(&mut g, a, b, cfg());
        assert_eq!(g.scalar(w), 0.0);
    }

    #[test]
    fn envelope_gradient_matches_finite_difference() {
        // The envelope gradient (plan held fixed) is the exact gradient of
        // the *entropic* objective; for the reported ⟨P,C⟩ it carries an
        // O(ε) bias. Check at two ε values that the error shrinks with ε
        // and is small at the smaller one.
        let mut rng = StdRng::seed_from_u64(21);
        let mut store = ParamStore::new();
        let xt = store.add(
            "xt",
            Matrix::from_fn(4, 3, |_, _| rng.gen::<f64>() * 2.0 - 1.0),
        );
        let xc_val = Matrix::from_fn(5, 3, |_, _| rng.gen::<f64>() * 2.0 - 1.0 + 0.5);

        let mut rel_at = |eps: f64, iters: usize| {
            let c = SinkhornConfig {
                epsilon: eps,
                epsilon_mode: EpsilonMode::Absolute,
                iterations: iters,
            };
            let build = |s: &ParamStore, g: &mut Graph| {
                let a = g.param(s, xt);
                let b = g.input(xc_val.clone());
                wasserstein(g, a, b, c)
            };
            let mut g = Graph::new();
            let loss = build(&store, &mut g);
            let grads = g.backward(loss);
            let analytic = grads.param_grad(xt).unwrap().clone();
            let report = check_param_gradient(&mut store, xt, &analytic, 1e-5, |s| {
                let mut g = Graph::new();
                let l = build(s, &mut g);
                g.scalar(l)
            });
            report.max_rel_err
        };

        let coarse = rel_at(0.05, 800);
        let fine = rel_at(0.002, 4000);
        assert!(
            fine < coarse,
            "bias should shrink with ε: {fine} vs {coarse}"
        );
        assert!(
            fine < 1e-2,
            "envelope gradient off at small ε: rel={fine:.3e}"
        );
    }

    #[test]
    fn gradient_pulls_distributions_together() {
        // Gradient descent on W(x, y) should shrink the distance.
        let mut store = ParamStore::new();
        let xt = store.add("xt", Matrix::from_rows(&[vec![5.0, 5.0], vec![6.0, 4.0]]));
        let xc = Matrix::from_rows(&[vec![0.0, 0.0], vec![1.0, -1.0]]);
        let mut dist_history = Vec::new();
        for _ in 0..60 {
            let mut g = Graph::new();
            let a = g.param(&store, xt);
            let b = g.input(xc.clone());
            let w = wasserstein(&mut g, a, b, cfg());
            dist_history.push(g.scalar(w));
            let grads = g.backward(w);
            let gw = grads.param_grad(xt).unwrap();
            store.value_mut(xt).axpy(-0.05, gw);
        }
        let first = dist_history[0];
        let last = *dist_history.last().unwrap();
        assert!(
            last < first * 0.2,
            "distance did not shrink: {first} -> {last}"
        );
    }
}
