//! Maximum mean discrepancy (MMD) IPMs as differentiable tape ops.
//!
//! The paper instantiates its IPM with the Wasserstein distance but the CFR
//! family also uses MMD; we provide both so the balance term can be ablated.
//! Linear MMD is `‖μ_t − μ_c‖²`; RBF MMD uses a Gaussian kernel with either
//! a fixed bandwidth or the median heuristic.

use cerl_math::norms::{pairwise_sq_dists, squared_distance};
use cerl_math::Matrix;
use cerl_nn::{CustomOp, Graph, NodeId};

/// Linear-kernel MMD²: squared distance between group means.
/// Inputs: `[treated (n1×d), control (n0×d)]`; output 1×1.
#[derive(Debug, Default)]
pub struct LinearMmdOp;

impl CustomOp for LinearMmdOp {
    fn name(&self) -> &'static str {
        "LinearMMD"
    }

    fn forward(&mut self, inputs: &[&Matrix]) -> Matrix {
        assert_eq!(inputs.len(), 2, "LinearMmdOp: expected [treated, control]");
        let (xt, xc) = (inputs[0], inputs[1]);
        if xt.rows() == 0 || xc.rows() == 0 {
            return Matrix::zeros(1, 1);
        }
        let mt = xt.col_means();
        let mc = xc.col_means();
        Matrix::filled(1, 1, squared_distance(&mt, &mc))
    }

    fn backward(&self, inputs: &[&Matrix], _output: &Matrix, grad_output: &Matrix) -> Vec<Matrix> {
        let (xt, xc) = (inputs[0], inputs[1]);
        let go = grad_output[(0, 0)];
        let (n1, d) = xt.shape();
        let n0 = xc.rows();
        if n1 == 0 || n0 == 0 {
            return vec![Matrix::zeros(n1, d), Matrix::zeros(n0, xc.cols())];
        }
        let mt = xt.col_means();
        let mc = xc.col_means();
        // d/dxt_i = 2 (μt − μc) / n1 ; d/dxc_j = −2 (μt − μc) / n0
        let gt_row: Vec<f64> = mt
            .iter()
            .zip(&mc)
            .map(|(&a, &b)| 2.0 * go * (a - b) / n1 as f64)
            .collect();
        let gc_row: Vec<f64> = mt
            .iter()
            .zip(&mc)
            .map(|(&a, &b)| -2.0 * go * (a - b) / n0 as f64)
            .collect();
        let gt = Matrix::from_fn(n1, d, |_, j| gt_row[j]);
        let gc = Matrix::from_fn(n0, d, |_, j| gc_row[j]);
        vec![gt, gc]
    }
}

/// Bandwidth selection for [`RbfMmdOp`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Bandwidth {
    /// Fixed `σ²`.
    Fixed(f64),
    /// Median of pairwise squared distances across the two batches
    /// (computed in `forward`, cached for `backward`).
    MedianHeuristic,
}

/// RBF-kernel MMD² with biased (V-statistic) estimator.
/// Inputs: `[treated (n1×d), control (n0×d)]`; output 1×1.
#[derive(Debug)]
pub struct RbfMmdOp {
    bandwidth: Bandwidth,
    sigma2: std::cell::Cell<f64>,
}

impl RbfMmdOp {
    /// Create with the given bandwidth policy.
    pub fn new(bandwidth: Bandwidth) -> Self {
        Self {
            bandwidth,
            sigma2: std::cell::Cell::new(1.0),
        }
    }

    fn resolve_sigma2(&self, xt: &Matrix, xc: &Matrix) -> f64 {
        match self.bandwidth {
            Bandwidth::Fixed(s2) => s2.max(1e-12),
            Bandwidth::MedianHeuristic => {
                let all = xt.vstack(xc);
                let d = pairwise_sq_dists(&all, &all);
                let mut offdiag: Vec<f64> = Vec::with_capacity(d.len());
                for i in 0..d.rows() {
                    for j in 0..d.cols() {
                        if i != j {
                            offdiag.push(d[(i, j)]);
                        }
                    }
                }
                if offdiag.is_empty() {
                    1.0
                } else {
                    cerl_math::stats::quantile(&offdiag, 0.5).max(1e-12)
                }
            }
        }
    }
}

fn kernel_mean(a: &Matrix, b: &Matrix, sigma2: f64) -> f64 {
    if a.rows() == 0 || b.rows() == 0 {
        return 0.0;
    }
    let d = pairwise_sq_dists(a, b);
    let mut s = 0.0;
    for i in 0..d.rows() {
        for j in 0..d.cols() {
            s += (-d[(i, j)] / (2.0 * sigma2)).exp();
        }
    }
    s / (d.rows() * d.cols()) as f64
}

impl CustomOp for RbfMmdOp {
    fn name(&self) -> &'static str {
        "RbfMMD"
    }

    fn forward(&mut self, inputs: &[&Matrix]) -> Matrix {
        assert_eq!(inputs.len(), 2, "RbfMmdOp: expected [treated, control]");
        let (xt, xc) = (inputs[0], inputs[1]);
        if xt.rows() == 0 || xc.rows() == 0 {
            return Matrix::zeros(1, 1);
        }
        let s2 = self.resolve_sigma2(xt, xc);
        self.sigma2.set(s2);
        let v = kernel_mean(xt, xt, s2) + kernel_mean(xc, xc, s2) - 2.0 * kernel_mean(xt, xc, s2);
        Matrix::filled(1, 1, v.max(0.0))
    }

    fn backward(&self, inputs: &[&Matrix], _output: &Matrix, grad_output: &Matrix) -> Vec<Matrix> {
        let (xt, xc) = (inputs[0], inputs[1]);
        let go = grad_output[(0, 0)];
        let (n1, d) = xt.shape();
        let n0 = xc.rows();
        let mut gt = Matrix::zeros(n1, d);
        let mut gc = Matrix::zeros(n0, xc.cols());
        if n1 == 0 || n0 == 0 {
            return vec![gt, gc];
        }
        let s2 = self.sigma2.get();
        // The bandwidth is treated as a constant (standard practice for the
        // median heuristic).
        // d k(x,y)/dx = −(x−y)/σ² · k(x,y)
        let add_pair = |gx: &mut Matrix, i: usize, xi: &[f64], yj: &[f64], w: f64| {
            let row = gx.row_mut(i);
            for (k, g) in row.iter_mut().enumerate() {
                *g += w * (xi[k] - yj[k]);
            }
        };
        // Term 1: mean k(xt, xt). The double sum contains k(x_m, x_j) and
        // k(x_j, x_m); x_m appears in both, so each ordered pair carries a
        // factor 2 on its first-argument derivative.
        let w_tt = go / (n1 * n1) as f64;
        for i in 0..n1 {
            for j in 0..n1 {
                if i == j {
                    continue;
                }
                let k = (-squared_distance(xt.row(i), xt.row(j)) / (2.0 * s2)).exp();
                add_pair(&mut gt, i, xt.row(i), xt.row(j), -2.0 * w_tt * k / s2);
            }
        }
        // Term 2: mean k(xc, xc), same factor 2.
        let w_cc = go / (n0 * n0) as f64;
        for i in 0..n0 {
            for j in 0..n0 {
                if i == j {
                    continue;
                }
                let k = (-squared_distance(xc.row(i), xc.row(j)) / (2.0 * s2)).exp();
                add_pair(&mut gc, i, xc.row(i), xc.row(j), -2.0 * w_cc * k / s2);
            }
        }
        // Term 3: −2 mean k(xt, xc)
        let w_tc = -2.0 * go / (n1 * n0) as f64;
        for i in 0..n1 {
            for j in 0..n0 {
                let k = (-squared_distance(xt.row(i), xc.row(j)) / (2.0 * s2)).exp();
                add_pair(&mut gt, i, xt.row(i), xc.row(j), -w_tc * k / s2);
                add_pair(&mut gc, j, xc.row(j), xt.row(i), -w_tc * k / s2);
            }
        }
        vec![gt, gc]
    }
}

/// Insert a linear-MMD node between two batches.
pub fn linear_mmd(g: &mut Graph, treated: NodeId, control: NodeId) -> NodeId {
    g.custom(&[treated, control], Box::new(LinearMmdOp))
}

/// Insert an RBF-MMD node between two batches.
pub fn rbf_mmd(g: &mut Graph, treated: NodeId, control: NodeId, bandwidth: Bandwidth) -> NodeId {
    g.custom(&[treated, control], Box::new(RbfMmdOp::new(bandwidth)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cerl_nn::gradcheck::check_param_gradient;
    use cerl_nn::ParamStore;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn linear_mmd_known_value() {
        let mut g = Graph::new();
        let a = g.input(Matrix::from_rows(&[vec![0.0, 0.0], vec![2.0, 2.0]])); // mean (1,1)
        let b = g.input(Matrix::from_rows(&[vec![4.0, 1.0]])); // mean (4,1)
        let m = linear_mmd(&mut g, a, b);
        assert!((g.scalar(m) - 9.0).abs() < 1e-12); // (1-4)² + 0
    }

    #[test]
    fn mmd_zero_for_identical() {
        let x = Matrix::from_rows(&[vec![1.0, -1.0], vec![0.5, 2.0], vec![-0.3, 0.8]]);
        let mut g = Graph::new();
        let a = g.input(x.clone());
        let b = g.input(x);
        let lin = linear_mmd(&mut g, a, b);
        let rbf = rbf_mmd(&mut g, a, b, Bandwidth::Fixed(1.0));
        assert!(g.scalar(lin) < 1e-12);
        assert!(g.scalar(rbf) < 1e-12);
    }

    #[test]
    fn rbf_mmd_detects_shift() {
        let mut rng = StdRng::seed_from_u64(31);
        let x = Matrix::from_fn(20, 2, |_, _| rng.gen::<f64>());
        let y_near = x.map(|v| v + 0.1);
        let y_far = x.map(|v| v + 2.0);
        let mut g = Graph::new();
        let a = g.input(x);
        let bn = g.input(y_near);
        let bf = g.input(y_far);
        let m_near = rbf_mmd(&mut g, a, bn, Bandwidth::MedianHeuristic);
        let m_far = rbf_mmd(&mut g, a, bf, Bandwidth::MedianHeuristic);
        assert!(g.scalar(m_far) > g.scalar(m_near));
        assert!(g.scalar(m_near) > 0.0);
    }

    #[test]
    fn empty_batches_zero() {
        let mut g = Graph::new();
        let a = g.input(Matrix::zeros(0, 2));
        let b = g.input(Matrix::ones(3, 2));
        let lin = linear_mmd(&mut g, a, b);
        let rbf = rbf_mmd(&mut g, a, b, Bandwidth::Fixed(1.0));
        assert_eq!(g.scalar(lin), 0.0);
        assert_eq!(g.scalar(rbf), 0.0);
    }

    #[test]
    fn linear_mmd_gradient_check() {
        let mut rng = StdRng::seed_from_u64(32);
        let mut store = ParamStore::new();
        let xt = store.add("xt", Matrix::from_fn(4, 3, |_, _| rng.gen::<f64>() - 0.5));
        let xc_val = Matrix::from_fn(6, 3, |_, _| rng.gen::<f64>() + 0.3);
        let build = |s: &ParamStore, g: &mut Graph| {
            let a = g.param(s, xt);
            let b = g.input(xc_val.clone());
            linear_mmd(g, a, b)
        };
        let mut g = Graph::new();
        let loss = build(&store, &mut g);
        let grads = g.backward(loss);
        let analytic = grads.param_grad(xt).unwrap().clone();
        let report = check_param_gradient(&mut store, xt, &analytic, 1e-6, |s| {
            let mut g = Graph::new();
            let l = build(s, &mut g);
            g.scalar(l)
        });
        assert!(report.max_rel_err < 1e-6, "rel={:.3e}", report.max_rel_err);
    }

    #[test]
    fn rbf_mmd_gradient_check_fixed_bandwidth() {
        let mut rng = StdRng::seed_from_u64(33);
        let mut store = ParamStore::new();
        let xt = store.add("xt", Matrix::from_fn(3, 2, |_, _| rng.gen::<f64>() - 0.5));
        let xc_val = Matrix::from_fn(4, 2, |_, _| rng.gen::<f64>() * 0.7 + 0.4);
        // Fixed bandwidth so the σ²-through-data path does not exist.
        let build = |s: &ParamStore, g: &mut Graph| {
            let a = g.param(s, xt);
            let b = g.input(xc_val.clone());
            rbf_mmd(g, a, b, Bandwidth::Fixed(0.8))
        };
        let mut g = Graph::new();
        let loss = build(&store, &mut g);
        let grads = g.backward(loss);
        let analytic = grads.param_grad(xt).unwrap().clone();
        let report = check_param_gradient(&mut store, xt, &analytic, 1e-6, |s| {
            let mut g = Graph::new();
            let l = build(s, &mut g);
            g.scalar(l)
        });
        assert!(report.max_rel_err < 1e-5, "rel={:.3e}", report.max_rel_err);
    }
}
