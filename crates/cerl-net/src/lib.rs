//! # cerl-net
//!
//! Async TCP front-end for the CERL serving stack: a hand-rolled
//! `epoll` reactor (no external runtime — the build environment has no
//! crates.io access), a length-prefixed binary wire protocol, request
//! deadlines, and connection-level backpressure. It turns the
//! in-process serving layer ([`cerl_serve`]) into a network service
//! while preserving its core contract: **a prediction served over the
//! socket is bitwise identical to the same request answered
//! in-process**, across micro-batching, scatter-gather, and hot swaps.
//!
//! * [`server`] — [`NetServer`]: one reactor thread multiplexing every
//!   connection over `epoll`, submitting decoded requests to a
//!   [`NetBackend`] (a [`BatchScheduler`](cerl_serve::BatchScheduler)
//!   or a [`ShardRouter`](cerl_serve::ShardRouter)) and polling the
//!   returned handles as true `Future`s via per-connection wakers — no
//!   thread-per-connection, no blocking `recv`, thousands of in-flight
//!   requests on one thread. Per-connection flow control: a bounded
//!   in-flight window, write backpressure that stops *reading* a
//!   socket whose response backlog is full, round-robin frame budgets,
//!   and admission deadlines that shed late requests with a typed
//!   [`Status::Deadline`] before any inference runs.
//! * [`wire`] — the versioned frame format ([`Request`] in,
//!   [`Response`] out), with typed [`WireError`]s for every way
//!   hostile bytes can be wrong; decoding never panics and never
//!   over-allocates.
//! * [`client`] — [`NetClient`]: a small blocking client used by the
//!   tests, benches, and examples; supports pipelining, raw-byte
//!   injection for robustness tests, and the admin ops
//!   ([`NetClient::scrape_metrics`], [`NetClient::health`],
//!   [`NetClient::trace_dump`]).
//!
//! The reactor also carries the serving stack's **observability
//! plane**: an optional admin listener speaking [`AdminOp`] frames
//! (unified metrics exposition, health, trace dumps), a UDP health
//! socket answering any datagram with `ok:<versions>:<inflight>`, and
//! optional 1-in-N request tracing through a shared
//! [`cerl_obs::TraceRing`] — see the [`server`] module docs. The wire
//! response is deliberately version-free, so per-replica attribution —
//! which shard and engine version answered each prediction — is kept
//! server-side ([`NetStatsSnapshot::replica_served`], scraped as
//! `cerl_net_replica_responses_total{shard,version}`) rather than in
//! the frame.
//!
//! The error taxonomy mirrors the serving layer's
//! [`ServeError::is_client_fault`](cerl_serve::ServeError::is_client_fault)
//! split: malformed frames, unknown domains, and expired deadlines are
//! *client* faults; queue overflow, shutdown, and engine failures on
//! well-formed input are *serve* faults. The reactor counts the two
//! separately ([`NetStatsSnapshot`]), so a misbehaving client can
//! never make a healthy fleet look like it is regressing.
//!
//! See the [`server`] module docs for the reactor's architecture and
//! the one-CPU measurement caveat; see the [`wire`] module docs for
//! the byte-level frame tables.

#![warn(missing_docs)]

pub mod client;
pub mod server;
mod sys;
pub mod wire;

pub use client::{NetClient, NetError};
pub use server::{
    ConnStatsSnapshot, NetBackend, NetServer, NetServerConfig, NetStatsSnapshot, ReplicaServed,
};
pub use wire::{AdminOp, AdminRequest, AdminResponse, Request, Response, Status, WireError};
