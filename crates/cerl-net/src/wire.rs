//! The length-prefixed binary wire protocol.
//!
//! Every frame on the socket is a `u32` little-endian payload length
//! followed by that many payload bytes. Payloads are versioned and
//! typed; all multi-byte integers and floats are little-endian.
//!
//! **Request** (`kind = 0`, client → server):
//!
//! | field | type | notes |
//! |-------|------|-------|
//! | magic | `u8` | always `0xC3` |
//! | version | `u8` | wire protocol version, currently 1 |
//! | kind | `u8` | 0 = predict request |
//! | flags | `u8` | reserved, must be 0 |
//! | request id | `u64` | echoed verbatim in the response |
//! | deadline | `u32` | milliseconds the client will wait; 0 = none |
//! | rows | `u32` | covariate rows in this request |
//! | cols | `u32` | covariate columns per row |
//! | domain tags | `rows × u64` | per-row domain ids (scatter routing) |
//! | covariates | `rows·cols × f64` | row-major, IEEE-754 bit patterns |
//!
//! **Response** (`kind = 1`, server → client):
//!
//! | field | type | notes |
//! |-------|------|-------|
//! | magic | `u8` | always `0xC3` |
//! | version | `u8` | 1 |
//! | kind | `u8` | 1 = predict response |
//! | status | `u8` | see [`Status`] |
//! | request id | `u64` | copied from the request |
//! | `Ok`: rows | `u32` | predicted ITE count |
//! | `Ok`: ites | `rows × f64` | bitwise identical to in-process inference |
//! | error: detail | `u32` + UTF-8 | human-readable reason |
//!
//! **Admin request** (`kind = 2`, client → server, admin listener only):
//!
//! | field | type | notes |
//! |-------|------|-------|
//! | magic | `u8` | always `0xC3` |
//! | version | `u8` | 1 |
//! | kind | `u8` | 2 = admin request |
//! | op | `u8` | see [`AdminOp`] |
//! | request id | `u64` | echoed verbatim in the response |
//!
//! **Admin response** (`kind = 3`, server → client):
//!
//! | field | type | notes |
//! |-------|------|-------|
//! | magic | `u8` | always `0xC3` |
//! | version | `u8` | 1 |
//! | kind | `u8` | 3 = admin response |
//! | status | `u8` | see [`Status`] |
//! | request id | `u64` | copied from the request |
//! | body | `u32` + UTF-8 | op-specific text (metrics exposition, health line, trace dump) |
//!
//! Admin frames are only decoded on the server's **admin** listener and
//! serve frames only on the serve listener — a predict request sent to
//! the admin port (or vice versa) is rejected as
//! [`WireError::UnknownKind`] before any work is done.
//!
//! Floats travel as raw IEEE-754 bit patterns (`f64::to_bits`), so a
//! prediction served over the socket is **bitwise identical** to the
//! same request answered in-process — the serving stack's core
//! determinism contract extends across the wire.
//!
//! Decoding never panics: every read is bounds-checked and every
//! arithmetic step is `checked_*`, so hostile bytes (fuzzed headers,
//! truncated frames, absurd row counts) surface as typed [`WireError`]s
//! the server answers with [`Status::MalformedRequest`] before closing
//! the connection.

use std::fmt;

/// First byte of every frame payload.
pub const WIRE_MAGIC: u8 = 0xC3;
/// Wire protocol version this build speaks.
pub const WIRE_VERSION: u8 = 1;
/// Hard ceiling on a frame payload (length prefix): a hostile 4 GiB
/// length cannot make the server allocate.
pub const MAX_FRAME_BYTES: usize = 16 << 20;
/// Hard ceiling on rows per request, independent of frame size.
pub const MAX_REQUEST_ROWS: u32 = 65_536;

const KIND_REQUEST: u8 = 0;
const KIND_RESPONSE: u8 = 1;
const KIND_ADMIN_REQUEST: u8 = 2;
const KIND_ADMIN_RESPONSE: u8 = 3;

/// Response status byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Status {
    /// Request served; payload carries the predicted ITEs.
    Ok = 0,
    /// The request bytes or shape were invalid (client fault). The
    /// server closes the connection after this response — framing can
    /// no longer be trusted.
    MalformedRequest = 1,
    /// A domain tag is not routed by the fleet (client fault).
    UnknownDomain = 2,
    /// The request's deadline expired before inference started; the
    /// work was shed without touching the inference pool (client-side
    /// budget, counted as a client fault).
    Deadline = 3,
    /// The serving queue was full; retry with backoff (serve fault).
    Overloaded = 4,
    /// The backend is shutting down (serve fault).
    ShuttingDown = 5,
    /// The backend failed a well-formed request (serve fault).
    ServeFault = 6,
}

impl Status {
    /// Whether this status blames the request, not the fleet — the
    /// wire-level extension of
    /// [`ServeError::is_client_fault`](cerl_serve::ServeError::is_client_fault):
    /// a client flooding malformed frames or impossible deadlines must
    /// not look like a fleet regression to a canary watcher.
    pub fn is_client_fault(self) -> bool {
        // Exhaustive on purpose (no wildcard arm): a new `Status` must
        // be classified here before it compiles — both the compiler and
        // `cerl-analyze`'s taxonomy rule check it.
        match self {
            Status::MalformedRequest | Status::UnknownDomain | Status::Deadline => true,
            Status::Ok | Status::Overloaded | Status::ShuttingDown | Status::ServeFault => false,
        }
    }

    fn from_byte(b: u8) -> Result<Self, WireError> {
        Ok(match b {
            0 => Status::Ok,
            1 => Status::MalformedRequest,
            2 => Status::UnknownDomain,
            3 => Status::Deadline,
            4 => Status::Overloaded,
            5 => Status::ShuttingDown,
            6 => Status::ServeFault,
            other => return Err(WireError::UnknownStatus(other)),
        })
    }
}

/// A decoded prediction request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    pub request_id: u64,
    /// Milliseconds the client will wait for the answer (0 = forever).
    /// The clock starts when the server *decodes* the frame.
    pub deadline_ms: u32,
    /// Covariate columns per row.
    pub cols: u32,
    /// Per-row domain tags (`rows` entries).
    pub tags: Vec<u64>,
    /// Row-major covariates (`rows × cols` values).
    pub covariates: Vec<f64>,
}

impl Request {
    /// Rows in this request.
    pub fn rows(&self) -> usize {
        self.tags.len()
    }
}

/// A decoded prediction response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The request was served.
    Ite {
        /// Echo of the request's id.
        request_id: u64,
        /// One predicted ITE per request row, in request row order.
        ite: Vec<f64>,
    },
    /// The request was rejected or shed.
    Error {
        /// Echo of the request's id (0 when the id itself could not be
        /// decoded).
        request_id: u64,
        /// Why (never [`Status::Ok`]).
        status: Status,
        /// Human-readable detail.
        detail: String,
    },
}

impl Response {
    /// The request id this response answers.
    pub fn request_id(&self) -> u64 {
        match self {
            Response::Ite { request_id, .. } | Response::Error { request_id, .. } => *request_id,
        }
    }
}

/// Operation byte of an admin request frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum AdminOp {
    /// Scrape the unified metrics registry; the response body is
    /// Prometheus-style text exposition.
    Metrics = 0,
    /// Liveness probe; the response body is `ok:<versions>:<inflight>`
    /// (same shape as the UDP health datagram reply).
    Health = 1,
    /// Dump recently completed trace spans and orchestration events;
    /// the response body is one line per span/event.
    TraceDump = 2,
}

impl AdminOp {
    fn from_byte(b: u8) -> Result<Self, WireError> {
        Ok(match b {
            0 => AdminOp::Metrics,
            1 => AdminOp::Health,
            2 => AdminOp::TraceDump,
            other => return Err(WireError::UnknownAdminOp(other)),
        })
    }
}

/// A decoded admin request (admin listener only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdminRequest {
    /// Client-chosen correlation id, echoed in the response.
    pub request_id: u64,
    /// What the client wants.
    pub op: AdminOp,
}

/// A decoded admin response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdminResponse {
    /// Echo of the request's id.
    pub request_id: u64,
    /// [`Status::Ok`] on success; error statuses carry the reason in
    /// the body.
    pub status: Status,
    /// Op-specific UTF-8 text (metrics exposition, health line, trace
    /// dump — or the error detail).
    pub body: String,
}

/// Typed decode failures; hostile bytes end here, never in a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The length prefix exceeds [`MAX_FRAME_BYTES`].
    FrameTooLarge {
        /// Declared payload length.
        declared: usize,
    },
    /// The payload ended before the field being read.
    Truncated {
        /// What was being decoded when bytes ran out.
        reading: &'static str,
    },
    /// First payload byte was not [`WIRE_MAGIC`].
    BadMagic(u8),
    /// The version byte names a protocol this build does not speak.
    UnsupportedVersion(u8),
    /// The kind byte is neither request nor response.
    UnknownKind(u8),
    /// Reserved flag bits were set.
    BadFlags(u8),
    /// The status byte is outside the [`Status`] range.
    UnknownStatus(u8),
    /// The admin op byte is outside the [`AdminOp`] range.
    UnknownAdminOp(u8),
    /// The declared row count exceeds [`MAX_REQUEST_ROWS`].
    RowLimit {
        /// Declared rows.
        rows: u32,
    },
    /// Declared shape and payload length disagree (or overflow).
    SizeMismatch {
        /// Bytes the declared shape requires.
        expected: usize,
        /// Bytes actually present.
        found: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::FrameTooLarge { declared } => write!(
                f,
                "frame declares {declared} payload bytes (limit {MAX_FRAME_BYTES})"
            ),
            WireError::Truncated { reading } => {
                write!(f, "payload truncated while reading {reading}")
            }
            WireError::BadMagic(b) => write!(f, "bad magic byte {b:#04x} (want {WIRE_MAGIC:#04x})"),
            WireError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported wire version {v} (this build speaks {WIRE_VERSION})"
                )
            }
            WireError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::BadFlags(b) => write!(f, "reserved flag bits set: {b:#04x}"),
            WireError::UnknownStatus(s) => write!(f, "unknown status byte {s}"),
            WireError::UnknownAdminOp(op) => write!(f, "unknown admin op byte {op}"),
            WireError::RowLimit { rows } => {
                write!(f, "request declares {rows} rows (limit {MAX_REQUEST_ROWS})")
            }
            WireError::SizeMismatch { expected, found } => write!(
                f,
                "declared shape needs {expected} payload bytes, found {found}"
            ),
        }
    }
}

impl std::error::Error for WireError {}

/// Bounds-checked little-endian reader over a frame payload.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, reading: &'static str) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or(WireError::Truncated { reading })?;
        // panic-ok: `end` was validated against `buf.len()` on the line
        // above and `pos <= end` by construction.
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self, reading: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, reading)?[0])
    }

    fn u32(&mut self, reading: &'static str) -> Result<u32, WireError> {
        let bytes: [u8; 4] = self
            .take(4, reading)?
            .try_into()
            .map_err(|_| WireError::Truncated { reading })?;
        Ok(u32::from_le_bytes(bytes))
    }

    fn u64(&mut self, reading: &'static str) -> Result<u64, WireError> {
        let bytes: [u8; 8] = self
            .take(8, reading)?
            .try_into()
            .map_err(|_| WireError::Truncated { reading })?;
        Ok(u64::from_le_bytes(bytes))
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

fn header(cursor: &mut Cursor<'_>, want_kind: u8) -> Result<(), WireError> {
    let magic = cursor.u8("magic")?;
    if magic != WIRE_MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let version = cursor.u8("version")?;
    if version != WIRE_VERSION {
        return Err(WireError::UnsupportedVersion(version));
    }
    let kind = cursor.u8("kind")?;
    if kind != want_kind {
        return Err(WireError::UnknownKind(kind));
    }
    Ok(())
}

/// Append `request` to `out` as one frame (length prefix included).
pub fn encode_request(request: &Request, out: &mut Vec<u8>) {
    let rows = request.tags.len();
    let payload = 4 + 8 + 4 + 4 + 4 + rows * 8 + request.covariates.len() * 8;
    out.reserve(4 + payload);
    out.extend_from_slice(&(payload as u32).to_le_bytes());
    out.extend_from_slice(&[WIRE_MAGIC, WIRE_VERSION, KIND_REQUEST, 0]);
    out.extend_from_slice(&request.request_id.to_le_bytes());
    out.extend_from_slice(&request.deadline_ms.to_le_bytes());
    out.extend_from_slice(&(rows as u32).to_le_bytes());
    out.extend_from_slice(&request.cols.to_le_bytes());
    for tag in &request.tags {
        out.extend_from_slice(&tag.to_le_bytes());
    }
    for value in &request.covariates {
        out.extend_from_slice(&value.to_bits().to_le_bytes());
    }
}

/// Decode one request payload (the bytes *after* the length prefix).
pub fn decode_request(payload: &[u8]) -> Result<Request, WireError> {
    let mut cursor = Cursor::new(payload);
    header(&mut cursor, KIND_REQUEST)?;
    let flags = cursor.u8("flags")?;
    if flags != 0 {
        return Err(WireError::BadFlags(flags));
    }
    let request_id = cursor.u64("request id")?;
    let deadline_ms = cursor.u32("deadline")?;
    let rows = cursor.u32("row count")?;
    if rows > MAX_REQUEST_ROWS {
        return Err(WireError::RowLimit { rows });
    }
    let cols = cursor.u32("column count")?;
    let body = (rows as usize)
        .checked_mul(8)
        .and_then(|tags| {
            (rows as usize)
                .checked_mul(cols as usize)?
                .checked_mul(8)?
                .checked_add(tags)
        })
        .ok_or(WireError::SizeMismatch {
            expected: usize::MAX,
            found: cursor.remaining(),
        })?;
    if body != cursor.remaining() {
        return Err(WireError::SizeMismatch {
            expected: body,
            found: cursor.remaining(),
        });
    }
    let mut tags = Vec::with_capacity(rows as usize);
    for _ in 0..rows {
        tags.push(cursor.u64("domain tag")?);
    }
    let values = rows as usize * cols as usize;
    let mut covariates = Vec::with_capacity(values);
    for _ in 0..values {
        covariates.push(f64::from_bits(cursor.u64("covariate")?));
    }
    Ok(Request {
        request_id,
        deadline_ms,
        cols,
        tags,
        covariates,
    })
}

/// Append `response` to `out` as one frame (length prefix included).
pub fn encode_response(response: &Response, out: &mut Vec<u8>) {
    match response {
        Response::Ite { request_id, ite } => {
            let payload = 4 + 8 + 4 + ite.len() * 8;
            out.reserve(4 + payload);
            out.extend_from_slice(&(payload as u32).to_le_bytes());
            out.extend_from_slice(&[WIRE_MAGIC, WIRE_VERSION, KIND_RESPONSE, Status::Ok as u8]);
            out.extend_from_slice(&request_id.to_le_bytes());
            out.extend_from_slice(&(ite.len() as u32).to_le_bytes());
            for value in ite {
                out.extend_from_slice(&value.to_bits().to_le_bytes());
            }
        }
        Response::Error {
            request_id,
            status,
            detail,
        } => {
            let detail = detail.as_bytes();
            let payload = 4 + 8 + 4 + detail.len();
            out.reserve(4 + payload);
            out.extend_from_slice(&(payload as u32).to_le_bytes());
            out.extend_from_slice(&[WIRE_MAGIC, WIRE_VERSION, KIND_RESPONSE, *status as u8]);
            out.extend_from_slice(&request_id.to_le_bytes());
            out.extend_from_slice(&(detail.len() as u32).to_le_bytes());
            out.extend_from_slice(detail);
        }
    }
}

/// Decode one response payload (the bytes *after* the length prefix).
pub fn decode_response(payload: &[u8]) -> Result<Response, WireError> {
    let mut cursor = Cursor::new(payload);
    header(&mut cursor, KIND_RESPONSE)?;
    let status = Status::from_byte(cursor.u8("status")?)?;
    let request_id = cursor.u64("request id")?;
    if status == Status::Ok {
        let rows = cursor.u32("row count")?;
        if rows > MAX_REQUEST_ROWS {
            return Err(WireError::RowLimit { rows });
        }
        let expected = rows as usize * 8;
        if expected != cursor.remaining() {
            return Err(WireError::SizeMismatch {
                expected,
                found: cursor.remaining(),
            });
        }
        let mut ite = Vec::with_capacity(rows as usize);
        for _ in 0..rows {
            ite.push(f64::from_bits(cursor.u64("ite value")?));
        }
        Ok(Response::Ite { request_id, ite })
    } else {
        let len = cursor.u32("detail length")? as usize;
        if len != cursor.remaining() {
            return Err(WireError::SizeMismatch {
                expected: len,
                found: cursor.remaining(),
            });
        }
        let detail = String::from_utf8_lossy(cursor.take(len, "detail")?).into_owned();
        Ok(Response::Error {
            request_id,
            status,
            detail,
        })
    }
}

/// Append `request` to `out` as one admin frame (length prefix included).
pub fn encode_admin_request(request: &AdminRequest, out: &mut Vec<u8>) {
    let payload = 4 + 8;
    out.reserve(4 + payload);
    out.extend_from_slice(&(payload as u32).to_le_bytes());
    out.extend_from_slice(&[
        WIRE_MAGIC,
        WIRE_VERSION,
        KIND_ADMIN_REQUEST,
        request.op as u8,
    ]);
    out.extend_from_slice(&request.request_id.to_le_bytes());
}

/// Decode one admin request payload (the bytes *after* the length
/// prefix).
pub fn decode_admin_request(payload: &[u8]) -> Result<AdminRequest, WireError> {
    let mut cursor = Cursor::new(payload);
    header(&mut cursor, KIND_ADMIN_REQUEST)?;
    let op = AdminOp::from_byte(cursor.u8("admin op")?)?;
    let request_id = cursor.u64("request id")?;
    if cursor.remaining() != 0 {
        return Err(WireError::SizeMismatch {
            expected: 0,
            found: cursor.remaining(),
        });
    }
    Ok(AdminRequest { request_id, op })
}

/// Append `response` to `out` as one admin frame (length prefix
/// included).
pub fn encode_admin_response(response: &AdminResponse, out: &mut Vec<u8>) {
    let body = response.body.as_bytes();
    let payload = 4 + 8 + 4 + body.len();
    out.reserve(4 + payload);
    out.extend_from_slice(&(payload as u32).to_le_bytes());
    out.extend_from_slice(&[
        WIRE_MAGIC,
        WIRE_VERSION,
        KIND_ADMIN_RESPONSE,
        response.status as u8,
    ]);
    out.extend_from_slice(&response.request_id.to_le_bytes());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(body);
}

/// Decode one admin response payload (the bytes *after* the length
/// prefix).
pub fn decode_admin_response(payload: &[u8]) -> Result<AdminResponse, WireError> {
    let mut cursor = Cursor::new(payload);
    header(&mut cursor, KIND_ADMIN_RESPONSE)?;
    let status = Status::from_byte(cursor.u8("status")?)?;
    let request_id = cursor.u64("request id")?;
    let len = cursor.u32("body length")? as usize;
    if len != cursor.remaining() {
        return Err(WireError::SizeMismatch {
            expected: len,
            found: cursor.remaining(),
        });
    }
    let body = String::from_utf8_lossy(cursor.take(len, "body")?).into_owned();
    Ok(AdminResponse {
        request_id,
        status,
        body,
    })
}

/// Incremental frame assembler: feed it raw socket bytes, pull complete
/// payloads. Both the server's per-connection read path and the
/// blocking client use it.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    /// Consumed prefix of `buf`; compacted when it outgrows the tail so
    /// a long-lived connection does not grow its buffer forever.
    start: usize,
}

/// Little-endian `u32` length prefix at the head of `bytes`, `None`
/// when fewer than 4 bytes are buffered. A hostile peer controls these
/// bytes, so this must never panic.
fn length_prefix(bytes: &[u8]) -> Option<usize> {
    let head: [u8; 4] = bytes.get(..4)?.try_into().ok()?;
    Some(u32::from_le_bytes(head) as usize)
}

impl FrameReader {
    /// Empty assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append raw bytes read from the socket.
    pub fn extend(&mut self, bytes: &[u8]) {
        if self.start > 0 && self.start >= self.buf.len().saturating_sub(self.start) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet returned as a frame.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Whether a complete frame is buffered (cheap peek, no copy).
    pub fn has_frame(&self) -> bool {
        // panic-ok: `start <= buf.len()` is a struct invariant — it only
        // ever advances past bytes already present in `buf`.
        let avail = &self.buf[self.start..];
        let Some(len) = length_prefix(avail) else {
            return false;
        };
        // An oversized declaration still counts: next_frame must run to
        // report the error.
        len > MAX_FRAME_BYTES || avail.len() >= 4 + len
    }

    /// Pop the next complete payload, `Ok(None)` if more bytes are
    /// needed, or the frame-level error for a hostile length prefix.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        // panic-ok: `start <= buf.len()` is a struct invariant — it only
        // ever advances past bytes already present in `buf`.
        let avail = &self.buf[self.start..];
        let Some(len) = length_prefix(avail) else {
            return Ok(None);
        };
        if len > MAX_FRAME_BYTES {
            return Err(WireError::FrameTooLarge { declared: len });
        }
        if avail.len() < 4 + len {
            return Ok(None);
        }
        // panic-ok: `avail.len() >= 4 + len` was checked two lines up.
        let payload = avail[4..4 + len].to_vec();
        self.start += 4 + len;
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        }
        Ok(Some(payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> Request {
        Request {
            request_id: 0xDEAD_BEEF_0BAD_F00D,
            deadline_ms: 250,
            cols: 3,
            tags: vec![7, 7, 9],
            covariates: vec![
                0.5,
                -1.25,
                f64::MIN_POSITIVE,
                0.0,
                -0.0,
                3.5,
                1e300,
                -7.0,
                42.0,
            ],
        }
    }

    #[test]
    fn request_roundtrips_bitwise() {
        let request = sample_request();
        let mut frame = Vec::new();
        encode_request(&request, &mut frame);
        let mut reader = FrameReader::new();
        reader.extend(&frame);
        let payload = reader.next_frame().unwrap().unwrap();
        assert_eq!(decode_request(&payload).unwrap(), request);
        assert_eq!(reader.buffered(), 0);
    }

    #[test]
    fn response_roundtrips_both_arms() {
        let ok = Response::Ite {
            request_id: 11,
            ite: vec![1.5, -2.25, f64::NEG_INFINITY],
        };
        let err = Response::Error {
            request_id: 12,
            status: Status::Overloaded,
            detail: "queue full".into(),
        };
        for response in [ok, err] {
            let mut frame = Vec::new();
            encode_response(&response, &mut frame);
            let mut reader = FrameReader::new();
            reader.extend(&frame);
            let payload = reader.next_frame().unwrap().unwrap();
            assert_eq!(decode_response(&payload).unwrap(), response);
        }
    }

    #[test]
    fn every_truncation_of_a_valid_request_is_a_typed_error() {
        let mut frame = Vec::new();
        encode_request(&sample_request(), &mut frame);
        let payload = &frame[4..];
        for cut in 0..payload.len() {
            match decode_request(&payload[..cut]) {
                Err(WireError::Truncated { .. }) | Err(WireError::SizeMismatch { .. }) => {}
                other => panic!("cut at {cut}: expected typed error, got {other:?}"),
            }
        }
    }

    #[test]
    fn hostile_headers_are_rejected_not_panicked_on() {
        let mut frame = Vec::new();
        encode_request(&sample_request(), &mut frame);
        let good = frame[4..].to_vec();

        let mut bad_magic = good.clone();
        bad_magic[0] = 0x00;
        assert_eq!(decode_request(&bad_magic), Err(WireError::BadMagic(0x00)));

        let mut bad_version = good.clone();
        bad_version[1] = 9;
        assert_eq!(
            decode_request(&bad_version),
            Err(WireError::UnsupportedVersion(9))
        );

        let mut bad_kind = good.clone();
        bad_kind[2] = 7;
        assert_eq!(decode_request(&bad_kind), Err(WireError::UnknownKind(7)));

        let mut bad_flags = good.clone();
        bad_flags[3] = 0x80;
        assert_eq!(decode_request(&bad_flags), Err(WireError::BadFlags(0x80)));

        // Absurd row count: rejected before any allocation is sized.
        let mut huge_rows = good.clone();
        huge_rows[16..20].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            decode_request(&huge_rows),
            Err(WireError::RowLimit { rows: u32::MAX })
        );

        // Shape that multiplies past the payload: SizeMismatch, and the
        // expected size is computed with checked arithmetic.
        let mut fat_cols = good;
        fat_cols[20..24].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_request(&fat_cols),
            Err(WireError::SizeMismatch { .. })
        ));

        let mut bad_status = Vec::new();
        encode_response(
            &Response::Error {
                request_id: 1,
                status: Status::ServeFault,
                detail: String::new(),
            },
            &mut bad_status,
        );
        let mut payload = bad_status[4..].to_vec();
        payload[3] = 200;
        assert_eq!(
            decode_response(&payload),
            Err(WireError::UnknownStatus(200))
        );
    }

    #[test]
    fn frame_reader_reassembles_byte_dribbles_and_pipelined_frames() {
        let mut stream = Vec::new();
        let requests: Vec<Request> = (0..5)
            .map(|i| Request {
                request_id: i,
                deadline_ms: 0,
                cols: 2,
                tags: vec![i; 3],
                covariates: vec![i as f64; 6],
            })
            .collect();
        for request in &requests {
            encode_request(request, &mut stream);
        }

        // One byte at a time: frames pop exactly at their boundaries.
        let mut reader = FrameReader::new();
        let mut decoded = Vec::new();
        for byte in &stream {
            reader.extend(std::slice::from_ref(byte));
            while let Some(payload) = reader.next_frame().unwrap() {
                decoded.push(decode_request(&payload).unwrap());
            }
        }
        assert_eq!(decoded, requests);
        assert_eq!(reader.buffered(), 0);

        // All at once: has_frame reports pipelined frames until drained.
        let mut reader = FrameReader::new();
        reader.extend(&stream);
        let mut n = 0;
        while reader.has_frame() {
            reader.next_frame().unwrap().unwrap();
            n += 1;
        }
        assert_eq!(n, requests.len());
    }

    #[test]
    fn frame_reader_rejects_oversized_length_prefix() {
        let mut reader = FrameReader::new();
        reader.extend(&(u32::MAX).to_le_bytes());
        assert!(
            reader.has_frame(),
            "oversized frame must surface, not stall"
        );
        assert_eq!(
            reader.next_frame(),
            Err(WireError::FrameTooLarge {
                declared: u32::MAX as usize
            })
        );
    }

    #[test]
    fn admin_frames_roundtrip_and_stay_off_the_serve_listener() {
        for op in [AdminOp::Metrics, AdminOp::Health, AdminOp::TraceDump] {
            let request = AdminRequest { request_id: 77, op };
            let mut frame = Vec::new();
            encode_admin_request(&request, &mut frame);
            let mut reader = FrameReader::new();
            reader.extend(&frame);
            let payload = reader.next_frame().unwrap().unwrap();
            assert_eq!(decode_admin_request(&payload).unwrap(), request);
            // A predict listener must reject the same payload outright.
            assert_eq!(
                decode_request(&payload),
                Err(WireError::UnknownKind(KIND_ADMIN_REQUEST))
            );
        }
        let response = AdminResponse {
            request_id: 77,
            status: Status::Ok,
            body: "cerl_net_requests_total 5\n".into(),
        };
        let mut frame = Vec::new();
        encode_admin_response(&response, &mut frame);
        let mut reader = FrameReader::new();
        reader.extend(&frame);
        let payload = reader.next_frame().unwrap().unwrap();
        assert_eq!(decode_admin_response(&payload).unwrap(), response);
        assert_eq!(
            decode_response(&payload),
            Err(WireError::UnknownKind(KIND_ADMIN_RESPONSE))
        );
        // And the admin listener rejects predict frames symmetrically.
        let mut predict = Vec::new();
        encode_request(&sample_request(), &mut predict);
        assert_eq!(
            decode_admin_request(&predict[4..]),
            Err(WireError::UnknownKind(KIND_REQUEST))
        );
    }

    #[test]
    fn hostile_admin_bytes_are_typed_errors() {
        let mut frame = Vec::new();
        encode_admin_request(
            &AdminRequest {
                request_id: 3,
                op: AdminOp::Health,
            },
            &mut frame,
        );
        let good = frame[4..].to_vec();
        for cut in 0..good.len() {
            match decode_admin_request(&good[..cut]) {
                Err(WireError::Truncated { .. }) | Err(WireError::SizeMismatch { .. }) => {}
                other => panic!("cut at {cut}: expected typed error, got {other:?}"),
            }
        }
        let mut bad_op = good.clone();
        bad_op[3] = 9;
        assert_eq!(
            decode_admin_request(&bad_op),
            Err(WireError::UnknownAdminOp(9))
        );
        let mut trailing = good;
        trailing.push(0);
        assert!(matches!(
            decode_admin_request(&trailing),
            Err(WireError::SizeMismatch { .. })
        ));
    }

    #[test]
    fn status_fault_classes_match_the_canary_contract() {
        for status in [
            Status::MalformedRequest,
            Status::UnknownDomain,
            Status::Deadline,
        ] {
            assert!(status.is_client_fault(), "{status:?}");
        }
        for status in [
            Status::Ok,
            Status::Overloaded,
            Status::ShuttingDown,
            Status::ServeFault,
        ] {
            assert!(!status.is_client_fault(), "{status:?}");
        }
    }
}
