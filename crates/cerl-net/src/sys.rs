//! Minimal Linux `epoll`/`pipe2` FFI — the only `unsafe` in the crate.
//!
//! The build environment has no crates.io access (no `libc`, no `mio`,
//! no `tokio`), so the reactor binds the four syscalls it needs
//! directly. Socket setup itself stays on `std::net` (bind, accept,
//! `set_nonblocking`); this module only adds what std does not expose:
//! edge-notified readiness (`epoll`), a self-pipe for cross-thread
//! reactor wakeups, and the `SO_SNDBUF` knob the backpressure tests use
//! to make kernel write buffers deterministically small.
//!
//! Everything here is Linux-only (`epoll` is), matching the container
//! this repo targets; constants are the x86-64/aarch64 Linux values.

use std::io;
use std::os::unix::io::RawFd;

/// Readable readiness (level-triggered; the reactor re-arms by interest
/// mask, not edge-triggered semantics).
pub(crate) const EPOLLIN: u32 = 0x001;
/// Writable readiness.
pub(crate) const EPOLLOUT: u32 = 0x004;
/// Error condition (always reported, need not be requested).
pub(crate) const EPOLLERR: u32 = 0x008;
/// Hangup (always reported, need not be requested).
pub(crate) const EPOLLHUP: u32 = 0x010;
/// Peer closed its write side (half-close); requested explicitly so a
/// client disconnect wakes the reactor even when reads are paused.
pub(crate) const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: i32 = 0o2000000;
const O_NONBLOCK: i32 = 0o4000;
const O_CLOEXEC: i32 = 0o2000000;
const SOL_SOCKET: i32 = 1;
const SO_SNDBUF: i32 = 7;

/// One `struct epoll_event`. Packed on x86-64 (the kernel ABI packs it
/// there); natural alignment elsewhere.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
pub(crate) struct EpollEvent {
    pub events: u32,
    /// The token the fd was registered with (connection slot index).
    pub data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
    fn pipe2(fds: *mut i32, flags: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn close(fd: i32) -> i32;
    fn setsockopt(fd: i32, level: i32, optname: i32, optval: *const i32, optlen: u32) -> i32;
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// Owned epoll instance; closed on drop.
pub(crate) struct Epoll {
    fd: RawFd,
}

impl Epoll {
    pub fn new() -> io::Result<Self> {
        // SAFETY: epoll_create1 takes no pointers; any flag value is
        // merely rejected with EINVAL, surfaced through cvt.
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Self { fd })
    }

    pub fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    pub fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        // Pre-2.6.9 kernels demanded a non-null event for DEL; passing
        // one is harmless everywhere.
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events,
            data: token,
        };
        // SAFETY: `ev` is a live, properly aligned EpollEvent for the
        // duration of the call; the kernel only reads it. Bad fds or ops
        // come back as errors through cvt, never as memory unsafety.
        cvt(unsafe { epoll_ctl(self.fd, op, fd, &mut ev) }).map(|_| ())
    }

    /// Blocking wait, retried on `EINTR`; fills `events` with ready fds.
    pub fn wait(&self, events: &mut Vec<EpollEvent>, timeout_ms: i32) -> io::Result<()> {
        events.clear();
        let cap = events.capacity().max(64) as i32;
        events.reserve(cap as usize);
        loop {
            // SAFETY: `events` has capacity for at least `cap` entries
            // (reserved above), so the kernel writes only into owned
            // memory; the buffer outlives the call.
            let n = unsafe { epoll_wait(self.fd, events.as_mut_ptr(), cap, timeout_ms) };
            match cvt(n) {
                Ok(n) => {
                    // SAFETY: epoll_wait returned n <= cap, and the
                    // kernel initialized exactly the first n entries.
                    unsafe { events.set_len(n as usize) };
                    return Ok(());
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: self.fd is the epoll fd this struct owns exclusively;
        // nothing reuses it after drop, so double-close cannot occur.
        unsafe { close(self.fd) };
    }
}

/// Self-pipe used to interrupt `epoll_wait` from other threads: task
/// wakers and `shutdown()` write one byte to the non-blocking write end,
/// the reactor registers the read end in its epoll set and drains it.
pub(crate) struct WakePipe {
    read_fd: RawFd,
    write_fd: RawFd,
}

impl WakePipe {
    pub fn new() -> io::Result<Self> {
        let mut fds = [0i32; 2];
        // SAFETY: `fds` is a live [i32; 2]; pipe2 writes exactly two fds
        // into it on success and nothing on failure.
        cvt(unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) })?;
        Ok(Self {
            read_fd: fds[0],  // panic-ok: constant index into [i32; 2]
            write_fd: fds[1], // panic-ok: constant index into [i32; 2]
        })
    }

    pub fn read_fd(&self) -> RawFd {
        self.read_fd
    }

    /// Make the reactor's next (or current) `epoll_wait` return. A full
    /// pipe already guarantees a pending wakeup, so `EAGAIN` (and a
    /// racing close, `EPIPE`) are success.
    pub fn wake(&self) {
        let byte = 1u8;
        // SAFETY: writes 1 byte from a live local; the fd is owned by
        // this pipe. Errors (EAGAIN on a full pipe, EPIPE on a racing
        // close) are deliberately ignored — see the doc comment.
        unsafe { write(self.write_fd, &byte, 1) };
    }

    /// Discard all queued wakeup bytes (called once per reactor turn).
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            // SAFETY: reads at most buf.len() bytes into a live local
            // buffer from the fd this pipe owns.
            let n = unsafe { read(self.read_fd, buf.as_mut_ptr(), buf.len()) };
            if n <= 0 {
                return;
            }
        }
    }
}

impl Drop for WakePipe {
    fn drop(&mut self) {
        // SAFETY: both fds are owned exclusively by this struct and are
        // closed exactly once, here.
        unsafe {
            close(self.read_fd);
            close(self.write_fd);
        }
    }
}

/// Shrink (or grow) a socket's kernel send buffer. The backpressure
/// tests set this to the minimum so a slow reader fills the kernel
/// buffer after a few KiB and `write` returns `WouldBlock` quickly; the
/// kernel doubles the value internally and clamps to `/proc` limits.
pub(crate) fn set_send_buffer(fd: RawFd, bytes: usize) -> io::Result<()> {
    let val = bytes as i32;
    // SAFETY: passes a pointer to a live i32 with its exact size; the
    // kernel copies the value out during the call.
    cvt(unsafe {
        setsockopt(
            fd,
            SOL_SOCKET,
            SO_SNDBUF,
            &val,
            std::mem::size_of::<i32>() as u32,
        )
    })
    .map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::os::unix::io::AsRawFd;

    #[test]
    fn epoll_reports_pipe_readability_and_token() {
        let ep = Epoll::new().unwrap();
        let pipe = WakePipe::new().unwrap();
        ep.add(pipe.read_fd(), EPOLLIN, 42).unwrap();

        let mut events = Vec::new();
        // Nothing written yet: a zero-timeout wait sees nothing.
        ep.wait(&mut events, 0).unwrap();
        assert!(events.is_empty());

        pipe.wake();
        ep.wait(&mut events, 1000).unwrap();
        assert_eq!(events.len(), 1);
        let ev = events[0];
        assert_eq!({ ev.data }, 42);
        assert_ne!({ ev.events } & EPOLLIN, 0);

        // Drained, the pipe goes quiet again.
        pipe.drain();
        ep.wait(&mut events, 0).unwrap();
        assert!(events.is_empty());

        ep.delete(pipe.read_fd()).unwrap();
        pipe.wake();
        ep.wait(&mut events, 0).unwrap();
        assert!(events.is_empty(), "deleted fd no longer reports");
    }

    #[test]
    fn wake_is_idempotent_when_pipe_is_full() {
        let pipe = WakePipe::new().unwrap();
        // Far more wakes than the pipe holds: must never block or fail.
        for _ in 0..100_000 {
            pipe.wake();
        }
        pipe.drain();
    }

    #[test]
    fn send_buffer_can_be_shrunk() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let stream = std::net::TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        set_send_buffer(stream.as_raw_fd(), 4096).unwrap();
    }

    #[test]
    fn modify_rearms_interest() {
        let ep = Epoll::new().unwrap();
        let pipe = WakePipe::new().unwrap();
        ep.add(pipe.read_fd(), 0, 7).unwrap();
        pipe.wake();
        let mut events = Vec::new();
        ep.wait(&mut events, 0).unwrap();
        assert!(events.is_empty(), "no EPOLLIN interest yet");
        ep.modify(pipe.read_fd(), EPOLLIN, 7).unwrap();
        ep.wait(&mut events, 1000).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!({ events[0].data }, 7);
    }
}
