//! Single-threaded epoll reactor serving the wire protocol.
//!
//! # Architecture
//!
//! One reactor thread owns every socket. It multiplexes with `epoll`
//! (via the crate-private `sys` syscall shims) over five token
//! classes: the self-pipe (token 0, woken by task wakers and
//! `shutdown`), the serve listener (token 1), the optional admin
//! listener (token 2, see below), the UDP health socket (token 3),
//! and one token per connection. Inference never runs on
//! the reactor thread — decoded requests are submitted to the backend
//! ([`BatchScheduler::submit`] or [`ShardRouter::submit_scatter`]) and
//! the returned handles are polled as genuine `Future`s: each
//! connection owns a [`Waker`] that pushes its token onto a ready
//! queue and pokes the self-pipe, so one thread keeps thousands of
//! in-flight requests moving with no blocking `recv` anywhere.
//!
//! # Flow control
//!
//! Per connection, three mechanisms compose so one bad client cannot
//! starve the rest:
//!
//! * **Bounded in-flight** — at most
//!   [`NetServerConfig::max_inflight_per_conn`] requests per connection are
//!   submitted to the backend at once, with at most that many more
//!   decoded and waiting for a slot (their admission-deadline clock
//!   running); further frames stay buffered (and eventually unread)
//!   until responses drain.
//! * **Write backpressure** — when a slow reader lets its response
//!   backlog grow past [`NetServerConfig::write_high_water`], the reactor
//!   stops *reading* that socket (drops `EPOLLIN` interest) until the
//!   backlog drains below the mark; TCP then pushes back on the
//!   client's sends.
//! * **Round-robin fairness** — each reactor turn parses at most
//!   [`NetServerConfig::frames_per_turn`] frames per connection, cycling
//!   through connections from a rotating cursor, so a bursty pipeliner
//!   shares the decode budget with everyone else.
//!
//! Requests carry an optional deadline. It is an **admission**
//! deadline: checked after decode and immediately before backend
//! submission. A request that waited out its budget behind the
//! in-flight cap is shed with a typed [`Status::Deadline`] response
//! *before* any work reaches the inference pool; once admitted, a
//! request runs to completion and its (possibly late) response is
//! still correct and bitwise-deterministic.
//!
//! # Observability
//!
//! The same reactor serves an **admin plane** beside the data plane:
//!
//! * [`NetServerConfig::admin_bind`] opens a second TCP listener that
//!   speaks admin frames only ([`AdminOp::Metrics`] returns the
//!   unified Prometheus-style exposition assembled at scrape time from
//!   the reactor counters, per-connection counters, the backend's
//!   serving metrics, and the trace ring; [`AdminOp::Health`] returns
//!   the one-line health probe; [`AdminOp::TraceDump`] returns
//!   recently completed spans and orchestration events). Predict
//!   frames on the admin port — and admin frames on the serve port —
//!   are rejected as malformed before any work is done.
//! * A **UDP health socket** bound to the serve listener's own
//!   address answers any datagram with `ok:<versions>:<inflight>`, so
//!   a load balancer can probe liveness without a TCP handshake or a
//!   wire-protocol implementation.
//! * With [`NetServerConfig::trace`] set, 1-in-N requests get an
//!   end-to-end span stamped at every pipeline stage (accepted →
//!   decoded → admission-wait → submitted → queue-wait → batched →
//!   inference → gathered → written). Stamping is wait-free and
//!   allocation-free; abandoned requests (connection close, protocol
//!   fault) still retire their span via a drop guard, so the ring
//!   never leaks live slots.
//! * The response frame carries no version bytes — the wire format is
//!   frozen — so **per-replica attribution** lives server-side: every
//!   completed prediction increments a wait-free `(shard, engine
//!   version)` counter, visible as
//!   [`NetStatsSnapshot::replica_served`] and scraped as
//!   `cerl_net_replica_responses_total{shard,version}`. When a domain
//!   is served by a replica set, this is how a canary replica's share
//!   of the answered traffic is read without changing the protocol.
//!
//! # One-CPU caveat
//!
//! The reactor is one thread and inference runs on the backend's
//! threads. On a single-CPU host they time-share: the reactor's
//! latency numbers include scheduler preemption by inference work, so
//! p99s measured there describe the machine, not the design. The
//! stress tests therefore assert on *correctness* counters (zero
//! serve faults, bitwise-identical payloads), not on wall-clock.

use crate::sys::{
    self, Epoll, EpollEvent, WakePipe, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP,
};
use crate::wire::{
    self, AdminOp, AdminRequest, AdminResponse, Request, Response, Status, WireError,
};
use cerl_math::Matrix;
use cerl_obs::{MetricsRegistry, Stage, TraceRing, TraceSpan};
use cerl_serve::{BatchScheduler, ResponseHandle, ScatterHandle, ServeError, ShardRouter};
use std::collections::VecDeque;
use std::future::Future;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs, UdpSocket};
use std::os::unix::io::AsRawFd;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::task::{Context, Poll, Wake, Waker};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Token of the self-pipe's read end in the epoll set.
const TOKEN_WAKE: u64 = 0;
/// Token of the serve listening socket.
const TOKEN_LISTENER: u64 = 1;
/// Token of the optional admin listening socket.
const TOKEN_ADMIN_LISTENER: u64 = 2;
/// Token of the UDP health-probe socket.
const TOKEN_UDP: u64 = 3;
/// First connection token; connection `i` uses token `i + TOKEN_CONN0`.
const TOKEN_CONN0: u64 = 4;

/// What the reactor submits requests to.
pub enum NetBackend {
    /// Single-engine micro-batching: domain tags are ignored, every
    /// request coalesces into the scheduler's next batch.
    Scheduler(Arc<BatchScheduler>),
    /// Shard-per-domain fleet: per-row tags scatter across shards and
    /// gather (`submit_scatter`), so one socket request may fan out to
    /// several engines and still return rows in request order.
    Router(Arc<ShardRouter>),
}

impl NetBackend {
    fn submit(
        &self,
        request: Request,
        trace: Option<TraceSpan>,
    ) -> Result<InflightFuture, ServeError> {
        let rows = request.rows();
        let x = Matrix::from_vec(rows, request.cols as usize, request.covariates);
        match self {
            NetBackend::Scheduler(scheduler) => scheduler
                .submit_traced(x, trace)
                .map(InflightFuture::Single),
            NetBackend::Router(router) => router
                .submit_scatter_traced(&request.tags, &x, trace)
                .map(InflightFuture::Scatter),
        }
    }

    /// Engine versions still live behind this backend (published plus
    /// request-pinned) — the `<versions>` field of the health probe.
    fn live_version_count(&self) -> usize {
        match self {
            NetBackend::Scheduler(scheduler) => scheduler.engine().live_version_count(),
            NetBackend::Router(router) => router.live_version_count(),
        }
    }

    /// Export the backend's serving metrics into `reg` (scrape time
    /// only — never on the request path).
    fn export_metrics(&self, reg: &mut MetricsRegistry) {
        match self {
            NetBackend::Scheduler(scheduler) => scheduler.export_metrics(reg),
            NetBackend::Router(router) => router.export_metrics(reg),
        }
    }
}

/// A submitted request's future, unified across backends.
enum InflightFuture {
    Single(ResponseHandle),
    Scatter(ScatterHandle),
}

/// A completed prediction plus its replica attribution. The wire
/// response carries only the rows, so which engine answered rides
/// beside the payload into the reactor's counters instead of onto the
/// socket.
struct Served {
    ite: Vec<f64>,
    /// `(shard, engine version)` for every replica that served part of
    /// this response: one entry per participating shard for a scatter,
    /// a single shard-0 entry for the scheduler backend (one engine,
    /// seat 0 by convention).
    replicas: Vec<(usize, u64)>,
}

impl InflightFuture {
    fn poll(&mut self, cx: &mut Context<'_>) -> Poll<Result<Served, ServeError>> {
        match self {
            InflightFuture::Single(handle) => Pin::new(handle).poll(cx).map(|r| {
                r.map(|(version, ite)| Served {
                    ite,
                    replicas: vec![(0, version)],
                })
            }),
            InflightFuture::Scatter(handle) => Pin::new(handle).poll(cx).map(|r| {
                r.map(|response| Served {
                    ite: response.ite,
                    replicas: response.shard_versions,
                })
            }),
        }
    }
}

/// Distinct `(shard, engine version)` pairs tracked individually; later
/// pairs share the overflow slot. A power of two so the probe step is a
/// single mask.
const REPLICA_SLOTS: usize = 64;

/// Responses attributed to one serving replica's engine version
/// ([`NetStatsSnapshot::replica_served`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaServed {
    /// `(shard, engine version)`, or `None` for the shared overflow
    /// slot (more lifetime pairs than the table tracks individually).
    pub replica: Option<(usize, u64)>,
    /// Completed predictions this replica served — a scatter response
    /// counts once per replica that served one of its sub-batches.
    pub responses: u64,
}

/// Wait-free `(shard, engine version)` → response counters, the
/// server-side half of replica attribution (the wire stays
/// version-free). Same design as the serving tier's per-domain
/// counters: a pair claims a slot with one CAS the first time it is
/// seen and increments a plain counter ever after; when the table is
/// full, further new pairs accumulate in a shared overflow slot.
struct ReplicaCounters {
    /// Slot owner as the packed pair (see [`ReplicaCounters::pack`]);
    /// `0` means the slot is free.
    keys: [AtomicU64; REPLICA_SLOTS],
    responses: [AtomicU64; REPLICA_SLOTS],
    overflow: AtomicU64,
}

impl Default for ReplicaCounters {
    fn default() -> Self {
        Self {
            keys: std::array::from_fn(|_| AtomicU64::new(0)),
            responses: std::array::from_fn(|_| AtomicU64::new(0)),
            overflow: AtomicU64::new(0),
        }
    }
}

impl std::fmt::Debug for ReplicaCounters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicaCounters")
            .field("slots", &REPLICA_SLOTS)
            .finish_non_exhaustive()
    }
}

impl ReplicaCounters {
    /// `shard + 1` in the top 24 bits, version in the low 40 — non-zero
    /// by construction so `0` can mean "slot free". `None` when the
    /// pair doesn't fit (absurd shard index or version), which falls
    /// back to the overflow slot rather than mis-attributing.
    fn pack(shard: usize, version: u64) -> Option<u64> {
        let shard = shard as u64;
        (shard < (1 << 24) - 1 && version < (1 << 40)).then_some(((shard + 1) << 40) | version)
    }

    /// Count one served response (or scatter sub-batch) against
    /// `(shard, version)`. Wait-free: at most [`REPLICA_SLOTS`] probe
    /// steps, no locks, no allocation.
    fn record(&self, shard: usize, version: u64) {
        let Some(key) = Self::pack(shard, version) else {
            // ordering: Relaxed — lone monotone counter, no edges.
            self.overflow.fetch_add(1, Ordering::Relaxed);
            return;
        };
        // Fibonacci-hash the packed pair so adjacent shard/version
        // pairs spread across the table instead of clustering.
        let mut i = (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % REPLICA_SLOTS;
        for _ in 0..REPLICA_SLOTS {
            // ordering: Acquire pairs with the Release half of the
            // claiming CAS below — a reader that observes this slot's
            // key observes it fully claimed (the key is the only claim
            // state; the counter is monotone and self-standing).
            // panic-ok: i is reduced modulo REPLICA_SLOTS, always in range.
            let owner = self.keys[i].load(Ordering::Acquire);
            let claimed = owner == key || (owner == 0 && self.claim(i, key));
            if claimed {
                // ordering: Relaxed — monotone counter; the scrape-time
                // reader tolerates being a step behind.
                // panic-ok: i is reduced modulo REPLICA_SLOTS.
                self.responses[i].fetch_add(1, Ordering::Relaxed);
                return;
            }
            i = (i + 1) % REPLICA_SLOTS;
        }
        // Table full: totals stay honest in the shared overflow slot.
        // ordering: Relaxed — same monotone-counter contract as above.
        self.overflow.fetch_add(1, Ordering::Relaxed);
    }

    /// Try to claim slot `i` for `key`; true if this call or a racing
    /// recorder of the *same* key won it.
    fn claim(&self, i: usize, key: u64) -> bool {
        // ordering: AcqRel on success publishes the claim to other
        // recorders and readers; Acquire on failure observes the
        // competing claim we lost to. panic-ok: i is reduced modulo
        // REPLICA_SLOTS, always in range.
        match self.keys[i].compare_exchange(0, key, Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => true,
            Err(racer) => racer == key,
        }
    }

    /// Every tracked replica's response count, ascending by shard then
    /// version, with the overflow slot (if it ever counted) last as
    /// `replica: None`. Scrape-time work — copies and sorts freely.
    fn snapshot(&self) -> Vec<ReplicaServed> {
        let mut out = Vec::new();
        for i in 0..REPLICA_SLOTS {
            // ordering: Acquire pairs with the claiming CAS's Release —
            // a non-zero key here is a fully claimed slot.
            // panic-ok: i is a loop index < REPLICA_SLOTS.
            let owner = self.keys[i].load(Ordering::Acquire);
            if owner == 0 {
                continue;
            }
            let shard = ((owner >> 40) - 1) as usize;
            let version = owner & ((1 << 40) - 1);
            out.push(ReplicaServed {
                replica: Some((shard, version)),
                // ordering: Relaxed — monotone counter, staleness fine.
                // panic-ok: i is a loop index < REPLICA_SLOTS.
                responses: self.responses[i].load(Ordering::Relaxed),
            });
        }
        out.sort_unstable_by_key(|s| s.replica);
        // ordering: Relaxed — monotone counter, staleness fine.
        let overflow = self.overflow.load(Ordering::Relaxed);
        if overflow > 0 {
            out.push(ReplicaServed {
                replica: None,
                responses: overflow,
            });
        }
        out
    }
}

/// Reactor tuning knobs.
#[derive(Debug, Clone)]
pub struct NetServerConfig {
    /// Admission window per connection: at most this many requests
    /// submitted to the backend at once, plus at most this many more
    /// decoded and waiting for a slot — that wait is where an
    /// admission deadline runs down. Frames beyond the waiting room
    /// stay in the read buffer.
    pub max_inflight_per_conn: usize,
    /// Response backlog (bytes) above which the reactor stops reading
    /// a connection until the backlog drains (write backpressure).
    pub write_high_water: usize,
    /// Frames parsed per connection per reactor turn (fairness).
    pub frames_per_turn: usize,
    /// Bytes read per connection per reactor turn.
    pub read_chunk: usize,
    /// Kernel `SO_SNDBUF` override for accepted sockets; tests shrink
    /// it to make write backpressure deterministic.
    pub send_buffer_bytes: Option<usize>,
    /// Connections accepted concurrently; extras are closed at accept.
    pub max_connections: usize,
    /// Address for the admin listener (e.g. `"127.0.0.1:0"`); `None`
    /// disables the admin plane. The bound address is reported by
    /// [`NetServer::admin_addr`].
    pub admin_bind: Option<String>,
    /// Trace ring shared with the serving tiers; `None` disables
    /// request tracing. 1-in-`sample_every` requests get a span
    /// stamped from accept to response write.
    pub trace: Option<Arc<TraceRing>>,
}

impl Default for NetServerConfig {
    fn default() -> Self {
        Self {
            max_inflight_per_conn: 32,
            write_high_water: 256 * 1024,
            frames_per_turn: 8,
            read_chunk: 64 * 1024,
            send_buffer_bytes: None,
            max_connections: 4096,
            admin_bind: None,
            trace: None,
        }
    }
}

/// Per-connection wait-free counters (all `Relaxed`), registered at
/// accept and retired at close — [`NetStatsSnapshot::per_connection`]
/// and the metrics scrape see **open** connections only.
#[derive(Debug, Default)]
struct ConnStats {
    conn_id: u64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    requests: AtomicU64,
    responses_ok: AtomicU64,
    deadline_shed: AtomicU64,
    backpressure_pauses: AtomicU64,
    inflight: AtomicU64,
}

impl ConnStats {
    fn snapshot(&self) -> ConnStatsSnapshot {
        ConnStatsSnapshot {
            conn_id: self.conn_id,
            // ordering: independent advisory counters, per-counter
            // coherence only — Relaxed atomicity suffices (no edges).
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            responses_ok: self.responses_ok.load(Ordering::Relaxed),
            deadline_shed: self.deadline_shed.load(Ordering::Relaxed),
            backpressure_pauses: self.backpressure_pauses.load(Ordering::Relaxed),
            inflight: self.inflight.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of one open connection's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConnStatsSnapshot {
    /// Reactor-assigned connection id (monotone, never reused).
    pub conn_id: u64,
    /// Raw bytes read from this client.
    pub bytes_in: u64,
    /// Raw bytes written to this client.
    pub bytes_out: u64,
    /// Request frames decoded on this connection.
    pub requests: u64,
    /// Requests answered with predictions on this connection.
    pub responses_ok: u64,
    /// Requests shed by the admission deadline on this connection.
    pub deadline_shed: u64,
    /// Times this connection's reads were paused by backpressure.
    pub backpressure_pauses: u64,
    /// Requests currently submitted to the backend (gauge).
    pub inflight: u64,
}

/// Wait-free reactor counters (all `Relaxed`; read via
/// [`NetServer::stats`]). The per-connection registry is a `Mutex`
/// touched only at accept, close, and scrape — never per frame.
#[derive(Debug, Default)]
struct NetStats {
    accepted: AtomicU64,
    closed: AtomicU64,
    requests: AtomicU64,
    responses_ok: AtomicU64,
    rejected_client: AtomicU64,
    rejected_serve: AtomicU64,
    deadline_shed: AtomicU64,
    malformed: AtomicU64,
    backpressure_pauses: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    admin_requests: AtomicU64,
    open_connections: AtomicU64,
    peak_connections: AtomicU64,
    next_conn_id: AtomicU64,
    conns: Mutex<Vec<Arc<ConnStats>>>,
    replica_served: ReplicaCounters,
}

impl NetStats {
    fn snapshot(&self) -> NetStatsSnapshot {
        NetStatsSnapshot {
            // ordering: independent monotone counters; the snapshot is
            // advisory and promises per-counter coherence only, so
            // Relaxed atomicity suffices (no edges).
            accepted: self.accepted.load(Ordering::Relaxed),
            closed: self.closed.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            responses_ok: self.responses_ok.load(Ordering::Relaxed),
            rejected_client: self.rejected_client.load(Ordering::Relaxed),
            rejected_serve: self.rejected_serve.load(Ordering::Relaxed),
            deadline_shed: self.deadline_shed.load(Ordering::Relaxed),
            malformed: self.malformed.load(Ordering::Relaxed),
            backpressure_pauses: self.backpressure_pauses.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            admin_requests: self.admin_requests.load(Ordering::Relaxed),
            open_connections: self.open_connections.load(Ordering::Relaxed),
            peak_connections: self.peak_connections.load(Ordering::Relaxed),
            per_conn: self.per_conn_snapshots(),
            replica_served: self.replica_served.snapshot(),
        }
    }

    /// Mint a [`ConnStats`] for a freshly accepted connection and track
    /// it as open. Called at accept only, never per frame.
    fn register_conn(&self) -> Arc<ConnStats> {
        // ordering: lone id counter, no edges.
        let conn_id = self.next_conn_id.fetch_add(1, Ordering::Relaxed);
        let stats = Arc::new(ConnStats {
            conn_id,
            ..ConnStats::default()
        });
        self.conns
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(Arc::clone(&stats));
        // ordering: advisory open-connection gauge, no edges.
        let open = self.open_connections.fetch_add(1, Ordering::Relaxed) + 1;
        // ordering: advisory peak watermark; a racing fetch_max is benign.
        self.peak_connections.fetch_max(open, Ordering::Relaxed);
        stats
    }

    /// Retire a connection's counters at close; scrapes no longer see
    /// it. Called at close only, never per frame.
    fn unregister_conn(&self, conn_id: u64) {
        self.conns
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .retain(|c| c.conn_id != conn_id);
        // ordering: advisory open gauge, no edges.
        self.open_connections.fetch_sub(1, Ordering::Relaxed);
    }

    fn per_conn_snapshots(&self) -> Vec<ConnStatsSnapshot> {
        self.conns
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|c| c.snapshot())
            .collect()
    }

    /// Export the reactor counters — fleet totals, gauges, and one row
    /// per open connection — into `reg` under `cerl_net_*`.
    fn export_metrics(&self, reg: &mut MetricsRegistry) {
        let snap = self.snapshot();
        let counters: [(&str, &str, u64); 12] = [
            (
                "cerl_net_accepted_total",
                "Connections accepted.",
                snap.accepted,
            ),
            (
                "cerl_net_closed_total",
                "Connections fully closed.",
                snap.closed,
            ),
            (
                "cerl_net_requests_total",
                "Request frames decoded.",
                snap.requests,
            ),
            (
                "cerl_net_responses_ok_total",
                "Requests answered with predictions.",
                snap.responses_ok,
            ),
            (
                "cerl_net_rejected_client_total",
                "Requests rejected with a client-fault status.",
                snap.rejected_client,
            ),
            (
                "cerl_net_rejected_serve_total",
                "Requests rejected with a serve-fault status.",
                snap.rejected_serve,
            ),
            (
                "cerl_net_deadline_shed_total",
                "Requests shed by the admission deadline.",
                snap.deadline_shed,
            ),
            (
                "cerl_net_malformed_total",
                "Hostile or corrupt frames answered and closed.",
                snap.malformed,
            ),
            (
                "cerl_net_backpressure_pauses_total",
                "Read pauses from write backpressure or the in-flight cap.",
                snap.backpressure_pauses,
            ),
            (
                "cerl_net_bytes_in_total",
                "Raw bytes read from clients.",
                snap.bytes_in,
            ),
            (
                "cerl_net_bytes_out_total",
                "Raw bytes written to clients.",
                snap.bytes_out,
            ),
            (
                "cerl_net_admin_requests_total",
                "Admin frames served (not counted as requests).",
                snap.admin_requests,
            ),
        ];
        for (name, help, value) in counters {
            reg.counter(name, help, &[], value);
        }
        reg.gauge(
            "cerl_net_open_connections",
            "Connections currently open.",
            &[],
            snap.open_connections as f64,
        );
        reg.gauge(
            "cerl_net_peak_connections",
            "High-water mark of concurrently open connections.",
            &[],
            snap.peak_connections as f64,
        );
        for conn in snap.per_connection() {
            let id = conn.conn_id.to_string();
            let labels: [(&str, &str); 1] = [("conn", &id)];
            reg.counter(
                "cerl_net_conn_bytes_in_total",
                "Raw bytes read, per open connection.",
                &labels,
                conn.bytes_in,
            );
            reg.counter(
                "cerl_net_conn_bytes_out_total",
                "Raw bytes written, per open connection.",
                &labels,
                conn.bytes_out,
            );
            reg.counter(
                "cerl_net_conn_requests_total",
                "Request frames decoded, per open connection.",
                &labels,
                conn.requests,
            );
            reg.counter(
                "cerl_net_conn_responses_ok_total",
                "Predictions answered, per open connection.",
                &labels,
                conn.responses_ok,
            );
            reg.counter(
                "cerl_net_conn_deadline_shed_total",
                "Admission-deadline sheds, per open connection.",
                &labels,
                conn.deadline_shed,
            );
            reg.counter(
                "cerl_net_conn_backpressure_pauses_total",
                "Read pauses, per open connection.",
                &labels,
                conn.backpressure_pauses,
            );
            reg.gauge(
                "cerl_net_conn_inflight_requests",
                "Requests currently submitted to the backend, per open connection.",
                &labels,
                conn.inflight as f64,
            );
        }
        for stat in snap.replica_served() {
            let (shard, version) = match stat.replica {
                Some((shard, version)) => (shard.to_string(), version.to_string()),
                None => ("other".to_string(), "other".to_string()),
            };
            let labels: [(&str, &str); 2] = [("shard", &shard), ("version", &version)];
            reg.counter(
                "cerl_net_replica_responses_total",
                "Completed predictions attributed to each serving replica's \
                 engine version (a scatter counts once per participating replica).",
                &labels,
                stat.responses,
            );
        }
    }

    fn record_response(&self, response: &Response) {
        match response {
            Response::Ite { .. } => {
                self.responses_ok.fetch_add(1, Ordering::Relaxed); // ordering: lone stat counter, no edges
            }
            Response::Error { status, .. } => {
                if status.is_client_fault() {
                    self.rejected_client.fetch_add(1, Ordering::Relaxed); // ordering: lone stat counter, no edges
                } else {
                    self.rejected_serve.fetch_add(1, Ordering::Relaxed); // ordering: lone stat counter, no edges
                }
                match status {
                    Status::Deadline => {
                        self.deadline_shed.fetch_add(1, Ordering::Relaxed); // ordering: lone stat counter, no edges
                    }
                    Status::MalformedRequest => {
                        self.malformed.fetch_add(1, Ordering::Relaxed); // ordering: lone stat counter, no edges
                    }
                    _ => {}
                }
            }
        }
    }
}

/// Point-in-time copy of the reactor's counters.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NetStatsSnapshot {
    /// Connections accepted since the server started.
    pub accepted: u64,
    /// Connections fully closed (client disconnects, protocol faults,
    /// and over-limit accepts).
    pub closed: u64,
    /// Request frames successfully decoded.
    pub requests: u64,
    /// Requests answered with predictions.
    pub responses_ok: u64,
    /// Requests rejected with a client-fault status (malformed bytes,
    /// unknown domains, expired deadlines).
    pub rejected_client: u64,
    /// Requests rejected with a serve-fault status (queue overflow,
    /// shutdown, engine failures on well-formed input). A healthy
    /// fleet keeps this at zero regardless of client behavior.
    pub rejected_serve: u64,
    /// Requests shed by the admission deadline before reaching the
    /// inference pool (subset of `rejected_client`).
    pub deadline_shed: u64,
    /// Hostile or corrupt frames answered with
    /// [`Status::MalformedRequest`] (subset of `rejected_client`).
    pub malformed: u64,
    /// Times a connection's reads were paused by write backpressure
    /// or the in-flight cap.
    pub backpressure_pauses: u64,
    /// Raw bytes read from clients.
    pub bytes_in: u64,
    /// Raw bytes written to clients.
    pub bytes_out: u64,
    /// Admin frames served (metrics scrapes, health probes, trace
    /// dumps — not counted in `requests`).
    pub admin_requests: u64,
    /// Connections open at snapshot time.
    pub open_connections: u64,
    /// High-water mark of concurrently open connections since the
    /// server started — `shutdown()`'s final snapshot reports the
    /// server's lifetime peak.
    pub peak_connections: u64,
    per_conn: Vec<ConnStatsSnapshot>,
    replica_served: Vec<ReplicaServed>,
}

impl NetStatsSnapshot {
    /// Counters of every connection open at snapshot time, ascending
    /// by connection id. Closed connections are absent — their traffic
    /// lives on in the fleet totals.
    pub fn per_connection(&self) -> &[ConnStatsSnapshot] {
        &self.per_conn
    }

    /// Completed predictions attributed to each `(shard, engine
    /// version)` that served them, ascending by shard then version —
    /// the response-side replica attribution (the wire format carries
    /// no version bytes). A scatter response counts once per replica
    /// that served one of its sub-batches; the scheduler backend
    /// attributes everything to shard 0.
    pub fn replica_served(&self) -> &[ReplicaServed] {
        &self.replica_served
    }
}

/// Connection tokens whose futures have completed since the reactor
/// last looked; wakers push here and poke the self-pipe.
struct ReadyQueue {
    ready: Mutex<Vec<u64>>,
    pipe: Arc<WakePipe>,
}

impl ReadyQueue {
    fn push(&self, token: u64) {
        self.ready
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(token);
        self.pipe.wake();
    }

    fn take(&self) -> Vec<u64> {
        let mut tokens =
            std::mem::take(&mut *self.ready.lock().unwrap_or_else(PoisonError::into_inner));
        tokens.sort_unstable();
        tokens.dedup();
        tokens
    }
}

/// The per-connection waker handed to every future poll: completion on
/// any backend thread re-schedules exactly this connection.
struct ConnWaker {
    token: u64,
    queue: Arc<ReadyQueue>,
}

impl Wake for ConnWaker {
    fn wake(self: Arc<Self>) {
        self.queue.push(self.token);
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.queue.push(self.token);
    }
}

/// Owns a request's optional trace span and **completes it on drop**,
/// so every exit — response written, deadline shed, wire fault,
/// connection close — retires the span's ring slot. Without this, an
/// abandoned request would leak a live slot forever.
struct TraceGuard(Option<TraceSpan>);

impl TraceGuard {
    /// The span to share with the backend (stamps flow through the
    /// scheduler/router); completion stays with this guard.
    fn span(&self) -> Option<TraceSpan> {
        self.0.clone()
    }

    fn stamp(&self, stage: Stage) {
        if let Some(trace) = &self.0 {
            trace.stamp(stage); // obs-stage: generic forwarder, stage named at call sites
        }
    }
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        if let Some(trace) = self.0.take() {
            trace.complete();
        }
    }
}

/// A decoded request waiting for an in-flight slot.
struct PendingSubmit {
    request: Request,
    deadline: Option<Instant>,
    trace: TraceGuard,
}

/// A request submitted to the backend, awaiting its future.
struct Inflight {
    request_id: u64,
    future: InflightFuture,
    trace: TraceGuard,
}

struct Conn {
    stream: TcpStream,
    waker: Waker,
    reader: wire::FrameReader,
    pending: VecDeque<PendingSubmit>,
    inflight: Vec<Inflight>,
    write_buf: Vec<u8>,
    write_pos: usize,
    /// epoll interest mask currently registered for this socket.
    interest: u32,
    /// Reads paused by backpressure (write backlog or in-flight cap).
    paused: bool,
    /// Protocol fault observed: answer, flush, then close.
    corrupt: bool,
    /// Accepted on the admin listener: speaks admin frames only.
    admin: bool,
    /// This connection's wait-free counters (registered at accept).
    stats: Arc<ConnStats>,
}

impl Conn {
    fn backlog(&self) -> usize {
        self.write_buf.len() - self.write_pos
    }

    fn occupancy(&self) -> usize {
        self.pending.len() + self.inflight.len()
    }

    /// Deferred work the reactor should service without waiting for a
    /// socket event.
    fn has_deferred_work(&self, cfg: &NetServerConfig) -> bool {
        if self.corrupt {
            return false;
        }
        (!self.pending.is_empty() && self.inflight.len() < cfg.max_inflight_per_conn)
            || (self.reader.has_frame() && self.pending.len() < cfg.max_inflight_per_conn)
    }

    fn earliest_deadline(&self) -> Option<Instant> {
        self.pending.iter().filter_map(|p| p.deadline).min()
    }
}

/// Map a backend rejection onto the wire status taxonomy.
fn status_of(error: &ServeError) -> Status {
    match error {
        ServeError::UnknownDomain { .. } => Status::UnknownDomain,
        ServeError::QueueFull { .. } => Status::Overloaded,
        ServeError::SchedulerShutdown => Status::ShuttingDown,
        e if e.is_client_fault() => Status::MalformedRequest,
        _ => Status::ServeFault,
    }
}

/// A TCP front-end serving the CERL wire protocol from a dedicated
/// reactor thread (see the [module docs](self) for semantics).
pub struct NetServer {
    addr: SocketAddr,
    admin_addr: Option<SocketAddr>,
    stats: Arc<NetStats>,
    shutdown: Arc<AtomicBool>,
    wake: Arc<WakePipe>,
    thread: Option<JoinHandle<io::Result<()>>>,
}

impl NetServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`) and start the reactor. When
    /// [`NetServerConfig::admin_bind`] is set, the admin listener binds
    /// here too; a UDP health socket always binds beside the serve
    /// listener on its own address.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        backend: NetBackend,
        cfg: NetServerConfig,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let admin_listener = match cfg.admin_bind.as_deref() {
            Some(admin) => {
                let admin = TcpListener::bind(admin)?;
                admin.set_nonblocking(true)?;
                Some(admin)
            }
            None => None,
        };
        let admin_addr = match &admin_listener {
            Some(listener) => Some(listener.local_addr()?),
            None => None,
        };
        // UDP and TCP ports are separate namespaces, so the health
        // socket shares the serve listener's exact address.
        let udp = UdpSocket::bind(addr)?;
        udp.set_nonblocking(true)?;
        let stats = Arc::new(NetStats::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let wake = Arc::new(WakePipe::new()?);

        let mut reactor = Reactor::new(
            listener,
            admin_listener,
            udp,
            backend,
            cfg,
            Arc::clone(&stats),
            Arc::clone(&shutdown),
            Arc::clone(&wake),
        )?;
        let thread = std::thread::Builder::new()
            .name("cerl-net-reactor".into())
            .spawn(move || reactor.run())?;

        Ok(Self {
            addr,
            admin_addr,
            stats,
            shutdown,
            wake,
            thread: Some(thread),
        })
    }

    /// The bound address (with the OS-assigned port when bound to `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The admin listener's bound address, `None` when
    /// [`NetServerConfig::admin_bind`] was unset.
    pub fn admin_addr(&self) -> Option<SocketAddr> {
        self.admin_addr
    }

    /// Current reactor counters.
    pub fn stats(&self) -> NetStatsSnapshot {
        self.stats.snapshot()
    }

    /// Stop accepting, drop every connection, and join the reactor.
    /// Returns the final counters.
    pub fn shutdown(mut self) -> io::Result<NetStatsSnapshot> {
        self.stop()?;
        Ok(self.stats.snapshot())
    }

    fn stop(&mut self) -> io::Result<()> {
        // ordering: Release pairs with the reactor loop's Acquire load —
        // whatever the caller did before stop() is visible to the
        // reactor's final drain turn once it observes the flag.
        self.shutdown.store(true, Ordering::Release);
        self.wake.wake();
        match self.thread.take() {
            Some(thread) => thread
                .join()
                .map_err(|_| io::Error::other("reactor thread panicked"))?,
            None => Ok(()),
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        let _ = self.stop();
    }
}

struct Reactor {
    epoll: Epoll,
    listener: TcpListener,
    admin_listener: Option<TcpListener>,
    udp: UdpSocket,
    backend: NetBackend,
    cfg: NetServerConfig,
    stats: Arc<NetStats>,
    shutdown: Arc<AtomicBool>,
    wake: Arc<WakePipe>,
    queue: Arc<ReadyQueue>,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    /// Round-robin start offset for the per-turn service sweep.
    cursor: usize,
}

impl Reactor {
    #[allow(clippy::too_many_arguments)]
    fn new(
        listener: TcpListener,
        admin_listener: Option<TcpListener>,
        udp: UdpSocket,
        backend: NetBackend,
        cfg: NetServerConfig,
        stats: Arc<NetStats>,
        shutdown: Arc<AtomicBool>,
        wake: Arc<WakePipe>,
    ) -> io::Result<Self> {
        let epoll = Epoll::new()?;
        epoll.add(wake.read_fd(), EPOLLIN, TOKEN_WAKE)?;
        epoll.add(listener.as_raw_fd(), EPOLLIN, TOKEN_LISTENER)?;
        if let Some(admin) = &admin_listener {
            epoll.add(admin.as_raw_fd(), EPOLLIN, TOKEN_ADMIN_LISTENER)?;
        }
        epoll.add(udp.as_raw_fd(), EPOLLIN, TOKEN_UDP)?;
        let queue = Arc::new(ReadyQueue {
            ready: Mutex::new(Vec::new()),
            pipe: Arc::clone(&wake),
        });
        Ok(Self {
            epoll,
            listener,
            admin_listener,
            udp,
            backend,
            cfg,
            stats,
            shutdown,
            wake,
            queue,
            conns: Vec::new(),
            free: Vec::new(),
            cursor: 0,
        })
    }

    fn run(&mut self) -> io::Result<()> {
        let mut events: Vec<EpollEvent> = Vec::with_capacity(256);
        // ordering: Acquire pairs with stop()'s Release store (see
        // there for the edge).
        while !self.shutdown.load(Ordering::Acquire) {
            let timeout = self.next_timeout_ms();
            self.epoll.wait(&mut events, timeout)?;

            let mut accept = false;
            let mut accept_admin = false;
            let mut udp_ready = false;
            let mut woken = false;
            // Collect per-connection readiness first; service after.
            let mut io_ready: Vec<(usize, u32)> = Vec::new();
            for event in events.iter() {
                let (token, bits) = ({ event.data }, { event.events });
                match token {
                    TOKEN_WAKE => woken = true,
                    TOKEN_LISTENER => accept = true,
                    TOKEN_ADMIN_LISTENER => accept_admin = true,
                    TOKEN_UDP => udp_ready = true,
                    _ => io_ready.push(((token - TOKEN_CONN0) as usize, bits)),
                }
            }

            if woken {
                self.wake.drain();
                for token in self.queue.take() {
                    let idx = (token - TOKEN_CONN0) as usize;
                    self.poll_conn(idx);
                }
            }
            if accept {
                self.accept_ready(false);
            }
            if accept_admin {
                self.accept_ready(true);
            }
            if udp_ready {
                self.answer_udp_probes();
            }
            for (idx, bits) in io_ready {
                self.handle_io(idx, bits);
            }
            self.service_sweep();
        }
        Ok(())
    }

    /// Answer every waiting UDP datagram with the one-line health
    /// probe. Any payload is a probe; errors drop the datagram (UDP is
    /// best-effort by contract).
    fn answer_udp_probes(&mut self) {
        let mut buf = [0u8; 64];
        loop {
            match self.udp.recv_from(&mut buf) {
                Ok((_len, peer)) => {
                    let line = self.health_line();
                    let _ = self.udp.send_to(line.as_bytes(), peer);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    /// `ok:<versions>:<inflight>` — live engine versions behind the
    /// backend and requests currently submitted to it.
    fn health_line(&self) -> String {
        let inflight: usize = self
            .conns
            .iter()
            .flatten()
            .map(|conn| conn.inflight.len())
            .sum();
        format!("ok:{}:{}", self.backend.live_version_count(), inflight)
    }

    /// Zero when deferred parse/submit work exists, else the time to
    /// the nearest admission deadline, else a housekeeping tick.
    fn next_timeout_ms(&self) -> i32 {
        let mut timeout: i32 = 100;
        let now = Instant::now();
        for conn in self.conns.iter().flatten() {
            if conn.has_deferred_work(&self.cfg) {
                return 0;
            }
            if let Some(deadline) = conn.earliest_deadline() {
                let ms = deadline.saturating_duration_since(now).as_millis().min(100) as i32;
                timeout = timeout.min(ms.max(1));
            }
        }
        timeout
    }

    fn accept_ready(&mut self, admin: bool) {
        loop {
            let accepted = match &self.admin_listener {
                Some(listener) if admin => listener.accept(),
                _ => self.listener.accept(),
            };
            match accepted {
                Ok((stream, _peer)) => {
                    self.stats.accepted.fetch_add(1, Ordering::Relaxed); // ordering: lone stat counter, no edges
                    if self.install(stream, admin).is_none() {
                        // Over max_connections (or registration failed):
                        // the stream drops here, closing the socket.
                        self.stats.closed.fetch_add(1, Ordering::Relaxed); // ordering: lone stat counter, no edges
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // Transient accept errors (ECONNABORTED, EMFILE burst):
                // drop this readiness edge, epoll will re-report.
                Err(_) => return,
            }
        }
    }

    fn install(&mut self, stream: TcpStream, admin: bool) -> Option<usize> {
        let live = self.conns.iter().filter(|c| c.is_some()).count();
        if live >= self.cfg.max_connections {
            return None;
        }
        stream.set_nonblocking(true).ok()?;
        stream.set_nodelay(true).ok()?;
        if let Some(bytes) = self.cfg.send_buffer_bytes {
            sys::set_send_buffer(stream.as_raw_fd(), bytes).ok()?;
        }
        let idx = self.free.pop().unwrap_or_else(|| {
            self.conns.push(None);
            self.conns.len() - 1
        });
        let token = idx as u64 + TOKEN_CONN0;
        let interest = EPOLLIN | EPOLLRDHUP;
        if self.epoll.add(stream.as_raw_fd(), interest, token).is_err() {
            self.free.push(idx);
            return None;
        }
        let waker = Waker::from(Arc::new(ConnWaker {
            token,
            queue: Arc::clone(&self.queue),
        }));
        // panic-ok: `idx` is a token minted from a conns slot index
        // at install time, always < conns.len().
        self.conns[idx] = Some(Conn {
            stream,
            waker,
            reader: wire::FrameReader::new(),
            pending: VecDeque::new(),
            inflight: Vec::new(),
            write_buf: Vec::new(),
            write_pos: 0,
            interest,
            paused: false,
            corrupt: false,
            admin,
            stats: self.stats.register_conn(),
        });
        Some(idx)
    }

    fn close(&mut self, idx: usize) {
        // panic-ok: `idx` is a token minted from a conns slot index
        // at install time, always < conns.len().
        if let Some(conn) = self.conns[idx].take() {
            let _ = self.epoll.delete(conn.stream.as_raw_fd());
            self.free.push(idx);
            self.stats.unregister_conn(conn.stats.conn_id);
            self.stats.closed.fetch_add(1, Ordering::Relaxed); // ordering: lone stat counter, no edges
                                                               // Dropping `conn` abandons its in-flight futures: the
                                                               // backend still completes them, the results are
                                                               // discarded — and each one's TraceGuard retires its span.
        }
    }

    fn handle_io(&mut self, idx: usize, bits: u32) {
        if bits & (EPOLLERR | EPOLLHUP) != 0 {
            self.close(idx);
            return;
        }
        let read_chunk = self.cfg.read_chunk.max(1024);
        let mut close_needed = false;
        {
            // panic-ok: `idx` is a token minted from a conns slot index
            // at install time, always < conns.len().
            let Some(conn) = self.conns[idx].as_mut() else {
                return;
            };
            if bits & EPOLLIN != 0 && !conn.paused && !conn.corrupt {
                let mut buf = vec![0u8; read_chunk];
                let mut read_total = 0usize;
                loop {
                    // panic-ok: full-range slice of a local buffer.
                    match conn.stream.read(&mut buf[..]) {
                        Ok(0) => {
                            // Peer closed. Anything already buffered or
                            // in flight is abandoned with it: the
                            // protocol is full-duplex, a client that
                            // stops listening forfeits its answers.
                            close_needed = true;
                            break;
                        }
                        Ok(n) => {
                            // panic-ok: read returned n <= buf.len().
                            conn.reader.extend(&buf[..n]);
                            read_total += n;
                            self.stats.bytes_in.fetch_add(n as u64, Ordering::Relaxed); // ordering: lone stat counter, no edges
                            conn.stats.bytes_in.fetch_add(n as u64, Ordering::Relaxed); // ordering: lone stat counter, no edges
                            if read_total >= read_chunk {
                                break; // fairness: level-triggered epoll re-reports
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(_) => {
                            close_needed = true;
                            break;
                        }
                    }
                }
            } else if bits & EPOLLRDHUP != 0 && conn.backlog() == 0 && conn.occupancy() == 0 {
                // Peer hung up while we had nothing left to say (reads
                // may be paused, so EPOLLIN would never fire again).
                close_needed = true;
            }
        }
        if close_needed {
            self.close(idx);
            return;
        }
        if bits & EPOLLOUT != 0 {
            self.flush(idx);
        }
    }

    /// Write as much backlog as the socket accepts; closes on error or
    /// when a corrupt connection finishes flushing its last response.
    fn flush(&mut self, idx: usize) {
        let mut close_needed = false;
        {
            // panic-ok: `idx` is a token minted from a conns slot index
            // at install time, always < conns.len().
            let Some(conn) = self.conns[idx].as_mut() else {
                return;
            };
            while conn.write_pos < conn.write_buf.len() {
                // panic-ok: the loop condition keeps write_pos in range.
                match conn.stream.write(&conn.write_buf[conn.write_pos..]) {
                    Ok(0) => {
                        close_needed = true;
                        break;
                    }
                    Ok(n) => {
                        conn.write_pos += n;
                        // ordering: lone stat counter, no edges
                        self.stats.bytes_out.fetch_add(n as u64, Ordering::Relaxed);
                        // ordering: lone stat counter, no edges
                        conn.stats.bytes_out.fetch_add(n as u64, Ordering::Relaxed);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        close_needed = true;
                        break;
                    }
                }
            }
            if !close_needed {
                if conn.write_pos == conn.write_buf.len() {
                    conn.write_buf.clear();
                    conn.write_pos = 0;
                    if conn.corrupt {
                        close_needed = true;
                    }
                } else if conn.write_pos > 64 * 1024 {
                    conn.write_buf.drain(..conn.write_pos);
                    conn.write_pos = 0;
                }
            }
        }
        if close_needed {
            self.close(idx);
        }
    }

    /// Poll every in-flight future of connection `idx` once.
    fn poll_conn(&mut self, idx: usize) {
        // panic-ok: `idx` is a token minted from a conns slot index
        // at install time, always < conns.len().
        let Some(conn) = self.conns[idx].as_mut() else {
            return; // stale wake for a closed slot
        };
        let waker = conn.waker.clone();
        let mut cx = Context::from_waker(&waker);
        let mut i = 0;
        while i < conn.inflight.len() {
            // panic-ok: the loop condition keeps i < inflight.len().
            match conn.inflight[i].future.poll(&mut cx) {
                Poll::Pending => i += 1,
                Poll::Ready(outcome) => {
                    let inflight = conn.inflight.swap_remove(i);
                    // ordering: advisory inflight gauge, no edges.
                    conn.stats.inflight.fetch_sub(1, Ordering::Relaxed);
                    let response = match outcome {
                        Ok(served) => {
                            // ordering: lone stat counter, no edges.
                            conn.stats.responses_ok.fetch_add(1, Ordering::Relaxed);
                            for (shard, version) in &served.replicas {
                                self.stats.replica_served.record(*shard, *version);
                            }
                            Response::Ite {
                                request_id: inflight.request_id,
                                ite: served.ite,
                            }
                        }
                        Err(e) => Response::Error {
                            request_id: inflight.request_id,
                            status: status_of(&e),
                            detail: e.to_string(),
                        },
                    };
                    self.stats.record_response(&response);
                    wire::encode_response(&response, &mut conn.write_buf);
                    // Dropping the guard right after completes the span.
                    inflight.trace.stamp(Stage::Written);
                }
            }
        }
        self.flush(idx);
    }

    /// Round-robin parse/submit sweep over all live connections.
    fn service_sweep(&mut self) {
        let n = self.conns.len();
        if n == 0 {
            return;
        }
        self.cursor = (self.cursor + 1) % n;
        for offset in 0..n {
            let idx = (self.cursor + offset) % n;
            // panic-ok: idx < n == conns.len() by the modulo above.
            match self.conns[idx].as_ref() {
                Some(conn) if conn.admin => self.service_admin(idx),
                Some(_) => self.service_conn(idx),
                None => {}
            }
        }
    }

    fn service_conn(&mut self, idx: usize) {
        let now = Instant::now();
        // 1. Shed pending requests whose admission deadline has passed —
        //    typed response, no backend work.
        {
            // panic-ok: `idx` is a token minted from a conns slot index
            // at install time, always < conns.len().
            let Some(conn) = self.conns[idx].as_mut() else {
                return;
            };
            let mut kept = VecDeque::with_capacity(conn.pending.len());
            for pending in conn.pending.drain(..) {
                if pending.deadline.is_some_and(|d| d <= now) {
                    let response = Response::Error {
                        request_id: pending.request.request_id,
                        status: Status::Deadline,
                        detail: format!(
                            "deadline of {} ms expired before inference was admitted",
                            pending.request.deadline_ms
                        ),
                    };
                    self.stats.record_response(&response);
                    // ordering: lone stat counter, no edges.
                    conn.stats.deadline_shed.fetch_add(1, Ordering::Relaxed);
                    wire::encode_response(&response, &mut conn.write_buf);
                    // `pending` drops here; its TraceGuard retires the
                    // span without a Written stamp — shed, not served.
                } else {
                    kept.push_back(pending);
                }
            }
            conn.pending = kept;
        }

        // 2. Parse frames (bounded per turn) and submit while slots
        //    remain; new futures are polled once immediately so inline
        //    completions and waker registration both happen.
        let mut budget = self.cfg.frames_per_turn;
        let mut submitted_any = false;
        loop {
            // panic-ok: `idx` is a token minted from a conns slot index
            // at install time, always < conns.len().
            let Some(conn) = self.conns[idx].as_mut() else {
                return;
            };
            if conn.corrupt {
                break;
            }
            // Drain pending into in-flight slots first (FIFO per conn).
            if conn.inflight.len() < self.cfg.max_inflight_per_conn {
                if let Some(pending) = conn.pending.pop_front() {
                    let request_id = pending.request.request_id;
                    // Last call before the inference pool: a request
                    // whose admission deadline ran out while it waited
                    // for a slot is shed, not submitted.
                    if pending.deadline.is_some_and(|d| d <= now) {
                        let response = Response::Error {
                            request_id,
                            status: Status::Deadline,
                            detail: format!(
                                "deadline of {} ms expired before inference was admitted",
                                pending.request.deadline_ms
                            ),
                        };
                        self.stats.record_response(&response);
                        // ordering: lone stat counter, no edges.
                        conn.stats.deadline_shed.fetch_add(1, Ordering::Relaxed);
                        wire::encode_response(&response, &mut conn.write_buf);
                        continue;
                    }
                    let trace = pending.trace;
                    // Stamp before the handoff: once `submit` enqueues
                    // the request, a scheduler worker may stamp the
                    // later queue/batch stages at any moment, and a
                    // Submitted stamp taken after that would run
                    // against the clock.
                    trace.stamp(Stage::Submitted);
                    match self.backend.submit(pending.request, trace.span()) {
                        Ok(future) => {
                            // ordering: advisory inflight gauge, no edges.
                            conn.stats.inflight.fetch_add(1, Ordering::Relaxed);
                            conn.inflight.push(Inflight {
                                request_id,
                                future,
                                trace,
                            });
                            submitted_any = true;
                        }
                        Err(e) => {
                            let response = Response::Error {
                                request_id,
                                status: status_of(&e),
                                detail: e.to_string(),
                            };
                            self.stats.record_response(&response);
                            wire::encode_response(&response, &mut conn.write_buf);
                            // `trace` drops here: a rejected submission
                            // retires its span unstamped past Submitted.
                        }
                    }
                    continue;
                }
            }
            // Then decode more frames while the waiting room has space.
            // Decoding past the in-flight cap is deliberate: it starts
            // the admission-deadline clock for queued requests, so a
            // flood behind a slow request is shed instead of served
            // arbitrarily late.
            if budget == 0 || conn.pending.len() >= self.cfg.max_inflight_per_conn {
                break;
            }
            match conn.reader.next_frame() {
                Ok(None) => break,
                Ok(Some(payload)) => {
                    budget -= 1;
                    match wire::decode_request(&payload) {
                        Ok(request) => self.admit(idx, request, now),
                        Err(e) => self.wire_fault(idx, 0, e),
                    }
                }
                Err(e) => {
                    self.wire_fault(idx, 0, e);
                    break;
                }
            }
        }
        if submitted_any {
            self.poll_conn(idx);
        }
        self.flush(idx);
        self.update_interest(idx);
    }

    /// Admit one decoded request into connection `idx`'s waiting room:
    /// count it, open its trace span (1-in-N sampled), and start its
    /// admission-deadline clock.
    fn admit(&mut self, idx: usize, request: Request, now: Instant) {
        // panic-ok: `idx` is a token minted from a conns slot index
        // at install time, always < conns.len().
        let Some(conn) = self.conns[idx].as_mut() else {
            return;
        };
        self.stats.requests.fetch_add(1, Ordering::Relaxed); // ordering: lone stat counter, no edges
        conn.stats.requests.fetch_add(1, Ordering::Relaxed); // ordering: lone stat counter, no edges
        let trace = TraceGuard(
            self.cfg
                .trace
                .as_ref()
                .and_then(|ring| ring.begin(conn.stats.conn_id, request.request_id)),
        );
        trace.stamp(Stage::Decoded);
        trace.stamp(Stage::AdmissionWait);
        let deadline = (request.deadline_ms > 0)
            .then(|| now + Duration::from_millis(u64::from(request.deadline_ms)));
        conn.pending.push_back(PendingSubmit {
            request,
            deadline,
            trace,
        });
    }

    /// Frame loop for admin connections: decode admin requests, answer
    /// synchronously (scrapes assemble off the hot path — admin conns
    /// never touch the backend's submit queue).
    fn service_admin(&mut self, idx: usize) {
        let mut budget = self.cfg.frames_per_turn;
        loop {
            // panic-ok: `idx` is a token minted from a conns slot index
            // at install time, always < conns.len().
            let Some(conn) = self.conns[idx].as_mut() else {
                return;
            };
            if conn.corrupt || budget == 0 {
                break;
            }
            match conn.reader.next_frame() {
                Ok(None) => break,
                Ok(Some(payload)) => {
                    budget -= 1;
                    match wire::decode_admin_request(&payload) {
                        Ok(request) => self.answer_admin(idx, request),
                        Err(e) => self.wire_fault(idx, 0, e),
                    }
                }
                Err(e) => {
                    self.wire_fault(idx, 0, e);
                    break;
                }
            }
        }
        self.flush(idx);
        self.update_interest(idx);
    }

    fn answer_admin(&mut self, idx: usize, request: AdminRequest) {
        self.stats.admin_requests.fetch_add(1, Ordering::Relaxed); // ordering: lone stat counter, no edges
        let body = match request.op {
            AdminOp::Metrics => self.render_metrics(),
            AdminOp::Health => self.health_line(),
            AdminOp::TraceDump => self.trace_dump(),
        };
        // panic-ok: `idx` is a token minted from a conns slot index
        // at install time, always < conns.len().
        let Some(conn) = self.conns[idx].as_mut() else {
            return;
        };
        let response = AdminResponse {
            request_id: request.request_id,
            status: Status::Ok,
            body,
        };
        wire::encode_admin_response(&response, &mut conn.write_buf);
    }

    /// Assemble the unified text exposition at scrape time: reactor and
    /// per-connection counters, the backend's serving metrics, and the
    /// trace ring's own accounting.
    fn render_metrics(&self) -> String {
        let mut reg = MetricsRegistry::new();
        self.stats.export_metrics(&mut reg);
        self.backend.export_metrics(&mut reg);
        if let Some(ring) = &self.cfg.trace {
            let stats = ring.stats();
            reg.counter(
                "cerl_obs_trace_seen_total",
                "Requests offered to the trace ring (sampled or not).",
                &[],
                stats.seen,
            );
            reg.counter(
                "cerl_obs_trace_sampled_total",
                "Requests that received a trace span.",
                &[],
                stats.sampled,
            );
            reg.counter(
                "cerl_obs_trace_dropped_total",
                "Sampled spans dropped because the ring wrapped onto a live span.",
                &[],
                stats.dropped,
            );
            reg.counter(
                "cerl_obs_trace_completed_total",
                "Trace spans completed.",
                &[],
                stats.completed,
            );
            reg.counter(
                "cerl_obs_trace_events_total",
                "Structured fleet events recorded.",
                &[],
                stats.events,
            );
        }
        reg.render()
    }

    /// One line per recent event and completed span (most recent
    /// first); stage columns are nanosecond offsets from `accepted`.
    fn trace_dump(&self) -> String {
        let Some(ring) = &self.cfg.trace else {
            return "tracing disabled\n".to_string();
        };
        let stats = ring.stats();
        let mut out = format!(
            "trace seen={} sampled={} dropped={} completed={} events={}\n",
            stats.seen, stats.sampled, stats.dropped, stats.completed, stats.events
        );
        for event in ring.events(64) {
            out.push_str(&format!(
                "event seq={} kind={} at={} a={} b={}\n",
                event.seq,
                event.kind.name(),
                event.at_nanos,
                event.a,
                event.b
            ));
        }
        for span in ring.dump(256) {
            out.push_str(&format!(
                "span id={} conn={} request={}",
                span.span_id, span.conn, span.request_id
            ));
            let accepted = span.stamp(Stage::Accepted).unwrap_or(0);
            for stage in Stage::ALL {
                // obs-stage: snapshot read of an already-recorded stamp.
                if let Some(at) = span.stamp(stage) {
                    out.push_str(&format!(
                        " {}=+{}",
                        stage.name(),
                        at.saturating_sub(accepted)
                    ));
                }
            }
            out.push('\n');
        }
        out
    }

    /// Answer a hostile or corrupt frame and mark the connection for
    /// close-after-flush: framing can no longer be trusted.
    fn wire_fault(&mut self, idx: usize, request_id: u64, error: WireError) {
        // panic-ok: `idx` is a token minted from a conns slot index
        // at install time, always < conns.len().
        let Some(conn) = self.conns[idx].as_mut() else {
            return;
        };
        let response = Response::Error {
            request_id,
            status: Status::MalformedRequest,
            detail: error.to_string(),
        };
        self.stats.record_response(&response);
        if conn.admin {
            // Same taxonomy, admin framing: the peer spoke admin and
            // gets its error back as an admin frame.
            wire::encode_admin_response(
                &AdminResponse {
                    request_id,
                    status: Status::MalformedRequest,
                    body: error.to_string(),
                },
                &mut conn.write_buf,
            );
        } else {
            wire::encode_response(&response, &mut conn.write_buf);
        }
        conn.corrupt = true;
        // Dropping the queue retires every pending span via its guard.
        conn.pending.clear();
    }

    /// Recompute a connection's epoll interest from its backpressure
    /// state and pending writes.
    fn update_interest(&mut self, idx: usize) {
        let mut close_needed = false;
        {
            // panic-ok: `idx` is a token minted from a conns slot index
            // at install time, always < conns.len().
            let Some(conn) = self.conns[idx].as_mut() else {
                return;
            };
            let should_pause = conn.backlog() >= self.cfg.write_high_water
                || (conn.pending.len() >= self.cfg.max_inflight_per_conn
                    && conn.reader.has_frame());
            if should_pause && !conn.paused {
                // ordering: lone stat counter, no edges.
                self.stats
                    .backpressure_pauses
                    .fetch_add(1, Ordering::Relaxed);
                // ordering: lone stat counter, no edges.
                conn.stats
                    .backpressure_pauses
                    .fetch_add(1, Ordering::Relaxed);
            }
            conn.paused = should_pause;
            let mut interest = EPOLLRDHUP;
            if !conn.paused && !conn.corrupt {
                interest |= EPOLLIN;
            }
            if conn.backlog() > 0 {
                interest |= EPOLLOUT;
            }
            if interest != conn.interest {
                let token = idx as u64 + TOKEN_CONN0;
                if self
                    .epoll
                    .modify(conn.stream.as_raw_fd(), interest, token)
                    .is_ok()
                {
                    conn.interest = interest;
                } else {
                    close_needed = true;
                }
            }
        }
        if close_needed {
            self.close(idx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{NetClient, NetError};
    use cerl_core::config::CerlConfig;
    use cerl_core::engine::CerlEngineBuilder;
    use cerl_core::serving::ServingEngine;
    use cerl_data::{DomainStream, SyntheticConfig, SyntheticGenerator};
    use cerl_serve::BatchConfig;

    fn quick_cfg() -> CerlConfig {
        let mut cfg = CerlConfig::quick_test();
        cfg.train.epochs = 4;
        cfg.memory_size = 80;
        cfg
    }

    fn quick_stream() -> DomainStream {
        let gen = SyntheticGenerator::new(
            SyntheticConfig {
                n_units: 300,
                ..SyntheticConfig::small()
            },
            29,
        );
        DomainStream::synthetic(&gen, 1, 0, 29)
    }

    fn scheduler_server(stream: &DomainStream) -> (NetServer, Arc<ServingEngine>) {
        let mut engine = CerlEngineBuilder::new(quick_cfg()).seed(3).build().unwrap();
        engine
            .observe(&stream.domain(0).train, &stream.domain(0).val)
            .unwrap();
        let serving = Arc::new(ServingEngine::new(engine));
        let scheduler = Arc::new(BatchScheduler::new(
            Arc::clone(&serving),
            BatchConfig {
                max_wait: Duration::from_millis(2),
                ..BatchConfig::default()
            },
        ));
        let server = NetServer::bind(
            "127.0.0.1:0",
            NetBackend::Scheduler(scheduler),
            NetServerConfig::default(),
        )
        .unwrap();
        (server, serving)
    }

    #[test]
    fn serves_predictions_bitwise_identical_to_in_process() {
        let stream = quick_stream();
        let (server, serving) = scheduler_server(&stream);
        let x = stream.domain(0).test.x.slice_rows(0, 6);
        let reference = serving.predict_ite(&x).unwrap();

        let mut client = NetClient::connect(server.local_addr()).unwrap();
        let tags = vec![0u64; x.rows()];
        for _ in 0..3 {
            let ite = client.predict(&tags, &x, None).unwrap();
            assert_eq!(ite.len(), reference.len());
            for (a, b) in ite.iter().zip(&reference) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }

        let stats = server.shutdown().unwrap();
        assert_eq!(stats.requests, 3);
        assert_eq!(stats.responses_ok, 3);
        assert_eq!(stats.rejected_serve, 0);
        assert_eq!(stats.accepted, 1);
        // Single-engine backend: every response attributes to seat 0 at
        // the engine's published version.
        assert_eq!(
            stats.replica_served(),
            [ReplicaServed {
                replica: Some((0, 1)),
                responses: 3
            }]
        );
    }

    #[test]
    fn replicated_router_attributes_responses_per_replica_version() {
        let stream = quick_stream();
        let mut engine = CerlEngineBuilder::new(quick_cfg()).seed(3).build().unwrap();
        engine
            .observe(&stream.domain(0).train, &stream.domain(0).val)
            .unwrap();
        let x = stream.domain(0).test.x.slice_rows(0, 4);
        let reference = engine.predict_ite(&x).unwrap();

        let map = cerl_core::snapshot::ShardMap::from_replicas(2, &[(0, vec![0, 1])]).unwrap();
        let router = Arc::new(ShardRouter::new(vec![engine.clone(), engine], map).unwrap());
        router.set_route_policy(Arc::new(cerl_serve::RoundRobin::new()));
        let server = NetServer::bind(
            "127.0.0.1:0",
            NetBackend::Router(Arc::clone(&router)),
            NetServerConfig {
                admin_bind: Some("127.0.0.1:0".into()),
                ..NetServerConfig::default()
            },
        )
        .unwrap();

        let mut client = NetClient::connect(server.local_addr()).unwrap();
        let tags = vec![0u64; x.rows()];
        for _ in 0..6 {
            let ite = client.predict(&tags, &x, None).unwrap();
            for (a, b) in ite.iter().zip(&reference) {
                assert_eq!(a.to_bits(), b.to_bits(), "replicas must answer bitwise");
            }
        }

        let mut admin = NetClient::connect(server.admin_addr().unwrap()).unwrap();
        let metrics = admin.scrape_metrics().unwrap();
        let stats = server.shutdown().unwrap();
        // Round-robin alternates the domain between its two replicas:
        // six serial single-domain requests split 3/3, both at the
        // engines' published version 1 — the wire never carried any of
        // this, yet every response is attributed.
        assert_eq!(
            stats.replica_served(),
            [
                ReplicaServed {
                    replica: Some((0, 1)),
                    responses: 3
                },
                ReplicaServed {
                    replica: Some((1, 1)),
                    responses: 3
                },
            ]
        );
        for row in [
            r#"cerl_net_replica_responses_total{shard="0",version="1"} 3"#,
            r#"cerl_net_replica_responses_total{shard="1",version="1"} 3"#,
        ] {
            assert!(metrics.contains(row), "missing `{row}` in:\n{metrics}");
        }
    }

    #[test]
    fn hostile_frames_get_a_typed_answer_and_a_close_without_hurting_others() {
        let stream = quick_stream();
        let (server, serving) = scheduler_server(&stream);
        let x = stream.domain(0).test.x.slice_rows(0, 4);
        let reference = serving.predict_ite(&x).unwrap();
        let tags = vec![0u64; x.rows()];

        let mut healthy = NetClient::connect(server.local_addr()).unwrap();
        let mut hostile = NetClient::connect(server.local_addr()).unwrap();

        // A frame whose payload is garbage: typed MalformedRequest, then
        // the server hangs up on the corrupt stream.
        let mut frame = Vec::new();
        frame.extend_from_slice(&8u32.to_le_bytes());
        frame.extend_from_slice(&[0xFF; 8]);
        hostile.send_raw(&frame).unwrap();
        match hostile.recv_response().unwrap() {
            Response::Error { status, .. } => assert_eq!(status, Status::MalformedRequest),
            other => panic!("expected error response, got {other:?}"),
        }
        match hostile.recv_response() {
            Err(NetError::Io(e)) => assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof),
            other => panic!("expected EOF after protocol fault, got {other:?}"),
        }

        // The healthy connection is completely unaffected.
        let ite = healthy.predict(&tags, &x, None).unwrap();
        assert_eq!(ite, reference);

        let stats = server.shutdown().unwrap();
        assert_eq!(stats.malformed, 1);
        assert_eq!(stats.rejected_client, 1);
        assert_eq!(stats.rejected_serve, 0);
        assert_eq!(stats.responses_ok, 1);
    }

    #[test]
    fn admin_plane_and_udp_probe_report_live_state() {
        let stream = quick_stream();
        let mut engine = CerlEngineBuilder::new(quick_cfg()).seed(3).build().unwrap();
        engine
            .observe(&stream.domain(0).train, &stream.domain(0).val)
            .unwrap();
        let serving = Arc::new(ServingEngine::new(engine));
        let scheduler = Arc::new(BatchScheduler::new(
            Arc::clone(&serving),
            BatchConfig {
                max_wait: Duration::from_millis(2),
                ..BatchConfig::default()
            },
        ));
        let ring = TraceRing::new(64, 1);
        let server = NetServer::bind(
            "127.0.0.1:0",
            NetBackend::Scheduler(scheduler),
            NetServerConfig {
                admin_bind: Some("127.0.0.1:0".into()),
                trace: Some(Arc::clone(&ring)),
                ..NetServerConfig::default()
            },
        )
        .unwrap();
        let admin_addr = server.admin_addr().unwrap();

        let mut client = NetClient::connect(server.local_addr()).unwrap();
        let x = stream.domain(0).test.x.slice_rows(0, 4);
        let tags = vec![0u64; x.rows()];
        for _ in 0..5 {
            client.predict(&tags, &x, None).unwrap();
        }

        // The UDP probe answers any datagram without a TCP handshake.
        let udp = UdpSocket::bind("127.0.0.1:0").unwrap();
        udp.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        udp.send_to(b"ping", server.local_addr()).unwrap();
        let mut buf = [0u8; 64];
        let (n, _) = udp.recv_from(&mut buf).unwrap();
        let line = std::str::from_utf8(&buf[..n]).unwrap();
        assert!(line.starts_with("ok:1:"), "unexpected health line {line:?}");

        let mut admin = NetClient::connect(admin_addr).unwrap();
        let health = admin.health().unwrap();
        assert!(
            health.starts_with("ok:1:"),
            "unexpected health body {health:?}"
        );

        let metrics = admin.scrape_metrics().unwrap();
        assert!(
            metrics.contains("cerl_net_responses_ok_total 5"),
            "missing net counters:\n{metrics}"
        );
        assert!(
            metrics.contains("cerl_serve_requests_total"),
            "missing backend serving metrics:\n{metrics}"
        );
        assert!(
            metrics.contains("cerl_net_conn_requests_total{conn="),
            "missing per-connection rows:\n{metrics}"
        );
        assert!(
            metrics.contains("cerl_obs_trace_sampled_total 5"),
            "missing trace accounting:\n{metrics}"
        );
        assert!(
            metrics.contains("# TYPE cerl_serve_queue_wait_seconds histogram"),
            "missing latency histogram:\n{metrics}"
        );

        // Every request was sampled (1-in-1) and every span completed
        // with monotone stamps through the written stage.
        let spans = ring.dump(16);
        assert_eq!(spans.len(), 5);
        for span in &spans {
            assert!(span.is_monotone());
            assert!(span.stamp(cerl_obs::Stage::Written).is_some());
        }
        let dump = admin.trace_dump().unwrap();
        assert!(dump.contains("span id="), "no spans in dump:\n{dump}");

        // A predict frame on the admin port is rejected as malformed
        // without touching the backend.
        let mut confused = NetClient::connect(admin_addr).unwrap();
        let mut frame = Vec::new();
        wire::encode_request(
            &Request {
                request_id: 9,
                deadline_ms: 0,
                cols: 1,
                tags: vec![0],
                covariates: vec![1.0],
            },
            &mut frame,
        );
        confused.send_raw(&frame).unwrap();
        let AdminResponse { status, .. } = confused.recv_admin_response().unwrap();
        assert_eq!(status, Status::MalformedRequest);

        let stats = server.shutdown().unwrap();
        assert_eq!(stats.requests, 5);
        assert_eq!(stats.responses_ok, 5);
        assert_eq!(stats.admin_requests, 3);
        assert!(stats.peak_connections >= 3, "{stats:?}");
        assert_eq!(stats.malformed, 1);
    }

    #[test]
    fn rejects_connections_past_the_limit() {
        let stream = quick_stream();
        let mut engine = CerlEngineBuilder::new(quick_cfg()).seed(3).build().unwrap();
        engine
            .observe(&stream.domain(0).train, &stream.domain(0).val)
            .unwrap();
        let serving = Arc::new(ServingEngine::new(engine));
        let scheduler = Arc::new(BatchScheduler::with_defaults(serving));
        let server = NetServer::bind(
            "127.0.0.1:0",
            NetBackend::Scheduler(scheduler),
            NetServerConfig {
                max_connections: 2,
                ..NetServerConfig::default()
            },
        )
        .unwrap();

        let _a = NetClient::connect(server.local_addr()).unwrap();
        let _b = NetClient::connect(server.local_addr()).unwrap();
        let mut c = NetClient::connect(server.local_addr()).unwrap();
        // The third connection is accepted then immediately closed.
        c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        match c.recv_response() {
            Err(NetError::Io(e)) => assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof),
            other => panic!("expected over-limit close, got {other:?}"),
        }
        let stats = server.shutdown().unwrap();
        assert_eq!(stats.accepted, 3);
        assert!(stats.closed >= 1);
    }
}
