//! Minimal blocking client for the wire protocol.
//!
//! [`NetClient`] is the reference peer the integration tests, the
//! bench probe, and the examples use: one synchronous connection that
//! can pipeline many requests before reading any response. It is
//! deliberately plain `std::net` — the interesting concurrency lives
//! on the server's reactor, and a thousand of these across a handful
//! of threads is exactly the hostile herd the stress tests need.

use crate::wire::{
    self, AdminOp, AdminRequest, AdminResponse, FrameReader, Request, Response, Status, WireError,
};
use cerl_math::Matrix;
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Client-side failures.
#[derive(Debug)]
pub enum NetError {
    /// Socket-level failure (connect, read, write, or an EOF before a
    /// complete response frame).
    Io(io::Error),
    /// The server's bytes did not decode as a response frame.
    Wire(WireError),
    /// The server answered with an error status.
    Remote {
        /// Status byte from the response.
        status: Status,
        /// Server-provided human-readable detail.
        detail: String,
    },
    /// A response arrived for a different request id than the one a
    /// one-shot [`NetClient::predict`] call was waiting on (mixing
    /// `predict` with pipelined [`NetClient::send_request`]s).
    IdMismatch {
        /// Request id `predict` sent.
        expected: u64,
        /// Request id the response carried.
        found: u64,
    },
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "socket error: {e}"),
            NetError::Wire(e) => write!(f, "protocol error: {e}"),
            NetError::Remote { status, detail } => {
                write!(f, "server rejected request ({status:?}): {detail}")
            }
            NetError::IdMismatch { expected, found } => {
                write!(
                    f,
                    "response for request {found} while waiting on {expected}"
                )
            }
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            NetError::Wire(e) => Some(e),
            NetError::Remote { .. } | NetError::IdMismatch { .. } => None,
        }
    }
}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        NetError::Wire(e)
    }
}

/// One blocking connection to a [`NetServer`](crate::NetServer).
pub struct NetClient {
    stream: TcpStream,
    reader: FrameReader,
    next_id: u64,
}

impl NetClient {
    /// Connect to a running server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            reader: FrameReader::new(),
            next_id: 1,
        })
    }

    /// Cap how long [`recv_response`](Self::recv_response) blocks on
    /// the socket (`None` = forever).
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Write one request frame without waiting for the answer; returns
    /// the request id to correlate the eventual response. Call
    /// repeatedly to pipeline.
    pub fn send_request(
        &mut self,
        tags: &[u64],
        x: &Matrix,
        deadline: Option<Duration>,
    ) -> io::Result<u64> {
        let request_id = self.next_id;
        self.next_id += 1;
        let request = Request {
            request_id,
            deadline_ms: deadline.map_or(0, |d| d.as_millis().clamp(1, u32::MAX as u128) as u32),
            cols: x.cols() as u32,
            tags: tags.to_vec(),
            covariates: x.as_slice().to_vec(),
        };
        let mut frame = Vec::new();
        wire::encode_request(&request, &mut frame);
        self.stream.write_all(&frame)?;
        Ok(request_id)
    }

    /// Write raw bytes straight onto the socket — the hostile-client
    /// hook the robustness tests use to send truncated or corrupt
    /// frames.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)
    }

    /// Block until the next complete response frame arrives and decode
    /// it. Responses to pipelined requests arrive in submission order
    /// per connection unless some were shed by deadline first; match on
    /// [`Response::request_id`] when in doubt.
    pub fn recv_response(&mut self) -> Result<Response, NetError> {
        let mut buf = [0u8; 16 * 1024];
        loop {
            if let Some(payload) = self.reader.next_frame()? {
                return Ok(wire::decode_response(&payload)?);
            }
            let n = self.stream.read(&mut buf)?;
            if n == 0 {
                return Err(NetError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection mid-response",
                )));
            }
            // panic-ok: read(2) returned n <= buf.len().
            self.reader.extend(&buf[..n]);
        }
    }

    /// Send one admin frame and block for its response body. Only
    /// meaningful on a connection to the server's **admin** listener
    /// ([`NetServer::admin_addr`](crate::NetServer::admin_addr)); the
    /// serve listener rejects admin frames as malformed.
    pub fn admin(&mut self, op: AdminOp) -> Result<String, NetError> {
        let request_id = self.next_id;
        self.next_id += 1;
        let mut frame = Vec::new();
        wire::encode_admin_request(&AdminRequest { request_id, op }, &mut frame);
        self.stream.write_all(&frame)?;
        let response = self.recv_admin_response()?;
        if response.status == Status::Ok && response.request_id == request_id {
            Ok(response.body)
        } else if response.request_id != request_id {
            Err(NetError::IdMismatch {
                expected: request_id,
                found: response.request_id,
            })
        } else {
            Err(NetError::Remote {
                status: response.status,
                detail: response.body,
            })
        }
    }

    /// Scrape the unified metrics exposition ([`AdminOp::Metrics`]).
    pub fn scrape_metrics(&mut self) -> Result<String, NetError> {
        self.admin(AdminOp::Metrics)
    }

    /// Fetch the `ok:<versions>:<inflight>` health line
    /// ([`AdminOp::Health`]).
    pub fn health(&mut self) -> Result<String, NetError> {
        self.admin(AdminOp::Health)
    }

    /// Fetch recently completed spans and fleet events
    /// ([`AdminOp::TraceDump`]).
    pub fn trace_dump(&mut self) -> Result<String, NetError> {
        self.admin(AdminOp::TraceDump)
    }

    /// Block until the next complete **admin** response frame arrives.
    pub fn recv_admin_response(&mut self) -> Result<AdminResponse, NetError> {
        let mut buf = [0u8; 16 * 1024];
        loop {
            if let Some(payload) = self.reader.next_frame()? {
                return Ok(wire::decode_admin_response(&payload)?);
            }
            let n = self.stream.read(&mut buf)?;
            if n == 0 {
                return Err(NetError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection mid-response",
                )));
            }
            // panic-ok: read(2) returned n <= buf.len().
            self.reader.extend(&buf[..n]);
        }
    }

    /// Send one request and block for its prediction — the one-shot
    /// convenience path. `tags` carries one domain id per row of `x`.
    pub fn predict(
        &mut self,
        tags: &[u64],
        x: &Matrix,
        deadline: Option<Duration>,
    ) -> Result<Vec<f64>, NetError> {
        let sent = self.send_request(tags, x, deadline)?;
        let response = self.recv_response()?;
        match response {
            Response::Ite { request_id, ite } if request_id == sent => Ok(ite),
            Response::Ite { request_id, .. } => Err(NetError::IdMismatch {
                expected: sent,
                found: request_id,
            }),
            Response::Error { status, detail, .. } => Err(NetError::Remote { status, detail }),
        }
    }
}
