//! Fixture: an atomic access with no `// ordering:` comment naming the
//! happens-before edge. Expected finding: `atomic-ordering`.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(c: &AtomicU64) -> u64 {
    c.fetch_add(1, Ordering::Relaxed)
}
