//! Fixture: a fault-classified enum whose classifier never mentions two
//! of its variants. Expected findings: `taxonomy` (Pass and Skip).

pub enum Verdict {
    Pass,
    Fail,
    Skip,
}

impl Verdict {
    pub fn is_client_fault(&self) -> bool {
        matches!(self, Verdict::Fail)
    }
}
