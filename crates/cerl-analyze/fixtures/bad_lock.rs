//! Fixture: a mutex guard held across a channel `recv()`. Expected
//! finding: `lock-blocking`.

use std::sync::mpsc::Receiver;
use std::sync::Mutex;

pub fn drain(state: &Mutex<Vec<u64>>, rx: &Receiver<u64>) {
    // panic-ok: fixture; poisoning is unrecoverable here.
    let mut guard = state.lock().unwrap();
    while let Ok(v) = rx.recv() {
        guard.push(v);
    }
}
