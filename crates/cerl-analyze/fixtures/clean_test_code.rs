//! Fixture: unannotated atomics, unwraps, asserts, and indexing — all
//! inside `#[cfg(test)]` code, which every rule exempts.
//! Expected findings: none.

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn counters_work() {
        let c = AtomicU64::new(0);
        c.fetch_add(1, Ordering::SeqCst);
        assert_eq!(c.load(Ordering::SeqCst), 1);
        let v = vec![1u64];
        assert!(v.first().copied().unwrap() == v[0]);
    }
}
