//! Fixture: an `unsafe` block with no `// SAFETY:` justification.
//! Expected finding: `unsafe-comment`.

pub fn peek(v: &[u8]) -> u8 {
    unsafe { *v.as_ptr() }
}
