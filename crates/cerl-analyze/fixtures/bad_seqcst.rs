//! Fixture: `SeqCst` on a hot-path module. The `// ordering:` comment
//! satisfies the audit rule, but `seqcst-hot-path` is not waivable —
//! a weaker ordering (or a written argument for why total order is
//! required) must land in review, not in an annotation.
//! Expected finding: `seqcst-hot-path`.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn read(c: &AtomicU64) -> u64 {
    // ordering: annotated, but SeqCst is still flagged on hot paths.
    c.load(Ordering::SeqCst)
}
