//! Dense-kernel idiom the panic-path rule must accept: iterator
//! traversal needs no annotation, and the one const-bounded tile index
//! states its obligation with `// panic-ok:`.

pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

pub fn tile_sum(acc: &[[f64; 4]; 2]) -> f64 {
    let mut total = 0.0;
    for r in 0..2 {
        // panic-ok: r < 2 — const-bounded accumulator tile.
        total += acc[r].iter().sum::<f64>();
    }
    total
}
