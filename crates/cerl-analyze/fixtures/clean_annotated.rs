//! Fixture: every rule's happy path in one file — annotated unsafe,
//! justified atomics, waived panics, guard dropped before blocking,
//! writer-lock-then-pointer-lock order, exhaustive classifier.
//! Expected findings: none.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::Receiver;
use std::sync::{Mutex, RwLock};

pub struct Published {
    writer_lock: Mutex<()>,
    current: RwLock<u64>,
    counter: AtomicU64,
}

pub enum Verdict {
    Pass,
    Fail,
}

impl Verdict {
    pub fn is_client_fault(&self) -> bool {
        match self {
            Verdict::Pass => false,
            Verdict::Fail => true,
        }
    }
}

impl Published {
    pub fn publish(&self, v: u64) {
        // panic-ok: poisoning is unrecoverable in this fixture.
        let _writer = self.writer_lock.lock().unwrap();
        // lock-order: `writer_lock` above strictly precedes this
        // pointer-lock write.
        // panic-ok: poisoning is unrecoverable in this fixture.
        let mut cur = self.current.write().unwrap();
        *cur = v;
        self.counter.fetch_add(1, Ordering::Relaxed); // ordering: lone stat counter, no edges
    }

    pub fn drain(&self, rx: &Receiver<u64>) {
        {
            // panic-ok: poisoning is unrecoverable in this fixture.
            let _g = self.writer_lock.lock().unwrap();
        }
        while rx.recv().is_ok() {}
    }

    pub fn peek(v: &[u8]) -> u8 {
        // SAFETY: as_ptr() of a non-empty slice is valid for one read;
        // the caller-visible contract requires `!v.is_empty()`.
        unsafe { *v.as_ptr() }
    }
}
