//! Fixture: the published-pointer lock (`current`) written without the
//! writer lock held first. Expected finding: `lock-order`.

use std::sync::RwLock;

pub struct Published {
    current: RwLock<u64>,
}

impl Published {
    pub fn publish(&self, v: u64) {
        // panic-ok: fixture; poisoning is unrecoverable here.
        let mut cur = self.current.write().unwrap();
        *cur = v;
    }
}
