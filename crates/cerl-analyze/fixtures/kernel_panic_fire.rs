//! Dense-kernel idiom with an unannotated in-bounds index: the
//! `panic-path` rule must fire — "the index cannot overflow" is exactly
//! the claim the `// panic-ok:` annotation exists to state.

pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = 0.0;
    for i in 0..a.len().min(b.len()) {
        acc += a[i] * b[i];
    }
    acc
}
