//! Fixture: `.unwrap()` on the serving path with no `// panic-ok:`
//! reason. Expected finding: `panic-path`.

pub fn first(v: &[u64]) -> u64 {
    v.first().copied().unwrap()
}
