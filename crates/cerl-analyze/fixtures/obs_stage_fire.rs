//! Fixture: trace stamps out of lifecycle order plus a stamp without a
//! literal stage — `obs-stage` must fire (and nothing else).

pub fn serve_one(span: &TraceSpan) {
    span.stamp(Stage::Inference);
    span.stamp(Stage::Decoded);
}

pub fn forward(span: &TraceSpan, stage: Stage) {
    span.stamp(stage);
}
