//! Fixture: a fault classifier hiding behind a wildcard arm — adding a
//! variant would silently classify it instead of forcing a decision.
//! Expected finding: `taxonomy` (wildcard; `Ok` also unmapped).

pub enum Code {
    Ok,
    Err,
}

impl Code {
    pub fn is_client_fault(&self) -> bool {
        match self {
            Code::Err => true,
            _ => false,
        }
    }
}
