//! Fixture: lifecycle-ordered stamps and a waived generic forwarder —
//! no rule fires.

pub fn admit(span: &TraceSpan) {
    span.stamp(Stage::Decoded);
    span.stamp(Stage::AdmissionWait);
}

pub fn gather(span: &TraceSpan) {
    span.stamp(Stage::Gathered);
}

pub fn forward(span: &TraceSpan, stage: Stage) {
    // obs-stage: generic forwarder, stage named at call sites.
    span.stamp(stage);
}
