//! The invariant rules. Each rule walks a lexed [`SourceFile`] and
//! emits [`Finding`]s; annotation markers waive a site only where the
//! rule says so.
//!
//! Rule ids (stable — CI and tests match on them):
//!
//! | id               | invariant                                                        |
//! |------------------|------------------------------------------------------------------|
//! | `unsafe-comment` | every `unsafe` carries a `// SAFETY:` justification              |
//! | `atomic-ordering`| every `Ordering::*` carries an `// ordering:` happens-before note|
//! | `seqcst-hot-path`| no `SeqCst` at all in hot-path modules (not waivable)            |
//! | `panic-path`     | no panicking construct on the serving path sans `// panic-ok:`   |
//! | `lock-blocking`  | no lock guard held across a blocking call sans `// lock-ok:`     |
//! | `lock-order`     | `current.write()` only after `writer_lock` (or `// lock-order:`) |
//! | `taxonomy`       | every error/status variant classified & decodable                |
//! | `obs-stage`      | `.stamp(` sites name a literal `Stage::<variant>`, in lifecycle  |
//! |                  | order per function (generic forwarders waive `// obs-stage:`)    |

use crate::lexer::{has_annotation, statement_start, SourceFile};
use crate::Finding;

/// Which rule families apply to a file. The workspace walk derives this
/// from the path; fixture tests construct it directly.
#[derive(Debug, Clone, Copy)]
pub struct Scope {
    /// `unsafe-comment` (applies to every scanned file).
    pub unsafe_hygiene: bool,
    /// `atomic-ordering`.
    pub atomics: bool,
    /// `seqcst-hot-path` — the file is a hot-path module.
    pub hot_path: bool,
    /// `panic-path` — the file is on the serving path.
    pub panic_free: bool,
    /// `lock-blocking`.
    pub locks: bool,
    /// `lock-order` — the file documents the writer-lock-before-
    /// pointer-lock discipline (`cerl-core/src/serving.rs`).
    pub lock_order: bool,
    /// `taxonomy` — enum/classifier exhaustiveness.
    pub taxonomy: bool,
    /// `obs-stage` — trace stamp call sites name their stage literally
    /// and in request-lifecycle order.
    pub obs_stage: bool,
}

impl Scope {
    /// Every rule on — used for fixtures and explicit file arguments.
    pub fn all() -> Self {
        Scope {
            unsafe_hygiene: true,
            atomics: true,
            hot_path: true,
            panic_free: true,
            locks: true,
            lock_order: true,
            taxonomy: true,
            obs_stage: true,
        }
    }
}

/// Run every in-scope rule over one file.
pub fn analyze(file: &SourceFile, scope: &Scope) -> Vec<Finding> {
    let mut out = Vec::new();
    if scope.unsafe_hygiene {
        check_unsafe(file, &mut out);
    }
    if scope.atomics || scope.hot_path {
        check_atomics(file, scope, &mut out);
    }
    if scope.panic_free {
        check_panics(file, &mut out);
    }
    if scope.locks {
        check_lock_blocking(file, &mut out);
    }
    if scope.lock_order {
        check_lock_order(file, &mut out);
    }
    if scope.taxonomy {
        check_taxonomy(file, &mut out);
    }
    if scope.obs_stage {
        check_obs_stage(file, &mut out);
    }
    out
}

fn finding(file: &SourceFile, line: usize, rule: &'static str, message: String) -> Finding {
    Finding {
        file: file.rel_path.clone(),
        line: line + 1,
        rule,
        message,
    }
}

/// Word-boundary search: every index where `word` occurs in `code` not
/// flanked by identifier characters.
fn word_positions(code: &str, word: &str) -> Vec<usize> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = code[from..].find(word) {
        let at = from + pos;
        let before_ok = at == 0 || {
            let b = bytes[at - 1];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        let end = at + word.len();
        let after_ok = end >= bytes.len() || {
            let b = bytes[end];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        if before_ok && after_ok {
            out.push(at);
        }
        from = at + word.len();
    }
    out
}

// ---------------------------------------------------------------- unsafe

fn check_unsafe(file: &SourceFile, out: &mut Vec<Finding>) {
    for (i, line) in file.lines.iter().enumerate() {
        if line.in_test || word_positions(&line.code, "unsafe").is_empty() {
            continue;
        }
        if !has_annotation(file, i, "SAFETY:") {
            out.push(finding(
                file,
                i,
                "unsafe-comment",
                "`unsafe` without a `// SAFETY:` justification".into(),
            ));
        }
    }
}

// --------------------------------------------------------------- atomics

const ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

fn check_atomics(file: &SourceFile, scope: &Scope, out: &mut Vec<Finding>) {
    for (i, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let mut used: Vec<&str> = Vec::new();
        for ord in ORDERINGS {
            let qualified = format!("Ordering::{ord}");
            if line.code.contains(&qualified) {
                used.push(ord);
            }
        }
        if used.is_empty() {
            continue;
        }
        if scope.hot_path && used.contains(&"SeqCst") {
            out.push(finding(
                file,
                i,
                "seqcst-hot-path",
                "Ordering::SeqCst in a hot-path module; use Acquire/Release (or AcqRel) \
                 or move the sequentially-consistent logic off the serving path"
                    .into(),
            ));
        }
        if scope.atomics && !has_annotation(file, i, "ordering:") {
            out.push(finding(
                file,
                i,
                "atomic-ordering",
                format!(
                    "atomic Ordering::{} without an `// ordering:` comment naming the \
                     happens-before edge it relies on",
                    used.join("/")
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------- panics

const PANIC_MACROS: [&str; 7] = [
    "panic!",
    "unreachable!",
    "todo!",
    "unimplemented!",
    "assert!",
    "assert_eq!",
    "assert_ne!",
];

fn check_panics(file: &SourceFile, out: &mut Vec<Finding>) {
    for (i, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = &line.code;
        let mut what: Option<String> = None;
        if code.contains(".unwrap()") {
            what = Some(".unwrap()".into());
        } else if code.contains(".expect(") {
            what = Some(".expect(...)".into());
        } else {
            for m in PANIC_MACROS {
                // word_positions on the macro name (sans `!`) keeps
                // `debug_assert!` from matching `assert!`.
                let name = &m[..m.len() - 1];
                let hit = word_positions(code, name)
                    .into_iter()
                    .any(|p| code[p + name.len()..].starts_with('!'));
                if hit {
                    what = Some(m.to_string());
                    break;
                }
            }
        }
        if what.is_none() && has_indexing(code) {
            what = Some("slice/array indexing".into());
        }
        if let Some(w) = what {
            if !has_annotation(file, i, "panic-ok:") {
                out.push(finding(
                    file,
                    i,
                    "panic-path",
                    format!("panicking construct {w} on the serving path without a `// panic-ok:` reason"),
                ));
            }
        }
    }
}

/// `expr[` — a `[` *immediately* preceded (rustfmt leaves no space
/// before an index bracket) by something that ends an expression: an
/// identifier, `)`, or `]`. Types (`&[u8]`, `Vec<[f64; 4]>`), macros
/// (`vec![`), attributes (`#[`) and array literals after keywords
/// (`for x in [a, b]`) all fail that test.
fn has_indexing(code: &str) -> bool {
    let chars: Vec<char> = code.chars().collect();
    for (j, &c) in chars.iter().enumerate() {
        if c != '[' || j == 0 {
            continue;
        }
        let p = chars[j - 1];
        if !(p.is_alphanumeric() || p == '_' || p == ')' || p == ']') {
            continue;
        }
        // Walk back over the identifier: a bare keyword before `[` is
        // an array-literal position, not an indexed expression.
        let mut s = j;
        while s > 0 && (chars[s - 1].is_alphanumeric() || chars[s - 1] == '_') {
            s -= 1;
        }
        let word: String = chars[s..j].iter().collect();
        if matches!(
            word.as_str(),
            "in" | "return" | "break" | "if" | "else" | "match" | "move" | "mut" | "ref" | "as"
        ) {
            continue;
        }
        return true;
    }
    false
}

// ----------------------------------------------------------------- locks

const LOCK_ACQUIRE: [&str; 3] = [".lock()", ".read()", ".write()"];
const BLOCKING: [&str; 6] = [
    ".recv()",
    ".recv_timeout(",
    ".submit(",
    ".accept(",
    "thread::sleep",
    ".join()",
];

fn check_lock_blocking(file: &SourceFile, out: &mut Vec<Finding>) {
    struct Guard {
        name: String,
        depth: usize,
        line: usize,
    }
    let mut active: Vec<Guard> = Vec::new();
    for (i, line) in file.lines.iter().enumerate() {
        if line.in_test {
            active.clear();
            continue;
        }
        // Scope exit: drop guards bound deeper than the current line.
        active.retain(|g| g.depth <= line.depth);
        // Explicit `drop(guard)`.
        active.retain(|g| {
            !word_positions(&line.code, "drop")
                .iter()
                .any(|&p| line.code[p..].starts_with(&format!("drop({})", g.name)))
        });
        if !active.is_empty() {
            for b in BLOCKING {
                if line.code.contains(b) && !has_annotation(file, i, "lock-ok:") {
                    let g = &active[active.len() - 1];
                    out.push(finding(
                        file,
                        i,
                        "lock-blocking",
                        format!(
                            "lock guard `{}` (acquired line {}) held across blocking call `{}`; \
                             drop the guard first or waive with `// lock-ok:`",
                            g.name,
                            g.line + 1,
                            b.trim_matches(|c| c == '.' || c == '(')
                        ),
                    ));
                }
            }
        }
        // New guard binding: `let [mut] name = ... .lock()/.read()/.write()`
        // — the acquisition may sit on a continuation line of a
        // rustfmt-wrapped statement, so resolve the statement start.
        if LOCK_ACQUIRE.iter().any(|a| line.code.contains(a)) {
            let s = statement_start(file, i);
            if active.last().map(|g| g.line) == Some(s) {
                continue; // already tracked via an earlier line of this statement
            }
            let t = file.lines[s].code.trim_start();
            if let Some(rest) = t.strip_prefix("let ") {
                let rest = rest.trim_start();
                let rest = rest.strip_prefix("mut ").unwrap_or(rest);
                let name: String = rest
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                if !name.is_empty() && name != "_" {
                    active.push(Guard {
                        name,
                        depth: file.lines[s].depth,
                        line: s,
                    });
                }
            }
        }
    }
}

fn check_lock_order(file: &SourceFile, out: &mut Vec<Finding>) {
    let spans = fn_spans(file);
    for (i, line) in file.lines.iter().enumerate() {
        if line.in_test || !line.code.contains(".current.write()") {
            continue;
        }
        if has_annotation(file, i, "lock-order:") {
            continue;
        }
        let Some(&(start, _end, ref name)) = spans.iter().find(|&&(s, e, _)| s <= i && i <= e)
        else {
            continue;
        };
        let precedes = file.lines[start..i]
            .iter()
            .any(|l| l.code.contains("writer_lock"));
        let fn_documented = (start..=i).any(|l| has_annotation(file, l, "lock-order:"));
        if !precedes && !fn_documented {
            out.push(finding(
                file,
                i,
                "lock-order",
                format!(
                    "`current.write()` in `fn {name}` without a prior `writer_lock` \
                     acquisition; take the writer lock first, or document the caller's \
                     obligation with `// lock-order:`"
                ),
            ));
        }
    }
}

/// `(start_line, end_line, name)` spans of non-test `fn` items,
/// resolved against the lexer's per-line brace depths.
fn fn_spans(file: &SourceFile) -> Vec<(usize, usize, String)> {
    let mut spans = Vec::new();
    let n = file.lines.len();
    for i in 0..n {
        let line = &file.lines[i];
        if line.in_test {
            continue;
        }
        let Some(name) = fn_name_on(&line.code) else {
            continue;
        };
        let d = line.depth;
        // Walk forward to the body's `{`; a `;` first means a bodyless
        // declaration (extern block / trait method).
        let mut b = i;
        let mut has_body = false;
        while b < n {
            let code = &file.lines[b].code;
            if code.contains('{') {
                has_body = true;
                break;
            }
            if code.contains(';') {
                break;
            }
            b += 1;
        }
        if !has_body {
            continue;
        }
        let mut j = b + 1;
        while j < n && file.lines[j].depth > d {
            j += 1;
        }
        spans.push((i, j.saturating_sub(1).max(b), name));
    }
    spans
}

/// The name of the `fn` item declared on this line, if any.
fn fn_name_on(code: &str) -> Option<String> {
    for p in word_positions(code, "fn") {
        let after = code[p + 2..].trim_start();
        if after
            .chars()
            .next()
            .is_some_and(|c| c.is_alphabetic() || c == '_')
        {
            return Some(
                after
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect(),
            );
        }
    }
    None
}

// -------------------------------------------------------------- taxonomy

/// Classifier functions whose arms must name every variant: the fn
/// name, and whether a wildcard/catch-all arm is forbidden in its body.
/// `from_byte` decodes untrusted bytes, so its catch-all `other =>
/// Err(...)` arm is legitimate; `is_client_fault` must stay exhaustive
/// so a new variant fails the gate until a human classifies it.
const CLASSIFIERS: [(&str, bool); 2] = [("is_client_fault", true), ("from_byte", false)];

/// For every `enum E` in the file with an inherent `impl E` that
/// defines a classifier fn, require each variant of `E` to appear in
/// that fn's body (and no `_ =>` wildcard where forbidden).
fn check_taxonomy(file: &SourceFile, out: &mut Vec<Finding>) {
    for (enum_line, enum_name, variants) in enums_of(file) {
        let Some((impl_start, impl_end)) = inherent_impl_span(file, &enum_name) else {
            continue;
        };
        for (fn_name, forbid_wildcard) in CLASSIFIERS {
            let Some((fn_start, fn_end)) = fn_body_in(file, impl_start, impl_end, fn_name) else {
                continue;
            };
            let body: Vec<&str> = file.lines[fn_start..=fn_end]
                .iter()
                .map(|l| l.code.as_str())
                .collect();
            for (v_line, v) in &variants {
                let named = body.iter().any(|c| !word_positions(c, v).is_empty());
                if !named {
                    out.push(finding(
                        file,
                        *v_line,
                        "taxonomy",
                        format!(
                            "variant `{enum_name}::{v}` is not handled in `fn {fn_name}`; \
                             classify it explicitly"
                        ),
                    ));
                }
            }
            if forbid_wildcard {
                for (off, c) in body.iter().enumerate() {
                    if c.contains("_ =>") || c.trim_start().starts_with("| _") {
                        out.push(finding(
                            file,
                            fn_start + off,
                            "taxonomy",
                            format!(
                                "wildcard arm in `fn {fn_name}` defeats exhaustiveness: a new \
                                 `{enum_name}` variant would be classified silently \
                                 (enum defined at line {})",
                                enum_line + 1
                            ),
                        ));
                    }
                }
            }
        }
    }
}

/// One `enum` definition: its line, its name, and `(line, name)` per
/// variant.
type EnumDef = (usize, String, Vec<(usize, String)>);

/// All non-test `enum` definitions.
fn enums_of(file: &SourceFile) -> Vec<EnumDef> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < file.lines.len() {
        let line = &file.lines[i];
        if line.in_test {
            i += 1;
            continue;
        }
        let Some(p) = word_positions(&line.code, "enum").first().copied() else {
            i += 1;
            continue;
        };
        let name: String = line.code[p + 4..]
            .trim_start()
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if name.is_empty() {
            i += 1;
            continue;
        }
        // Body depth: the enum's `{` opens at this line's depth (plus
        // any earlier braces on the same line — none in practice).
        let body_depth = line.depth + 1;
        let mut variants = Vec::new();
        let mut j = i + 1;
        while j < file.lines.len() && file.lines[j].depth >= body_depth {
            let l = &file.lines[j];
            if l.depth == body_depth {
                let t = l.code.trim();
                if t.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                    let v: String = t
                        .chars()
                        .take_while(|c| c.is_alphanumeric() || *c == '_')
                        .collect();
                    variants.push((j, v));
                }
            }
            j += 1;
        }
        out.push((i, name, variants));
        i = j;
    }
    out
}

/// Span of `impl Name {` (inherent — not `impl Trait for Name`).
fn inherent_impl_span(file: &SourceFile, name: &str) -> Option<(usize, usize)> {
    for (i, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let Some(p) = word_positions(&line.code, "impl").first().copied() else {
            continue;
        };
        let after = line.code[p + 4..].trim_start();
        if !after.starts_with(name) {
            continue;
        }
        let tail = after[name.len()..].trim_start();
        if !tail.starts_with('{') {
            continue;
        }
        let open_depth = line.depth;
        let mut j = i + 1;
        while j < file.lines.len() && file.lines[j].depth > open_depth {
            j += 1;
        }
        return Some((i, j.min(file.lines.len() - 1)));
    }
    None
}

// ------------------------------------------------------------- obs-stage

/// The canonical request lifecycle, in order (mirrors
/// `cerl_obs::Stage::ALL`). A `.stamp(...)` call site must name its
/// stage literally, and within one function the named stages must
/// appear in this textual order — so the trace a span records can never
/// contradict the code path that produced it. Generic forwarders that
/// take a `Stage` parameter waive the site with `// obs-stage:` and a
/// reason.
const STAGES: [&str; 9] = [
    "Accepted",
    "Decoded",
    "AdmissionWait",
    "Submitted",
    "QueueWait",
    "Batched",
    "Inference",
    "Gathered",
    "Written",
];

fn check_obs_stage(file: &SourceFile, out: &mut Vec<Finding>) {
    // `(line, stage index)` per literal stamp site, textual order.
    let mut sites: Vec<(usize, usize)> = Vec::new();
    for (i, line) in file.lines.iter().enumerate() {
        if line.in_test || !line.code.contains(".stamp(") {
            continue;
        }
        if has_annotation(file, i, "obs-stage:") {
            continue;
        }
        // The stage literal may sit on a rustfmt continuation line just
        // below the call.
        let stage = (i..file.lines.len().min(i + 3)).find_map(|j| {
            STAGES
                .iter()
                .position(|s| file.lines[j].code.contains(&format!("Stage::{s}")))
        });
        let Some(idx) = stage else {
            out.push(finding(
                file,
                i,
                "obs-stage",
                "`.stamp(...)` without a literal `Stage::<variant>` at the call site; \
                 name the stage, or waive a generic forwarder with `// obs-stage:`"
                    .into(),
            ));
            continue;
        };
        sites.push((i, idx));
    }
    if sites.is_empty() {
        return;
    }
    for &(start, end, ref name) in &fn_spans(file) {
        let mut max_seen: Option<usize> = None;
        for &(line, idx) in sites.iter().filter(|&&(l, _)| start <= l && l <= end) {
            if let Some(prev) = max_seen {
                if idx < prev {
                    out.push(finding(
                        file,
                        line,
                        "obs-stage",
                        format!(
                            "stage `{}` stamped after later stage `{}` in `fn {name}`; \
                             stamp sites must follow the request lifecycle order \
                             ({} … {})",
                            STAGES[idx],
                            STAGES[prev],
                            STAGES[0],
                            STAGES[STAGES.len() - 1],
                        ),
                    ));
                }
            }
            max_seen = Some(max_seen.map_or(idx, |p| p.max(idx)));
        }
    }
}

/// Body span of `fn name` inside `[impl_start, impl_end]`.
fn fn_body_in(
    file: &SourceFile,
    impl_start: usize,
    impl_end: usize,
    name: &str,
) -> Option<(usize, usize)> {
    let needle = format!("fn {name}");
    for i in impl_start..=impl_end {
        if !file.lines[i].code.contains(&needle) {
            continue;
        }
        let fn_depth = file.lines[i].depth;
        let mut j = i + 1;
        while j <= impl_end && file.lines[j].depth > fn_depth {
            j += 1;
        }
        return Some((i, (j - 1).max(i)));
    }
    None
}
