//! `cerl-analyze` — concurrency-invariant static analysis for the cerl
//! workspace, hand-rolled in the same no-external-deps style as
//! `cerl-net`'s reactor (no `syn`, no walkdir: a purpose-built lexer
//! plus a recursive directory walk).
//!
//! The serving stack's correctness rests on invariants that the
//! compiler cannot see: every `unsafe` needs a stated obligation, every
//! atomic ordering needs a named happens-before edge, the serving path
//! must not panic, lock guards must not straddle blocking calls, and
//! the fault taxonomy must classify every variant. This crate turns
//! those review-time conventions into a deny-mode CI gate:
//!
//! ```text
//! cargo run -p cerl-analyze -- --deny
//! ```
//!
//! Findings print as `file:line — rule — message`; `--json PATH` also
//! writes a machine-readable summary (schema `cerl-analyze/v1`).

pub mod lexer;
pub mod rules;

use lexer::SourceFile;
use rules::Scope;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path (or the path as given in file mode).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Stable rule id (see [`rules`] for the table).
    pub rule: &'static str,
    /// Human-readable explanation with the expected annotation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} — {} — {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Read and lex one file; `rel` is the path recorded in findings.
pub fn scan_file(path: &Path, rel: &str) -> io::Result<SourceFile> {
    let text = fs::read_to_string(path)?;
    Ok(lexer::lex(rel, &text))
}

/// The rule scope the workspace layout assigns to `rel` (forward-slash,
/// workspace-relative). `None` means the file is not scanned at all.
///
/// - `vendor/` (offline dependency shims) and generated trees are out;
/// - `crates/cerl-bench` is a diagnostic harness, held to unsafe
///   hygiene only (its counters are not serving-path atomics);
/// - the panic/lock/obs-stage rules cover the serving path:
///   `cerl-serve`, `cerl-net`, `cerl-obs`, and
///   `cerl-core/src/serving.rs` — by crate prefix, so modules added to
///   those crates later (the replica route policies in
///   `cerl-serve/src/policy.rs`, the per-domain counters in
///   `cerl-obs/src/domains.rs`) are scoped automatically;
/// - the dense-kernel hot modules — `cerl-math/src/matmul.rs` (the
///   blocked GEMM every predict routes through) and
///   `cerl-core/src/precision.rs` (the f32 serving plan) — are also
///   panic-path scoped: a panic there takes down a request thread just
///   as surely as one in `serving.rs`;
/// - hot-path modules (`serving.rs`, `histogram.rs`, `server.rs`,
///   `trace.rs`) additionally forbid `SeqCst` outright.
pub fn scope_for(rel: &str) -> Option<Scope> {
    if !rel.ends_with(".rs") {
        return None;
    }
    if rel.starts_with("vendor/") || rel.contains("/target/") {
        return None;
    }
    let in_src = rel.starts_with("src/") || (rel.starts_with("crates/") && rel.contains("/src/"));
    if !in_src {
        return None;
    }
    let bench = rel.starts_with("crates/cerl-bench/");
    let analyzer = rel.starts_with("crates/cerl-analyze/");
    let serving_path = rel.starts_with("crates/cerl-serve/src/")
        || rel.starts_with("crates/cerl-net/src/")
        || rel.starts_with("crates/cerl-obs/src/")
        || rel == "crates/cerl-core/src/serving.rs";
    let dense_kernel =
        rel == "crates/cerl-math/src/matmul.rs" || rel == "crates/cerl-core/src/precision.rs";
    let base = rel.rsplit('/').next().unwrap_or(rel);
    let hot = serving_path
        && matches!(
            base,
            "serving.rs" | "histogram.rs" | "server.rs" | "trace.rs"
        );
    Some(Scope {
        unsafe_hygiene: true,
        atomics: !bench && !analyzer,
        hot_path: hot,
        panic_free: serving_path || dense_kernel,
        locks: serving_path,
        lock_order: rel == "crates/cerl-core/src/serving.rs",
        taxonomy: !bench && !analyzer,
        obs_stage: serving_path,
    })
}

/// Walk the workspace under `root`, analyze every in-scope file, and
/// return all findings plus the number of files scanned.
pub fn analyze_workspace(root: &Path) -> io::Result<(Vec<Finding>, usize)> {
    let mut files: Vec<PathBuf> = Vec::new();
    collect_rs(&root.join("src"), &mut files)?;
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut krates: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        krates.sort();
        for k in krates {
            collect_rs(&k.join("src"), &mut files)?;
        }
    }
    files.sort();

    let mut findings = Vec::new();
    let mut scanned = 0usize;
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let Some(scope) = scope_for(&rel) else {
            continue;
        };
        let file = scan_file(path, &rel)?;
        scanned += 1;
        findings.extend(rules::analyze(&file, &scope));
    }
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok((findings, scanned))
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Render findings as the `cerl-analyze/v1` JSON summary.
pub fn render_json(findings: &[Finding], files_scanned: usize) -> String {
    let mut s = String::from("{\n  \"schema\": \"cerl-analyze/v1\",\n");
    s.push_str(&format!("  \"files_scanned\": {files_scanned},\n"));
    s.push_str(&format!("  \"total\": {},\n", findings.len()));
    let mut counts: Vec<(&str, usize)> = Vec::new();
    for f in findings {
        match counts.iter_mut().find(|(r, _)| *r == f.rule) {
            Some((_, n)) => *n += 1,
            None => counts.push((f.rule, 1)),
        }
    }
    counts.sort();
    s.push_str("  \"counts\": {");
    for (i, (rule, n)) in counts.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&format!("\"{rule}\": {n}"));
    }
    s.push_str("},\n  \"findings\": [\n");
    for (i, f) in findings.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}{}\n",
            json_escape(&f.file),
            f.line,
            f.rule,
            json_escape(&f.message),
            if i + 1 < findings.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
