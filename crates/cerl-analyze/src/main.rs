//! CLI for the cerl-analyze invariant gate.
//!
//! ```text
//! cerl-analyze [--root DIR] [--deny] [--json PATH] [--quiet] [FILE.rs ...]
//! ```
//!
//! With no file arguments, walks the workspace under `--root` (default
//! `.`) applying each file's path-derived rule scope. Explicit file
//! arguments are analyzed with *every* rule on (fixture mode). Exit
//! code: 0 clean (or findings without `--deny`), 1 findings under
//! `--deny`, 2 usage/IO error.

use cerl_analyze::rules::{analyze, Scope};
use cerl_analyze::{analyze_workspace, render_json, scan_file, Finding};
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny = false;
    let mut quiet = false;
    let mut root = String::from(".");
    let mut json_path: Option<String> = None;
    let mut file_args: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--deny" => deny = true,
            "--quiet" => quiet = true,
            "--root" => match args.next() {
                Some(r) => root = r,
                None => return usage("--root needs a directory"),
            },
            "--json" => match args.next() {
                Some(p) => json_path = Some(p),
                None => return usage("--json needs a path"),
            },
            "--help" | "-h" => {
                println!(
                    "cerl-analyze [--root DIR] [--deny] [--json PATH] [--quiet] [FILE.rs ...]"
                );
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                return usage(&format!("unknown flag {other}"));
            }
            file => file_args.push(file.to_string()),
        }
    }

    let (findings, scanned): (Vec<Finding>, usize) = if file_args.is_empty() {
        match analyze_workspace(Path::new(&root)) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("cerl-analyze: cannot scan {root}: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        let mut all = Vec::new();
        for f in &file_args {
            match scan_file(Path::new(f), f) {
                Ok(src) => all.extend(analyze(&src, &Scope::all())),
                Err(e) => {
                    eprintln!("cerl-analyze: cannot read {f}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        let n = file_args.len();
        (all, n)
    };

    if !quiet {
        for f in &findings {
            println!("{f}");
        }
        println!(
            "cerl-analyze: {} finding(s) across {} file(s) scanned{}",
            findings.len(),
            scanned,
            if deny { " [deny mode]" } else { "" }
        );
    }
    if let Some(p) = json_path {
        if let Err(e) = std::fs::write(&p, render_json(&findings, scanned)) {
            eprintln!("cerl-analyze: cannot write {p}: {e}");
            return ExitCode::from(2);
        }
    }
    if deny && !findings.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("cerl-analyze: {msg}");
    ExitCode::from(2)
}
