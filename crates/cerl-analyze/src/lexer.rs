//! A lightweight Rust-source lexer: just enough token discipline to
//! separate *code* from *comments* per line, blank out string/char
//! literal contents, and mark `#[cfg(test)]` regions — without pulling
//! in `syn` (the workspace builds with no external dependencies).
//!
//! The model is deliberately line-oriented: every rule in
//! [`crate::rules`] reasons about "this line's code" and "the comment
//! on or directly above this statement", which is exactly the
//! granularity at which the annotation conventions (`// SAFETY:`,
//! `// ordering:`, `// panic-ok:`) live.

/// One source line after lexing.
#[derive(Debug, Clone)]
pub struct Line {
    /// The line's code with comments removed and the *contents* of
    /// string/char literals blanked to spaces (delimiters kept), so
    /// substring rules never match inside a literal or a comment.
    pub code: String,
    /// Comment text carried by this line (`//`, `///`, `//!`, and any
    /// part of a `/* */` block that crosses it), concatenated.
    pub comment: String,
    /// Brace depth at the *start* of the line.
    pub depth: usize,
    /// True when the line sits inside a `#[cfg(test)]` / `#[test]`
    /// item (including the opening line of that item).
    pub in_test: bool,
}

/// A lexed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path as reported in findings (workspace-relative when produced
    /// by the workspace walk).
    pub rel_path: String,
    /// Lexed lines, index 0 = line 1.
    pub lines: Vec<Line>,
}

/// Lex `text` into per-line code/comment channels.
pub fn lex(rel_path: &str, text: &str) -> SourceFile {
    let chars: Vec<char> = text.chars().collect();
    let n = chars.len();
    let mut lines: Vec<Line> = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut i = 0;

    // flush helper is inlined below ("push current line") because
    // closures borrowing both buffers and `lines` fight the borrow
    // checker more than the duplication costs.
    macro_rules! newline {
        () => {
            lines.push(Line {
                code: std::mem::take(&mut code),
                comment: std::mem::take(&mut comment),
                depth: 0,
                in_test: false,
            });
        };
    }

    while i < n {
        let c = chars[i];
        if c == '\n' {
            newline!();
            i += 1;
        } else if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            // Line comment (also doc comments). Consume to EOL.
            let mut j = i;
            while j < n && chars[j] != '\n' {
                comment.push(chars[j]);
                j += 1;
            }
            i = j;
        } else if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            // Block comment, nesting per Rust rules; may span lines.
            let mut depth = 1usize;
            comment.push('/');
            comment.push('*');
            let mut j = i + 2;
            while j < n && depth > 0 {
                if chars[j] == '\n' {
                    newline!();
                    j += 1;
                } else if chars[j] == '/' && j + 1 < n && chars[j + 1] == '*' {
                    depth += 1;
                    comment.push_str("/*");
                    j += 2;
                } else if chars[j] == '*' && j + 1 < n && chars[j + 1] == '/' {
                    depth -= 1;
                    comment.push_str("*/");
                    j += 2;
                } else {
                    comment.push(chars[j]);
                    j += 1;
                }
            }
            i = j;
        } else if c == '"' {
            i = consume_string(&chars, i, &mut code, &mut lines, &mut comment);
        } else if (c == 'r' || c == 'b') && !prev_is_ident(&code) {
            // Possible raw / byte string or byte char: r", r#", b", br",
            // br#", b'. Anything else falls through as plain code.
            let (is_raw, start) = raw_string_lookahead(&chars, i);
            if is_raw {
                i = consume_raw_string(&chars, i, start, &mut code, &mut lines, &mut comment);
            } else if c == 'b' && i + 1 < n && chars[i + 1] == '\'' {
                code.push('b');
                i = consume_char_or_lifetime(&chars, i + 1, &mut code);
            } else if c == 'b' && i + 1 < n && chars[i + 1] == '"' {
                code.push('b');
                i = consume_string(&chars, i + 1, &mut code, &mut lines, &mut comment);
            } else {
                code.push(c);
                i += 1;
            }
        } else if c == '\'' {
            i = consume_char_or_lifetime(&chars, i, &mut code);
        } else {
            code.push(c);
            i += 1;
        }
    }
    if !code.is_empty() || !comment.is_empty() {
        newline!();
    }

    mark_depth_and_tests(&mut lines);
    SourceFile {
        rel_path: rel_path.to_string(),
        lines,
    }
}

fn prev_is_ident(code: &str) -> bool {
    code.chars()
        .last()
        .is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// Does `chars[i..]` start a raw string (`r"`, `r#"`, `br##"` ...)?
/// Returns `(true, index_of_quote)` when it does.
fn raw_string_lookahead(chars: &[char], i: usize) -> (bool, usize) {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
    }
    if j >= chars.len() || chars[j] != 'r' {
        return (false, 0);
    }
    j += 1;
    while j < chars.len() && chars[j] == '#' {
        j += 1;
    }
    if j < chars.len() && chars[j] == '"' {
        (true, j)
    } else {
        (false, 0)
    }
}

/// Consume a normal string literal starting at the `"` at `chars[i]`,
/// blanking its contents. Returns the index just past the closing quote.
fn consume_string(
    chars: &[char],
    i: usize,
    code: &mut String,
    lines: &mut Vec<Line>,
    comment: &mut String,
) -> usize {
    code.push('"');
    let mut j = i + 1;
    while j < chars.len() {
        match chars[j] {
            '\\' => {
                code.push(' ');
                if j + 1 < chars.len() && chars[j + 1] == '\n' {
                    // String line continuation: leave the newline for
                    // the outer loop so line numbers stay aligned.
                    j += 1;
                } else {
                    if j + 1 < chars.len() {
                        code.push(' ');
                    }
                    j += 2;
                }
            }
            '"' => {
                code.push('"');
                return j + 1;
            }
            '\n' => {
                lines.push(Line {
                    code: std::mem::take(code),
                    comment: std::mem::take(comment),
                    depth: 0,
                    in_test: false,
                });
                j += 1;
            }
            _ => {
                code.push(' ');
                j += 1;
            }
        }
    }
    j
}

/// Consume a raw string whose opening quote sits at `quote`; hashes
/// between `chars[i]` and the quote set the closing delimiter length.
fn consume_raw_string(
    chars: &[char],
    i: usize,
    quote: usize,
    code: &mut String,
    lines: &mut Vec<Line>,
    comment: &mut String,
) -> usize {
    let hashes = chars[i..quote].iter().filter(|&&c| c == '#').count();
    for &c in &chars[i..=quote] {
        code.push(c);
    }
    let mut j = quote + 1;
    while j < chars.len() {
        if chars[j] == '"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while k < chars.len() && chars[k] == '#' && seen < hashes {
                k += 1;
                seen += 1;
            }
            if seen == hashes {
                code.push('"');
                for _ in 0..hashes {
                    code.push('#');
                }
                return k;
            }
            code.push(' ');
            j += 1;
        } else if chars[j] == '\n' {
            lines.push(Line {
                code: std::mem::take(code),
                comment: std::mem::take(comment),
                depth: 0,
                in_test: false,
            });
            j += 1;
        } else {
            code.push(' ');
            j += 1;
        }
    }
    j
}

/// Disambiguate `'a'` (char literal) from `'a` (lifetime) at the `'`
/// at `chars[i]`; blanks char-literal contents, passes lifetimes
/// through. Returns the index just past what was consumed.
fn consume_char_or_lifetime(chars: &[char], i: usize, code: &mut String) -> usize {
    let n = chars.len();
    if i + 1 < n && chars[i + 1] == '\\' {
        // Escaped char literal: consume to the closing quote.
        code.push('\'');
        let mut j = i + 2;
        while j < n && chars[j] != '\'' && chars[j] != '\n' {
            code.push(' ');
            j += 1;
        }
        if j < n && chars[j] == '\'' {
            code.push('\'');
            j += 1;
        }
        return j;
    }
    if i + 2 < n && chars[i + 2] == '\'' {
        // One-char literal 'x'.
        code.push('\'');
        code.push(' ');
        code.push('\'');
        return i + 3;
    }
    // Lifetime (or a stray quote): emit as-is.
    code.push('\'');
    i + 1
}

/// Second pass: compute brace depth per line and propagate
/// `#[cfg(test)]` / `#[test]` item regions.
fn mark_depth_and_tests(lines: &mut [Line]) {
    let mut depth = 0usize;
    let mut pending_test = false;
    let mut test_stack: Vec<usize> = Vec::new();
    for line in lines.iter_mut() {
        line.depth = depth;
        line.in_test = !test_stack.is_empty();
        let t = line.code.trim();
        if (t.starts_with("#[cfg") && t.contains("test")) || t.starts_with("#[test]") {
            pending_test = true;
        }
        for c in line.code.chars() {
            match c {
                '{' => {
                    if pending_test {
                        test_stack.push(depth);
                        pending_test = false;
                        line.in_test = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    if test_stack.last() == Some(&depth) {
                        test_stack.pop();
                    }
                }
                // `#[cfg(test)] use foo;` — the gated item ended
                // without a brace; stop waiting for one.
                ';' if pending_test && depth == line.depth => pending_test = false,
                _ => {}
            }
        }
    }
}

/// Index of the first line of the statement containing `line` — walks
/// up while the previous line is a continuation (does not end in `;`,
/// `{` or `}` and is not blank/comment-only).
pub fn statement_start(file: &SourceFile, line: usize) -> usize {
    let mut s = line;
    while s > 0 {
        let prev = file.lines[s - 1].code.trim();
        if prev.is_empty() {
            break;
        }
        if prev.ends_with(';') || prev.ends_with('{') || prev.ends_with('}') {
            break;
        }
        s -= 1;
    }
    s
}

/// Whether the statement containing `line` carries `marker` — either as
/// a trailing comment on one of the statement's own lines, or in the
/// contiguous comment block (attributes allowed in between) directly
/// above the statement.
pub fn has_annotation(file: &SourceFile, line: usize, marker: &str) -> bool {
    let start = statement_start(file, line);
    for l in start..=line {
        if file.lines[l].comment.contains(marker) {
            return true;
        }
    }
    let mut j = start;
    while j > 0 {
        let above = &file.lines[j - 1];
        let code_t = above.code.trim();
        if code_t.is_empty() && !above.comment.trim().is_empty() {
            if above.comment.contains(marker) {
                return true;
            }
            j -= 1;
        } else if code_t.starts_with("#[") {
            j -= 1;
        } else {
            break;
        }
    }
    false
}
