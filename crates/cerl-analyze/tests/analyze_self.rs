//! The analyzer analyzed: every bad fixture is flagged with the right
//! rule id, the clean fixtures pass, the CLI's deny mode exits non-zero
//! on violations, and — the gate itself — the workspace scans clean.

use cerl_analyze::rules::{analyze, Scope};
use cerl_analyze::{analyze_workspace, scan_file, Finding};
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

fn findings_for(name: &str) -> Vec<Finding> {
    let path = fixture(name);
    let src = scan_file(&path, name).unwrap_or_else(|e| panic!("cannot read {name}: {e}"));
    analyze(&src, &Scope::all())
}

fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn bad_fixtures_are_flagged_with_the_right_rule() {
    for (name, rule) in [
        ("bad_unsafe.rs", "unsafe-comment"),
        ("bad_atomic.rs", "atomic-ordering"),
        ("bad_seqcst.rs", "seqcst-hot-path"),
        ("bad_panic.rs", "panic-path"),
        ("kernel_panic_fire.rs", "panic-path"),
        ("bad_lock.rs", "lock-blocking"),
        ("bad_lock_order.rs", "lock-order"),
        ("bad_taxonomy.rs", "taxonomy"),
        ("bad_taxonomy_wildcard.rs", "taxonomy"),
        ("obs_stage_fire.rs", "obs-stage"),
    ] {
        let findings = findings_for(name);
        let rules = rules_of(&findings);
        assert!(
            rules.contains(&rule),
            "{name}: expected a `{rule}` finding, got {rules:?}"
        );
        // Isolation: nothing *other* than the intended rule fires, so a
        // fixture regression cannot hide behind an unrelated finding.
        assert!(
            rules.iter().all(|r| *r == rule),
            "{name}: expected only `{rule}` findings, got {rules:?}"
        );
    }
}

#[test]
fn bad_fixture_findings_point_at_real_lines() {
    for name in ["bad_unsafe.rs", "bad_atomic.rs", "bad_panic.rs"] {
        let path = fixture(name);
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{name}: {e}"));
        let lines: Vec<&str> = text.lines().collect();
        for f in findings_for(name) {
            let line = lines
                .get(f.line - 1)
                .unwrap_or_else(|| panic!("{name}: finding line {} out of range", f.line));
            assert!(
                !line.trim().is_empty() && !line.trim_start().starts_with("//"),
                "{name}:{} points at a blank/comment line: {line:?}",
                f.line
            );
        }
    }
}

#[test]
fn seqcst_fixture_is_flagged_despite_ordering_annotation() {
    // `// ordering:` silences the audit rule but must never waive the
    // hot-path SeqCst flag.
    let findings = findings_for("bad_seqcst.rs");
    let rules = rules_of(&findings);
    assert_eq!(rules, ["seqcst-hot-path"]);
}

#[test]
fn clean_fixtures_pass_every_rule() {
    for name in [
        "clean_annotated.rs",
        "clean_test_code.rs",
        "kernel_panic_clean.rs",
        "obs_stage_clean.rs",
    ] {
        let findings = findings_for(name);
        assert!(findings.is_empty(), "{name}: unexpected {findings:?}");
    }
}

#[test]
fn lock_blocking_names_the_guard_and_call() {
    let findings = findings_for("bad_lock.rs");
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(
        findings[0].message.contains("guard `guard`") && findings[0].message.contains("recv"),
        "{}",
        findings[0].message
    );
}

#[test]
fn deny_mode_exits_nonzero_on_each_bad_fixture() {
    for (name, rule) in [
        ("bad_unsafe.rs", "unsafe-comment"),
        ("bad_atomic.rs", "atomic-ordering"),
        ("bad_seqcst.rs", "seqcst-hot-path"),
        ("bad_panic.rs", "panic-path"),
        ("bad_lock.rs", "lock-blocking"),
        ("bad_lock_order.rs", "lock-order"),
        ("bad_taxonomy.rs", "taxonomy"),
        ("obs_stage_fire.rs", "obs-stage"),
    ] {
        let out = Command::new(env!("CARGO_BIN_EXE_cerl-analyze"))
            .arg("--deny")
            .arg(fixture(name))
            .output()
            .expect("spawn cerl-analyze");
        assert!(
            !out.status.success(),
            "{name}: deny mode should exit non-zero"
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains(rule),
            "{name}: stdout should name `{rule}`:\n{stdout}"
        );
        assert!(stdout.contains("[deny mode]"), "{name}:\n{stdout}");
    }
}

#[test]
fn deny_mode_exits_zero_on_clean_fixtures() {
    let out = Command::new(env!("CARGO_BIN_EXE_cerl-analyze"))
        .arg("--deny")
        .arg(fixture("clean_annotated.rs"))
        .arg(fixture("clean_test_code.rs"))
        .output()
        .expect("spawn cerl-analyze");
    assert!(
        out.status.success(),
        "clean fixtures should pass deny mode: {}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn json_summary_is_well_formed() {
    let dir = std::env::temp_dir().join(format!("cerl-analyze-json-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let json_path = dir.join("summary.json");
    let out = Command::new(env!("CARGO_BIN_EXE_cerl-analyze"))
        .arg("--quiet")
        .arg("--json")
        .arg(&json_path)
        .arg(fixture("bad_atomic.rs"))
        .output()
        .expect("spawn cerl-analyze");
    assert!(
        out.status.success(),
        "no --deny, so exit 0 despite findings"
    );
    let json = std::fs::read_to_string(&json_path).expect("json written");
    let _ = std::fs::remove_dir_all(&dir);
    assert!(json.contains("\"schema\": \"cerl-analyze/v1\""), "{json}");
    assert!(json.contains("\"atomic-ordering\""), "{json}");
    assert!(json.contains("\"files_scanned\": 1"), "{json}");
}

#[test]
fn dense_kernel_modules_are_panic_path_scoped() {
    // The blocked GEMM and the f32 serving plan sit under every predict
    // call; a panic there takes down a request thread exactly like one
    // in serving.rs, so scope_for must hold them to the same rule.
    for rel in [
        "crates/cerl-math/src/matmul.rs",
        "crates/cerl-core/src/precision.rs",
        "crates/cerl-core/src/serving.rs",
    ] {
        let scope =
            cerl_analyze::scope_for(rel).unwrap_or_else(|| panic!("{rel} must be in scope"));
        assert!(scope.panic_free, "{rel} must be panic-path scoped");
        assert!(scope.unsafe_hygiene, "{rel} must be unsafe-comment scoped");
    }
    // Generic math modules stay off the panic path: training code may
    // assert on caller bugs freely.
    let scope = cerl_analyze::scope_for("crates/cerl-math/src/lib.rs").expect("in scope");
    assert!(!scope.panic_free);
    assert!(scope.unsafe_hygiene);
}

#[test]
fn replica_era_modules_are_serving_path_scoped() {
    // The route-policy module runs on every replicated sub-batch and the
    // per-domain counters record on every request: both are serving-path
    // code, so panic-path, lock, and obs-stage rules must all apply —
    // scope_for's prefix matching must keep covering files added to
    // cerl-serve and cerl-obs, not just the ones that existed when the
    // scope was written.
    for rel in [
        "crates/cerl-serve/src/policy.rs",
        "crates/cerl-serve/src/router.rs",
        "crates/cerl-obs/src/domains.rs",
    ] {
        let scope =
            cerl_analyze::scope_for(rel).unwrap_or_else(|| panic!("{rel} must be in scope"));
        assert!(scope.panic_free, "{rel} must be panic-path scoped");
        assert!(scope.atomics, "{rel} must be atomic-ordering scoped");
        assert!(scope.locks, "{rel} must be lock-blocking scoped");
        assert!(scope.taxonomy, "{rel} must be taxonomy scoped");
    }
}

#[test]
fn workspace_scans_clean() {
    // The gate itself: the repo carries zero findings. CARGO_MANIFEST_DIR
    // is crates/cerl-analyze; the workspace root is two levels up.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let (findings, scanned) = analyze_workspace(&root).expect("workspace scan");
    assert!(
        scanned > 20,
        "workspace walk looks truncated: {scanned} files"
    );
    assert!(
        findings.is_empty(),
        "workspace must scan clean; found:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
