//! # cerl-serve
//!
//! Serving front-end for the CERL engine stack: micro-batching,
//! shard-per-domain routing, and latency observability — the layer that
//! turns one-process inference ([`ServingEngine`](cerl_core::serving::ServingEngine)) into a deployable
//! service for heavy concurrent traffic.
//!
//! * [`scheduler`] — [`BatchScheduler`]: coalesce many small concurrent
//!   `predict_ite` requests into one fanned forward pass against a
//!   pinned engine version, demuxing per-request result slices back
//!   through private channels. Bounded submission queue
//!   ([`BatchConfig::queue_capacity`]), row bound
//!   ([`BatchConfig::max_batch_rows`]), and latency budget
//!   ([`BatchConfig::max_wait`]). Batched results are **bitwise
//!   identical** to unbatched calls against the same engine version.
//! * [`router`] — [`ShardRouter`]: N independently hot-swappable
//!   [`ServingEngine`](cerl_core::serving::ServingEngine) shards keyed by a
//!   [`ShardMap`] (`domain → replica-set`)
//!   that also rides in snapshot metadata; per-shard warm swaps, typed
//!   [`ServeError::UnknownDomain`] routing errors, optional per-shard
//!   batching. Mixed-domain requests are served by
//!   [`ShardRouter::predict_ite_scatter`] (scatter-gather with results
//!   bitwise identical to a single unsharded engine), and
//!   [`ShardRouter::begin_rebalance`] /
//!   [`commit_rebalance`](ShardRouter::commit_rebalance) /
//!   [`abort_rebalance`](ShardRouter::abort_rebalance) move a domain
//!   between shards with zero downtime (see the dual-route contract in
//!   the [`router`] module docs).
//! * [`policy`] — [`RoutePolicy`]: which replica of a replicated (hot)
//!   domain serves a given sub-batch — [`LeastLoaded`] (default),
//!   [`RoundRobin`], [`VersionPinned`] for canary reads. Policies
//!   choose placement only; results are bitwise identical to an
//!   unreplicated reference under every policy.
//! * [`orchestrator`] — [`RebalancePlanner`] / [`RebalanceOrchestrator`]:
//!   turn a target [`ShardMap`] into a
//!   load-aware-ordered sequence of single-domain moves and execute them
//!   through the router's begin → probe → commit path, watching a canary
//!   window per move (windowed p95 and error-rate deltas) with automatic
//!   [`abort_rebalance`](ShardRouter::abort_rebalance) and plan halt
//!   ([`ServeError::PlanHalted`]) on regression.
//! * [`histogram`] — [`LatencyHistogram`]: fixed log-spaced buckets with
//!   wait-free atomic recording; [`ServeStats`] reports p50/p95/p99
//!   queue-wait and end-to-end latency plus per-version request
//!   accounting for watching canary swaps.
//! * [`error`] — [`ServeError`]: the front-end's typed failures,
//!   wrapping the engine's [`CerlError`](cerl_core::error::CerlError).
//!
//! ## Quick example: batched serving with a hot swap
//!
//! ```
//! use cerl_core::config::CerlConfig;
//! use cerl_core::engine::CerlEngineBuilder;
//! use cerl_core::serving::ServingEngine;
//! use cerl_data::{DomainStream, SyntheticConfig, SyntheticGenerator};
//! use cerl_serve::{BatchConfig, BatchScheduler};
//! use std::sync::Arc;
//! use std::time::Duration;
//!
//! let gen = SyntheticGenerator::new(SyntheticConfig::small(), 5);
//! let stream = DomainStream::synthetic(&gen, 2, 0, 5);
//! let mut cfg = CerlConfig::quick_test();
//! cfg.train.epochs = 2; // doc-test speed
//! let mut engine = CerlEngineBuilder::new(cfg).seed(5).build()?;
//! engine.observe(&stream.domain(0).train, &stream.domain(0).val)?;
//!
//! let serving = Arc::new(ServingEngine::new(engine));
//! let scheduler = BatchScheduler::new(
//!     Arc::clone(&serving),
//!     BatchConfig { max_wait: Duration::from_millis(5), ..BatchConfig::default() },
//! );
//!
//! // Concurrent small requests coalesce into one forward pass, and each
//! // caller gets back exactly what an unbatched call would return.
//! let x = stream.domain(0).test.x.slice_rows(0, 4);
//! let (version, batched) = scheduler.predict_ite_versioned(&x)?;
//! assert_eq!(version, 1);
//! assert_eq!(batched, serving.predict_ite(&x)?);
//!
//! // Retrain + warm-swap underneath the scheduler: in-flight batches
//! // keep their pinned version, later batches see version 2.
//! serving.observe_and_swap(&stream.domain(1).train, &stream.domain(1).val)?;
//! let (version, _) = scheduler.predict_ite_versioned(&x)?;
//! assert_eq!(version, 2);
//! let stats = scheduler.stats();
//! assert_eq!(stats.requests, 2);
//! assert_eq!(stats.per_version_requests, vec![(1, 1), (2, 1)]);
//! # Ok::<(), cerl_serve::ServeError>(())
//! ```
//!
//! ## Tuning the scheduler
//!
//! | knob | effect |
//! |------|--------|
//! | [`BatchConfig::max_batch_rows`] | Upper bound on coalesced rows per forward pass. Larger amortizes more setup but grows per-batch latency and peak memory. |
//! | [`BatchConfig::max_wait`] | The latency an isolated request pays waiting for company. Under load batches fill before the budget; idle, a lone request waits at most this long. |
//! | [`BatchConfig::queue_capacity`] | Pending requests admitted before [`ServeError::QueueFull`] sheds load. Size it to `target_p99 / typical_batch_latency × mean_batch_requests`. |
//! | [`BatchConfig::worker_threads`] | Threads for the coalesced forward pass (0 = the machine's GEMM worker count). Results are bitwise identical for any value. |
//!
//! ## Shard-map format
//!
//! A [`ShardMap`] is built from
//! `(domain_id, shard_index)` pairs ([`ShardMap::from_pairs`]) or
//! `(domain_id, replica ids)` entries ([`ShardMap::from_replicas`])
//! over a declared shard count; it rejects out-of-range shards,
//! conflicting duplicate domains, and empty replica-sets, and it
//! serializes inside [`ModelSnapshot`](cerl_core::snapshot::ModelSnapshot)
//! (metadata format version 4; v2 single-shard and v3-era documents
//! still load) so fleet topology ships with model bytes.
//!
//! ## Histogram semantics
//!
//! [`LatencyHistogram`] buckets grow geometrically (~31% per bucket,
//! 1 µs … ~15 s + overflow), so reported quantiles are representative
//! values with ~±15% bucket resolution — stable, allocation-free, and
//! cheap enough to record on every request. `queue_wait` measures
//! submit → batch-execution-start; `end_to_end` measures
//! submit → response-in-hand, as the caller observes it.

#![warn(missing_docs)]

pub mod error;
pub mod histogram;
pub mod orchestrator;
pub mod policy;
pub mod router;
pub mod scheduler;

pub use error::ServeError;
pub use histogram::{LatencyHistogram, LatencySnapshot};
pub use orchestrator::{
    CanaryConfig, CanarySnapshot, CanaryWindow, MoveReport, OrchestratorConfig, PlanReport,
    RebalanceOrchestrator, RebalancePlan, RebalancePlanner, ReplicaReport, ShardLoad,
};
pub use policy::{LeastLoaded, RoundRobin, RouteContext, RoutePolicy, VersionPinned};
pub use router::{ScatterHandle, ScatterResponse, ShardRouter};
pub use scheduler::{BatchConfig, BatchScheduler, ResponseHandle, ServeStats};

// Routing metadata lives in cerl-core (it is snapshot state); re-export
// it here so `cerl_serve::ShardMap` works without a cerl-core import.
pub use cerl_core::snapshot::{
    ReplicaChange, ReplicaSet, ShardAssignment, ShardMap, ShardMapDiff, ShardMove,
};
