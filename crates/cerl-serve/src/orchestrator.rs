//! Rebalance orchestration: turn a target topology into a sequence of
//! canary-watched single-domain moves.
//!
//! The paper's continual setting retrains and redeploys estimators as
//! each new data domain arrives; at serving scale that means the fleet's
//! `domain → shard` topology evolves continuously. The router's
//! [`begin_rebalance`](ShardRouter::begin_rebalance) /
//! [`commit_rebalance`](ShardRouter::commit_rebalance) /
//! [`abort_rebalance`](ShardRouter::abort_rebalance) primitives move one
//! domain with zero downtime — this module sequences *many* of them:
//!
//! * **Planning.** [`RebalancePlanner::plan`] diffs the live
//!   [`ShardMap`] against a target ([`ShardMap::diff`] yields the move
//!   list) and orders the moves **load-aware**: largest
//!   source-minus-destination imbalance first (per-shard row counts from
//!   [`ShardRouter::shard_loads`]), ties broken by hotter source shard
//!   and then ascending domain id — so the plan is a deterministic pure
//!   function of `(current map, target map, loads)`. A target that adds
//!   or removes domains is rejected: rebalancing relocates existing
//!   traffic ([`ShardMap::merge`] is the tool for introducing domains).
//! * **Execution.** [`RebalanceOrchestrator::execute`] drives each move
//!   through the existing begin → probe → commit path. Successor engines
//!   come from a caller-supplied provider and are pre-built at most
//!   [`OrchestratorConfig::max_staged`] ahead of the executing move, so a
//!   long plan never holds the whole fleet's successors in memory.
//! * **Replica lifecycle.** Read scaling rides the same canary
//!   machinery as moves, one verb per topology step:
//!   [`RebalanceOrchestrator::add_replica`] (stage + probe → window →
//!   publish-then-flip, auto-abort drops the staged engine unpublished),
//!   [`drain_replica`](RebalanceOrchestrator::drain_replica) (flip
//!   traffic off the replica → window, auto-abort restores it), and
//!   [`remove_replica`](RebalanceOrchestrator::remove_replica) (one last
//!   window of the post-drain fleet before the point of no return,
//!   auto-abort keeps the replica restorable). Every auto-abort returns
//!   [`ServeError::ReplicaChangeAborted`] naming the verb and reason.
//!   A target map that *changes replica counts* is rejected by the
//!   planner and directed here — plans relocate replicas, verbs scale
//!   them.
//!
//! # The canary window and auto-abort
//!
//! Every move's dual-route window doubles as a **canary window**. After
//! `begin_rebalance` stages the successor (probed, unpublished — readers
//! still route to the source shard), the orchestrator watches live
//! traffic until [`CanaryConfig::window_requests`] fleet requests have
//! been observed or [`CanaryConfig::max_wait`] has elapsed, then judges
//! the window against three regression signals:
//!
//! 1. **Fleet error rate** — serve-fault rejections / (answered +
//!    rejected) over the window, from [`ShardRouter::canary_snapshot`]
//!    deltas, above [`CanaryConfig::max_error_rate`]. Client faults
//!    (malformed requests, unknown domains — see
//!    [`ServeError::is_client_fault`]) are excluded, so a misbehaving
//!    client cannot halt the plan;
//! 2. **Involved-shard error rate** — the same ratio computed from the
//!    source and destination shards' *per-version* counters
//!    ([`ServingEngine::version_stats`](cerl_core::ServingEngine::version_stats),
//!    scoped to each shard's currently published version), so a
//!    regression on the shards actually touched by the move is caught
//!    even when the rest of a large fleet dilutes the fleet-wide rate;
//! 3. **Windowed latency** — the window's own p95 (bucket-count deltas
//!    via [`LatencyHistogram::quantile_from_counts`], *not* the
//!    cumulative histogram, which dilutes fresh regressions under
//!    history) above [`CanaryConfig::max_p95_ratio`] × the baseline p95
//!    measured over an identical window before the first move.
//!
//! On any regression the in-flight move is **auto-aborted** — nothing
//! was published during the window, so readers never saw the staged
//! engine — and the plan halts with [`ServeError::PlanHalted`] naming
//! the aborted domain, the committed prefix, and the reason. The fleet
//! is left on the valid intermediate topology produced by that prefix:
//! every domain is still served, by exactly the shard its pinned map
//! routes it to. An idle window (zero requests) is treated as healthy —
//! there is no traffic to regress.
//!
//! ```no_run
//! use cerl_serve::{RebalanceOrchestrator, OrchestratorConfig, ShardMap, ShardRouter};
//! # fn demo(router: std::sync::Arc<ShardRouter>,
//! #         target: ShardMap,
//! #         successor: cerl_core::CerlEngine) -> Result<(), cerl_serve::ServeError> {
//! let orchestrator = RebalanceOrchestrator::new(router, OrchestratorConfig::default());
//! let plan = orchestrator.plan(&target)?;
//! let report = orchestrator.execute(&plan, |mv| {
//!     // Ship a successor that holds `mv.domain` plus everything the
//!     // destination shard already serves.
//!     Ok(successor.clone())
//! })?;
//! assert_eq!(report.moves.len(), plan.len());
//! # Ok(()) }
//! ```

use crate::error::ServeError;
use crate::histogram::{LatencyHistogram, BUCKET_COUNT};
use crate::router::ShardRouter;
use cerl_core::engine::CerlEngine;
use cerl_core::error::CerlError;
use cerl_core::snapshot::{ShardMap, ShardMove};
use cerl_obs::{EventKind, TraceRing};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One shard's cumulative load counters ([`ShardRouter::shard_loads`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardLoad {
    /// Shard index in the fleet.
    pub shard: usize,
    /// Requests the shard's engine has answered.
    pub requests: u64,
    /// Rows across those requests — the planner's load measure (a shard
    /// serving few huge requests is hotter than one serving many tiny
    /// ones).
    pub rows: u64,
}

/// Cumulative fleet counters cheap enough to poll every few hundred
/// microseconds ([`ShardRouter::canary_snapshot`]). Two snapshots bracket
/// a canary window; their element-wise differences are the window's own
/// traffic, error, and latency distribution.
#[derive(Debug, Clone)]
pub struct CanarySnapshot {
    /// Requests answered successfully since fleet construction.
    pub requests: u64,
    /// Requests rejected since fleet construction (all faults).
    pub rejected: u64,
    /// The subset of [`CanarySnapshot::rejected`] that were client
    /// faults ([`ServeError::is_client_fault`]) — excluded from the
    /// canary's serve-fault error rate.
    pub rejected_client: u64,
    /// Raw end-to-end latency bucket counts (see
    /// [`LatencyHistogram::bucket_counts`]).
    pub end_to_end_buckets: [u64; BUCKET_COUNT],
}

impl CanarySnapshot {
    /// Total requests observed (answered + rejected).
    pub fn total(&self) -> u64 {
        self.requests + self.rejected
    }

    /// The window between `self` (earlier) and `later`: windowed p95 from
    /// bucket-count deltas, or `None` for an idle window.
    fn windowed_p95(&self, later: &CanarySnapshot) -> Option<Duration> {
        let window: [u64; BUCKET_COUNT] = std::array::from_fn(|i| {
            // panic-ok: both snapshots carry [u64; BUCKET_COUNT] arrays
            // and from_fn hands indices < BUCKET_COUNT only.
            later.end_to_end_buckets[i].saturating_sub(self.end_to_end_buckets[i])
        });
        LatencyHistogram::quantile_from_counts(&window, 0.95)
    }
}

/// Canary-window thresholds of a [`RebalanceOrchestrator`].
#[derive(Debug, Clone)]
pub struct CanaryConfig {
    /// Close the window once this many fleet requests (answered or
    /// rejected) have been observed since it opened (default 32). `0`
    /// closes the window immediately — useful for tests and for applying
    /// a plan to an idle fleet.
    pub window_requests: u64,
    /// Close the window after this long even if under-observed (default
    /// 2 s) — an idle fleet must not stall its own topology change.
    pub max_wait: Duration,
    /// Regression threshold for both the fleet-wide and the
    /// involved-shard rejection share over the window (default 0.02).
    ///
    /// The fleet-wide rate counts **serve faults only** — rejections the
    /// fleet is responsible for (queue overflow, scheduler shutdown,
    /// engine failure). Client faults (unknown domain, tag mismatch,
    /// wrong covariate width — see [`ServeError::is_client_fault`]) are
    /// excluded, so a misbehaving network client flooding malformed
    /// requests cannot halt a rebalance plan the fleet is executing
    /// perfectly. The canary remains deliberately conservative about the
    /// faults it does judge: halting is cheap (the plan resumes with a
    /// re-run) while committing into a degraded fleet is not.
    pub max_error_rate: f64,
    /// Regression threshold for the window's p95 end-to-end latency as a
    /// multiple of the pre-plan baseline window's p95 (default 3.0;
    /// latency is only judged when both windows saw traffic).
    pub max_p95_ratio: f64,
}

impl Default for CanaryConfig {
    fn default() -> Self {
        Self {
            window_requests: 32,
            max_wait: Duration::from_secs(2),
            max_error_rate: 0.02,
            max_p95_ratio: 3.0,
        }
    }
}

/// What one canary window observed (deltas over the window, not
/// cumulative counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CanaryWindow {
    /// Fleet requests answered during the window.
    pub requests: u64,
    /// Fleet requests rejected during the window (all faults).
    pub rejected: u64,
    /// The subset of [`CanaryWindow::rejected`] that were client faults;
    /// [`CanaryConfig::verdict`] judges `rejected - rejected_client`.
    pub rejected_client: u64,
    /// The window's own p95 end-to-end latency (`None` when idle).
    pub p95: Option<Duration>,
    /// Requests the move's source/destination shards answered during the
    /// window, on their currently published versions.
    pub shard_served: u64,
    /// Requests those shards rejected during the window.
    pub shard_rejected: u64,
}

impl CanaryConfig {
    /// Judge one observed window against these thresholds: `None` means
    /// healthy, `Some(reason)` names the regression that must halt the
    /// plan. Pure function — the decision logic is unit-testable without
    /// a fleet or a clock.
    pub fn verdict(&self, baseline_p95: Option<Duration>, window: &CanaryWindow) -> Option<String> {
        let fleet_total = window.requests + window.rejected;
        let serve_faults = window.rejected.saturating_sub(window.rejected_client);
        if fleet_total > 0 {
            let rate = serve_faults as f64 / fleet_total as f64;
            if rate > self.max_error_rate {
                return Some(format!(
                    "fleet error rate {rate:.3} above {:.3} ({} of {} window requests rejected \
                     with serve faults)",
                    self.max_error_rate, serve_faults, fleet_total
                ));
            }
        }
        let shard_total = window.shard_served + window.shard_rejected;
        if shard_total > 0 {
            let rate = window.shard_rejected as f64 / shard_total as f64;
            if rate > self.max_error_rate {
                return Some(format!(
                    "involved-shard error rate {rate:.3} above {:.3} ({} of {} requests on the \
                     source/destination shards' published versions rejected)",
                    self.max_error_rate, window.shard_rejected, shard_total
                ));
            }
        }
        if let (Some(baseline), Some(p95)) = (baseline_p95, window.p95) {
            if baseline > Duration::ZERO
                && p95.as_secs_f64() > baseline.as_secs_f64() * self.max_p95_ratio
            {
                return Some(format!(
                    "windowed p95 {:.2} ms above {:.1}x baseline {:.2} ms",
                    p95.as_secs_f64() * 1e3,
                    self.max_p95_ratio,
                    baseline.as_secs_f64() * 1e3
                ));
            }
        }
        None
    }
}

/// An ordered, validated sequence of single-domain moves — the output of
/// [`RebalancePlanner::plan`], consumed by
/// [`RebalanceOrchestrator::execute`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RebalancePlan {
    /// Moves in execution order (largest load imbalance first).
    pub moves: Vec<ShardMove>,
}

impl RebalancePlan {
    /// Number of moves in the plan.
    pub fn len(&self) -> usize {
        self.moves.len()
    }

    /// Whether the plan has no moves (the topologies already agree).
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
    }
}

/// Derives ordered [`RebalancePlan`]s from topology diffs (see the
/// [module docs](self)).
pub struct RebalancePlanner;

impl RebalancePlanner {
    /// Plan the moves taking `router`'s live topology to `target`, ordered
    /// by the router's current per-shard loads.
    pub fn plan(router: &ShardRouter, target: &ShardMap) -> Result<RebalancePlan, ServeError> {
        Self::plan_with_loads(&router.map(), target, &router.shard_loads())
    }

    /// Plan from an explicit `(current, target, loads)` triple — the pure
    /// core of [`RebalancePlanner::plan`], usable for what-if planning
    /// against recorded load snapshots.
    ///
    /// Fails when the target declares a different shard count than the
    /// current fleet (the orchestrator moves domains between *existing*
    /// shards; growing a fleet means building a router with idle shards
    /// first) or when the target adds/removes domains rather than moving
    /// them.
    pub fn plan_with_loads(
        current: &ShardMap,
        target: &ShardMap,
        loads: &[ShardLoad],
    ) -> Result<RebalancePlan, ServeError> {
        if target.shard_count() != current.shard_count() {
            return Err(invalid_plan(format!(
                "target topology declares {} shard(s) but the fleet has {}",
                target.shard_count(),
                current.shard_count()
            )));
        }
        let diff = current.diff(target);
        if !diff.added.is_empty() || !diff.removed.is_empty() {
            let name = |prefix: &str, list: &[cerl_core::snapshot::ShardAssignment]| {
                list.iter()
                    .map(|a| format!("{prefix} domain {}", a.domain))
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            let mut parts = Vec::new();
            if !diff.added.is_empty() {
                parts.push(name("adds", &diff.added));
            }
            if !diff.removed.is_empty() {
                parts.push(name("removes", &diff.removed));
            }
            return Err(invalid_plan(format!(
                "target topology does not just move domains: {}; a rebalance plan relocates \
                 existing traffic (use ShardMap::merge to introduce domains)",
                parts.join("; ")
            )));
        }
        if !diff.replicas_added.is_empty() || !diff.replicas_removed.is_empty() {
            let name = |verb: &str, list: &[cerl_core::snapshot::ReplicaChange]| {
                list.iter()
                    .map(|c| format!("{verb} domain {}'s replica on shard {}", c.domain, c.shard))
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            let mut parts = Vec::new();
            if !diff.replicas_added.is_empty() {
                parts.push(name("adds", &diff.replicas_added));
            }
            if !diff.replicas_removed.is_empty() {
                parts.push(name("removes", &diff.replicas_removed));
            }
            return Err(invalid_plan(format!(
                "target topology changes replica counts: {}; a rebalance plan relocates \
                 existing replicas (use RebalanceOrchestrator::add_replica / drain_replica / \
                 remove_replica for read scaling)",
                parts.join("; ")
            )));
        }
        let mut rows_by_shard = vec![0u64; current.shard_count()];
        for load in loads {
            if let Some(slot) = rows_by_shard.get_mut(load.shard) {
                *slot = load.rows;
            }
        }
        let mut moves = diff.moved;
        // Largest imbalance (source load minus destination load) first:
        // draining the hottest shard toward the coolest buys the most
        // headroom per move. Ties prefer the hotter source, then the
        // smaller domain id, so the order is a deterministic function of
        // the inputs.
        moves.sort_by(|a, b| {
            let key = |m: &ShardMove| {
                // panic-ok: every move's from/to came from the target
                // map's shard indices, bounded by the fleet size that
                // built rows_by_shard above.
                let from = rows_by_shard[m.from] as i128;
                let to = rows_by_shard[m.to] as i128; // panic-ok: see above
                (from - to, from)
            };
            key(b).cmp(&key(a)).then(a.domain.cmp(&b.domain))
        });
        Ok(RebalancePlan { moves })
    }
}

/// Knobs of a [`RebalanceOrchestrator`].
#[derive(Debug, Clone, Default)]
pub struct OrchestratorConfig {
    /// Canary-window thresholds applied to every move.
    pub canary: CanaryConfig,
    /// Successor engines pre-built ahead of the executing move (clamped
    /// to ≥ 1; default 1). Staging is where the memory goes — a staged
    /// successor is a whole engine — so this bounds the plan's peak
    /// footprint at `max_staged + 1` engines beyond the fleet itself.
    pub max_staged: usize,
}

/// What one committed move's canary window observed.
#[derive(Debug, Clone, Copy)]
pub struct MoveReport {
    /// The move that committed.
    pub mv: ShardMove,
    /// Engine version published on the destination shard by the commit.
    pub destination_version: u64,
    /// The canary window that cleared the move.
    pub window: CanaryWindow,
}

/// Outcome of one canary-watched replica-lifecycle verb
/// ([`RebalanceOrchestrator::add_replica`] /
/// [`drain_replica`](RebalanceOrchestrator::drain_replica) /
/// [`remove_replica`](RebalanceOrchestrator::remove_replica)).
#[derive(Debug, Clone)]
pub struct ReplicaReport {
    /// Domain whose replica-set changed.
    pub domain: u64,
    /// The replica shard involved.
    pub shard: usize,
    /// Engine version published on the new replica (adds only; drains
    /// and removes publish nothing).
    pub published_version: Option<u64>,
    /// p95 of the baseline window measured before the change (`None`
    /// when the fleet was idle).
    pub baseline_p95: Option<Duration>,
    /// The canary window that cleared the change.
    pub window: CanaryWindow,
}

/// Outcome of a fully executed plan ([`RebalanceOrchestrator::execute`]).
#[derive(Debug, Clone, Default)]
pub struct PlanReport {
    /// One report per committed move, in execution order. Moves the live
    /// topology already reflected (a re-run of a partly applied plan)
    /// are skipped and absent here.
    pub moves: Vec<MoveReport>,
    /// p95 of the baseline window measured before the first move
    /// (`None` when the fleet was idle).
    pub baseline_p95: Option<Duration>,
}

/// Executes [`RebalancePlan`]s against a [`ShardRouter`] with per-move
/// canary watching and auto-abort (see the [module docs](self)).
pub struct RebalanceOrchestrator {
    router: Arc<ShardRouter>,
    cfg: OrchestratorConfig,
    executing: AtomicBool,
    /// Optional event sink: verdicts and commits land in the ring's
    /// event log for the admin endpoint's `TraceDump` to surface.
    obs: Option<Arc<TraceRing>>,
}

impl std::fmt::Debug for RebalanceOrchestrator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RebalanceOrchestrator")
            .field("cfg", &self.cfg)
            // ordering: debug introspection only; staleness is fine.
            .field("executing", &self.executing.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl RebalanceOrchestrator {
    /// Bind an orchestrator to a fleet.
    pub fn new(router: Arc<ShardRouter>, cfg: OrchestratorConfig) -> Self {
        Self {
            router,
            cfg,
            executing: AtomicBool::new(false),
            obs: None,
        }
    }

    /// Emit structured events ([`EventKind`]) into `ring`'s event log as
    /// plans execute: baseline capture, every committed move, every
    /// auto-abort, and plan halts. The admin endpoint's `TraceDump` frame
    /// surfaces the same ring, so rebalance history and request traces
    /// share one wire.
    pub fn with_obs(mut self, ring: Arc<TraceRing>) -> Self {
        self.obs = Some(ring);
        self
    }

    fn record_event(&self, kind: EventKind, a: u64, b: u64) {
        if let Some(ring) = &self.obs {
            ring.record_event(kind, a, b);
        }
    }

    /// The fleet this orchestrator drives.
    pub fn router(&self) -> &Arc<ShardRouter> {
        &self.router
    }

    /// Plan the moves from the router's live topology to `target`
    /// (convenience for [`RebalancePlanner::plan`]).
    pub fn plan(&self, target: &ShardMap) -> Result<RebalancePlan, ServeError> {
        RebalancePlanner::plan(&self.router, target)
    }

    /// Whether a plan is currently executing on this orchestrator.
    pub fn is_executing(&self) -> bool {
        // ordering: Acquire pairs with ExecutionGuard's Release store —
        // observing false also observes the finished plan's effects.
        self.executing.load(Ordering::Acquire)
    }

    /// Execute `plan` move by move: stage the successor from
    /// `successor_for`, open the dual-route window with
    /// [`begin_rebalance`](ShardRouter::begin_rebalance), watch one
    /// canary window, then commit — or auto-abort and halt with
    /// [`ServeError::PlanHalted`] on a regression (see the
    /// [module docs](self) for the exact signals).
    ///
    /// `successor_for` must return an engine that holds `mv.domain`
    /// **and** every domain the destination shard already serves — a
    /// commit publishes it as the destination's next version for all of
    /// them. Successors are requested in plan order, at most
    /// [`OrchestratorConfig::max_staged`] ahead of the executing move.
    ///
    /// Only one plan may execute at a time per orchestrator; a second
    /// call fails fast with [`ServeError::PlanInProgress`]. Moves the
    /// live topology already reflects are skipped, so re-running a halted
    /// plan resumes where it left off.
    pub fn execute(
        &self,
        plan: &RebalancePlan,
        mut successor_for: impl FnMut(&ShardMove) -> Result<CerlEngine, ServeError>,
    ) -> Result<PlanReport, ServeError> {
        let _guard = self.begin_execution()?;
        let mut report = PlanReport::default();
        if plan.moves.is_empty() {
            return Ok(report);
        }

        // Baseline window: the steady state every move's canary window is
        // judged against, observed with the same knobs.
        let base = self.router.canary_snapshot();
        self.wait_window(&base);
        report.baseline_p95 = base.windowed_p95(&self.router.canary_snapshot());
        self.record_event(
            EventKind::BaselineCaptured,
            plan.moves.len() as u64,
            report
                .baseline_p95
                .map_or(0, |p95| p95.as_nanos().min(u128::from(u64::MAX)) as u64),
        );

        let mut staged: VecDeque<(usize, CerlEngine)> = VecDeque::new();
        let mut next_staged = 0usize;
        for (i, mv) in plan.moves.iter().enumerate() {
            // Top the staging queue up to the configured bound before
            // each move, so successor construction (training, snapshot
            // transfer) overlaps plan execution without ever holding the
            // whole plan's engines at once. Moves the live topology
            // already reflects (a re-run of a halted plan) are never
            // staged — building an engine only to drop it can cost a
            // whole training run.
            while next_staged < plan.moves.len() && staged.len() < self.cfg.max_staged.max(1) {
                // panic-ok: the loop condition bounds next_staged.
                let pending = &plan.moves[next_staged];
                if !self.move_applied(pending)? {
                    staged.push_back((next_staged, successor_for(pending)?));
                }
                next_staged += 1;
            }
            let successor = match staged.front() {
                Some(&(idx, _)) if idx == i => staged.pop_front().map(|(_, engine)| engine),
                _ => None, // move was already applied at staging time
            };
            if self.move_applied(mv)? {
                continue; // already applied (e.g. re-run of a halted plan)
            }
            let successor = match successor {
                Some(successor) => successor,
                // The move looked applied when the staging queue was
                // topped up but no longer is (an external actor moved the
                // domain back mid-plan): build its successor now.
                None => successor_for(mv)?,
            };

            let before = self.router.canary_snapshot();
            let shards_before = self.involved_counters(mv)?;
            self.router
                .begin_move_replica(mv.domain, mv.from, mv.to, successor)?;
            self.wait_window(&before);
            let after = self.router.canary_snapshot();
            let shards_after = self.involved_counters(mv)?;
            let window = CanaryWindow {
                requests: after.requests.saturating_sub(before.requests),
                rejected: after.rejected.saturating_sub(before.rejected),
                rejected_client: after.rejected_client.saturating_sub(before.rejected_client),
                p95: before.windowed_p95(&after),
                shard_served: shards_after.0.saturating_sub(shards_before.0),
                shard_rejected: shards_after.1.saturating_sub(shards_before.1),
            };
            if let Some(reason) = self.cfg.canary.verdict(report.baseline_p95, &window) {
                self.router.abort_rebalance()?;
                self.record_event(EventKind::MoveAborted, mv.domain, mv.to as u64);
                self.record_event(EventKind::PlanHalted, mv.domain, report.moves.len() as u64);
                return Err(ServeError::PlanHalted {
                    domain: mv.domain,
                    committed: report.moves.len(),
                    remaining: plan.moves.len() - i,
                    reason,
                });
            }
            let destination_version = self.router.commit_rebalance()?;
            self.record_event(EventKind::MoveCommitted, mv.domain, destination_version);
            report.moves.push(MoveReport {
                mv: *mv,
                destination_version,
                window,
            });
        }
        Ok(report)
    }

    /// Plan and execute in one call: the moves from the live topology to
    /// `target`, load-aware ordered, canary-watched.
    pub fn execute_target(
        &self,
        target: &ShardMap,
        successor_for: impl FnMut(&ShardMove) -> Result<CerlEngine, ServeError>,
    ) -> Result<PlanReport, ServeError> {
        let plan = self.plan(target)?;
        self.execute(&plan, successor_for)
    }

    /// Add a read-scaling replica of `domain` on `shard` through the
    /// canary machinery: baseline window → stage + probe
    /// ([`ShardRouter::begin_add_replica`]) → canary window → commit
    /// (publish the successor, then grow the replica-set in one map
    /// flip) — or auto-abort on a regression, leaving the topology
    /// untouched and returning [`ServeError::ReplicaChangeAborted`].
    ///
    /// `successor` must hold `domain` plus everything `shard` already
    /// serves, exactly like a rebalance successor. Serializes against
    /// plans and other verbs via the same executing flag
    /// ([`ServeError::PlanInProgress`]).
    pub fn add_replica(
        &self,
        domain: u64,
        shard: usize,
        successor: CerlEngine,
    ) -> Result<ReplicaReport, ServeError> {
        let _guard = self.begin_execution()?;
        let mut involved = self.router.replicas(domain)?.shards().to_vec();
        involved.push(shard);
        let (baseline_p95, window, verdict) = self.canary_watched(&involved, || {
            self.router.begin_add_replica(domain, shard, successor)
        })?;
        if let Some(reason) = verdict {
            self.router.abort_rebalance()?;
            self.record_event(EventKind::MoveAborted, domain, shard as u64);
            return Err(ServeError::ReplicaChangeAborted {
                domain,
                shard,
                verb: "add",
                reason,
            });
        }
        let version = self.router.commit_rebalance()?;
        self.record_event(EventKind::ReplicaAdded, domain, shard as u64);
        Ok(ReplicaReport {
            domain,
            shard,
            published_version: Some(version),
            baseline_p95,
            window,
        })
    }

    /// Drain `domain`'s replica on `shard` through the canary machinery:
    /// baseline window → map flip ([`ShardRouter::drain_replica`] —
    /// traffic moves to the remaining replicas immediately) → canary
    /// window judging the shrunken set under live load — or auto-abort:
    /// a regression restores the replica
    /// ([`ShardRouter::restore_replica`]) and returns
    /// [`ServeError::ReplicaChangeAborted`]. On success the replica
    /// stays draining (restorable) until
    /// [`remove_replica`](RebalanceOrchestrator::remove_replica).
    pub fn drain_replica(&self, domain: u64, shard: usize) -> Result<ReplicaReport, ServeError> {
        let _guard = self.begin_execution()?;
        let involved = self.router.replicas(domain)?.shards().to_vec();
        let (baseline_p95, window, verdict) =
            self.canary_watched(&involved, || self.router.drain_replica(domain, shard))?;
        if let Some(reason) = verdict {
            self.router.restore_replica(domain, shard)?;
            self.record_event(EventKind::MoveAborted, domain, shard as u64);
            return Err(ServeError::ReplicaChangeAborted {
                domain,
                shard,
                verb: "drain",
                reason,
            });
        }
        self.record_event(EventKind::ReplicaDrained, domain, shard as u64);
        Ok(ReplicaReport {
            domain,
            shard,
            published_version: None,
            baseline_p95,
            window,
        })
    }

    /// Finalize a drained replica's removal through one last canary
    /// window: the post-drain fleet is watched once more before the
    /// point of no return — a regression keeps the replica draining
    /// (still restorable) and returns
    /// [`ServeError::ReplicaChangeAborted`]; health finalizes via
    /// [`ShardRouter::remove_replica`].
    pub fn remove_replica(&self, domain: u64, shard: usize) -> Result<ReplicaReport, ServeError> {
        let _guard = self.begin_execution()?;
        if !self.router.draining_replicas().contains(&(domain, shard)) {
            return Err(ServeError::ReplicaNotDraining { domain, shard });
        }
        let involved = self.router.replicas(domain)?.shards().to_vec();
        let (baseline_p95, window, verdict) = self.canary_watched(&involved, || Ok(()))?;
        if let Some(reason) = verdict {
            self.record_event(EventKind::MoveAborted, domain, shard as u64);
            return Err(ServeError::ReplicaChangeAborted {
                domain,
                shard,
                verb: "remove",
                reason,
            });
        }
        self.router.remove_replica(domain, shard)?;
        self.record_event(EventKind::ReplicaRemoved, domain, shard as u64);
        Ok(ReplicaReport {
            domain,
            shard,
            published_version: None,
            baseline_p95,
            window,
        })
    }

    /// Shared canary harness of the replica verbs: observe a baseline
    /// window, apply `change`, observe the change's own window over the
    /// `involved` shards, and judge it — returning the verdict rather
    /// than acting on it (each verb rolls back its own way).
    fn canary_watched(
        &self,
        involved: &[usize],
        change: impl FnOnce() -> Result<(), ServeError>,
    ) -> Result<(Option<Duration>, CanaryWindow, Option<String>), ServeError> {
        let base = self.router.canary_snapshot();
        self.wait_window(&base);
        let baseline_p95 = base.windowed_p95(&self.router.canary_snapshot());
        self.record_event(
            EventKind::BaselineCaptured,
            1,
            baseline_p95.map_or(0, |p95| p95.as_nanos().min(u128::from(u64::MAX)) as u64),
        );
        let before = self.router.canary_snapshot();
        let shards_before = self.counters_for(involved)?;
        change()?;
        self.wait_window(&before);
        let after = self.router.canary_snapshot();
        let shards_after = self.counters_for(involved)?;
        let window = CanaryWindow {
            requests: after.requests.saturating_sub(before.requests),
            rejected: after.rejected.saturating_sub(before.rejected),
            rejected_client: after.rejected_client.saturating_sub(before.rejected_client),
            p95: before.windowed_p95(&after),
            shard_served: shards_after.0.saturating_sub(shards_before.0),
            shard_rejected: shards_after.1.saturating_sub(shards_before.1),
        };
        let verdict = self.cfg.canary.verdict(baseline_p95, &window);
        Ok((baseline_p95, window, verdict))
    }

    /// Block until `window_requests` more fleet requests have been
    /// observed since `from`, or `max_wait` has elapsed.
    fn wait_window(&self, from: &CanarySnapshot) {
        let canary = &self.cfg.canary;
        let deadline = Instant::now() + canary.max_wait;
        let target = from.total().saturating_add(canary.window_requests);
        while self.router.canary_snapshot().total() < target && Instant::now() < deadline {
            std::thread::sleep(Duration::from_micros(500));
        }
    }

    /// Whether the live topology already reflects `mv`: the destination
    /// replica exists and the source replica is gone. For single-replica
    /// domains this is exactly the old `route(domain) == to` check.
    fn move_applied(&self, mv: &ShardMove) -> Result<bool, ServeError> {
        let replicas = self.router.replicas(mv.domain)?;
        Ok(replicas.contains(mv.to) && !replicas.contains(mv.from))
    }

    /// Summed `(served, rejected)` counters of the move's source and
    /// destination shards, scoped to each shard's currently published
    /// version (per-version counters from the engine layer; during a
    /// dual-route window neither shard publishes, so the scoped version
    /// is stable across the window).
    fn involved_counters(&self, mv: &ShardMove) -> Result<(u64, u64), ServeError> {
        self.counters_for(&[mv.from, mv.to])
    }

    /// Summed `(served, rejected)` counters of `shards` (duplicates
    /// counted once), scoped to each shard's published version.
    fn counters_for(&self, shards: &[usize]) -> Result<(u64, u64), ServeError> {
        let mut involved: Vec<usize> = shards.to_vec();
        involved.sort_unstable();
        involved.dedup();
        let mut served = 0u64;
        let mut rejected = 0u64;
        for shard in involved {
            let engine = self.router.shard(shard)?;
            let version = engine.version();
            if let Some(v) = engine.version_stats().iter().find(|v| v.version == version) {
                served += v.served;
                rejected += v.rejected;
            }
        }
        Ok((served, rejected))
    }

    fn begin_execution(&self) -> Result<ExecutionGuard<'_>, ServeError> {
        // ordering: AcqRel on success — the Acquire half pairs with the
        // previous ExecutionGuard's Release drop (this plan sees that
        // plan's effects); the Release half publishes the claim to the
        // next is_executing/CAS reader. Acquire on failure suffices to
        // read the competing plan's claim.
        if self
            .executing
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return Err(ServeError::PlanInProgress);
        }
        Ok(ExecutionGuard(&self.executing))
    }
}

/// Clears the `executing` flag when a plan finishes, halts, or unwinds.
struct ExecutionGuard<'a>(&'a AtomicBool);

impl Drop for ExecutionGuard<'_> {
    fn drop(&mut self) {
        // ordering: Release pairs with the Acquire side of
        // begin_execution's compare_exchange (and is_executing): the
        // next plan acquires everything this one wrote.
        self.0.store(false, Ordering::Release);
    }
}

fn invalid_plan(reason: String) -> ServeError {
    ServeError::Engine(CerlError::InvalidConfig {
        field: "rebalance_plan",
        reason,
    })
}

// Compile-time proof the orchestrator may drive a fleet from any thread.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<RebalanceOrchestrator>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use cerl_core::config::CerlConfig;
    use cerl_core::engine::CerlEngineBuilder;
    use cerl_data::{DomainStream, SyntheticConfig, SyntheticGenerator};

    fn load(shard: usize, rows: u64) -> ShardLoad {
        ShardLoad {
            shard,
            requests: rows / 4,
            rows,
        }
    }

    #[test]
    fn plan_is_a_deterministic_function_of_maps_and_loads() {
        let current = ShardMap::from_pairs(3, &[(0, 0), (1, 0), (2, 0), (3, 1), (4, 2)]).unwrap();
        let target = ShardMap::from_pairs(3, &[(0, 0), (1, 1), (2, 2), (3, 1), (4, 2)]).unwrap();
        let loads = [load(0, 9_000), load(1, 100), load(2, 500)];
        let plan = RebalancePlanner::plan_with_loads(&current, &target, &loads).unwrap();
        // Both moves drain shard 0; the one toward the cooler shard 1
        // (imbalance 8 900) beats the one toward shard 2 (8 500).
        assert_eq!(
            plan.moves,
            vec![
                ShardMove {
                    domain: 1,
                    from: 0,
                    to: 1
                },
                ShardMove {
                    domain: 2,
                    from: 0,
                    to: 2
                },
            ]
        );
        // Same inputs, same plan — byte for byte.
        let again = RebalancePlanner::plan_with_loads(&current, &target, &loads).unwrap();
        assert_eq!(plan, again);
        // Flipping the destination loads flips the order.
        let flipped = [load(0, 9_000), load(1, 500), load(2, 100)];
        let plan = RebalancePlanner::plan_with_loads(&current, &target, &flipped).unwrap();
        assert_eq!(plan.moves[0].domain, 2);
    }

    #[test]
    fn equal_imbalances_order_by_hotter_source_then_domain() {
        let current = ShardMap::from_pairs(4, &[(7, 0), (3, 1), (5, 1)]).unwrap();
        let target = ShardMap::from_pairs(4, &[(7, 2), (3, 3), (5, 3)]).unwrap();
        // Shard 1 is more imbalanced vs its idle target than shard 0, so
        // its moves drain first; within shard 1, the smaller domain id.
        let loads = [load(0, 1_000), load(1, 2_000)];
        let plan = RebalancePlanner::plan_with_loads(&current, &target, &loads).unwrap();
        let domains: Vec<u64> = plan.moves.iter().map(|m| m.domain).collect();
        assert_eq!(domains, vec![3, 5, 7]);
        // With no load signal at all, order falls back to domain id.
        let plan = RebalancePlanner::plan_with_loads(&current, &target, &[]).unwrap();
        let domains: Vec<u64> = plan.moves.iter().map(|m| m.domain).collect();
        assert_eq!(domains, vec![3, 5, 7]);
    }

    #[test]
    fn identical_topologies_plan_no_moves() {
        let map = ShardMap::from_pairs(2, &[(0, 0), (1, 1)]).unwrap();
        assert!(map.diff(&map).is_empty());
        let plan = RebalancePlanner::plan_with_loads(&map, &map.clone(), &[]).unwrap();
        assert!(plan.is_empty());
        assert_eq!(plan.len(), 0);
    }

    #[test]
    fn plans_reject_targets_that_add_remove_or_resize() {
        let current = ShardMap::from_pairs(2, &[(0, 0), (1, 1)]).unwrap();
        // A target declaring a brand-new shard is not a plan the fleet
        // can execute — there is no engine behind shard 2.
        let grown = ShardMap::from_pairs(3, &[(0, 0), (1, 2)]).unwrap();
        let e = RebalancePlanner::plan_with_loads(&current, &grown, &[]).unwrap_err();
        assert!(e.to_string().contains("3 shard(s)"), "{e}");
        // ShardMap::diff itself happily describes the same change — the
        // planner is where fleet feasibility is enforced.
        let diff = current.diff(&grown);
        assert_eq!(diff.moved.len(), 1);
        assert_eq!((diff.moved[0].from, diff.moved[0].to), (1, 2));
        // Added or removed domains are named in the rejection.
        let added = ShardMap::from_pairs(2, &[(0, 0), (1, 1), (9, 0)]).unwrap();
        let e = RebalancePlanner::plan_with_loads(&current, &added, &[]).unwrap_err();
        assert!(e.to_string().contains("adds domain 9"), "{e}");
        let removed = ShardMap::from_pairs(2, &[(0, 0)]).unwrap();
        let e = RebalancePlanner::plan_with_loads(&current, &removed, &[]).unwrap_err();
        assert!(e.to_string().contains("removes domain 1"), "{e}");
    }

    #[test]
    fn verdict_flags_each_regression_signal_and_passes_health() {
        let cfg = CanaryConfig {
            max_error_rate: 0.1,
            max_p95_ratio: 2.0,
            ..CanaryConfig::default()
        };
        let healthy = CanaryWindow {
            requests: 100,
            rejected: 5,
            rejected_client: 0,
            p95: Some(Duration::from_millis(10)),
            shard_served: 60,
            shard_rejected: 0,
        };
        assert_eq!(cfg.verdict(Some(Duration::from_millis(8)), &healthy), None);
        // An idle window cannot regress.
        assert_eq!(
            cfg.verdict(Some(Duration::from_millis(8)), &CanaryWindow::default()),
            None
        );
        // Fleet error rate above threshold.
        let fleet_errors = CanaryWindow {
            rejected: 50,
            ..healthy
        };
        let reason = cfg.verdict(None, &fleet_errors).unwrap();
        assert!(reason.contains("fleet error rate"), "{reason}");
        // Involved-shard rejections caught even when the fleet-wide rate
        // stays under the threshold (large healthy remainder).
        let shard_errors = CanaryWindow {
            requests: 10_000,
            shard_served: 10,
            shard_rejected: 10,
            ..healthy
        };
        let reason = cfg.verdict(None, &shard_errors).unwrap();
        assert!(reason.contains("involved-shard"), "{reason}");
        // Windowed latency above ratio × baseline.
        let slow = CanaryWindow {
            p95: Some(Duration::from_millis(30)),
            ..healthy
        };
        let reason = cfg.verdict(Some(Duration::from_millis(10)), &slow).unwrap();
        assert!(reason.contains("windowed p95"), "{reason}");
        // No baseline (idle pre-plan fleet): latency is not judged.
        assert_eq!(cfg.verdict(None, &slow), None);
    }

    #[test]
    fn verdict_judges_serve_faults_only() {
        let cfg = CanaryConfig {
            max_error_rate: 0.1,
            ..CanaryConfig::default()
        };
        // A hostile client flooding malformed requests: a 90% rejection
        // rate, every one a client fault. The fleet is healthy — the
        // plan must not halt.
        let client_flood = CanaryWindow {
            requests: 10,
            rejected: 90,
            rejected_client: 90,
            ..CanaryWindow::default()
        };
        assert_eq!(cfg.verdict(None, &client_flood), None);
        // The same rejection volume as serve faults halts immediately.
        let serve_flood = CanaryWindow {
            rejected_client: 0,
            ..client_flood
        };
        let reason = cfg.verdict(None, &serve_flood).unwrap();
        assert!(reason.contains("fleet error rate"), "{reason}");
        // Mixed traffic: only the serve-fault share counts toward the
        // threshold (5 serve faults over 100 total = 0.05 < 0.1).
        let mixed = CanaryWindow {
            requests: 55,
            rejected: 45,
            rejected_client: 40,
            ..CanaryWindow::default()
        };
        assert_eq!(cfg.verdict(None, &mixed), None);
    }

    fn quick_cfg() -> CerlConfig {
        let mut cfg = CerlConfig::quick_test();
        cfg.train.epochs = 6;
        cfg.memory_size = 80;
        cfg
    }

    #[test]
    fn execute_applies_every_move_and_reports_versions() {
        let gen = SyntheticGenerator::new(
            SyntheticConfig {
                n_units: 400,
                ..SyntheticConfig::small()
            },
            97,
        );
        let stream = DomainStream::synthetic(&gen, 1, 0, 97);
        let mut engine = CerlEngineBuilder::new(quick_cfg())
            .seed(41)
            .build()
            .unwrap();
        engine
            .observe(&stream.domain(0).train, &stream.domain(0).val)
            .unwrap();

        // Four domains packed onto shard 0 of a 3-shard fleet; the target
        // spreads them. All shards are clones of one engine, so answers
        // stay bitwise-stable across every intermediate topology.
        let current = ShardMap::from_pairs(3, &[(0, 0), (1, 0), (2, 0), (3, 0)]).unwrap();
        let target = ShardMap::from_pairs(3, &[(0, 0), (1, 1), (2, 2), (3, 1)]).unwrap();
        let router =
            Arc::new(ShardRouter::new((0..3).map(|_| engine.clone()).collect(), current).unwrap());
        let orchestrator = RebalanceOrchestrator::new(
            Arc::clone(&router),
            OrchestratorConfig {
                canary: CanaryConfig {
                    window_requests: 0, // no live traffic in this unit test
                    ..CanaryConfig::default()
                },
                max_staged: 2,
            },
        );

        let plan = orchestrator.plan(&target).unwrap();
        assert_eq!(plan.len(), 3);
        let mut staged_domains = Vec::new();
        let report = orchestrator
            .execute(&plan, |mv| {
                staged_domains.push(mv.domain);
                Ok(engine.clone())
            })
            .unwrap();
        // Successors were requested in plan order.
        let plan_domains: Vec<u64> = plan.moves.iter().map(|m| m.domain).collect();
        assert_eq!(staged_domains, plan_domains);
        assert_eq!(report.moves.len(), 3);
        for (mv, reported) in plan.moves.iter().zip(&report.moves) {
            assert_eq!(*mv, reported.mv);
            assert_eq!(router.route(mv.domain).unwrap(), mv.to);
        }
        // Destination shards each published exactly their commits.
        assert_eq!(router.shard_versions(), vec![1, 3, 2]);
        assert!(!orchestrator.is_executing());

        // Idempotent: the topology now matches, so a fresh plan is empty
        // and a re-run of the old plan skips every move — without ever
        // asking the provider for a successor it would only drop.
        assert!(orchestrator.plan(&target).unwrap().is_empty());
        let mut rebuilt = 0;
        let rerun = orchestrator
            .execute(&plan, |_| {
                rebuilt += 1;
                Ok(engine.clone())
            })
            .unwrap();
        assert!(rerun.moves.is_empty());
        assert_eq!(rebuilt, 0, "applied moves must not be re-staged");
        assert_eq!(router.shard_versions(), vec![1, 3, 2]);

        // The plan's answers never tore: a mixed request still matches
        // the single-engine reference bitwise.
        let x = stream.domain(0).test.x.slice_rows(0, 8);
        let tags: Vec<u64> = (0..8).map(|i| i as u64 % 4).collect();
        let scattered = router.predict_ite_scatter(&tags, &x).unwrap();
        let reference = engine.predict_ite(&x).unwrap();
        for (a, b) in scattered.iter().zip(&reference) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn successor_provider_errors_propagate_before_anything_is_staged() {
        let map = ShardMap::from_pairs(2, &[(0, 0), (1, 0)]).unwrap();
        let target = ShardMap::from_pairs(2, &[(0, 0), (1, 1)]).unwrap();
        let engine = CerlEngineBuilder::new(quick_cfg()).build().unwrap();
        let router = Arc::new(ShardRouter::new(vec![engine.clone(), engine], map).unwrap());
        let orchestrator =
            RebalanceOrchestrator::new(Arc::clone(&router), OrchestratorConfig::default());
        let plan = orchestrator.plan(&target).unwrap();
        let e = orchestrator
            .execute(&plan, |_| Err(ServeError::SchedulerShutdown))
            .unwrap_err();
        assert_eq!(e, ServeError::SchedulerShutdown);
        // Nothing was begun: the fleet is untouched and idle.
        assert_eq!(router.rebalance_in_progress(), None);
        assert_eq!(router.route(1).unwrap(), 0);
        assert!(!orchestrator.is_executing());
    }

    #[test]
    fn plans_reject_replica_count_changes_toward_the_verbs() {
        // Read scaling is not a move: a target that grows or shrinks a
        // replica-set is refused by the planner and pointed at the
        // replica verbs instead.
        let current = ShardMap::from_replicas(2, &[(0, vec![0]), (1, vec![1])]).unwrap();
        let grown = ShardMap::from_replicas(2, &[(0, vec![0, 1]), (1, vec![1])]).unwrap();
        let e = RebalancePlanner::plan_with_loads(&current, &grown, &[]).unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("changes replica counts"), "{msg}");
        assert!(msg.contains("adds domain 0's replica on shard 1"), "{msg}");
        assert!(msg.contains("add_replica"), "{msg}");
        let e = RebalancePlanner::plan_with_loads(&grown, &current, &[]).unwrap_err();
        assert!(e.to_string().contains("removes domain 0's replica"), "{e}");
        // A pure move between replicated topologies still plans fine.
        let moved = ShardMap::from_replicas(2, &[(0, vec![0, 1]), (1, vec![0])]).unwrap();
        let plan = RebalancePlanner::plan_with_loads(&grown, &moved, &[]).unwrap();
        assert_eq!(
            plan.moves,
            vec![ShardMove {
                domain: 1,
                from: 1,
                to: 0
            }]
        );
    }

    #[test]
    fn replica_verbs_walk_the_lifecycle_and_record_events() {
        let gen = SyntheticGenerator::new(
            SyntheticConfig {
                n_units: 400,
                ..SyntheticConfig::small()
            },
            103,
        );
        let stream = DomainStream::synthetic(&gen, 1, 0, 103);
        let mut engine = CerlEngineBuilder::new(quick_cfg())
            .seed(43)
            .build()
            .unwrap();
        engine
            .observe(&stream.domain(0).train, &stream.domain(0).val)
            .unwrap();
        let map = ShardMap::from_replicas(2, &[(0, vec![0])]).unwrap();
        let router = Arc::new(ShardRouter::new(vec![engine.clone(), engine.clone()], map).unwrap());
        let ring = TraceRing::new(4, 1);
        let orchestrator = RebalanceOrchestrator::new(
            Arc::clone(&router),
            OrchestratorConfig {
                canary: CanaryConfig {
                    window_requests: 0, // no live traffic in this unit test
                    ..CanaryConfig::default()
                },
                max_staged: 1,
            },
        )
        .with_obs(Arc::clone(&ring));
        let x = stream.domain(0).test.x.slice_rows(0, 8);
        let reference = engine.predict_ite(&x).unwrap();

        // add: the set grows through stage → canary → commit, and the
        // report carries the replica's published version.
        let report = orchestrator.add_replica(0, 1, engine.clone()).unwrap();
        assert_eq!((report.domain, report.shard), (0, 1));
        assert_eq!(report.published_version, Some(2));
        assert_eq!(router.replicas(0).unwrap().shards(), &[0, 1]);
        assert_eq!(router.predict_ite(0, &x).unwrap(), reference);

        // remove before drain is refused — typed, nothing watched.
        assert!(matches!(
            orchestrator.remove_replica(0, 1),
            Err(ServeError::ReplicaNotDraining {
                domain: 0,
                shard: 1
            })
        ));

        // drain: out of rotation but restorable; remove: final.
        let report = orchestrator.drain_replica(0, 1).unwrap();
        assert_eq!(report.published_version, None);
        assert_eq!(router.replicas(0).unwrap().shards(), &[0]);
        assert_eq!(router.draining_replicas(), vec![(0, 1)]);
        orchestrator.remove_replica(0, 1).unwrap();
        assert!(router.draining_replicas().is_empty());
        assert_eq!(router.predict_ite(0, &x).unwrap(), reference);
        assert!(!orchestrator.is_executing());

        // The event trail tells the verbs' story, most recent first
        // (each verb also records its baseline capture).
        let kinds: Vec<EventKind> = ring.events(16).into_iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::ReplicaRemoved,
                EventKind::BaselineCaptured,
                EventKind::ReplicaDrained,
                EventKind::BaselineCaptured,
                EventKind::ReplicaAdded,
                EventKind::BaselineCaptured,
            ]
        );
    }

    #[test]
    fn replica_drain_auto_aborts_and_restores_on_an_injected_regression() {
        let gen = SyntheticGenerator::new(
            SyntheticConfig {
                n_units: 400,
                ..SyntheticConfig::small()
            },
            107,
        );
        let stream = DomainStream::synthetic(&gen, 1, 0, 107);
        let mut engine = CerlEngineBuilder::new(quick_cfg())
            .seed(47)
            .build()
            .unwrap();
        engine
            .observe(&stream.domain(0).train, &stream.domain(0).val)
            .unwrap();
        let map = ShardMap::from_replicas(2, &[(0, vec![0, 1])]).unwrap();
        let router = Arc::new(ShardRouter::new(vec![engine.clone(), engine.clone()], map).unwrap());
        let orchestrator = RebalanceOrchestrator::new(
            Arc::clone(&router),
            OrchestratorConfig {
                canary: CanaryConfig {
                    // Windows idle out on the clock; the injected shard
                    // rejections land while they do.
                    window_requests: u64::MAX,
                    max_wait: Duration::from_millis(200),
                    max_error_rate: 0.05,
                    max_p95_ratio: 1e9,
                },
                max_staged: 1,
            },
        );

        // A wrong-width matrix hammered straight at an involved shard's
        // engine: serve faults on its published version — the signal the
        // involved-shard canary branch must catch.
        let stop = AtomicBool::new(false);
        let outcome = std::thread::scope(|scope| {
            let hammer_router = Arc::clone(&router);
            let stop = &stop;
            scope.spawn(move || {
                let bad = cerl_math::Matrix::from_vec(1, 1, vec![0.5]);
                while !stop.load(Ordering::Relaxed) {
                    let _ = hammer_router.shard(0).unwrap().predict_ite(&bad);
                }
            });
            let outcome = orchestrator.drain_replica(0, 1);
            stop.store(true, Ordering::Relaxed);
            outcome
        });
        match outcome.unwrap_err() {
            ServeError::ReplicaChangeAborted {
                domain: 0,
                shard: 1,
                verb: "drain",
                reason,
            } => assert!(reason.contains("error rate"), "{reason}"),
            other => panic!("expected ReplicaChangeAborted, got {other:?}"),
        }
        // Auto-abort restored the replica: back in rotation, not
        // draining, and the fleet still answers.
        assert_eq!(router.replicas(0).unwrap().shards(), &[0, 1]);
        assert!(router.draining_replicas().is_empty());
        assert!(!orchestrator.is_executing());
        let x = stream.domain(0).test.x.slice_rows(0, 4);
        assert_eq!(
            router.predict_ite(0, &x).unwrap(),
            engine.predict_ite(&x).unwrap()
        );
    }
}
